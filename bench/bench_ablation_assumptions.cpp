// Ablation (beyond the paper's figures, supporting its §3.1 claims):
// what do Assumptions 1 and 2 individually buy?
//
//   A1 (tight coupling)      off -> asynchronous mining: forks + idle waste.
//   A2 (bounded block scope) off -> local gradients on-chain: block-size
//                                   queuing, multiple blocks per round.
//
//   ./bench/bench_ablation_assumptions [--rounds=15] [--csv=prefix]

#include "bench_common.hpp"
#include "core/vanilla_bfl.hpp"

using namespace fairbfl;

namespace {

// The variants need per-round block/fork counts, which the SystemRun
// series does not carry, so this bench drives the FairBfl class directly
// (the class itself runs on the pluggable strategy objects).
struct AblationResult {
    std::string name;
    double avg_delay = 0.0;
    double final_acc = 0.0;
    std::size_t total_blocks = 0;
    std::size_t total_forks = 0;
};

AblationResult run_variant(const core::Environment& env,
                           core::FairBflConfig config, std::string name,
                           std::size_t rounds) {
    core::FairBfl system(*env.model, env.make_clients(), env.test, config);
    AblationResult result;
    result.name = std::move(name);
    double delay_sum = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto record = system.run_round();
        delay_sum += record.delay.total();
        result.total_blocks += record.blocks_this_round;
        result.total_forks += record.forks_this_round;
        result.final_acc = record.fl.test_accuracy;
    }
    result.avg_delay = delay_sum / static_cast<double>(rounds);
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_ablation_assumptions: toggle Assumption 1 (sync) "
                  "and 2 (block scope)\nflags: --rounds --clients --samples "
                  "--seed --csv=prefix");
        return 0;
    }
    auto setting = benchx::BenchSetting::from_args(args);
    if (args.get_int("rounds", -1) < 0) setting.rounds = 15;
    const std::string csv_prefix = args.get_string("csv", "");
    if (!args.finish("bench_ablation_assumptions")) return 1;

    const core::Environment env =
        core::build_environment(setting.environment());

    auto base = setting.fair_config();
    // More miners make the A1 ablation's forking visible.
    base.miners = 6;
    // A block that holds ~3 gradient transactions: FAIR's global-only block
    // still fits in one, but recording local gradients (no-A2) forces
    // multi-block rounds -- the queuing Assumption 2 eliminates.
    base.delay.max_block_bytes = 8192;

    // Assumption 1 off = swap the consensus engine, not a bool: the
    // "async_pow" ConsensusEngine (core/strategies.hpp) prices forking and
    // idle-block waste where "sync_pow" models the tightly-coupled race.
    auto no_a1 = base;
    no_a1.consensus = "async_pow";

    auto no_a2 = base;
    no_a2.record_local_gradients = true;

    auto no_both = base;
    no_both.consensus = "async_pow";
    no_both.record_local_gradients = true;

    std::printf("## Ablation of Assumptions 1 (tight coupling) and 2 "
                "(bounded block scope), m=%zu\n",
                base.miners);
    support::CsvWriter csv(std::cout);
    if (!csv_prefix.empty()) csv.tee_to_file(csv_prefix + "_ablation.csv");
    csv.header({"variant", "avg_delay_s", "final_accuracy", "blocks",
                "forks"});

    const auto full = run_variant(env, base, "FAIR (A1+A2)", setting.rounds);
    const auto a1_off =
        run_variant(env, no_a1, "no-A1 (async mining)", setting.rounds);
    const auto a2_off = run_variant(env, no_a2, "no-A2 (gradients on-chain)",
                                    setting.rounds);
    const auto both_off =
        run_variant(env, no_both, "no-A1+no-A2 (vanilla BFL)", setting.rounds);

    // Cross-check: the stand-alone vanilla-BFL protocol (gradients really
    // on-chain, workers aggregating from chain data) should price like the
    // double ablation.
    const AblationResult protocol = [&] {
        AblationResult result;
        core::VanillaBflConfig vcfg;
        vcfg.fl = base.fl;
        vcfg.miners = base.miners;
        vcfg.delay = base.delay;
        core::VanillaBfl vanilla(*env.model, env.make_clients(), env.test,
                                 vcfg);
        result.name = "vanilla protocol (cross-check)";
        double delay_sum = 0.0;
        for (std::size_t r = 0; r < setting.rounds; ++r) {
            const auto record = vanilla.run_round();
            delay_sum += record.delay.total();
            result.total_blocks += record.blocks_this_round;
            result.total_forks += record.forks_this_round;
            result.final_acc = record.fl.test_accuracy;
        }
        result.avg_delay = delay_sum / static_cast<double>(setting.rounds);
        return result;
    }();

    for (const auto* r : {&full, &a1_off, &a2_off, &both_off, &protocol}) {
        csv.row()
            .col(r->name)
            .col(r->avg_delay)
            .col(r->final_acc)
            .col(r->total_blocks)
            .col(r->total_forks)
            .end();
    }

    std::printf("\n# shape-check dropping A1 costs delay: %s\n",
                a1_off.avg_delay > full.avg_delay ? "PASS" : "FAIL");
    std::printf("# shape-check dropping A2 multiplies blocks: %s\n",
                a2_off.total_blocks > full.total_blocks ? "PASS" : "FAIL");
    std::printf("# shape-check vanilla BFL is the slowest variant: %s\n",
                both_off.avg_delay >= full.avg_delay &&
                        both_off.avg_delay >= a2_off.avg_delay * 0.9
                    ? "PASS"
                    : "FAIL");
    std::printf("# shape-check stand-alone vanilla protocol prices like the "
                "double ablation (within 35%%): %s\n",
                protocol.avg_delay > 0.65 * both_off.avg_delay &&
                        protocol.avg_delay < 1.35 * both_off.avg_delay
                    ? "PASS"
                    : "FAIL");
    return 0;
}
