// Engineering micro-benchmarks: Merkle roots, block encode/seal, real PoW
// mining, chain submission.

#include <benchmark/benchmark.h>

#include "chain/chain.hpp"
#include "chain/mempool.hpp"
#include "chain/pow.hpp"
#include "core/strategies.hpp"

namespace {

using namespace fairbfl;
namespace ch = fairbfl::chain;

std::vector<ch::Transaction> make_txs(std::size_t count,
                                      std::size_t gradient_dim) {
    std::vector<ch::Transaction> txs;
    std::vector<float> gradient(gradient_dim, 0.5F);
    for (std::size_t i = 0; i < count; ++i) {
        gradient[0] = static_cast<float>(i);
        txs.push_back(ch::make_gradient_tx(ch::TxKind::kLocalGradient,
                                           static_cast<ch::NodeId>(i), 0,
                                           gradient));
    }
    return txs;
}

void BM_MerkleRoot(benchmark::State& state) {
    const auto txs = make_txs(static_cast<std::size_t>(state.range(0)), 64);
    std::vector<crypto::Digest> leaves;
    for (const auto& tx : txs) leaves.push_back(tx.id());
    for (auto _ : state) benchmark::DoNotOptimize(ch::merkle_root(leaves));
}
BENCHMARK(BM_MerkleRoot)->Arg(10)->Arg(100)->Arg(1000);

void BM_BlockSealAndHash(benchmark::State& state) {
    ch::Block block;
    block.transactions = make_txs(static_cast<std::size_t>(state.range(0)),
                                  650);
    for (auto _ : state) {
        block.seal_transactions();
        benchmark::DoNotOptimize(block.header.hash());
    }
}
BENCHMARK(BM_BlockSealAndHash)->Arg(1)->Arg(10)->Arg(100);

void BM_BlockEncodeDecode(benchmark::State& state) {
    ch::Block block;
    block.transactions = make_txs(static_cast<std::size_t>(state.range(0)),
                                  650);
    block.seal_transactions();
    for (auto _ : state) {
        const auto bytes = block.encode();
        ch::ByteReader reader(bytes);
        benchmark::DoNotOptimize(ch::Block::decode(reader));
    }
}
BENCHMARK(BM_BlockEncodeDecode)->Arg(10)->Arg(100);

void BM_PowMine(benchmark::State& state) {
    ch::BlockHeader header;
    header.difficulty = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t salt = 0;
    for (auto _ : state) {
        header.timestamp_ms = salt++;  // fresh puzzle each iteration
        benchmark::DoNotOptimize(ch::mine(header, ~0ULL));
    }
}
BENCHMARK(BM_PowMine)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_ChainSubmit(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ch::Blockchain chain(1);
        chain.set_check_pow(false);
        std::vector<ch::Block> blocks;
        const ch::Block* parent = &chain.genesis();
        for (int i = 0; i < state.range(0); ++i) {
            ch::Block block;
            block.header.index = parent->header.index + 1;
            block.header.prev_hash = parent->header.hash();
            block.header.timestamp_ms = static_cast<std::uint64_t>(i);
            block.transactions = make_txs(5, 64);
            block.seal_transactions();
            blocks.push_back(block);
            parent = &blocks.back();
        }
        state.ResumeTiming();
        for (const auto& block : blocks)
            benchmark::DoNotOptimize(chain.submit(block));
    }
}
BENCHMARK(BM_ChainSubmit)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_MempoolPack(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        ch::Mempool pool(100'000);
        pool.add_all(make_txs(static_cast<std::size_t>(state.range(0)), 650));
        state.ResumeTiming();
        while (!pool.empty()) benchmark::DoNotOptimize(pool.pack_block());
    }
}
BENCHMARK(BM_MempoolPack)->Arg(100)->Arg(500);

/// Pricing one round of block production through the ConsensusEngine
/// strategy API: the synchronized race vs the forking ablation, across
/// miner counts.
void BM_ConsensusEnginePricing(benchmark::State& state) {
    const core::DelayModel delays;
    const auto sync_pow = core::make_consensus("sync_pow");
    const auto async_pow = core::make_consensus("async_pow");
    const auto miners = static_cast<std::size_t>(state.range(0));
    fairbfl::support::Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sync_pow->mine(delays, miners, /*blocks=*/1, 4096, rng));
        benchmark::DoNotOptimize(
            async_pow->mine(delays, miners, /*blocks=*/1, 4096, rng));
    }
}
BENCHMARK(BM_ConsensusEnginePricing)->Arg(2)->Arg(10);

}  // namespace
