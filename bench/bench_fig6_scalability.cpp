// Figure 6 -- "Average delay changes with the number of workers and miners".
//   6a: workers n in [20, 120]: Blockchain delay grows (transaction
//       queuing once n*tx_bytes crosses the block size, ~n=100);
//       FAIR ~= FedAvg stay flat (Assumptions 1+2: one small block/round).
//   6b: miners m in [2, 10], n=100: Blockchain delay grows steeply
//       (forking probability rises with m); FAIR stays flat.
//
//   ./bench/bench_fig6_scalability [--rounds=15] [--paper] [--csv=prefix]

#include <array>
#include <vector>

#include "bench_common.hpp"

using namespace fairbfl;

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_fig6_scalability: sweep workers (6a) and miners "
                  "(6b)\nflags: --rounds --samples --iid --seed --paper "
                  "--csv=prefix");
        return 0;
    }
    auto setting = benchx::BenchSetting::from_args(args);
    // Delay sweeps need fewer rounds than accuracy curves.
    if (args.get_int("rounds", -1) < 0 && !args.get_flag("paper"))
        setting.rounds = 15;
    const std::string csv_prefix = args.get_string("csv", "");
    if (!args.finish("bench_fig6_scalability")) return 1;

    // ---- 6a: sweep workers.
    std::printf("## Figure 6a: average delay vs number of workers (m=2)\n");
    support::CsvWriter csv6a(std::cout);
    if (!csv_prefix.empty()) csv6a.tee_to_file(csv_prefix + "_fig6a.csv");
    csv6a.header({"workers", "FAIR", "Blockchain", "FedAvg"});

    std::vector<double> blockchain_by_n;
    std::vector<double> fair_by_n;
    for (const std::size_t n : {20UL, 40UL, 60UL, 80UL, 100UL, 120UL}) {
        auto local = setting;
        local.clients = n;
        // Per-client data is a property of the device, so the global pool
        // scales with n (shard size constant), and the trainer count per
        // round stays ~10 (ratio adapts): the only thing that changes with
        // n is the transaction load -- the queuing story of Figure 6a.
        local.samples = setting.samples * n / 100;
        local.client_ratio =
            std::min(1.0, 10.0 / static_cast<double>(n));
        const core::Environment env =
            core::build_environment(local.environment());

        const std::array specs{local.fair_spec("FAIR"), local.fedavg_spec(),
                               local.blockchain_spec()};
        const auto runs = core::run_suite(env, specs);
        const auto& fair = runs[0];
        const auto& fedavg = runs[1];
        const auto& blockchain = runs[2];

        csv6a.row()
            .col(n)
            .col(fair.average_delay)
            .col(blockchain.average_delay)
            .col(fedavg.average_delay)
            .end();
        blockchain_by_n.push_back(blockchain.average_delay);
        fair_by_n.push_back(fair.average_delay);
    }
    std::printf("# shape-check 6a: Blockchain grows with n: %s; "
                "FAIR flat (max/min < 1.5): %s\n",
                blockchain_by_n.back() > blockchain_by_n.front() * 1.5
                    ? "PASS"
                    : "FAIL",
                *std::max_element(fair_by_n.begin(), fair_by_n.end()) /
                            *std::min_element(fair_by_n.begin(),
                                              fair_by_n.end()) <
                        1.5
                    ? "PASS"
                    : "FAIL");

    // ---- 6b: sweep miners at n=100.
    std::printf("\n## Figure 6b: average delay vs number of miners (n=100)\n");
    support::CsvWriter csv6b(std::cout);
    if (!csv_prefix.empty()) csv6b.tee_to_file(csv_prefix + "_fig6b.csv");
    csv6b.header({"miners", "FAIR", "Blockchain"});

    std::vector<double> blockchain_by_m;
    std::vector<double> fair_by_m;
    auto local = setting;
    local.clients = 100;
    local.client_ratio = 0.1;
    const core::Environment env =
        core::build_environment(local.environment());
    for (const std::size_t m : {2UL, 4UL, 6UL, 8UL, 10UL}) {
        local.miners = m;
        const std::array specs{local.fair_spec("FAIR"),
                               local.blockchain_spec()};
        const auto runs = core::run_suite(env, specs);
        const auto& fair = runs[0];
        const auto& blockchain = runs[1];
        csv6b.row()
            .col(m)
            .col(fair.average_delay)
            .col(blockchain.average_delay)
            .end();
        blockchain_by_m.push_back(blockchain.average_delay);
        fair_by_m.push_back(fair.average_delay);
    }
    std::printf("# shape-check 6b: Blockchain grows with m: %s; "
                "FAIR flat-or-decreasing: %s\n",
                blockchain_by_m.back() > blockchain_by_m.front() * 1.5
                    ? "PASS"
                    : "FAIL",
                fair_by_m.back() < fair_by_m.front() * 1.3 ? "PASS" : "FAIL");
    return 0;
}
