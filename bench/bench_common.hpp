#pragma once
// Shared setup for the figure benches: the paper's default experimental
// setting (§5.1) scaled to run in seconds on a laptop core.
//
// Paper defaults: MNIST, non-IID, n=100 clients, m=2 miners, eta=0.01,
// E=5, B=10, 100 communication rounds.  Bench defaults: the synthetic
// MNIST substitute (64-dim), the same n/m/E/B, eta raised to 0.05 (the
// smaller problem needs fewer effective steps), 30 rounds.  Pass --paper
// for the full 100-round, 784-dim setting.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"

namespace fairbfl::benchx {

struct BenchSetting {
    std::size_t clients = 100;
    std::size_t miners = 2;
    std::size_t rounds = 30;
    double learning_rate = 0.05;
    double client_ratio = 0.1;   ///< lambda: 10 of 100 clients per round
    std::size_t epochs = 5;      ///< E
    std::size_t batch = 10;      ///< B
    std::size_t samples = 3000;
    std::size_t feature_dim = 64;
    double noise_sigma = 0.35;   ///< synthetic pixel noise
    bool iid = false;
    std::uint64_t seed = 42;

    static BenchSetting from_args(support::CliArgs& args) {
        BenchSetting s;
        if (args.get_flag("paper")) {
            s.rounds = 100;
            s.samples = 12000;
            s.feature_dim = 784;
        }
        s.clients = static_cast<std::size_t>(
            args.get_int("clients", static_cast<std::int64_t>(s.clients)));
        s.miners = static_cast<std::size_t>(
            args.get_int("miners", static_cast<std::int64_t>(s.miners)));
        s.rounds = static_cast<std::size_t>(
            args.get_int("rounds", static_cast<std::int64_t>(s.rounds)));
        s.learning_rate = args.get_double("eta", s.learning_rate);
        s.client_ratio = args.get_double("ratio", s.client_ratio);
        s.samples = static_cast<std::size_t>(
            args.get_int("samples", static_cast<std::int64_t>(s.samples)));
        s.noise_sigma = args.get_double("noise", s.noise_sigma);
        s.iid = args.get_flag("iid", s.iid);
        s.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
        return s;
    }

    /// Delay parameters with the per-batch compute cost normalized so the
    /// expected T_local stays on the paper's ~6 s FedAvg axis regardless of
    /// the shard size this setting produces (the paper's testbed trains
    /// 600-sample MNIST shards in the same wall-clock budget).
    [[nodiscard]] core::DelayParams delay_params() const {
        core::DelayParams params;
        const double per_client =
            static_cast<double>(samples) * 0.85 /
            static_cast<double>(clients);
        const double steps =
            static_cast<double>(epochs) *
            std::max(1.0, std::ceil(per_client / static_cast<double>(batch)));
        // Default calibration point: 25-sample shards -> 15 steps at 0.25 s.
        params.seconds_per_batch = 0.25 * 15.0 / std::max(steps, 1.0);
        return params;
    }

    [[nodiscard]] core::EnvironmentConfig environment() const {
        core::EnvironmentConfig config;
        config.data.samples = samples;
        config.data.feature_dim = feature_dim;
        config.data.noise_sigma = noise_sigma;
        config.data.seed = seed;
        config.partition.scheme = iid ? ml::PartitionScheme::kIid
                                      : ml::PartitionScheme::kLabelShards;
        config.partition.num_clients = clients;
        config.partition.seed = seed;
        return config;
    }

    [[nodiscard]] fl::FlConfig fl_config() const {
        fl::FlConfig config;
        config.client_ratio = client_ratio;
        config.rounds = rounds;
        config.sgd.learning_rate = learning_rate;
        config.sgd.epochs = epochs;
        config.sgd.batch_size = batch;
        config.seed = seed;
        return config;
    }

    [[nodiscard]] core::FairBflConfig fair_config() const {
        core::FairBflConfig config;
        config.fl = fl_config();
        config.miners = miners;
        config.delay = delay_params();
        return config;
    }

    [[nodiscard]] core::BlockchainBaselineConfig blockchain_config() const {
        core::BlockchainBaselineConfig config;
        config.workers = clients;
        config.miners = miners;
        config.rounds = rounds;
        config.seed = seed;
        config.delay = delay_params();
        return config;
    }

    /// FedProx with the paper's comparison knobs.  The default (Figure 4b)
    /// keeps stragglers' partial work with a strong proximal pull -- the
    /// "inexact solution" the paper credits for FedProx's lower, fluctuating
    /// accuracy.  Figure 7b passes drop_percent=0.02 and discards.
    [[nodiscard]] fl::FedProxConfig fedprox_config(
        double drop_percent = 0.3) const {
        fl::FedProxConfig config;
        config.base = fl_config();
        config.prox_mu = 0.5;
        config.drop_percent = drop_percent;
        config.keep_partial_work = drop_percent >= 0.1;
        config.straggler_epoch_fraction = 0.2;
        return config;
    }

    // --- SystemSpec builders: the figure benches are run_suite sweeps over
    // these (core/system.hpp).
    [[nodiscard]] core::SystemSpec fair_spec(std::string label = "FAIR") const {
        return core::fairbfl_spec(fair_config(), std::move(label));
    }
    [[nodiscard]] core::SystemSpec fedavg_spec() const {
        return core::fedavg_spec(fl_config(), delay_params());
    }
    [[nodiscard]] core::SystemSpec fedprox_spec(
        double drop_percent = 0.3) const {
        return core::fedprox_spec(fedprox_config(drop_percent),
                                  delay_params());
    }
    [[nodiscard]] core::SystemSpec blockchain_spec() const {
        return core::blockchain_spec(blockchain_config());
    }
};

inline void print_run_summary(const core::SystemRun& run) {
    std::printf("# %-14s avg_delay=%.3fs", run.name.c_str(),
                run.average_delay);
    if (run.final_accuracy > 0.0) {  // pure blockchain has no accuracy
        std::printf(" avg_acc=%.4f final_acc=%.4f", run.average_accuracy,
                    run.final_accuracy);
        if (run.converged_round != support::ConvergenceDetector::npos) {
            std::printf(" converged@round=%zu (t=%.1fs)", run.converged_round,
                        run.converged_elapsed_seconds);
        }
    }
    std::printf("\n");
}

}  // namespace fairbfl::benchx
