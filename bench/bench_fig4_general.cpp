// Figure 4 -- "General comparison of FAIR-BFL and baselines".
//   4a: average delay per communication round: FAIR sits between
//       Blockchain (above) and FedAvg (below).
//   4b: average accuracy vs wall-clock time: FAIR ~= FedAvg, FedProx lower
//       and fluctuating after convergence.
//
//   ./bench/bench_fig4_general [--rounds=30] [--clients=100] [--miners=2]
//                              [--paper] [--csv=prefix]

#include <array>

#include "bench_common.hpp"

using namespace fairbfl;

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_fig4_general: reproduces Figure 4a (delay) and 4b "
                  "(accuracy vs time)\n"
                  "flags: --rounds --clients --miners --eta --ratio --samples "
                  "--iid --seed --paper --csv=prefix");
        return 0;
    }
    auto setting = benchx::BenchSetting::from_args(args);
    setting.miners = static_cast<std::size_t>(
        args.get_int("miners", static_cast<std::int64_t>(setting.miners)));
    const std::string csv_prefix = args.get_string("csv", "");
    if (!args.finish("bench_fig4_general")) return 1;

    const core::Environment env =
        core::build_environment(setting.environment());

    // One concurrent data-driven sweep over the four registered systems.
    const std::array specs{setting.fair_spec("FAIR"), setting.fedavg_spec(),
                           setting.fedprox_spec(), setting.blockchain_spec()};
    const auto runs = core::run_suite(env, specs);
    const auto& fair = runs[0];
    const auto& fedavg = runs[1];
    const auto& fedprox = runs[2];
    const auto& blockchain = runs[3];

    // ---- Figure 4a: delay per round.
    std::printf("## Figure 4a: average delay per communication round\n");
    support::CsvWriter csv4a(std::cout);
    if (!csv_prefix.empty()) csv4a.tee_to_file(csv_prefix + "_fig4a.csv");
    csv4a.header({"round", "FAIR", "Blockchain", "FedAvg"});
    for (std::size_t r = 0; r < setting.rounds; ++r) {
        csv4a.row()
            .col(static_cast<std::size_t>(r))
            .col(fair.series[r].delay_seconds)
            .col(blockchain.series[r].delay_seconds)
            .col(fedavg.series[r].delay_seconds)
            .end();
    }

    // ---- Figure 4b: accuracy vs elapsed simulated seconds.
    std::printf("\n## Figure 4b: average accuracy vs time in seconds\n");
    support::CsvWriter csv4b(std::cout);
    if (!csv_prefix.empty()) csv4b.tee_to_file(csv_prefix + "_fig4b.csv");
    csv4b.header({"system", "time_s", "accuracy"});
    for (const auto* run : {&fair, &fedavg, &fedprox}) {
        for (const auto& point : run->series) {
            csv4b.row()
                .col(run->name)
                .col(point.elapsed_seconds)
                .col(point.accuracy)
                .end();
        }
    }

    std::printf("\n## Summary (paper: FedAvg < FAIR < Blockchain on delay; "
                "FAIR ~= FedAvg > FedProx on accuracy)\n");
    benchx::print_run_summary(fedavg);
    benchx::print_run_summary(fair);
    benchx::print_run_summary(blockchain);
    benchx::print_run_summary(fedprox);

    const bool delay_order_holds =
        fedavg.average_delay < fair.average_delay &&
        fair.average_delay < blockchain.average_delay;
    std::printf("# shape-check delay ordering FedAvg<FAIR<Blockchain: %s\n",
                delay_order_holds ? "PASS" : "FAIL");
    const bool accuracy_shape_holds =
        fair.final_accuracy > fedprox.final_accuracy - 0.02 &&
        std::abs(fair.final_accuracy - fedavg.final_accuracy) < 0.05;
    std::printf("# shape-check accuracy FAIR~=FedAvg & >=FedProx: %s\n",
                accuracy_shape_holds ? "PASS" : "FAIL");
    return 0;
}
