// Engineering micro-benchmarks: DBSCAN / k-means over gradient-like point
// sets (this is the T_gl cost of Procedure IV).

#include <benchmark/benchmark.h>

#include "cluster/dbscan.hpp"
#include "cluster/kmeans.hpp"
#include "core/strategies.hpp"
#include "incentive/contribution.hpp"
#include "support/rng.hpp"

namespace {

using namespace fairbfl;

std::vector<std::vector<float>> gradient_like_points(std::size_t n,
                                                     std::size_t dim) {
    support::Rng rng(7);
    std::vector<float> base(dim);
    for (auto& v : base) v = static_cast<float>(rng.normal());
    std::vector<std::vector<float>> points(n);
    for (auto& p : points) {
        p = base;
        for (auto& v : p) v += static_cast<float>(0.05 * rng.normal());
    }
    // 10% outliers.
    for (std::size_t i = 0; i < n / 10; ++i) {
        for (auto& v : points[i]) v = -v * 3.0F;
    }
    return points;
}

void BM_Dbscan(benchmark::State& state) {
    const auto points =
        gradient_like_points(static_cast<std::size_t>(state.range(0)), 650);
    const cluster::Dbscan dbscan({.eps = 0.05, .min_pts = 3});
    for (auto _ : state) benchmark::DoNotOptimize(dbscan.cluster(points));
}
BENCHMARK(BM_Dbscan)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
    const auto points =
        gradient_like_points(static_cast<std::size_t>(state.range(0)), 650);
    const cluster::KMeans kmeans({.k = 2});
    for (auto _ : state) benchmark::DoNotOptimize(kmeans.cluster(points));
}
BENCHMARK(BM_KMeans)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SuggestEps(benchmark::State& state) {
    const auto points =
        gradient_like_points(static_cast<std::size_t>(state.range(0)), 650);
    for (auto _ : state)
        benchmark::DoNotOptimize(cluster::suggest_eps(points, 3));
}
BENCHMARK(BM_SuggestEps)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

/// GradientIndex build cost per backend (the dominant term of the round's
/// cluster stage).  Arg is the point count; dim matches the logistic
/// model on 64 features.
template <typename Backend>
void BM_IndexBuild(benchmark::State& state) {
    const auto points =
        gradient_like_points(static_cast<std::size_t>(state.range(0)), 650);
    cluster::IndexParams params;
    params.metric = cluster::Metric::kEuclidean;
    for (auto _ : state)
        benchmark::DoNotOptimize(Backend(points, params));
}
template <>
void BM_IndexBuild<cluster::ExactIndex>(benchmark::State& state) {
    const auto points =
        gradient_like_points(static_cast<std::size_t>(state.range(0)), 650);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cluster::ExactIndex(cluster::Metric::kEuclidean, points));
}
BENCHMARK(BM_IndexBuild<cluster::ExactIndex>)
    ->Arg(100)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexBuild<cluster::RandomProjectionIndex>)
    ->Arg(100)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexBuild<cluster::SampledIndex>)
    ->Arg(100)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond);

void BM_Algorithm2EndToEnd(benchmark::State& state) {
    // Full contribution identification on a round's update set.
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto points = gradient_like_points(n, 650);
    std::vector<fl::GradientUpdate> updates(n);
    for (std::size_t i = 0; i < n; ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights = points[i];
    }
    const auto provisional = fl::simple_average(updates);
    const incentive::ContributionConfig config;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            incentive::identify_contributions(updates, provisional, config));
    }
}
BENCHMARK(BM_Algorithm2EndToEnd)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Same workload through the ContributionPolicy strategy interface; the
/// delta vs BM_Algorithm2EndToEnd is the cost of the virtual dispatch the
/// pluggable API adds (it should be noise).
void BM_ContributionPolicy(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto points = gradient_like_points(n, 650);
    std::vector<fl::GradientUpdate> updates(n);
    for (std::size_t i = 0; i < n; ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights = points[i];
    }
    const auto provisional = fl::simple_average(updates);
    const auto policy =
        core::make_contribution_policy(incentive::ContributionConfig{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy->identify(updates, provisional, {}));
    }
}
BENCHMARK(BM_ContributionPolicy)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
