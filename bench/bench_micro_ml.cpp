// Engineering micro-benchmarks: model gradients, SGD epochs, accuracy
// evaluation, aggregation, and the kernel-table A/B rows (scalar vs the
// runtime-dispatched AVX2+FMA table behind support/simd.hpp).

#include <benchmark/benchmark.h>

#include "core/strategies.hpp"
#include "fl/aggregation.hpp"
#include "ml/optimizer.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/projection.hpp"
#include "support/simd.hpp"
#include "support/vecmath.hpp"

namespace {

using namespace fairbfl;

/// CPU-feature report in the JSON header, so an A/B artifact records
/// whether the simd rows could run on the producing host at all.
const bool kContextRegistered = [] {
    namespace simd = support::simd;
    benchmark::AddCustomContext(
        "cpu_avx2_fma", simd::cpu_supports_avx2_fma() ? "true" : "false");
    benchmark::AddCustomContext(
        "simd_table_built",
        simd::detail::avx2_table() != nullptr ? "true" : "false");
    return true;
}();

/// Selects the kernel table for one A/B row (range(1): 0 = scalar,
/// 1 = simd) and restores the pinned scalar default on destruction.
/// Returns false -- after flagging the row skipped -- when the simd leg
/// cannot run on this host.
struct KernelModeRow {
    explicit KernelModeRow(benchmark::State& state)
        : simd_row(state.range(1) != 0) {
        namespace simd = support::simd;
        if (simd_row && (!simd::cpu_supports_avx2_fma() ||
                         simd::detail::avx2_table() == nullptr)) {
            state.SkipWithError("avx2+fma unavailable");
            ok = false;
            return;
        }
        simd::set_mode(simd_row ? simd::Mode::kSimd : simd::Mode::kScalar);
        state.SetLabel(simd_row ? "simd" : "scalar");
    }
    ~KernelModeRow() { support::simd::set_mode(support::simd::Mode::kScalar); }

    bool simd_row;
    bool ok = true;
};

std::vector<float> kernel_operand(std::size_t n, std::uint64_t seed) {
    support::Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    return v;
}

void BM_KernelDot(benchmark::State& state) {
    const KernelModeRow row(state);
    if (!row.ok) return;
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = kernel_operand(n, 7);
    const auto y = kernel_operand(n, 8);
    for (auto _ : state) benchmark::DoNotOptimize(support::dot(x, y));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_KernelDot)
    ->Args({784, 0})->Args({784, 1})->Args({7850, 0})->Args({7850, 1});

void BM_KernelAxpy(benchmark::State& state) {
    const KernelModeRow row(state);
    if (!row.ok) return;
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto x = kernel_operand(n, 9);
    auto y = kernel_operand(n, 10);
    for (auto _ : state) {
        support::axpy(0.01F, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_KernelAxpy)
    ->Args({784, 0})->Args({784, 1})->Args({7850, 0})->Args({7850, 1});

void BM_KernelGemv(benchmark::State& state) {
    // The logistic forward shape: 10 classes x `dim` features.
    const KernelModeRow row(state);
    if (!row.ok) return;
    const auto dim = static_cast<std::size_t>(state.range(0));
    const std::size_t classes = 10;
    const auto a = kernel_operand(classes * dim, 11);
    const auto x = kernel_operand(dim, 12);
    const auto bias = kernel_operand(classes, 13);
    std::vector<float> out(classes);
    for (auto _ : state) {
        support::gemv(a, classes, dim, x, bias, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(classes) *
                            state.range(0));
}
BENCHMARK(BM_KernelGemv)
    ->Args({784, 0})->Args({784, 1})->Args({7850, 0})->Args({7850, 1});

void BM_KernelSketch(benchmark::State& state) {
    // The GradientIndex build step: project 64 gradient rows of `dim`
    // dims down to k = 48 through the seeded Gaussian matrix.
    const KernelModeRow row(state);
    if (!row.ok) return;
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto projection = support::gaussian_projection(dim, 48, 42);
    std::vector<std::vector<float>> points(64);
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i] = kernel_operand(dim, 100 + i);
    for (auto _ : state)
        benchmark::DoNotOptimize(support::project_rows(projection, points));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(points.size()) *
                            state.range(0));
}
BENCHMARK(BM_KernelSketch)->Args({784, 0})->Args({784, 1});

const ml::Dataset& dataset() {
    static const ml::Dataset data = ml::make_synthetic_mnist(
        {.samples = 2000, .feature_dim = 64, .num_classes = 10, .seed = 1});
    return data;
}

void BM_LogisticGradient(benchmark::State& state) {
    const auto model = ml::make_logistic_regression(64, 10);
    const auto batch = ml::DatasetView::all(dataset())
                           .take(static_cast<std::size_t>(state.range(0)));
    std::vector<float> params(model->param_count(), 0.01F);
    std::vector<float> grad(params.size());
    for (auto _ : state) {
        support::fill(grad, 0.0F);
        benchmark::DoNotOptimize(
            model->loss_and_gradient(params, batch, grad));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_LogisticGradient)->Arg(10)->Arg(100)->Arg(1000);

void BM_MlpGradient(benchmark::State& state) {
    const auto model = ml::make_mlp(64, 32, 10);
    const auto batch = ml::DatasetView::all(dataset())
                           .take(static_cast<std::size_t>(state.range(0)));
    std::vector<float> params(model->param_count());
    support::Rng rng(2);
    model->init_params(params, rng);
    std::vector<float> grad(params.size());
    for (auto _ : state) {
        support::fill(grad, 0.0F);
        benchmark::DoNotOptimize(
            model->loss_and_gradient(params, batch, grad));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_MlpGradient)->Arg(10)->Arg(100);

void BM_SgdLocalEpochs(benchmark::State& state) {
    // One client's Procedure I at the paper's E=5, B=10 on a 60-sample
    // shard (n=100 over 6000 samples).
    const auto model = ml::make_logistic_regression(64, 10);
    const auto shard = ml::DatasetView::all(dataset()).take(60);
    ml::SgdParams sgd;
    sgd.epochs = 5;
    sgd.batch_size = 10;
    std::vector<float> init(model->param_count(), 0.01F);
    for (auto _ : state) {
        auto params = init;
        support::Rng rng(3);
        benchmark::DoNotOptimize(sgd_train(*model, params, shard, sgd, rng));
    }
}
BENCHMARK(BM_SgdLocalEpochs)->Unit(benchmark::kMillisecond);

void BM_AccuracyEval(benchmark::State& state) {
    const auto model = ml::make_logistic_regression(64, 10);
    const auto view = ml::DatasetView::all(dataset())
                          .take(static_cast<std::size_t>(state.range(0)));
    std::vector<float> params(model->param_count(), 0.01F);
    for (auto _ : state)
        benchmark::DoNotOptimize(model->accuracy(params, view));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AccuracyEval)->Arg(100)->Arg(1000);

void BM_Aggregation(benchmark::State& state) {
    std::vector<fl::GradientUpdate> updates(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < updates.size(); ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights.assign(650, static_cast<float>(i));
        updates[i].num_samples = 60;
    }
    std::vector<double> theta(updates.size(), 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fl::simple_average(updates));
        benchmark::DoNotOptimize(fl::fair_aggregate(updates, theta));
    }
}
BENCHMARK(BM_Aggregation)->Arg(10)->Arg(100);

/// The robust rules of the Aggregator strategy API: per-coordinate sorting
/// (trimmed mean) vs selection (median) over a round's update set -- the
/// T_gl cost of swapping line 24 for a Byzantine-robust combine.
void BM_RobustAggregators(benchmark::State& state) {
    std::vector<fl::GradientUpdate> updates(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < updates.size(); ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights.assign(650, static_cast<float>(i));
        updates[i].num_samples = 60;
    }
    const auto trimmed = core::make_aggregator("trimmed_mean", 0.1);
    const auto median = core::make_aggregator("median");
    for (auto _ : state) {
        benchmark::DoNotOptimize(trimmed->aggregate(updates));
        benchmark::DoNotOptimize(median->aggregate(updates));
    }
}
BENCHMARK(BM_RobustAggregators)->Arg(10)->Arg(100);

}  // namespace
