// Engineering micro-benchmarks: model gradients, SGD epochs, accuracy
// evaluation, aggregation.

#include <benchmark/benchmark.h>

#include "core/strategies.hpp"
#include "fl/aggregation.hpp"
#include "ml/optimizer.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/vecmath.hpp"

namespace {

using namespace fairbfl;

const ml::Dataset& dataset() {
    static const ml::Dataset data = ml::make_synthetic_mnist(
        {.samples = 2000, .feature_dim = 64, .num_classes = 10, .seed = 1});
    return data;
}

void BM_LogisticGradient(benchmark::State& state) {
    const auto model = ml::make_logistic_regression(64, 10);
    const auto batch = ml::DatasetView::all(dataset())
                           .take(static_cast<std::size_t>(state.range(0)));
    std::vector<float> params(model->param_count(), 0.01F);
    std::vector<float> grad(params.size());
    for (auto _ : state) {
        support::fill(grad, 0.0F);
        benchmark::DoNotOptimize(
            model->loss_and_gradient(params, batch, grad));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_LogisticGradient)->Arg(10)->Arg(100)->Arg(1000);

void BM_MlpGradient(benchmark::State& state) {
    const auto model = ml::make_mlp(64, 32, 10);
    const auto batch = ml::DatasetView::all(dataset())
                           .take(static_cast<std::size_t>(state.range(0)));
    std::vector<float> params(model->param_count());
    support::Rng rng(2);
    model->init_params(params, rng);
    std::vector<float> grad(params.size());
    for (auto _ : state) {
        support::fill(grad, 0.0F);
        benchmark::DoNotOptimize(
            model->loss_and_gradient(params, batch, grad));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_MlpGradient)->Arg(10)->Arg(100);

void BM_SgdLocalEpochs(benchmark::State& state) {
    // One client's Procedure I at the paper's E=5, B=10 on a 60-sample
    // shard (n=100 over 6000 samples).
    const auto model = ml::make_logistic_regression(64, 10);
    const auto shard = ml::DatasetView::all(dataset()).take(60);
    ml::SgdParams sgd;
    sgd.epochs = 5;
    sgd.batch_size = 10;
    std::vector<float> init(model->param_count(), 0.01F);
    for (auto _ : state) {
        auto params = init;
        support::Rng rng(3);
        benchmark::DoNotOptimize(sgd_train(*model, params, shard, sgd, rng));
    }
}
BENCHMARK(BM_SgdLocalEpochs)->Unit(benchmark::kMillisecond);

void BM_AccuracyEval(benchmark::State& state) {
    const auto model = ml::make_logistic_regression(64, 10);
    const auto view = ml::DatasetView::all(dataset())
                          .take(static_cast<std::size_t>(state.range(0)));
    std::vector<float> params(model->param_count(), 0.01F);
    for (auto _ : state)
        benchmark::DoNotOptimize(model->accuracy(params, view));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AccuracyEval)->Arg(100)->Arg(1000);

void BM_Aggregation(benchmark::State& state) {
    std::vector<fl::GradientUpdate> updates(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < updates.size(); ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights.assign(650, static_cast<float>(i));
        updates[i].num_samples = 60;
    }
    std::vector<double> theta(updates.size(), 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fl::simple_average(updates));
        benchmark::DoNotOptimize(fl::fair_aggregate(updates, theta));
    }
}
BENCHMARK(BM_Aggregation)->Arg(10)->Arg(100);

/// The robust rules of the Aggregator strategy API: per-coordinate sorting
/// (trimmed mean) vs selection (median) over a round's update set -- the
/// T_gl cost of swapping line 24 for a Byzantine-robust combine.
void BM_RobustAggregators(benchmark::State& state) {
    std::vector<fl::GradientUpdate> updates(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < updates.size(); ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights.assign(650, static_cast<float>(i));
        updates[i].num_samples = 60;
    }
    const auto trimmed = core::make_aggregator("trimmed_mean", 0.1);
    const auto median = core::make_aggregator("median");
    for (auto _ : state) {
        benchmark::DoNotOptimize(trimmed->aggregate(updates));
        benchmark::DoNotOptimize(median->aggregate(updates));
    }
}
BENCHMARK(BM_RobustAggregators)->Arg(10)->Arg(100);

}  // namespace
