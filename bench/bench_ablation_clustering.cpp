// Ablation (extension): Algorithm 2 with "various clustering algorithms".
//
// The paper parameterizes contribution identification on the clustering
// algorithm and uses DBSCAN "by default because it is efficient and
// straightforward".  This bench quantifies the choice: detection rate of
// sign-flip attackers for {DBSCAN, k-means} x {Euclidean, cosine} under
// non-IID and IID data, in the Table 2 setting.
//
//   ./bench/bench_ablation_clustering [--rounds=10] [--seed=42]

#include <string>

#include "bench_common.hpp"

using namespace fairbfl;

namespace {

// Each case is one ContributionPolicy configuration (clustering registry
// key x metric); detection rates come from per-round BflRoundRecords, so
// the FairBfl class is driven directly.
double run_case(bool iid, const std::string& algo, cluster::Metric metric,
                std::size_t rounds, std::uint64_t seed) {
    core::EnvironmentConfig env_config;
    env_config.data.samples = 1500;
    env_config.data.seed = seed;
    env_config.partition.scheme = iid ? ml::PartitionScheme::kIid
                                      : ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 10;
    env_config.partition.seed = seed;
    const core::Environment env = core::build_environment(env_config);

    core::FairBflConfig config;
    config.fl.client_ratio = 1.0;
    config.fl.rounds = rounds;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.sgd.epochs = 5;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = seed;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.magnitude = 3.0;
    config.attack.min_attackers = 1;
    config.attack.max_attackers = 3;
    config.incentive.clustering = algo;
    config.incentive.dbscan.metric = metric;
    config.incentive.kmeans.metric = metric;
    config.incentive.kmeans.k = 2;

    core::FairBfl system(*env.model, env.make_clients(), env.test, config);
    double mean_rate = 0.0;
    for (std::size_t r = 0; r < rounds; ++r)
        mean_rate += system.run_round().detection_rate;
    return mean_rate / static_cast<double>(rounds);
}

}  // namespace

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_ablation_clustering: detection rate across "
                  "clustering algorithm x metric\nflags: --rounds --seed");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    if (!args.finish("bench_ablation_clustering")) return 1;

    std::printf("## Algorithm 2 clustering ablation (Table 2 setting, "
                "sign-flip attackers)\n");
    std::printf("algorithm,metric,noniid_detection,iid_detection\n");

    struct Case {
        const char* algo_name;  ///< cluster::ClusteringRegistry key
        const char* metric_name;
        cluster::Metric metric;
    };
    const Case cases[] = {
        {"dbscan", "euclidean", cluster::Metric::kEuclidean},
        {"dbscan", "cosine", cluster::Metric::kCosine},
        {"kmeans", "euclidean", cluster::Metric::kEuclidean},
        {"kmeans", "cosine", cluster::Metric::kCosine},
    };

    double best_noniid = 0.0;
    const char* best_name = "";
    for (const auto& c : cases) {
        const double noniid =
            run_case(false, c.algo_name, c.metric, rounds, seed);
        const double iid = run_case(true, c.algo_name, c.metric, rounds, seed);
        std::printf("%s,%s,%.3f,%.3f\n", c.algo_name, c.metric_name, noniid,
                    iid);
        if (noniid > best_noniid) {
            best_noniid = noniid;
            best_name = c.algo_name;
        }
    }
    std::printf("\n# best non-IID detector: %s (%.1f%%) -- the paper's "
                "DBSCAN default is justified when paired with the Euclidean "
                "metric\n",
                best_name, 100.0 * best_noniid);
    return 0;
}
