// Figure 7 -- "FAIR-BFL is faster without reducing accuracy"
// (cost-effectiveness of the discarding strategy, §5.3).
//   7a: FAIR-Discard's average delay drops below even FedAvg (benched
//       low-contribution clients skip the next round: fewer workers,
//       fewer gradients).
//   7b: accuracy vs time: FAIR-Discard converges fastest and highest;
//       FedProx-Drop(0.02) plateaus lower.
//
//   ./bench/bench_fig7_discard [--rounds=30] [--paper] [--csv=prefix]

#include <array>

#include "bench_common.hpp"

using namespace fairbfl;

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_fig7_discard: discard-strategy cost-effectiveness "
                  "(Figure 7a/7b)\nflags: --rounds --clients --samples --iid "
                  "--seed --paper --csv=prefix");
        return 0;
    }
    auto setting = benchx::BenchSetting::from_args(args);
    const double noisy_fraction = args.get_double("noisy-fraction", 0.2);
    const double eps_scale_discard = args.get_double("eps-scale", 1.0);
    const std::string csv_prefix = args.get_string("csv", "");
    if (!args.finish("bench_fig7_discard")) return 1;

    // §5.3's setting only makes sense with genuinely low-quality clients:
    // a fifth of the fleet is systematically mislabeled.  The discarding
    // strategy should bench them (cutting delay) and keep their noise out
    // of the global model (raising accuracy).  The partition is
    // Dirichlet(1.0) non-IID: label-shard non-IID makes honest gradients
    // mutually near-orthogonal, which no clustering can tell apart from
    // low-quality ones (see EXPERIMENTS.md).
    auto env_config = setting.environment();
    env_config.partition.scheme = ml::PartitionScheme::kDirichlet;
    env_config.partition.dirichlet_alpha = 1.0;
    env_config.noisy_client_fraction = noisy_fraction;
    env_config.label_noise_prob = 1.0;
    const core::Environment env = core::build_environment(env_config);

    auto discard_config = setting.fair_config();
    discard_config.incentive.strategy =
        incentive::LowContributionStrategy::kDiscard;
    // Quality filtering works on gradient *direction*: mislabeled clients
    // descend toward wrong classes at full magnitude, so cosine DBSCAN with
    // a tight eps isolates them, where the attack-detection default
    // (Euclidean, loose) keys on forged magnitudes instead.
    discard_config.incentive.dbscan.metric = cluster::Metric::kCosine;
    discard_config.incentive.dbscan.adaptive_eps_scale =
        eps_scale_discard;

    const std::array specs{
        core::fairbfl_spec(discard_config, "FAIR-Discard"),
        setting.fair_spec("FAIR"), setting.fedavg_spec(),
        setting.fedprox_spec(/*drop_percent=*/0.02),
        setting.blockchain_spec()};
    const auto runs = core::run_suite(env, specs);
    const auto& fair_discard = runs[0];
    const auto& fair = runs[1];
    const auto& fedavg = runs[2];
    const auto& fedprox_drop = runs[3];
    const auto& blockchain = runs[4];

    // ---- 7a: delay per round.
    std::printf("## Figure 7a: average delay per round\n");
    support::CsvWriter csv7a(std::cout);
    if (!csv_prefix.empty()) csv7a.tee_to_file(csv_prefix + "_fig7a.csv");
    csv7a.header({"round", "FAIR-Discard", "FAIR", "Blockchain", "FedAvg"});
    for (std::size_t r = 0; r < setting.rounds; ++r) {
        csv7a.row()
            .col(r)
            .col(fair_discard.series[r].delay_seconds)
            .col(fair.series[r].delay_seconds)
            .col(blockchain.series[r].delay_seconds)
            .col(fedavg.series[r].delay_seconds)
            .end();
    }

    // ---- 7b: accuracy vs time.
    std::printf("\n## Figure 7b: average accuracy vs time in seconds\n");
    support::CsvWriter csv7b(std::cout);
    if (!csv_prefix.empty()) csv7b.tee_to_file(csv_prefix + "_fig7b.csv");
    csv7b.header({"system", "time_s", "accuracy"});
    for (const auto* run : {&fair_discard, &fair, &fedavg, &fedprox_drop}) {
        for (const auto& point : run->series) {
            csv7b.row()
                .col(run->name)
                .col(point.elapsed_seconds)
                .col(point.accuracy)
                .end();
        }
    }

    std::printf("\n## Summary (paper: FAIR-Discard < FAIR on delay, "
                "converges faster, accuracy >= FAIR ~= FedAvg > FedProx)\n");
    benchx::print_run_summary(fair_discard);
    benchx::print_run_summary(fair);
    benchx::print_run_summary(fedavg);
    benchx::print_run_summary(fedprox_drop);
    benchx::print_run_summary(blockchain);

    std::printf("# shape-check 7a FAIR-Discard < FAIR: %s\n",
                fair_discard.average_delay < fair.average_delay ? "PASS"
                                                                : "FAIL");
    std::printf("# shape-check 7b FAIR-Discard accuracy >= FAIR - 0.03: %s\n",
                fair_discard.final_accuracy >= fair.final_accuracy - 0.03
                    ? "PASS"
                    : "FAIL");
    std::printf("# shape-check 7b FedProx-Drop below FAIR-Discard: %s\n",
                fedprox_drop.final_accuracy <
                        fair_discard.final_accuracy + 0.02
                    ? "PASS"
                    : "FAIL");
    return 0;
}
