// Engineering micro-benchmarks: SHA-256 throughput, BigUint modexp, RSA
// keygen/sign/verify across key sizes.

#include <benchmark/benchmark.h>

#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace fairbfl;

void BM_Sha256Throughput(benchmark::State& state) {
    const std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(1024)->Arg(65536);

void BM_BigUintMul(benchmark::State& state) {
    support::Rng rng(1);
    const auto a = crypto::BigUint::random_bits(
        static_cast<std::size_t>(state.range(0)), rng);
    const auto b = crypto::BigUint::random_bits(
        static_cast<std::size_t>(state.range(0)), rng);
    for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_BigUintMul)->Arg(256)->Arg(512)->Arg(1024);

void BM_BigUintModPow(benchmark::State& state) {
    support::Rng rng(2);
    const auto bits = static_cast<std::size_t>(state.range(0));
    auto modulus = crypto::BigUint::random_bits(bits, rng);
    if (!modulus.is_odd()) modulus = modulus + crypto::BigUint(1);
    const auto base = crypto::BigUint::random_bits(bits - 1, rng);
    const auto exponent = crypto::BigUint::random_bits(bits - 1, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crypto::BigUint::mod_pow(base, exponent, modulus));
}
BENCHMARK(BM_BigUintModPow)->Arg(256)->Arg(512);

void BM_RsaKeygen(benchmark::State& state) {
    std::uint64_t seed = 0;
    for (auto _ : state) {
        support::Rng rng(seed++);
        benchmark::DoNotOptimize(crypto::generate_keypair(
            static_cast<std::size_t>(state.range(0)), rng));
    }
}
BENCHMARK(BM_RsaKeygen)->Arg(384)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RsaSign(benchmark::State& state) {
    support::Rng rng(3);
    const auto keys = crypto::generate_keypair(
        static_cast<std::size_t>(state.range(0)), rng);
    const std::vector<std::uint8_t> payload(2600, 0x42);  // ~a gradient tx
    for (auto _ : state)
        benchmark::DoNotOptimize(crypto::sign_payload(keys.priv, payload));
}
BENCHMARK(BM_RsaSign)->Arg(384)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
    support::Rng rng(4);
    const auto keys = crypto::generate_keypair(
        static_cast<std::size_t>(state.range(0)), rng);
    const std::vector<std::uint8_t> payload(2600, 0x42);
    const auto signature = crypto::sign_payload(keys.priv, payload);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            crypto::verify_payload(keys.pub, payload, signature));
}
BENCHMARK(BM_RsaVerify)->Arg(384)->Arg(512)->Arg(1024);

}  // namespace
