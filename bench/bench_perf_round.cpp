// bench_perf_round: the end-to-end round perf harness.
//
// Registry-driven: builds an environment per sweep point, runs the chosen
// system (default "fairbfl") through run_system, and reports the *measured
// host wall time* of each pipeline stage (local learning, the Algorithm-2
// cluster+contribution stage, aggregation combines, mining/consensus) as
// machine-readable JSON on stdout -- the perf trajectory every PR appends
// to.  Human-readable progress goes to stderr so stdout stays parseable.
//
//   ./bench_perf_round                          # sweep 16,64,128,256
//   ./bench_perf_round --sweep=16 --rounds=3    # CI smoke sweep
//   ./bench_perf_round --out=perf.json          # also write to a file
//
// Every client participates every round (ratio 1.0) so the clustering
// stage sees the full n+1 points, and the model dimension defaults to the
// paper's 784 features (7850 logistic parameters) to keep the distance
// kernels honest.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/index.hpp"
#include "core/system.hpp"
#include "fl/sharding.hpp"
#include "support/cli.hpp"
#include "support/fault_plan.hpp"
#include "support/simd.hpp"

using namespace fairbfl;

namespace {

/// Parses "16,64,128"; returns empty (a usage error) on any malformed
/// entry -- same discipline as CliArgs' numeric getters.
std::vector<std::size_t> parse_sweep(const std::string& csv) {
    std::vector<std::size_t> sweep;
    std::stringstream stream(csv);
    std::string token;
    while (std::getline(stream, token, ',')) {
        char* end = nullptr;
        const long long n = std::strtoll(token.c_str(), &end, 10);
        if (end == token.c_str() || *end != '\0' || n <= 0) {
            std::fprintf(stderr, "bench_perf_round: bad sweep entry '%s'\n",
                         token.c_str());
            return {};
        }
        sweep.push_back(static_cast<std::size_t>(n));
    }
    return sweep;
}

/// Per-stage wall-clock totals summed over a sweep point's rounds (peak
/// for the bytes).  Bench-local on purpose: the JSON schema below is
/// pinned to these fields, not to the deprecated core::StageWall shim,
/// so the bench survives the shim's removal unchanged.
struct StageTotals {
    double local = 0.0;
    double cluster = 0.0;
    double aggregate = 0.0;
    double mine = 0.0;
    double index_build = 0.0;
    double cluster_shards = 0.0;
    double cluster_root = 0.0;
    std::size_t index_peak_bytes = 0;
    /// Virtual seconds waiting for quorum (async round engine); simulated
    /// time, so never part of total().
    double wait_quorum = 0.0;
    std::size_t late_updates = 0;

    [[nodiscard]] double total() const noexcept {
        return local + cluster + aggregate + mine;
    }
};

struct SweepPoint {
    std::size_t clients = 0;
    std::size_t rounds = 0;
    /// Effective shard-tree fan-out at this point: the requested
    /// --shards after fl::ShardTree's min-shard-size clamp (small sweep
    /// points may run fewer shards than the header requests).
    std::size_t shards_effective = 1;
    StageTotals total;
    double run_seconds = 0.0;
    double final_accuracy = 0.0;
};

void append_json(std::string& out, const SweepPoint& p) {
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\"clients\": %zu, \"rounds\": %zu, "
        "\"shards_effective\": %zu,\n"
        "     \"seconds\": {\"local\": %.6f, \"cluster\": %.6f, "
        "\"index_build\": %.6f, "
        "\"shard_cluster\": %.6f, \"root_cluster\": %.6f, "
        "\"aggregate\": %.6f, \"mine\": %.6f, \"wait_quorum\": %.6f, "
        "\"total\": %.6f},\n"
        "     \"index_peak_bytes\": %zu,\n"
        "     \"late_updates\": %zu,\n"
        "     \"run_seconds\": %.6f, \"final_accuracy\": %.4f}",
        p.clients, p.rounds, p.shards_effective, p.total.local, p.total.cluster,
        p.total.index_build, p.total.cluster_shards, p.total.cluster_root,
        p.total.aggregate, p.total.mine, p.total.wait_quorum,
        p.total.total(), p.total.index_peak_bytes, p.total.late_updates,
        p.run_seconds, p.final_accuracy);
    out += buf;
}

}  // namespace

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts(
            "bench_perf_round: per-stage wall-time trajectory (JSON)\n"
            "  --sweep=16,64,128,256  client counts to sweep\n"
            "  --rounds=5             rounds per sweep point\n"
            "  --dim=784              feature dimension\n"
            "  --system=fairbfl       registry key to benchmark\n"
            "  --engine=batched       Procedure-I engine: batched|reference\n"
            "  --index=exact          Algorithm-2 neighborhood backend\n"
            "                         (auto|exact|lazy|random_projection|\n"
            "                         sampled)\n"
            "  --shards=1             hierarchical shard-tree fan-out\n"
            "                         (1 = flat single-pass Algorithm 2)\n"
            "  --kernels=scalar       vector-kernel table: scalar|simd|auto\n"
            "                         (scalar = the bit-pinned default)\n"
            "  --quorum=1.0           aggregate once this fraction arrived\n"
            "  --deadline-ms=0        virtual round deadline (0 = none)\n"
            "  --late=next_round      late-gradient policy:\n"
            "                         next_round|retroactive\n"
            "  --churn=0.0            per-round client dropout rate\n"
            "                         (fault-injection churn sweep)\n"
            "  --seed=42 --miners=2 --out=FILE");
        return 0;
    }
    const auto sweep =
        parse_sweep(args.get_string("sweep", "16,64,128,256"));
    const auto rounds =
        static_cast<std::size_t>(args.get_int("rounds", 5));
    const auto dim = static_cast<std::size_t>(args.get_int("dim", 784));
    const auto miners = static_cast<std::size_t>(args.get_int("miners", 2));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const std::string system = args.get_string("system", "fairbfl");
    const std::string engine = args.get_string("engine", "batched");
    const std::string index = args.get_string("index", "exact");
    const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));
    const std::string kernels = args.get_string("kernels", "scalar");
    const double quorum = args.get_double("quorum", 1.0);
    const double deadline_ms = args.get_double("deadline-ms", 0.0);
    const std::string late = args.get_string("late", "next_round");
    const double churn = args.get_double("churn", 0.0);
    const std::string out_path = args.get_string("out", "");
    if (!args.finish("bench_perf_round") || sweep.empty()) return 1;
    const auto late_policy = core::parse_late_policy(late);
    if (!late_policy) {
        std::fprintf(stderr, "bench_perf_round: bad --late '%s'\n",
                     late.c_str());
        return 1;
    }
    if (quorum <= 0.0 || deadline_ms < 0.0 || churn < 0.0 || churn >= 1.0) {
        std::fprintf(stderr,
                     "bench_perf_round: need --quorum > 0, "
                     "--deadline-ms >= 0, 0 <= --churn < 1\n");
        return 1;
    }
    if (!support::simd::set_mode_name(kernels.c_str())) {
        std::fprintf(stderr, "bench_perf_round: bad --kernels '%s'\n",
                     kernels.c_str());
        return 1;
    }
    if (engine != "batched" && engine != "reference") {
        std::fprintf(stderr, "bench_perf_round: bad --engine '%s'\n",
                     engine.c_str());
        return 1;
    }
    if (index != "auto" &&
        !cluster::IndexRegistry::global().contains(index)) {
        std::fprintf(stderr, "bench_perf_round: bad --index '%s'\n",
                     index.c_str());
        return 1;
    }

    std::vector<SweepPoint> points;
    for (const std::size_t clients : sweep) {
        core::EnvironmentConfig env_cfg;
        env_cfg.data.samples = 25 * clients;  // fixed per-client shard size
        env_cfg.data.feature_dim = dim;
        env_cfg.data.seed = seed;
        env_cfg.partition.num_clients = clients;
        env_cfg.partition.seed = seed;
        const core::Environment env = core::build_environment(env_cfg);

        core::SystemSpec spec;
        spec.system = system;
        spec.rounds = rounds;
        spec.fair.fl.rounds = rounds;
        spec.fair.fl.client_ratio = 1.0;  // full round: n+1 clustered points
        spec.fair.fl.seed = seed;
        spec.fair.fl.batched_training = engine == "batched";
        spec.fair.incentive.index = index;
        spec.fair.incentive.sharding.shards = shards;
        spec.fair.miners = miners;
        spec.fair.round.quorum_fraction = quorum;
        spec.fair.round.deadline_ns =
            static_cast<std::uint64_t>(deadline_ms * 1e6);
        spec.fair.round.late_policy = *late_policy;
        if (churn > 0.0) {
            // Churn sweep: dropout-only fault plan, seeded from the run
            // seed so a point is reproducible in isolation.
            support::FaultSpec fault_spec;
            fault_spec.churn_rate = churn;
            spec.fair.fault_plan = std::make_shared<support::FaultPlan>(
                support::FaultPlan::sampled(fault_spec, seed, rounds,
                                            clients));
        }
        spec.fl.batched_training = spec.fair.fl.batched_training;
        spec.fedprox.base.batched_training = spec.fair.fl.batched_training;
        spec.vanilla.fl.batched_training = spec.fair.fl.batched_training;

        const auto t0 = std::chrono::steady_clock::now();
        const core::SystemRun run = core::run_system(env, spec);
        const auto t1 = std::chrono::steady_clock::now();

        SweepPoint point;
        point.clients = clients;
        point.rounds = run.series.size();
        // Full participation (ratio 1.0): every round clusters `clients`
        // updates, so the effective fan-out is the tree's clamp at n.
        point.shards_effective =
            fl::ShardTree(spec.fair.incentive.sharding).shard_count(clients);
        point.run_seconds = std::chrono::duration<double>(t1 - t0).count();
        point.final_accuracy = run.final_accuracy;
        for (const auto& p : run.series) {
            point.total.local += p.wall.local;
            point.total.cluster += p.wall.cluster;
            point.total.index_build += p.wall.index_build;
            point.total.cluster_shards += p.wall.cluster_shards;
            point.total.cluster_root += p.wall.cluster_root;
            point.total.aggregate += p.wall.aggregate;
            point.total.mine += p.wall.mine;
            point.total.index_peak_bytes = std::max(
                point.total.index_peak_bytes, p.wall.index_peak_bytes);
            point.total.wait_quorum += p.wall.wait_quorum;
            point.total.late_updates += p.wall.late_updates;
        }
        points.push_back(point);
        std::fprintf(stderr,
                     "# n=%-4zu local=%.4fs cluster=%.4fs (index=%.4fs, "
                     "shards=%.4fs, root=%.4fs) "
                     "aggregate=%.4fs mine=%.4fs peak_index=%zuB run=%.4fs\n",
                     clients, point.total.local, point.total.cluster,
                     point.total.index_build, point.total.cluster_shards,
                     point.total.cluster_root, point.total.aggregate,
                     point.total.mine, point.total.index_peak_bytes,
                     point.run_seconds);
    }

    std::string json;
    json += "{\n  \"bench\": \"bench_perf_round\",\n";
    // Bumped when keys change shape; compare_perf.py warns (never crashes)
    // on artifacts from another version.  2 = telemetry-derived stages.
    json += "  \"schema_version\": 2,\n";
    json += "  \"system\": \"" + system + "\",\n";
    json += "  \"engine\": \"" + engine + "\",\n";
    json += "  \"index\": \"" + index + "\",\n";
    // Requested mode plus the table that actually served (auto on a
    // non-AVX2 host degrades to scalar; A/B consumers must see which).
    json += "  \"kernels\": \"" + kernels + "\",\n";
    json += "  \"kernels_active\": \"" +
            std::string(support::simd::active_name()) + "\",\n";
    json += "  \"late\": \"" + late + "\",\n";
    char header[320];
    std::snprintf(header, sizeof header,
                  "  \"shards\": %zu,\n"
                  "  \"quorum\": %.4f,\n  \"deadline_ms\": %.4f,\n"
                  "  \"churn\": %.4f,\n"
                  "  \"rounds\": %zu,\n  \"feature_dim\": %zu,\n"
                  "  \"miners\": %zu,\n  \"seed\": %llu,\n  \"sweep\": [\n",
                  shards, quorum, deadline_ms, churn, rounds, dim, miners,
                  static_cast<unsigned long long>(seed));
    json += header;
    for (std::size_t i = 0; i < points.size(); ++i) {
        append_json(json, points[i]);
        json += i + 1 < points.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    if (!out_path.empty()) {
        std::ofstream file(out_path);
        if (!file) {
            std::fprintf(stderr, "bench_perf_round: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        file << json;
    }
    return 0;
}
