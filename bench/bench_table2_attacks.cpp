// Table 2 -- "Detecting malicious attacks using our contribution-based
// incentive mechanism".
//
// 10 indexed clients; each round 1-3 random clients forge their gradients;
// DBSCAN-based Algorithm 2 flags low-contribution clients ("Drop Index");
// detection rate = |attackers ∩ dropped| / |attackers|.  Run for non-IID
// and IID (paper: averages 64.96% and 75%).
//
//   ./bench/bench_table2_attacks [--rounds=10] [--seed=42]

#include <string>

#include "cluster/index.hpp"

#include "bench_common.hpp"

using namespace fairbfl;

namespace {

std::string ids_to_string(const std::vector<fl::NodeId>& ids) {
    std::string out = "[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(ids[i]);
    }
    return out + "]";
}

// Table 2 needs per-round attacker/drop-index records (BflRoundRecord),
// which the SystemRun series does not carry, so this bench drives the
// FairBfl class directly; its clustering/reward knobs configure the
// ContributionPolicy and RewardPolicy strategies of core/strategies.hpp.
double run_distribution(bool iid, std::size_t rounds, std::uint64_t seed,
                        double eps_scale, double magnitude, bool quiet,
                        bool euclidean = false,
                        const std::string& index = "exact") {
    core::EnvironmentConfig env_config;
    env_config.data.samples = 1500;
    env_config.data.seed = seed;
    env_config.partition.scheme = iid ? ml::PartitionScheme::kIid
                                      : ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 10;
    env_config.partition.seed = seed;
    const core::Environment env = core::build_environment(env_config);

    core::FairBflConfig config;
    config.fl.client_ratio = 1.0;  // all 10 clients participate
    config.fl.rounds = rounds;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.sgd.epochs = 5;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = seed;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.magnitude = magnitude;
    config.attack.min_attackers = 1;
    config.attack.max_attackers = 3;
    config.incentive.dbscan.adaptive_eps_scale = eps_scale;
    config.incentive.dbscan.metric =
        euclidean ? fairbfl::cluster::Metric::kEuclidean
                  : fairbfl::cluster::Metric::kCosine;
    // Keep-all so benching never shrinks the attack surface between rounds
    // (Table 2 re-randomizes attackers over all 10 clients each round).
    config.incentive.strategy = incentive::LowContributionStrategy::kKeepAll;
    config.incentive.index = index;

    core::FairBfl system(*env.model, env.make_clients(), env.test, config);

    if (!quiet) {
        std::printf("%-13s %-6s %-18s %-18s %s\n", iid ? "IID" : "Non-IID",
                    "Round", "Attacker Index", "Drop Index", "Detection Rate");
    }
    double mean_rate = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto record = system.run_round();
        mean_rate += record.detection_rate;
        if (quiet) continue;
        std::printf("%-13s %-6llu %-18s %-18s %.2f%%\n", "",
                    static_cast<unsigned long long>(record.fl.round + 1),
                    ids_to_string(record.attacker_clients).c_str(),
                    ids_to_string(record.low_contribution_clients).c_str(),
                    100.0 * record.detection_rate);
    }
    mean_rate /= static_cast<double>(rounds);
    if (!quiet)
        std::printf("%-13s Average Detection Rate: %.2f%%\n\n", "",
                    100.0 * mean_rate);
    return mean_rate;
}

}  // namespace

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_table2_attacks: Table 2 attack-detection rates\n"
                  "flags: --rounds (default 10) --seed --index=exact|\n"
                  "       random_projection|sampled (neighborhood backend)");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const double eps_scale = args.get_double("eps-scale", 2.0);
    const double magnitude = args.get_double("magnitude", 3.0);
    const bool sweep = args.get_flag("sweep");
    const std::string index = args.get_string("index", "exact");
    if (!args.finish("bench_table2_attacks")) return 1;
    if (!fairbfl::cluster::IndexRegistry::global().contains(index)) {
        std::fprintf(stderr, "bench_table2_attacks: bad --index '%s'\n",
                     index.c_str());
        return 1;
    }

    if (sweep) {
        std::printf("metric,eps_scale,noniid_rate,iid_rate\n");
        for (const bool euclid : {false, true}) {
            for (const double s : {0.6, 0.8, 1.0, 1.2, 1.5, 2.0, 2.5}) {
                std::printf("%s,%.1f,%.3f,%.3f\n",
                            euclid ? "euclidean" : "cosine", s,
                            run_distribution(false, rounds, seed, s,
                                             magnitude, true, euclid),
                            run_distribution(true, rounds, seed, s, magnitude,
                                             true, euclid));
            }
        }
        return 0;
    }

    std::printf("## Table 2: malicious-attack detection "
                "(paper averages: non-IID 64.96%%, IID 75%%; index=%s)\n\n",
                index.c_str());
    const double noniid = run_distribution(false, rounds, seed, eps_scale,
                                           magnitude, false,
                                           /*euclidean=*/true, index);
    const double iid = run_distribution(true, rounds, seed, eps_scale,
                                        magnitude, false, /*euclidean=*/true,
                                        index);

    std::printf("# shape-check IID detection >= non-IID detection: %s\n",
                iid >= noniid - 0.05 ? "PASS" : "FAIL");
    std::printf("# shape-check both averages in [40%%, 100%%]: %s\n",
                noniid > 0.40 && iid > 0.40 ? "PASS" : "FAIL");
    return 0;
}
