// Figure 5 -- "Performance and delay under various learning rates".
//   5a: average delay vs eta is ~flat for FAIR and FedAvg (distributed
//       learning decouples delay from eta).
//   5b: average accuracy vs eta has an interior optimum for FAIR/FedAvg;
//       FedProx is less sensitive (the proximal anchor damps eta).
//
//   ./bench/bench_fig5_learning_rate [--rounds=30] [--paper] [--csv=prefix]

#include <vector>

#include "bench_common.hpp"

using namespace fairbfl;

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("bench_fig5_learning_rate: sweep eta in {0.01..0.20} "
                  "(Figure 5a/5b)\n"
                  "flags: --rounds --clients --samples --iid --seed --paper "
                  "--csv=prefix");
        return 0;
    }
    auto setting = benchx::BenchSetting::from_args(args);
    const double feature_scale = args.get_double("feature-scale", 3.5);
    const std::string csv_prefix = args.get_string("csv", "");
    if (!args.finish("bench_fig5_learning_rate")) return 1;

    // Scaled features put the top of the paper's {0.01..0.20} sweep past
    // the SGD stability threshold (smoothness grows with the squared
    // feature norm) without changing class separability: small rates
    // undertrain, large rates oscillate, and the interior optimum of
    // Figure 5b appears.  MNIST's 784-dimensional inputs give the paper's
    // own sweep the same property.
    auto env_config = setting.environment();
    env_config.data.feature_scale = feature_scale;
    const core::Environment env = core::build_environment(env_config);
    const std::vector<double> rates{0.01, 0.05, 0.10, 0.15, 0.20};

    // The whole sweep as one spec list: 5 rates x 3 systems, executed
    // concurrently by run_suite.
    std::vector<core::SystemSpec> specs;
    for (const double eta : rates) {
        auto local = setting;
        local.learning_rate = eta;
        specs.push_back(local.fair_spec("FAIR"));
        specs.push_back(local.fedavg_spec());
        // Pure proximal FedProx (no stragglers): the anchor term is what
        // damps eta-sensitivity in Figure 5b.
        specs.push_back(local.fedprox_spec(/*drop_percent=*/0.0));
    }
    const auto runs = core::run_suite(env, specs);

    std::printf("## Figure 5: delay and accuracy vs learning rate\n");
    support::CsvWriter csv(std::cout);
    if (!csv_prefix.empty()) csv.tee_to_file(csv_prefix + "_fig5.csv");
    csv.header({"eta", "system", "avg_delay_s", "avg_accuracy",
                "final_accuracy"});

    struct Point {
        double eta;
        double fair_acc;
        double fedavg_acc;
        double fedprox_acc;
    };
    std::vector<Point> points;

    for (std::size_t i = 0; i < rates.size(); ++i) {
        const double eta = rates[i];
        const auto& fair = runs[3 * i];
        const auto& fedavg = runs[3 * i + 1];
        const auto& fedprox = runs[3 * i + 2];

        for (const auto* run : {&fair, &fedavg, &fedprox}) {
            csv.row()
                .col(eta)
                .col(run->name)
                .col(run->average_delay)
                .col(run->average_accuracy)
                .col(run->final_accuracy)
                .end();
        }
        points.push_back({eta, fair.average_accuracy, fedavg.average_accuracy,
                          fedprox.average_accuracy});
    }

    // Shape checks mirroring the paper's Insight 1: accuracy rises steeply
    // away from the smallest eta and stops improving (or dips) at the
    // largest -- i.e. an optimal eta exists inside the sweep's working
    // range rather than at eta -> 0 or eta -> large.
    auto best_eta = [&](auto getter) {
        double best = points[0].eta;
        double best_acc = getter(points[0]);
        for (const auto& p : points) {
            if (getter(p) > best_acc) {
                best_acc = getter(p);
                best = p.eta;
            }
        }
        return std::pair<double, double>{best, best_acc};
    };
    const auto [fair_best, fair_best_acc] =
        best_eta([](const Point& p) { return p.fair_acc; });
    std::printf("\n# best eta for FAIR: %.2f (avg accuracy %.4f)\n",
                fair_best, fair_best_acc);
    const bool steep_rise = points.front().fair_acc < fair_best_acc - 0.05;
    const bool top_plateau = points.back().fair_acc <= fair_best_acc + 1e-9;
    std::printf("# shape-check 5b optimal eta inside the sweep "
                "(rise from 0.01: %s, no gain at 0.20: %s): %s\n",
                steep_rise ? "yes" : "no", top_plateau ? "yes" : "no",
                steep_rise && top_plateau ? "PASS" : "FAIL");
    double fedprox_spread = 0.0;
    double fair_spread = 0.0;
    double lo_p = 1.0, hi_p = 0.0, lo_f = 1.0, hi_f = 0.0;
    for (const auto& p : points) {
        lo_p = std::min(lo_p, p.fedprox_acc);
        hi_p = std::max(hi_p, p.fedprox_acc);
        lo_f = std::min(lo_f, p.fair_acc);
        hi_f = std::max(hi_f, p.fair_acc);
    }
    fedprox_spread = hi_p - lo_p;
    fair_spread = hi_f - lo_f;
    std::printf("# accuracy spread across eta: FAIR=%.4f FedProx=%.4f\n",
                fair_spread, fedprox_spread);
    std::printf("# shape-check 5b FedProx less eta-sensitive than FAIR: %s\n",
                fedprox_spread <= fair_spread + 0.01 ? "PASS" : "FAIL");
    return 0;
}
