// bench_telemetry: per-event overhead of the telemetry hot path.
//
// Measures the cost of one span (begin+end record pair), one counter_add,
// and the disabled-switch path, single-threaded and across a thread
// fan-out.  Plain binary (no Google Benchmark dependency) so it always
// builds; CI runs it to keep the per-event cost visible next to the
// end-to-end <=2% gate on bench_perf_round.
//
//   ./bench_telemetry [--events=2000000] [--threads=8]

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "support/cli.hpp"
#include "telemetry/telemetry.hpp"

using namespace fairbfl;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_event(Clock::time_point start, Clock::time_point stop,
                    std::size_t events) {
    return std::chrono::duration<double, std::nano>(stop - start).count() /
           static_cast<double>(events);
}

}  // namespace

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts(
            "bench_telemetry: per-event cost of the telemetry hot path\n"
            "  --events=2000000   events per timed loop\n"
            "  --threads=8        writer threads in the contention loop");
        return 0;
    }
    const auto events =
        static_cast<std::size_t>(args.get_int("events", 2'000'000));
    const auto threads =
        static_cast<unsigned>(args.get_int("threads", 8));
    if (!args.finish("bench_telemetry")) return 1;

    const telemetry::Label span_label = telemetry::intern("bench.span");
    const telemetry::Label counter_label = telemetry::intern("bench.counter");

    // Warm up: adopt this thread's ring, fault the pages.
    for (int i = 0; i < 10'000; ++i) {
        telemetry::Span span(span_label);
    }
    telemetry::flush_all();

    telemetry::set_enabled(true);
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < events; ++i) {
        telemetry::Span span(span_label);
    }
    auto t1 = Clock::now();
    // One span = two records (begin + end).
    std::printf("span_enabled        %8.2f ns/span  (%zu spans)\n",
                ns_per_event(t0, t1, events), events);

    t0 = Clock::now();
    for (std::size_t i = 0; i < events; ++i) {
        telemetry::counter_add(counter_label, i);
    }
    t1 = Clock::now();
    std::printf("counter_enabled     %8.2f ns/event (%zu events)\n",
                ns_per_event(t0, t1, events), events);

    telemetry::set_enabled(false);
    t0 = Clock::now();
    for (std::size_t i = 0; i < events; ++i) {
        telemetry::Span span(span_label);
    }
    t1 = Clock::now();
    std::printf("span_disabled       %8.2f ns/span\n",
                ns_per_event(t0, t1, events));
    telemetry::set_enabled(true);

    // Thread fan-out: per-thread rings mean no shared cache line on the
    // write path; per-thread throughput should hold near the
    // single-thread number.
    const std::size_t per_thread = events / std::max(threads, 1U);
    t0 = Clock::now();
    {
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            workers.emplace_back([per_thread, span_label] {
                for (std::size_t i = 0; i < per_thread; ++i) {
                    telemetry::Span span(span_label);
                }
            });
        }
        for (auto& worker : workers) worker.join();
    }
    t1 = Clock::now();
    std::printf("span_%u_threads      %8.2f ns/span  (wall per event)\n",
                threads,
                ns_per_event(t0, t1, per_thread * threads));

    telemetry::flush_all();
    std::printf("dropped_records     %llu\n",
                static_cast<unsigned long long>(telemetry::dropped_records()));
    return 0;
}
