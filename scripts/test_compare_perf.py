#!/usr/bin/env python3
"""Unit tests for scripts/compare_perf.py (the CI perf gate).

The gate's failure modes are all silent -- a schema mismatch that crashes,
a missing-artifact path that stops gating, a sign error in the regression
math -- so each one is pinned here.  Runs under plain unittest (no
third-party deps), wired into ctest as `compare_perf_tests` and into the
CI static-analysis job.

Covers:
  * schema tolerance: v1 (no schema_version), v2, and unknown future
    versions / unknown stage keys all compare best-effort with a
    ::warning:: instead of crashing;
  * seed-baseline fallback: a missing previous artifact gates against
    bench/baselines/perf_round_seed.json; only when that is unreadable
    too does the comparison no-op (exit 0);
  * gate math: regressions only gate at the LARGEST common sweep point,
    only for WATCHED_STAGES, only above the threshold, and exit 2 only
    with --fail-on-regression.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_perf  # noqa: E402


def artifact(points, schema_version=2, extra_stage_keys=(),
             late_updates=None, **config):
    """A bench_perf_round artifact dict: points is {clients: {stage: s}}."""
    data = {"system": "fairbfl", "engine": "batched", "index": "shard",
            **config}
    if schema_version is not None:
        data["schema_version"] = schema_version
    data["sweep"] = []
    for clients, seconds in sorted(points.items()):
        seconds = dict(seconds)
        for key in extra_stage_keys:
            seconds[key] = 0.001
        point = {"clients": clients, "seconds": seconds}
        if late_updates is not None:
            point["late_updates"] = late_updates
        data["sweep"].append(point)
    return data


class CompareRun:
    """One main() invocation against temp artifact files."""

    def __init__(self, previous, current, argv=(), seed=None):
        self.tmp = tempfile.TemporaryDirectory()
        base = self.tmp.name
        paths = {}
        for name, data in (("previous", previous), ("current", current),
                           ("seed", seed)):
            paths[name] = os.path.join(base, f"{name}.json")
            if data is not None:
                with open(paths[name], "w", encoding="utf-8") as f:
                    json.dump(data, f)
        out = io.StringIO()
        old_argv = sys.argv
        sys.argv = ["compare_perf.py", paths["previous"], paths["current"],
                    "--seed-baseline", paths["seed"], *argv]
        try:
            with contextlib.redirect_stdout(out):
                self.exit_code = compare_perf.main()
        finally:
            sys.argv = old_argv
            self.tmp.cleanup()
        self.stdout = out.getvalue()


BASE = {8: {"local": 1.0, "cluster": 2.0, "index_build": 0.5},
        64: {"local": 4.0, "cluster": 8.0, "index_build": 2.0}}


def scaled(factor, points=BASE):
    return {clients: {stage: s * factor for stage, s in seconds.items()}
            for clients, seconds in points.items()}


class SchemaToleranceTests(unittest.TestCase):
    def test_v2_artifacts_compare_without_warnings(self):
        run = CompareRun(artifact(BASE), artifact(scaled(1.0)))
        self.assertEqual(run.exit_code, 0)
        self.assertNotIn("::warning::", run.stdout)
        self.assertIn("| 64 | cluster |", run.stdout)

    def test_v1_artifact_without_schema_version_warns_but_compares(self):
        run = CompareRun(artifact(BASE, schema_version=None),
                         artifact(scaled(1.0)))
        self.assertEqual(run.exit_code, 0)
        self.assertIn("no schema_version", run.stdout)
        self.assertIn("| 64 | local |", run.stdout)

    def test_future_schema_version_warns_but_compares(self):
        run = CompareRun(artifact(BASE, schema_version=99),
                         artifact(scaled(1.0)))
        self.assertEqual(run.exit_code, 0)
        self.assertIn("schema_version 99", run.stdout)
        self.assertIn("| 64 | local |", run.stdout)

    def test_unknown_stage_keys_warn_and_are_ignored(self):
        run = CompareRun(
            artifact(BASE, extra_stage_keys=("quantum_annealing",)),
            artifact(scaled(1.0)))
        self.assertEqual(run.exit_code, 0)
        self.assertIn("unknown stage keys: quantum_annealing", run.stdout)
        self.assertNotIn("| quantum_annealing |", run.stdout)

    def test_missing_watched_stage_skips_row_with_warning(self):
        gutted = {clients: {k: v for k, v in seconds.items()
                            if k != "index_build"}
                  for clients, seconds in BASE.items()}
        run = CompareRun(artifact(gutted), artifact(scaled(1.0)))
        self.assertEqual(run.exit_code, 0)
        self.assertIn("missing stage keys: index_build", run.stdout)
        self.assertNotIn("| 64 | index_build |", run.stdout)


class SeedBaselineFallbackTests(unittest.TestCase):
    def test_missing_previous_gates_against_seed_baseline(self):
        run = CompareRun(None, artifact(scaled(2.0)),
                         argv=["--fail-on-regression"],
                         seed=artifact(BASE))
        self.assertEqual(run.exit_code, 2)
        self.assertIn("falling back to the committed seed baseline",
                      run.stdout)

    def test_missing_previous_and_seed_noops_cleanly(self):
        run = CompareRun(None, artifact(BASE),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertIn("No seed baseline to compare against either",
                      run.stdout)

    def test_unreadable_current_artifact_fails(self):
        run = CompareRun(artifact(BASE), None)
        self.assertEqual(run.exit_code, 1)
        self.assertIn("cannot read current perf artifact", run.stdout)

    def test_default_seed_baseline_path_is_committed(self):
        self.assertTrue(
            compare_perf.SEED_BASELINE.exists(),
            f"{compare_perf.SEED_BASELINE} must stay committed: it is the "
            "gate of last resort for the first run on a branch")


class GateMathTests(unittest.TestCase):
    def test_regression_above_threshold_warns_but_exits_zero_by_default(self):
        run = CompareRun(artifact(BASE), artifact(scaled(1.5)))
        self.assertEqual(run.exit_code, 0)
        self.assertIn("::warning::seconds.local at 64 clients regressed",
                      run.stdout)

    def test_fail_on_regression_exits_two(self):
        run = CompareRun(artifact(BASE), artifact(scaled(1.5)),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 2)

    def test_change_below_threshold_passes(self):
        run = CompareRun(artifact(BASE), artifact(scaled(1.1)),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertIn("No stage regression above 20%", run.stdout)

    def test_custom_threshold(self):
        run = CompareRun(artifact(BASE), artifact(scaled(1.1)),
                         argv=["--fail-on-regression",
                               "--threshold", "0.05"])
        self.assertEqual(run.exit_code, 2)

    def test_improvement_never_gates(self):
        run = CompareRun(artifact(BASE), artifact(scaled(0.5)),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)

    def test_regression_at_smaller_sweep_point_does_not_gate(self):
        current = scaled(1.0)
        current[8] = {stage: s * 10 for stage, s in BASE[8].items()}
        run = CompareRun(artifact(BASE), artifact(current),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertNotIn("::warning::seconds", run.stdout)

    def test_display_only_stage_never_gates(self):
        prev = {64: {"local": 1.0, "cluster": 1.0, "index_build": 1.0,
                     "shard_cluster": 0.1}}
        curr = {64: {"local": 1.0, "cluster": 1.0, "index_build": 1.0,
                     "shard_cluster": 5.0}}
        run = CompareRun(artifact(prev), artifact(curr),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertIn("| 64 | shard_cluster |", run.stdout)

    def test_no_common_sweep_points_noops(self):
        run = CompareRun(artifact({8: BASE[8]}), artifact({64: BASE[64]}),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertIn("No common sweep points", run.stdout)

    def test_wait_quorum_regression_never_gates(self):
        # seconds.wait_quorum is *virtual* time from the async round
        # engine: it is displayed, tolerated without schema warnings, and
        # never gates no matter how much it grows.
        prev = {64: {"local": 1.0, "cluster": 1.0, "index_build": 1.0,
                     "wait_quorum": 0.1}}
        curr = {64: {"local": 1.0, "cluster": 1.0, "index_build": 1.0,
                     "wait_quorum": 50.0}}
        run = CompareRun(artifact(prev), artifact(curr),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertNotIn("::warning::", run.stdout)
        self.assertIn("| 64 | wait_quorum |", run.stdout)

    def test_round_engine_headers_are_described(self):
        run = CompareRun(
            artifact(BASE, quorum=0.75, deadline_ms=40.0,
                     late="retroactive"),
            artifact(scaled(1.0), quorum=0.75, deadline_ms=40.0,
                     late="retroactive"))
        self.assertEqual(run.exit_code, 0)
        self.assertIn("quorum=0.75", run.stdout)
        self.assertIn("deadline_ms=40.0", run.stdout)
        self.assertIn("late=retroactive", run.stdout)

    def test_late_updates_displayed_and_tolerated(self):
        run = CompareRun(artifact(BASE, late_updates=2),
                         artifact(scaled(1.0), late_updates=7),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertNotIn("::warning::", run.stdout)
        self.assertIn("late_updates at 64 clients: 2 -> 7", run.stdout)

    def test_artifact_without_late_updates_stays_quiet(self):
        run = CompareRun(artifact(BASE), artifact(scaled(1.0)))
        self.assertEqual(run.exit_code, 0)
        self.assertNotIn("late_updates at", run.stdout)

    def test_zero_previous_stage_skipped_not_divided(self):
        prev = {64: {"local": 0.0, "cluster": 1.0, "index_build": 1.0}}
        curr = {64: {"local": 9.9, "cluster": 1.0, "index_build": 1.0}}
        run = CompareRun(artifact(prev), artifact(curr),
                         argv=["--fail-on-regression"])
        self.assertEqual(run.exit_code, 0)
        self.assertNotIn("| 64 | local |", run.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
