#!/usr/bin/env python3
"""Compare two bench_perf_round JSON artifacts and flag stage regressions.

Usage:
    compare_perf.py PREVIOUS.json CURRENT.json [--threshold 0.20]
                    [--fail-on-regression]

Emits a GitHub-flavoured markdown table (pipe it into $GITHUB_STEP_SUMMARY)
comparing `seconds.local`, `seconds.cluster` and `seconds.index_build`
(the index-build sub-component of cluster) per common sweep point, and
a `::warning::` annotation when either stage at the *largest* common client
count regresses by more than the threshold.  Exit code is non-zero only
with --fail-on-regression (CI warns by default: shared-runner timing noise
should not block a merge, but it must be visible in the job summary).

Artifacts written since the shard-tree PR additionally carry the
per-level timings `seconds.shard_cluster` / `seconds.root_cluster` and a
per-point `index_peak_bytes`; they are displayed when both artifacts have
them but never gate (a flat run legitimately has zeros there).  Each
artifact's configuration line (index backend, engine, shard fan-out) is
printed so the summary says which backend each sweep actually ran.

A missing/unreadable previous artifact falls back to the committed seed
baseline (bench/baselines/perf_round_seed.json, --seed-baseline to
relocate): the first run on a branch then gates against the repo's own
pinned numbers instead of passing silently.  Only when the fallback is
unreadable too does the comparison no-op.

Schema tolerance: artifacts carry a `schema_version` (added in the
telemetry PR, version 2).  An artifact with a missing or different version
is still compared -- stage keys are read defensively, and anything unknown
or absent produces a `::warning::` annotation instead of a crash, so the
gate keeps working across artifact generations.
"""

import argparse
import json
import pathlib
import sys

# Committed pre-change baseline (CI sweep shape), the comparison target of
# last resort when no previous CI artifact exists.
SEED_BASELINE = (pathlib.Path(__file__).resolve().parent.parent
                 / "bench" / "baselines" / "perf_round_seed.json")

# The artifact generation this script was written against.  Older
# artifacts (no schema_version) and newer ones are compared best-effort
# with a warning, never a crash.
KNOWN_SCHEMA_VERSION = 2

# Gating stages: a regression at the largest sweep point warns/fails.
# index_build is a sub-component of cluster (new in the GradientIndex PR);
# artifacts that predate it simply skip that row.
WATCHED_STAGES = ("local", "cluster", "index_build")
# Display-only stages: per-level timings (shard-tree PR) and the round
# engine's virtual quorum wait (async-round PR) are informational -- flat
# or lockstep runs have zeros there, and wait_quorum is *simulated* time,
# so they must never gate.
EXTRA_STAGES = ("shard_cluster", "root_cluster", "wait_quorum")
# Every stage key this script understands; anything else in `seconds` is
# from another schema generation and only warned about.
KNOWN_STAGES = set(WATCHED_STAGES + EXTRA_STAGES + ("aggregate", "mine",
                                                    "total"))


def check_schema(label, data):
    """Warn (never raise) about schema drift in one artifact."""
    version = data.get("schema_version")
    if version is None:
        print(f"::warning::{label} perf artifact has no schema_version "
              f"(predates v{KNOWN_SCHEMA_VERSION}); comparing best-effort")
    elif version != KNOWN_SCHEMA_VERSION:
        print(f"::warning::{label} perf artifact has schema_version "
              f"{version} (this script knows {KNOWN_SCHEMA_VERSION}); "
              f"comparing best-effort")
    unknown = set()
    missing = set()
    for point in data.get("sweep", []):
        seconds = point.get("seconds")
        if not isinstance(seconds, dict):
            missing.add("seconds")
            continue
        unknown |= set(seconds) - KNOWN_STAGES
        missing |= set(WATCHED_STAGES) - set(seconds)
    if unknown:
        print(f"::warning::{label} perf artifact has unknown stage keys: "
              f"{', '.join(sorted(unknown))} (ignored)")
    if missing:
        print(f"::warning::{label} perf artifact is missing stage keys: "
              f"{', '.join(sorted(missing))} (those rows are skipped)")


def load_artifact(path, label):
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    check_schema(label, data)
    sweep = {point["clients"]: point.get("seconds", {})
             for point in data.get("sweep", []) if "clients" in point}
    peak = {point["clients"]: point.get("index_peak_bytes")
            for point in data.get("sweep", []) if "clients" in point}
    late = {point["clients"]: point.get("late_updates")
            for point in data.get("sweep", []) if "clients" in point}
    config = {key: data.get(key)
              for key in ("index", "engine", "system", "shards",
                          "quorum", "deadline_ms", "late", "churn")}
    return sweep, peak, late, config


def describe(label, config):
    parts = [f"{key}={config[key]}" for key in
             ("system", "engine", "index", "shards",
              "quorum", "deadline_ms", "late", "churn")
             if config.get(key) is not None]
    print(f"- {label}: {', '.join(parts) if parts else 'unknown config'}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative regression that triggers a warning")
    parser.add_argument("--fail-on-regression", action="store_true")
    parser.add_argument("--seed-baseline", default=str(SEED_BASELINE),
                        help="fallback artifact when the previous one is "
                             "missing (default: the committed seed baseline)")
    args = parser.parse_args()

    try:
        previous, prev_peak, prev_late, prev_config = load_artifact(
            args.previous, "previous")
    except (OSError, ValueError, KeyError) as error:
        print(f"No previous perf artifact ({error}); "
              f"falling back to the committed seed baseline.")
        try:
            previous, prev_peak, prev_late, prev_config = load_artifact(
                args.seed_baseline, "seed baseline")
        except (OSError, ValueError, KeyError) as seed_error:
            print(f"No seed baseline to compare against either "
                  f"({seed_error}).")
            return 0
    try:
        current, curr_peak, curr_late, curr_config = load_artifact(
            args.current, "current")
    except (OSError, ValueError, KeyError) as error:
        print(f"::warning::cannot read current perf artifact: {error}")
        return 1

    common = sorted(set(previous) & set(current))
    if not common:
        print("No common sweep points between previous and current runs.")
        return 0

    print("### bench_perf_round vs previous artifact")
    print()
    describe("previous", prev_config)
    describe("current", curr_config)
    print()
    print("| clients | stage | previous s | current s | change |")
    print("|--------:|-------|-----------:|----------:|-------:|")
    regressions = []
    for clients in common:
        for stage in WATCHED_STAGES + EXTRA_STAGES:
            prev = previous[clients].get(stage)
            curr = current[clients].get(stage)
            if not isinstance(prev, (int, float)) or not prev:
                continue
            if not isinstance(curr, (int, float)):
                continue
            change = (curr - prev) / prev
            print(f"| {clients} | {stage} | {prev:.4f} | {curr:.4f} "
                  f"| {change:+.1%} |")
            if (stage in WATCHED_STAGES and clients == common[-1]
                    and change > args.threshold):
                regressions.append((clients, stage, change))
    print()

    # Peak per-pass index memory, when both artifacts record it.
    largest = common[-1]
    if prev_peak.get(largest) and curr_peak.get(largest) is not None:
        prev_b, curr_b = prev_peak[largest], curr_peak[largest]
        ratio = prev_b / curr_b if curr_b else float("inf")
        print(f"index_peak_bytes at {largest} clients: {prev_b} -> {curr_b} "
              f"({ratio:.1f}x previous)")
        print()

    # Late-update counts (async round engine), display-only: lockstep runs
    # record zero, and a straggler-heavy config legitimately grows this.
    if (isinstance(curr_late.get(largest), int)
            and (curr_late.get(largest)
                 or isinstance(prev_late.get(largest), int)
                 and prev_late.get(largest))):
        print(f"late_updates at {largest} clients: "
              f"{prev_late.get(largest, 'n/a')} -> {curr_late[largest]}")
        print()

    for clients, stage, change in regressions:
        print(f"::warning::seconds.{stage} at {clients} clients regressed "
              f"{change:+.1%} (> {args.threshold:.0%} threshold) vs the "
              f"previous artifact")
    if regressions and args.fail_on_regression:
        return 2
    if not regressions:
        print(f"No stage regression above {args.threshold:.0%} at "
              f"{largest} clients.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
