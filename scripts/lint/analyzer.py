#!/usr/bin/env python3
"""fairbfl-analyzer: dependency-free whole-program static analysis.

run_lints.py checks one file at a time; this tool builds the project-wide
include graph and a cross-TU symbol/call graph from compile_commands.json
(declaration->definition resolution via the cpplex.py lexer: qualified-name
matching first, then header-signature matching; unresolved edges are
reported, never silently dropped) and proves the repo's global invariants
on top of it:

  layer-deps            ARCHITECTURE.md's "dependencies point strictly
                        downward" as a machine-checked DAG over #include
                        edges; the allowed-edge table is
                        scripts/lint/layers.json (the normative layer map).
  telemetry-hotpath-xtu PR 7's no-alloc/no-lock/no-throw telemetry
                        emission proof extended across TU boundaries: the
                        reachability walk follows resolved call edges into
                        every TU instead of stopping at the file edge.
                        Shares stop_functions with the per-file rule.
  fp-determinism        the PR 8 bit-pin convention, structurally: no
                        floating-point multiply-accumulate loops outside
                        the allowlisted kernel layer (src/support/simd*,
                        src/support/vecmath*), plus every TU's compile
                        command must carry -ffp-contract=off and none of
                        -ffast-math/-funsafe-math-optimizations/
                        -fassociative-math/-Ofast.
  lock-order            the global acquires-while-holding graph built from
                        support::MutexLock sites and REQUIRES()
                        annotations, with call edges followed so transitive
                        acquisition counts; fails on cycles, on
                        acquisitions not sanctioned by the documented lock
                        hierarchy in allowlists.json, and on undocumented
                        or stale hierarchy entries (per-function Clang TSA
                        cannot see cross-function lock ordering).
  blocking-in-worker    no blocking syscalls / sleeps / condvar waits /
                        stream IO reachable from ThreadPool task bodies
                        (lambdas passed to parallel_for/parallel_chunks/
                        pool.run) outside the pool's own scheduler
                        (allowlisted scheduler_paths).
  unused-include        IWYU-lite: a project header whose include closure
                        provides no name the including file references.
                        Report-only unless --strict.

Usage:
  analyzer.py --build-dir build            # analyze the tree; exit 1 on
                                           # findings from enforcing rules
  analyzer.py --rule layer-deps            # restrict to one rule
  analyzer.py --self-test                  # per-rule bad/clean fixture
                                           # trees (tests/analyzer_fixtures)
  analyzer.py --graph-dump graph.json      # dump include edges, call
                                           # edges, unresolved calls,
                                           # locks, pool-task roots
  analyzer.py --explain lock-order:mutex   # where a symbol stands in a
                                           # rule's graph and why
  analyzer.py --strict                     # unused-include becomes
                                           # enforcing
  analyzer.py --summary-md out.md          # per-rule markdown table +
                                           # runtime (CI job summary)

Per-file facts are cached in <build-dir>/analyzer_cache.json keyed on
content sha256 + extractor version (FACTS_VERSION), so warm full-tree
runs re-lex nothing and stay well inside the 5 s CI budget.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpplex  # noqa: E402
from cpplex import IDENT, NUMBER, PP, PUNCT  # noqa: E402
import run_lints as rl  # noqa: E402  (shared Finding, sets, helpers)

Finding = rl.Finding
_find_matching = rl._find_matching

REPO_ROOT = rl.REPO_ROOT

RULES = ("layer-deps", "telemetry-hotpath-xtu", "fp-determinism",
         "lock-order", "blocking-in-worker", "unused-include")

# Bump whenever extraction below changes shape or semantics: stale caches
# are discarded wholesale, never migrated.
FACTS_VERSION = 5

# ---------------------------------------------------------------------------
# Shared vocabularies

# Identifier-followed-by-'(' shapes that are control flow or specifiers,
# not calls or function names.
_STOPWORDS = rl._FUNC_NAME_STOPWORDS | {
    "constexpr", "consteval", "constinit", "requires", "explicit",
}

# Blocking call names for blocking-in-worker.  Mutex acquisition is
# deliberately absent (workers may take leaf locks); this targets sleeps,
# condvar waits, joins, process spawns, and file/socket IO.
_BLOCKING_CALLS = {
    "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep",
    "wait", "wait_for", "wait_until", "join",
    "system", "popen", "fork", "execv", "execvp",
    "fopen", "fread", "fwrite", "fgets", "fscanf", "getline",
    "accept", "recv", "recvfrom", "send", "sendto", "connect", "listen",
    "select", "poll", "epoll_wait",
}

# Stream types whose mere construction opens a file: flagged token-level
# because `std::ofstream f(path)` lexes as a declaration, not a call.
_BLOCKING_TYPES = {"ifstream", "ofstream", "fstream"}

# Names assumed external (std/libc) when no project definition exists, so
# they don't pollute the unresolved-edge report.  Consulted only after
# definition lookup fails, so a project function may shadow any of these.
_EXTERNAL_NAMES = {
    "abs", "fabs", "sqrt", "exp", "log", "log2", "pow", "floor", "ceil",
    "round", "lround", "fmod", "isnan", "isinf", "isfinite", "memcpy",
    "memset", "memcmp", "memmove", "strcmp", "strncmp", "strlen", "snprintf",
    "printf", "fprintf", "sprintf", "fputs", "puts", "fflush", "exit",
    "getenv", "strtol", "strtod", "atoi", "min", "max", "swap", "move",
    "forward", "make_unique", "make_shared", "make_pair", "make_tuple",
    "to_string", "stoi", "stod", "stoul", "stoull", "sort", "stable_sort",
    "nth_element", "partial_sort", "fill", "copy", "copy_n", "transform",
    "accumulate", "iota", "distance", "advance", "next", "prev",
    "lower_bound", "upper_bound", "binary_search", "unique", "remove",
    "remove_if", "find_if", "any_of", "all_of", "none_of", "count_if",
    "max_element", "min_element", "minmax_element", "shuffle", "clamp",
    "hash", "tie", "get_if", "holds_alternative", "visit", "declval",
    "tuple_size", "from_chars", "to_chars", "isalpha", "isdigit", "isspace",
    "tolower", "toupper", "assert", "abort", "terminate", "setw",
    "setprecision", "quoted", "flush", "endl", "getline", "push", "pop",
    "top", "emplace_hint", "substr", "compare", "rfind", "find_first_of",
    "find_last_of", "starts_with", "ends_with", "c_str", "str", "good",
    "fail", "eof", "is_open", "open", "close", "rdbuf", "seekg", "tellg",
    "write", "read", "at", "notify_one", "notify_all", "test_and_set",
    "time_since_epoch", "duration_cast", "nanoseconds", "microseconds",
    "milliseconds", "seconds", "thread", "numeric_limits", "lowest",
    "epsilon", "infinity", "quiet_NaN", "signaling_NaN", "denorm_min",
    "now",
}

# When building graph edges, member names of std vocabulary types never
# resolve to same-named project functions (run_lints' set, same
# rationale).  `contains` joins it here: `factories_.contains(name)` is
# std::map::contains, not the registry's own contains().
_EDGE_IGNORED = rl._EDGE_IGNORED_NAMES | {"contains"}

# Type/specifier keywords that must not be recorded as declared names.
_NOT_DECL_NAMES = {
    "int", "long", "short", "unsigned", "signed", "char", "double",
    "float", "bool", "void", "auto", "const", "constexpr", "consteval",
    "constinit", "static", "inline", "extern", "mutable", "volatile",
    "virtual", "explicit", "noexcept", "override", "final", "public",
    "private", "protected", "operator", "typename", "template", "class",
    "struct", "enum", "union", "friend", "using", "namespace", "typedef",
    "register", "thread_local", "wchar_t", "char8_t", "char16_t",
    "char32_t", "size_t", "this", "requires", "concept", "default",
}

# Tokens a `double`/`float` declarator may carry between the type keyword
# and the declared identifier.
_FP_DECL_SKIP = {"const", "&", "&&", "*", ">", ">>", "...",
                 "volatile", "restrict"}

_ALLCAPS_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")
_PP_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


# ---------------------------------------------------------------------------
# Per-file fact extraction (pure: tokens in, JSON-safe dict out)

def _loop_mask(body):
    """Boolean mask over `body` marking tokens inside for/while/do bodies."""
    n = len(body)
    mask = [False] * n
    k = 0
    while k < n:
        t = body[k]
        if t.kind == IDENT and t.value in ("for", "while") and k + 1 < n \
                and body[k + 1].value == "(":
            close = _find_matching(body, k + 1, "(", ")")
            b = close + 1
            if b < n and body[b].value == "{":
                e = _find_matching(body, b, "{", "}")
            else:
                e = b
                while e < n and body[e].value != ";":
                    if body[e].value == "{":
                        e = _find_matching(body, e, "{", "}")
                    elif body[e].value == "(":
                        e = _find_matching(body, e, "(", ")")
                    e += 1
            for i in range(b, min(e + 1, n)):
                mask[i] = True
            k = close + 1
            continue
        if t.kind == IDENT and t.value == "do" and k + 1 < n \
                and body[k + 1].value == "{":
            e = _find_matching(body, k + 1, "{", "}")
            for i in range(k + 1, min(e + 1, n)):
                mask[i] = True
            k += 2
            continue
        k += 1
    return mask


def _match_mac(body, k):
    """Multiply-accumulate matcher at a `+=`/`-=` token: returns the
    identifier set of the statement if the right-hand side has a
    top-level `*` (the FMA-eligible shape), else None."""
    idents = set()
    i = k - 1  # walk the lvalue leftwards
    while i >= 0:
        t = body[i]
        if t.kind == PUNCT and t.value == "]":
            depth = 0
            while i >= 0:
                if body[i].value == "]":
                    depth += 1
                elif body[i].value == "[":
                    depth -= 1
                    if depth == 0:
                        break
                if body[i].kind == IDENT:
                    idents.add(body[i].value)
                i -= 1
            i -= 1
            continue
        if t.kind == IDENT:
            idents.add(t.value)
            if i - 1 >= 0 and body[i - 1].value in (".", "->", "::"):
                i -= 2
                continue
            break
        break
    top_mul = False
    fp_literal = False
    pd = bd = 0
    j = k + 1
    n = len(body)
    while j < n:
        t = body[j]
        v = t.value
        if t.kind == PUNCT:
            if v == "(":
                pd += 1
            elif v == ")":
                pd -= 1
                if pd < 0:
                    break
            elif v == "[":
                bd += 1
            elif v == "]":
                bd -= 1
            elif pd == 0 and bd == 0:
                if v in (";", ",", "{", "}"):
                    break
                if v == "*":
                    prev = body[j - 1]
                    if prev.kind in (IDENT, NUMBER) or \
                            prev.value in (")", "]"):
                        top_mul = True
        elif t.kind == IDENT:
            idents.add(v)
        elif t.kind == NUMBER:
            low = v.lower()
            if not low.startswith("0x") and \
                    ("." in low or "e" in low or low.endswith("f")):
                fp_literal = True
        j += 1
    if not top_mul:
        return None
    return {"line": body[k].line, "col": body[k].col,
            "idents": sorted(idents), "fp_literal": fp_literal}


def _analyze_body(body, requires):
    """One pass over a function body: calls, new/throw sites, MutexLock
    acquisitions with a scope-tracked lock stack (acquires-while-holding
    and calls-while-holding), MAC loops, blocking stream types."""
    res = {"calls": [], "news": [], "acquires": [], "held": [],
           "held_calls": [], "macs": [], "blocking_tokens": []}
    mask = _loop_mask(body)
    lockstack = [(r, -1) for r in requires]
    depth = 0
    n = len(body)
    k = 0
    while k < n:
        t = body[k]
        if t.kind == PUNCT:
            if t.value == "{":
                depth += 1
            elif t.value == "}":
                depth -= 1
                while lockstack and lockstack[-1][1] > depth:
                    lockstack.pop()
            elif t.value in ("+=", "-=") and mask[k]:
                mac = _match_mac(body, k)
                if mac is not None:
                    res["macs"].append(mac)
            k += 1
            continue
        if t.kind != IDENT:
            k += 1
            continue
        if t.value in ("new", "throw"):
            res["news"].append([t.line, t.col, t.value])
            k += 1
            continue
        if t.value in _BLOCKING_TYPES:
            res["blocking_tokens"].append([t.line, t.col, t.value])
            k += 1
            continue
        if t.value == "MutexLock" and k + 1 < n \
                and body[k + 1].kind == IDENT and k + 2 < n \
                and body[k + 2].value == "(":
            close = _find_matching(body, k + 2, "(", ")")
            lockname = None
            for g in reversed(body[k + 3:close]):
                if g.kind == IDENT:
                    lockname = g.value
                    break
            if lockname:
                res["acquires"].append([t.line, t.col, lockname])
                for holder, _d in lockstack:
                    res["held"].append([holder, t.line, t.col, lockname])
                lockstack.append((lockname, depth))
            k = close + 1
            continue
        if t.value not in _STOPWORDS and k + 1 < n \
                and body[k + 1].value == "(":
            qname = cpplex.qualified_at(body, k)
            first = k - 2 * (len(qname.split("::")) - 1)
            member = first > 0 and body[first - 1].value in (".", "->")
            res["calls"].append([t.line, t.col, t.value, qname,
                                 1 if member else 0])
            for holder, _d in lockstack:
                res["held_calls"].append([holder, t.line, t.col, t.value])
        k += 1
    return res


def _extract_functions(tokens):
    """run_lints' heuristic extractor, extended to capture the specifier
    gap between `)` and `{` so REQUIRES() annotations seed the lock
    stack.  Yields fact dicts."""
    k = 0
    n = len(tokens)
    while k < n:
        t = tokens[k]
        if t.kind == IDENT and t.value not in _STOPWORDS and k + 1 < n \
                and tokens[k + 1].value == "(":
            qname = cpplex.qualified_at(tokens, k)
            close = _find_matching(tokens, k + 1, "(", ")")
            j = close + 1
            is_definition = True
            requires = []
            while j < n:
                v = tokens[j].value
                if v == "{":
                    break
                if tokens[j].kind == PUNCT and v in (";", "="):
                    is_definition = False
                    break
                if tokens[j].kind == IDENT and v == "REQUIRES" \
                        and j + 1 < n and tokens[j + 1].value == "(":
                    gend = _find_matching(tokens, j + 1, "(", ")")
                    for g in tokens[j + 2:gend]:
                        if g.kind == IDENT and g.value != "this":
                            requires.append(g.value)
                    j = gend + 1
                    continue
                if tokens[j].kind == PUNCT and v == "(":
                    j = _find_matching(tokens, j, "(", ")") + 1
                    continue
                j += 1
            if is_definition and j < n and tokens[j].value == "{":
                body_close = _find_matching(tokens, j, "{", "}")
                body = tokens[j + 1:body_close]
                fn = {"name": qname.rsplit("::", 1)[-1], "qname": qname,
                      "line": t.line, "col": t.col, "requires": requires}
                fn.update(_analyze_body(body, requires))
                yield fn
                k = j + 1
                continue
        k += 1


def _extract_pool_tasks(tokens):
    """Lambda literals passed to parallel_for/parallel_chunks or to a
    `.run(`/`->run(` member whose receiver names a pool: the ThreadPool
    task bodies that blocking-in-worker roots its walk at."""
    out = []
    n = len(tokens)
    for k in range(n - 1):
        t = tokens[k]
        if t.kind != IDENT or tokens[k + 1].value != "(":
            continue
        if t.value in ("parallel_for", "parallel_chunks"):
            pass
        elif t.value == "run" and k >= 2 \
                and tokens[k - 1].value in (".", "->") \
                and tokens[k - 2].kind == IDENT \
                and "pool" in tokens[k - 2].value.lower():
            pass
        else:
            continue
        close = _find_matching(tokens, k + 1, "(", ")")
        j = k + 2
        while j < close:
            if tokens[j].value != "[":
                j += 1
                continue
            cap_end = _find_matching(tokens, j, "[", "]")
            b = cap_end + 1
            if b < close and tokens[b].value == "(":
                b = _find_matching(tokens, b, "(", ")") + 1
            steps = 0
            while b < close and tokens[b].value != "{" and steps < 12:
                b += 1
                steps += 1
            if b >= close or tokens[b].value != "{":
                j = cap_end + 1
                continue
            body_close = _find_matching(tokens, b, "{", "}")
            body = tokens[b + 1:body_close]
            task = {"line": tokens[j].line, "col": tokens[j].col,
                    "via": t.value}
            sub = _analyze_body(body, [])
            task["calls"] = sub["calls"]
            task["blocking_tokens"] = sub["blocking_tokens"]
            out.append(task)
            j = body_close + 1
    return out


def _extract_provides(tokens):
    """Names a file declares (types, usings, macros, functions, globals):
    the 'signature' used for unused-include and header-signature call
    resolution.  Over-providing is safe (conservative); namespace names
    are excluded so `support::` uses don't mark every support header
    used."""
    provides = set()
    n = len(tokens)
    k = 0
    while k < n:
        t = tokens[k]
        if t.kind == PP:
            m = re.match(r"#\s*define\s+([A-Za-z_]\w*)", t.value)
            if m:
                provides.add(m.group(1))
            k += 1
            continue
        if t.kind == IDENT and t.value in ("class", "struct", "enum",
                                           "union"):
            j = k + 1
            last = None
            while j < n:
                v = tokens[j]
                if v.kind == PUNCT and v.value in ("{", ";", ":", ",", ")",
                                                   "<", ">", "="):
                    break
                if v.kind == PUNCT and v.value == "(":
                    j = _find_matching(tokens, j, "(", ")") + 1
                    continue
                if v.kind == IDENT and v.value not in _NOT_DECL_NAMES:
                    last = v.value
                j += 1
            if last:
                provides.add(last)
            k = j
            continue
        if t.kind == IDENT and t.value == "using" and k + 2 < n \
                and tokens[k + 1].kind == IDENT \
                and tokens[k + 2].value == "=":
            provides.add(tokens[k + 1].value)
            k += 3
            continue
        if t.kind == IDENT and t.value == "typedef":
            j = k + 1
            last = None
            while j < n and tokens[j].value != ";":
                if tokens[j].kind == IDENT:
                    last = tokens[j].value
                j += 1
            if last:
                provides.add(last)
            k = j
            continue
        if t.kind == IDENT and t.value not in _NOT_DECL_NAMES and k > 0:
            prev = tokens[k - 1]
            nxt = tokens[k + 1] if k + 1 < n else None
            prev_ok = (prev.kind == IDENT
                       and prev.value not in ("namespace", "return", "new",
                                              "delete", "throw", "case",
                                              "goto", "else", "do",
                                              "sizeof", "co_return",
                                              "co_await", "co_yield")) \
                or (prev.kind == PUNCT and prev.value in ("&", "&&", "*", ">",
                                                          ">>", "~"))
            if prev_ok and nxt is not None and \
                    (nxt.value in ("(", "=", ";", ",", "{", "[", ")")
                     or nxt.kind == IDENT):
                provides.add(t.value)
        k += 1
    return provides


def _extract_fp_idents(tokens):
    """Identifiers declared with double/float (directly or via
    vector<double>-style template args): the typing oracle for
    fp-determinism's MAC check."""
    out = set()
    n = len(tokens)
    for k, t in enumerate(tokens):
        if t.kind != IDENT or t.value not in ("double", "float"):
            continue
        j = k + 1
        while j < n and tokens[j].value in _FP_DECL_SKIP:
            j += 1
        if j < n and tokens[j].kind == IDENT \
                and tokens[j].value not in _NOT_DECL_NAMES:
            out.add(tokens[j].value)
    return out


def _extract_mutex_decls(tokens):
    """`support::Mutex name;`-shaped declarations: the lock universe for
    lock-order.  References/pointers/returns are skipped."""
    out = []
    n = len(tokens)
    for k, t in enumerate(tokens):
        if t.kind != IDENT or t.value != "Mutex":
            continue
        prev = tokens[k - 1] if k > 0 else None
        if prev is not None and prev.kind == IDENT and \
                prev.value in ("class", "struct", "friend", "enum"):
            continue
        nxt = tokens[k + 1] if k + 1 < n else None
        after = tokens[k + 2] if k + 2 < n else None
        if nxt is None or nxt.kind != IDENT or nxt.value in _NOT_DECL_NAMES:
            continue
        if after is not None and after.value == "(":
            continue  # function returning Mutex / ctor shape
        out.append([nxt.line, nxt.value])
    return out


def extract_facts(text):
    """All per-file facts, JSON-serializable (cached keyed on sha256)."""
    tokens = cpplex.lex(text)
    includes = []
    idents = set()
    for t in tokens:
        if t.kind == PP:
            m = re.match(r'#\s*include\s+(["<])([^">]+)[">]', t.value)
            if m:
                includes.append([t.line, m.group(2), m.group(1) == '"'])
            idents.update(_PP_IDENT_RE.findall(t.value))
        elif t.kind == IDENT:
            idents.add(t.value)
    return {
        "includes": includes,
        "functions": list(_extract_functions(tokens)),
        "pool_tasks": _extract_pool_tasks(tokens),
        "idents": sorted(idents),
        "provides": sorted(_extract_provides(tokens)),
        "fp_idents": sorted(_extract_fp_idents(tokens)),
        "mutex_decls": _extract_mutex_decls(tokens),
    }


# ---------------------------------------------------------------------------
# Program: the whole-program graph

class Program:
    """Include graph + symbol/call graph over a file set.

    `files` maps virtual (repo-relative, '/'-separated) paths to absolute
    paths; `commands` maps TU virtual paths to their compile command (None
    for headers).  Facts come from the cache when the content hash
    matches, else from extract_facts."""

    def __init__(self, files, commands, cache_path=None):
        self.paths = dict(files)
        self.commands = dict(commands)
        self.facts = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._closure = {}
        self._provides_closure = {}
        self._fp_closure = {}
        self._resolve_memo = {}
        self._provset_memo = {}
        self._lock_memo = {}
        self._eff_acq = {}
        self.unresolved = []  # [rel, line, col, bare]
        self.weak_edges = 0

        cache = {"version": FACTS_VERSION, "files": {}}
        if cache_path and os.path.exists(cache_path):
            try:
                with open(cache_path, encoding="utf-8") as f:
                    loaded = json.load(f)
                if loaded.get("version") == FACTS_VERSION:
                    cache = loaded
            except (OSError, ValueError):
                pass
        dirty = False
        for rel, path in self.paths.items():
            with open(path, "rb") as f:
                raw = f.read()
            sha = hashlib.sha256(raw).hexdigest()
            entry = cache["files"].get(rel)
            if entry is not None and entry.get("sha") == sha:
                self.facts[rel] = entry["facts"]
                self.cache_hits += 1
            else:
                self.facts[rel] = extract_facts(
                    raw.decode("utf-8", errors="replace"))
                cache["files"][rel] = {"sha": sha, "facts": self.facts[rel]}
                self.cache_misses += 1
                dirty = True
        stale = set(cache["files"]) - set(self.paths)
        if stale:
            for rel in stale:
                del cache["files"][rel]
            dirty = True
        if cache_path and dirty:
            try:
                tmp = cache_path + ".tmp"
                with open(tmp, "w", encoding="utf-8") as f:
                    json.dump(cache, f)
                os.replace(tmp, cache_path)
            except OSError:
                pass

        # Resolved include edges: rel -> [(line, as_written, target|None)]
        self.inc = {}
        for rel, facts in self.facts.items():
            edges = []
            base = os.path.dirname(rel)
            for line, inc, quoted in facts["includes"]:
                target = None
                for cand in ("src/" + inc,
                             os.path.normpath(os.path.join(base, inc))
                             .replace(os.sep, "/")):
                    if cand in self.facts:
                        target = cand
                        break
                edges.append((line, inc, target))
            self.inc[rel] = edges

        # Definition index: bare name -> [(rel, fn_index)]
        self.defs = {}
        for rel, facts in self.facts.items():
            for i, fn in enumerate(facts["functions"]):
                self.defs.setdefault(fn["name"], []).append((rel, i))
        # Lock decl index: name -> [rel]
        self.lock_decls = {}
        for rel, facts in self.facts.items():
            for _line, name in facts["mutex_decls"]:
                self.lock_decls.setdefault(name, []).append(rel)

    def fn(self, ref):
        return self.facts[ref[0]]["functions"][ref[1]]

    def _provset(self, rel):
        if rel not in self._provset_memo:
            self._provset_memo[rel] = set(self.facts[rel]["provides"])
        return self._provset_memo[rel]

    def fn_id(self, ref):
        return f"{ref[0]}::{self.fn(ref)['qname']}"

    def closure(self, rel):
        """`rel` plus every file transitively reachable via resolved
        includes (cycle-safe)."""
        if rel in self._closure:
            return self._closure[rel]
        seen = set()
        stack = [rel]
        while stack:
            f = stack.pop()
            if f in seen:
                continue
            seen.add(f)
            for _line, _inc, target in self.inc.get(f, ()):
                if target is not None and target not in seen:
                    stack.append(target)
        self._closure[rel] = seen
        return seen

    def provides_closure(self, rel):
        if rel not in self._provides_closure:
            out = set()
            for f in self.closure(rel):
                out.update(self.facts[f]["provides"])
            self._provides_closure[rel] = out
        return self._provides_closure[rel]

    def fp_closure(self, rel):
        if rel not in self._fp_closure:
            out = set()
            for f in self.closure(rel):
                out.update(self.facts[f]["fp_idents"])
            self._fp_closure[rel] = out
        return self._fp_closure[rel]

    @staticmethod
    def _qname_compatible(call_q, def_q):
        if "::" not in call_q or "::" not in def_q:
            return True
        a = call_q.split("::")
        b = def_q.split("::")
        short, long_ = (a, b) if len(a) <= len(b) else (b, a)
        return long_[-len(short):] == short

    def resolve_call(self, caller_rel, bare, qname, line=0, col=0,
                     record=True, member=False):
        """Definition candidates for a call site.  Order: edge-ignored std
        member names drop; exact/compatible qualified match; same-file;
        header-signature (a shared header in both closures provides the
        name); weak fallback to all candidates.  A project-looking name
        with no definition anywhere is recorded as unresolved -- except
        member calls (std vocabulary / member function pointers) and
        names the caller's own file declares (local lambdas, functors)."""
        if bare in _EDGE_IGNORED:
            return ()
        key = (caller_rel, bare, qname)
        hit = self._resolve_memo.get(key)
        if hit is not None:
            return hit
        cands = self.defs.get(bare, ())
        if not cands:
            if record and not member and bare not in _EXTERNAL_NAMES \
                    and "std" not in qname.split("::") \
                    and not bare.startswith("_") \
                    and not _ALLCAPS_RE.match(bare) \
                    and bare not in self._provset(caller_rel):
                self.unresolved.append([caller_rel, line, col, bare])
            self._resolve_memo[key] = ()
            return ()
        if "::" in qname:
            qc = [d for d in cands
                  if self._qname_compatible(qname, self.fn(d)["qname"])]
            if qc:
                cands = qc
        same = [d for d in cands if d[0] == caller_rel]
        if same:
            self._resolve_memo[key] = tuple(same)
            return tuple(same)
        vis = self.closure(caller_rel)
        sig = []
        for d in cands:
            if d[0] in vis:
                sig.append(d)  # inline definition in an included header
                continue
            dvis = self.closure(d[0])
            if any(h in dvis and bare in self.facts[h]["provides"]
                   for h in vis):
                sig.append(d)  # d implements a header the caller includes
        if sig:
            cands = sig
        else:
            self.weak_edges += 1
        self._resolve_memo[key] = tuple(cands)
        return tuple(cands)

    def resolve_lock(self, rel, name):
        """Lock identity `declfile::name`: same-file declaration first,
        then include closure, then a unique global declaration; '?' when
        ambiguous or undeclared."""
        key = (rel, name)
        if key in self._lock_memo:
            return self._lock_memo[key]
        decls = self.lock_decls.get(name, ())
        out = None
        if rel in decls:
            out = f"{rel}::{name}"
        else:
            vis = self.closure(rel)
            near = sorted(d for d in decls if d in vis)
            if near:
                out = f"{near[0]}::{name}"
            elif len(decls) == 1:
                out = f"{decls[0]}::{name}"
            else:
                out = f"?::{name}"
        self._lock_memo[key] = out
        return out

    def effective_acquires(self, ref, _stack=None):
        """Lock ids acquired by `ref` directly or via any resolved
        callee (fixpoint with cycle guard)."""
        if ref in self._eff_acq:
            return self._eff_acq[ref]
        if _stack is None:
            _stack = set()
        if ref in _stack:
            return set()
        _stack.add(ref)
        fn = self.fn(ref)
        rel = ref[0]
        out = set()
        for _l, _c, name in fn["acquires"]:
            out.add(self.resolve_lock(rel, name))
        for l, c, bare, qname, mem in fn["calls"]:
            for tgt in self.resolve_call(rel, bare, qname, l, c,
                                         record=False):
                out |= self.effective_acquires(tgt, _stack)
        _stack.discard(ref)
        self._eff_acq[ref] = out
        return out


def layer_of(rel):
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def _stem(rel):
    return os.path.splitext(os.path.basename(rel))[0]


# ---------------------------------------------------------------------------
# Rules

def rule_layer_deps(program, layers, allow):
    allowed = layers.get("allowed", {})
    findings = []
    unknown_layers = set()
    for rel in sorted(program.facts):
        la = layer_of(rel)
        if la is None:
            continue
        if la not in allowed:
            if la not in unknown_layers:
                unknown_layers.add(la)
                findings.append(Finding(
                    "layer-deps", rel, 1, 1,
                    f"layer '{la}' is missing from scripts/lint/layers.json"
                    " -- every src/<layer>/ needs an allowed-edge entry"))
            continue
        ok = set(allowed[la]) | {la}
        for line, inc, target in program.inc[rel]:
            if target is None:
                continue
            lb = layer_of(target)
            if lb is None or lb in ok:
                continue
            findings.append(Finding(
                "layer-deps", rel, line, 1,
                f'#include "{inc}": layer \'{la}\' may not depend on '
                f"'{lb}' (allowed: {', '.join(sorted(ok))}) -- "
                "scripts/lint/layers.json is the normative ARCHITECTURE.md "
                "layer map; dependencies point strictly downward"))
    return findings


def rule_telemetry_hotpath_xtu(program, allow):
    stops = allow.get("telemetry-hotpath", {}).get("stop_functions", {})
    chains = {}
    work = []
    for rel in sorted(program.facts):
        if not rel.startswith("src/telemetry/"):
            continue
        for i, fn in enumerate(program.facts[rel]["functions"]):
            if fn["name"] in rl._HOTPATH_ROOTS:
                ref = (rel, i)
                if ref not in chains:
                    chains[ref] = fn["name"]
                    work.append(ref)
    while work:
        ref = work.pop()
        fn = program.fn(ref)
        for l, c, bare, qname, mem in fn["calls"]:
            if bare in stops:
                continue
            for tgt in program.resolve_call(ref[0], bare, qname, l, c,
                                            member=bool(mem)):
                if tgt not in chains:
                    chains[tgt] = f"{chains[ref]} -> {bare}"
                    work.append(tgt)
    findings = []
    seen = set()
    for ref, chain in chains.items():
        fn = program.fn(ref)
        rel = ref[0]
        for l, c, bare, _q, _m in fn["calls"]:
            if bare in rl._HOTPATH_FORBIDDEN_CALLS and bare not in stops:
                key = (rel, l, c)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    "telemetry-hotpath-xtu", rel, l, c,
                    f"`{bare}` reachable cross-TU from the telemetry "
                    f"emission path ({chain}): the record hot path must "
                    "not allocate, lock, block, or read ad-hoc clocks -- "
                    "route cold work through an allowlisted stop function "
                    "(scripts/lint/allowlists.json)"))
        for l, c, kind in fn["news"]:
            key = (rel, l, c)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "telemetry-hotpath-xtu", rel, l, c,
                f"`{kind}` reachable cross-TU from the telemetry emission "
                f"path ({chain}): the record hot path must not allocate "
                "or throw"))
    return findings


_FP_BAD_FLAGS = ("-ffast-math", "-funsafe-math-optimizations",
                 "-fassociative-math", "-Ofast")


def rule_fp_determinism(program, allow):
    ex = allow.get("fp-determinism", {}).get("exempt_paths", {})

    def exempt(rel):
        return any(rel.startswith(p) for p in ex)

    findings = []
    for rel in sorted(program.commands):
        cmd = program.commands[rel]
        if cmd is None:
            continue
        if "-ffp-contract=off" not in cmd:
            findings.append(Finding(
                "fp-determinism", rel, 1, 1,
                "compile command lacks -ffp-contract=off: the PR 8 bit-pin "
                "convention requires contraction off project-wide so "
                "scalar results are ISA-portable bit-for-bit"))
        for bad in _FP_BAD_FLAGS:
            if bad in cmd.split():
                findings.append(Finding(
                    "fp-determinism", rel, 1, 1,
                    f"compile command carries {bad}: value-unsafe math "
                    "breaks the fixed-seed bit pins"))
    for rel in sorted(program.facts):
        if not rel.startswith("src/") or exempt(rel):
            continue
        fpids = None
        for fn in program.facts[rel]["functions"]:
            for mac in fn["macs"]:
                if fpids is None:
                    fpids = program.fp_closure(rel)
                if mac["fp_literal"] or not fpids.isdisjoint(mac["idents"]):
                    findings.append(Finding(
                        "fp-determinism", rel, mac["line"], mac["col"],
                        f"floating-point multiply-accumulate loop in "
                        f"`{fn['qname']}`: an FMA-eligible reduction "
                        "outside src/support/simd*/vecmath* -- route it "
                        "through a KernelTable/vecmath kernel (bit-pinned "
                        "per backend) or allowlist it with a written "
                        "justification"))
    return findings


def _lock_edges(program):
    """The global acquires-while-holding multigraph:
    {(holder, acquired): [(rel, line, col, note), ...]}."""
    edges = {}

    def add(a, b, rel, line, col, note):
        edges.setdefault((a, b), []).append((rel, line, col, note))

    for rel in sorted(program.facts):
        for i, fn in enumerate(program.facts[rel]["functions"]):
            for holder, l, c, name in fn["held"]:
                add(program.resolve_lock(rel, holder),
                    program.resolve_lock(rel, name),
                    rel, l, c, f"in {fn['qname']}")
            for holder, l, c, callee in fn["held_calls"]:
                for tgt in program.resolve_call(rel, callee,
                                                callee, l, c, record=False):
                    for acq in program.effective_acquires(tgt):
                        add(program.resolve_lock(rel, holder), acq,
                            rel, l, c,
                            f"in {fn['qname']} via {callee}()")
    return edges


def rule_lock_order(program, allow):
    conf = allow.get("lock-order", {}).get("locks", {})
    findings = []
    discovered = {}
    for rel in sorted(program.facts):
        if not rel.startswith("src/"):
            continue
        for line, name in program.facts[rel]["mutex_decls"]:
            discovered[f"{rel}::{name}"] = (rel, line)
    for lock_id, (rel, line) in sorted(discovered.items()):
        if lock_id not in conf:
            findings.append(Finding(
                "lock-order", rel, line, 1,
                f"lock `{lock_id}` is not documented in the lock-order "
                "hierarchy (scripts/lint/allowlists.json): every "
                "support::Mutex needs a may_acquire entry (usually empty "
                "-- leaf) with a written justification"))
    for lock_id in sorted(conf):
        if lock_id not in discovered:
            findings.append(Finding(
                "lock-order", "scripts/lint/allowlists.json", 1, 1,
                f"stale lock-order hierarchy entry `{lock_id}`: no such "
                "support::Mutex declaration exists any more"))
    edges = _lock_edges(program)
    for (a, b), sites in sorted(edges.items()):
        rel, line, col, note = sites[0]
        if a == b:
            findings.append(Finding(
                "lock-order", rel, line, col,
                f"`{a}` acquired while already held ({note}): "
                "self-deadlock on the non-recursive support::Mutex"))
            continue
        may = set(conf.get(a, {}).get("may_acquire", ()))
        if b not in may:
            findings.append(Finding(
                "lock-order", rel, line, col,
                f"`{b}` acquired while holding `{a}` ({note}): the "
                "documented hierarchy does not sanction this edge -- "
                "either restructure to scoped release-then-acquire "
                "(the parallel.cpp idiom) or extend may_acquire in "
                "scripts/lint/allowlists.json with a justification"))
    adj = {}
    for (a, b) in edges:
        if a != b:
            adj.setdefault(a, set()).add(b)
    state = {}
    for start in sorted(adj):
        stack = [(start, iter(sorted(adj.get(start, ()))))]
        if state.get(start):
            continue
        state[start] = 1
        path = [start]
        while stack:
            node, it = stack[-1]
            nxt = next(it, None)
            if nxt is None:
                state[node] = 2
                stack.pop()
                path.pop()
                continue
            if state.get(nxt) == 1:
                cyc = path[path.index(nxt):] + [nxt]
                rel, line, col, _n = edges[(node, nxt)][0]
                findings.append(Finding(
                    "lock-order", rel, line, col,
                    "lock-order cycle: " + " -> ".join(cyc) +
                    " -- two threads taking these in opposite order "
                    "deadlock; break the cycle with scoped "
                    "release-then-acquire"))
            elif state.get(nxt) is None:
                state[nxt] = 1
                path.append(nxt)
                stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
        continue
    return findings


def rule_blocking_in_worker(program, allow):
    sched = allow.get("blocking-in-worker", {}).get("scheduler_paths", {})

    def in_sched(rel):
        return any(rel.startswith(p) for p in sched)

    findings = []
    seen = set()

    def flag(rel, l, c, what, chain):
        key = (rel, l, c)
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            "blocking-in-worker", rel, l, c,
            f"`{what}` reachable from a ThreadPool task body ({chain}): "
            "worker tasks must stay non-blocking (no sleeps, condvar "
            "waits, joins, process spawns, or file/socket IO) -- move "
            "the blocking work to the caller or behind the pool's own "
            "scheduler (allowlisted scheduler_paths)"))

    chains = {}
    work = []

    def enqueue(rel, l, c, bare, qname, mem, chain):
        targets = program.resolve_call(rel, bare, qname, l, c,
                                       member=bool(mem))
        if bare in _BLOCKING_CALLS:
            # A blocking name that resolves to a project definition
            # outside the scheduler is a project function that merely
            # shares the name (support::Rng::fork, not fork(2)): descend
            # into it instead.  Unresolvable names are libc/std blocking
            # primitives, and scheduler-defined ones (CondVar::wait,
            # ThreadPool::join) block by design -- both flag at the call
            # site.
            if not targets or all(in_sched(t[0]) for t in targets):
                flag(rel, l, c, bare, chain)
                return
        for tgt in targets:
            if tgt not in chains and not in_sched(tgt[0]):
                chains[tgt] = f"{chain} -> {program.fn(tgt)['qname']}"
                work.append(tgt)

    for rel in sorted(program.facts):
        if in_sched(rel):
            continue
        for task in program.facts[rel]["pool_tasks"]:
            chain = f"task@{rel}:{task['line']}"
            for l, c, name in task["blocking_tokens"]:
                flag(rel, l, c, name, chain)
            for l, c, bare, qname, mem in task["calls"]:
                enqueue(rel, l, c, bare, qname, mem, chain)
    while work:
        ref = work.pop()
        fn = program.fn(ref)
        rel = ref[0]
        chain = chains[ref]
        for l, c, name in fn["blocking_tokens"]:
            flag(rel, l, c, name, chain)
        for l, c, bare, qname, mem in fn["calls"]:
            enqueue(rel, l, c, bare, qname, mem, chain)
    return findings


def rule_unused_include(program, allow):
    ex = allow.get("unused-include", {}).get("exempt_paths", {})
    findings = []
    for rel in sorted(program.facts):
        if not rel.startswith("src/") or \
                any(rel.startswith(p) for p in ex):
            continue
        uses = set(program.facts[rel]["idents"])
        for line, inc, target in program.inc[rel]:
            if target is None or _stem(target) == _stem(rel):
                continue
            # IWYU semantics: the *directly* included header must itself
            # provide a referenced name -- names satisfied only by its
            # nested includes mean the nested header is the one to
            # include.
            provs = set(program.facts[target]["provides"])
            if not provs:
                continue
            if provs.isdisjoint(uses):
                sample = ", ".join(sorted(provs)[:3])
                findings.append(Finding(
                    "unused-include", rel, line, 1,
                    f'#include "{inc}" provides no name this file '
                    f"references (IWYU-lite; it provides e.g. {sample}) "
                    "-- drop it or allowlist with a justification"))
    return findings


def run_rules(program, rules, allow, layers):
    findings = []
    if "layer-deps" in rules:
        findings += rule_layer_deps(program, layers, allow)
    if "telemetry-hotpath-xtu" in rules:
        findings += rule_telemetry_hotpath_xtu(program, allow)
    if "fp-determinism" in rules:
        findings += rule_fp_determinism(program, allow)
    if "lock-order" in rules:
        findings += rule_lock_order(program, allow)
    if "blocking-in-worker" in rules:
        findings += rule_blocking_in_worker(program, allow)
    if "unused-include" in rules:
        findings += rule_unused_include(program, allow)
    return findings


def check_stale_path_entries(program, allow):
    """Path-prefix allowlist entries for the analyzer's own rules must
    keep matching real files; a prefix nothing starts with is a dead
    justification (the lock-hierarchy analogue lives in rule_lock_order,
    and run_lints.py owns the single-TU rules' staleness)."""
    findings = []
    keys = (("fp-determinism", "exempt_paths"),
            ("blocking-in-worker", "scheduler_paths"),
            ("unused-include", "exempt_paths"))
    for rule, key in keys:
        for prefix, why in allow.get(rule, {}).get(key, {}).items():
            if any(rel.startswith(prefix) for rel in program.facts):
                continue
            findings.append(Finding(
                rule, "scripts/lint/allowlists.json", 1, 1,
                f"stale {key} entry `{prefix}`: matches no analyzed "
                f"file -- delete it (justification was: {why!r})"))
    return findings


# ---------------------------------------------------------------------------
# Tree / fixture discovery

def tree_program(build_dir, cache_path):
    cc_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(cc_path):
        sys.exit(f"analyzer.py: {cc_path} not found -- configure with "
                 "cmake first or pass --build-dir")
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    files = {}
    commands = {}
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        rel = rl.rel_to_repo(path)
        cmd = entry.get("command") or " ".join(entry.get("arguments", ()))
        if rel.startswith("src/"):
            files[rel] = path
            commands[rel] = cmd
        elif rel.startswith(("bench/", "apps/")):
            # Graph analysis stays src/-scoped, but the FP flag check
            # covers every TU whose output feeds the pinned perf series.
            commands[rel] = cmd
    for root, _dirs, names in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in names:
            if name.endswith((".hpp", ".h", ".hh", ".hxx")):
                path = os.path.join(root, name)
                files[rl.rel_to_repo(path)] = path
    commands = {rel: cmd for rel, cmd in commands.items()
                if rel in files or not rel.startswith("src/")}
    return Program(files, commands, cache_path)


def fixture_program(root):
    """A Program over a fixture tree: every *.cpp under <root>/src is a
    TU with a synthesized compile command (-ffp-contract=off unless the
    name contains 'noflag')."""
    files = {}
    commands = {}
    src = os.path.join(root, "src")
    for walk_root, _dirs, names in os.walk(src):
        for name in names:
            path = os.path.join(walk_root, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            files[rel] = path
            if name.endswith(".cpp"):
                flag = "" if "noflag" in name else " -ffp-contract=off"
                commands[rel] = (f"c++ -I{src} -std=c++20 -O2{flag} "
                                 f"-c {path}")
    return Program(files, commands, cache_path=None)


def fixture_config(root, name, default):
    path = os.path.join(root, name)
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    return default


def load_layers():
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "layers.json")
    with open(path, encoding="utf-8") as f:
        return json.load(f)


# ---------------------------------------------------------------------------
# Self-test, graph dump, explain, summary

def self_test(fixtures_dir):
    failures = 0
    for rule in RULES:
        for kind in ("bad", "clean"):
            root = os.path.join(fixtures_dir, rule.replace("-", "_"), kind)
            if not os.path.isdir(root):
                print(f"self-test: {rule}/{kind}: fixture tree missing")
                failures += 1
                continue
            program = fixture_program(root)
            allow = fixture_config(root, "allowlists.json", {})
            layers = fixture_config(root, "layers.json", {"allowed": {}})
            findings = [f for f in run_rules(program, (rule,), allow,
                                             layers) if f.rule == rule]
            if kind == "bad":
                if findings:
                    print(f"self-test: {rule}/bad: flagged "
                          f"({len(findings)} finding(s)) -- ok")
                else:
                    print(f"self-test: {rule}/bad: expected a [{rule}] "
                          "finding, got none")
                    failures += 1
            else:
                if findings:
                    print(f"self-test: {rule}/clean: expected clean, got:")
                    for f in findings:
                        print(f"  {f}")
                    failures += 1
                else:
                    print(f"self-test: {rule}/clean: clean -- ok")
    if failures:
        print(f"self-test: {failures} fixture expectation(s) failed")
        return 1
    print("self-test: all fixture expectations hold")
    return 0


def graph_dump(program, out):
    call_edges = set()
    for rel in sorted(program.facts):
        for fn in program.facts[rel]["functions"]:
            for l, c, bare, qname, mem in fn["calls"]:
                for tgt in program.resolve_call(rel, bare, qname, l, c,
                                                member=bool(mem)):
                    call_edges.add((f"{rel}::{fn['qname']}",
                                    program.fn_id(tgt)))
    lock_e = _lock_edges(program)
    data = {
        "files": len(program.facts),
        "include_edges": [
            [rel, target, line]
            for rel in sorted(program.inc)
            for line, _inc, target in program.inc[rel] if target],
        "call_edges": sorted(call_edges),
        "unresolved_calls": program.unresolved,
        "weak_edges": program.weak_edges,
        "locks": {f"{rel}::{name}": line
                  for rel in sorted(program.facts)
                  for line, name in program.facts[rel]["mutex_decls"]},
        "lock_edges": [[a, b, sites[0][0], sites[0][1]]
                       for (a, b), sites in sorted(lock_e.items())],
        "pool_task_roots": [
            [rel, t["line"], t["via"]]
            for rel in sorted(program.facts)
            for t in program.facts[rel]["pool_tasks"]],
    }
    text = json.dumps(data, indent=1)
    if out == "-":
        print(text)
    else:
        with open(out, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"analyzer.py: graph dumped to {out}")


def explain(program, allow, layers, query):
    if ":" not in query:
        print(f"explain: expected <rule>:<symbol>, got {query!r}")
        return 2
    rule, sym = query.split(":", 1)
    if rule == "layer-deps":
        la = layer_of(sym)
        allowed = layers.get("allowed", {})
        print(f"{sym}: layer '{la}', allowed deps: "
              f"{sorted(set(allowed.get(la, ())) | {la})}")
        for line, inc, target in program.inc.get(sym, ()):
            lb = layer_of(target) if target else None
            print(f"  line {line}: include {inc} -> "
                  f"{target or '<external>'} (layer {lb})")
        return 0
    if rule in ("telemetry-hotpath-xtu", "blocking-in-worker"):
        if rule == "telemetry-hotpath-xtu":
            stops = allow.get("telemetry-hotpath", {}).get(
                "stop_functions", {})
            chains = {}
            work = []
            for rel in sorted(program.facts):
                if not rel.startswith("src/telemetry/"):
                    continue
                for i, fn in enumerate(program.facts[rel]["functions"]):
                    if fn["name"] in rl._HOTPATH_ROOTS:
                        chains[(rel, i)] = fn["name"]
                        work.append((rel, i))
            while work:
                ref = work.pop()
                for l, c, bare, qname, mem in program.fn(ref)["calls"]:
                    if bare in stops:
                        continue
                    for tgt in program.resolve_call(ref[0], bare, qname,
                                                    record=False):
                        if tgt not in chains:
                            chains[tgt] = f"{chains[ref]} -> {bare}"
                            work.append(tgt)
        else:
            sched = allow.get("blocking-in-worker", {}).get(
                "scheduler_paths", {})
            chains = {}
            work = []
            for rel in sorted(program.facts):
                if any(rel.startswith(p) for p in sched):
                    continue
                for t in program.facts[rel]["pool_tasks"]:
                    for l, c, bare, qname, mem in t["calls"]:
                        for tgt in program.resolve_call(rel, bare, qname,
                                                        record=False):
                            if tgt not in chains and not any(
                                    tgt[0].startswith(p) for p in sched):
                                chains[tgt] = (f"task@{rel}:{t['line']} -> "
                                               f"{program.fn(tgt)['qname']}")
                                work.append(tgt)
            while work:
                ref = work.pop()
                for l, c, bare, qname, mem in program.fn(ref)["calls"]:
                    if bare in _BLOCKING_CALLS:
                        continue
                    for tgt in program.resolve_call(ref[0], bare, qname,
                                                    record=False):
                        if tgt not in chains and not any(
                                tgt[0].startswith(p) for p in sched):
                            chains[tgt] = (f"{chains[ref]} -> "
                                           f"{program.fn(tgt)['qname']}")
                            work.append(tgt)
        hits = [(ref, chain) for ref, chain in sorted(chains.items())
                if program.fn(ref)["name"] == sym
                or program.fn(ref)["qname"] == sym]
        if not hits:
            print(f"{sym}: not reachable under {rule}")
        for ref, chain in hits:
            print(f"{program.fn_id(ref)} ({ref[0]}:"
                  f"{program.fn(ref)['line']}): reachable via {chain}")
        return 0
    if rule == "lock-order":
        edges = _lock_edges(program)
        conf = allow.get("lock-order", {}).get("locks", {})
        matches = [lid for lid in
                   {f"{rel}::{name}" for rel in program.facts
                    for _l, name in program.facts[rel]["mutex_decls"]}
                   if lid == sym or lid.endswith("::" + sym)]
        if not matches:
            print(f"{sym}: no support::Mutex declaration matches")
            return 0
        for lid in sorted(matches):
            doc = conf.get(lid)
            print(f"{lid}: documented={'yes' if doc else 'NO'}"
                  + (f", may_acquire={doc.get('may_acquire')}" if doc
                     else ""))
            for (a, b), sites in sorted(edges.items()):
                if lid in (a, b):
                    rel, line, col, note = sites[0]
                    print(f"  edge {a} -> {b} at {rel}:{line}:{col} "
                          f"({note})")
        return 0
    if rule == "fp-determinism":
        cmd = program.commands.get(sym)
        if cmd is not None:
            print(f"{sym}: -ffp-contract=off "
                  f"{'present' if '-ffp-contract=off' in cmd else 'MISSING'}")
        for fn in program.facts.get(sym, {}).get("functions", ()):
            for mac in fn["macs"]:
                fp = (mac["fp_literal"]
                      or not program.fp_closure(sym).isdisjoint(
                          mac["idents"]))
                print(f"  {sym}:{mac['line']}: MAC loop in {fn['qname']} "
                      f"(idents {mac['idents']}, fp={'yes' if fp else 'no'})")
        return 0
    if rule == "unused-include":
        uses = set(program.facts.get(sym, {}).get("idents", ()))
        for line, inc, target in program.inc.get(sym, ()):
            if target is None:
                print(f"  line {line}: {inc} -> <external>")
                continue
            provs = program.provides_closure(target)
            used = sorted(provs & uses)[:5]
            print(f"  line {line}: {inc} -> {target}: "
                  + (f"used via {used}" if used else "UNUSED"))
        return 0
    print(f"explain: unknown rule {rule!r}")
    return 2


def write_summary_md(path, per_rule, program, elapsed, budget=5.0):
    lines = ["### fairbfl-analyzer", "",
             "| rule | findings | status |", "|---|---:|---|"]
    for rule in RULES:
        n = per_rule.get(rule, 0)
        status = "clean" if n == 0 else (
            "report-only" if rule == "unused-include" else "**FAIL**")
        lines.append(f"| {rule} | {n} | {status} |")
    lines.append("")
    lines.append(
        f"{len(program.facts)} files ({program.cache_hits} cached, "
        f"{program.cache_misses} extracted), "
        f"{len(set((u[0], u[3]) for u in program.unresolved))} unresolved "
        f"call name(s), {program.weak_edges} weak edge(s); runtime "
        f"**{elapsed:.2f}s** (budget {budget:.0f}s"
        f"{' -- OVER' if elapsed > budget else ''})")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Driver

def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--rule", action="append", choices=RULES)
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--fixtures-dir",
                        default=os.path.join(REPO_ROOT, "tests",
                                             "analyzer_fixtures"))
    parser.add_argument("--graph-dump", metavar="FILE",
                        help="write the graph as JSON ('-' for stdout)")
    parser.add_argument("--explain", metavar="RULE:SYMBOL")
    parser.add_argument("--strict", action="store_true",
                        help="unused-include findings fail the run")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--summary-md", metavar="FILE",
                        help="write a per-rule markdown summary table")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.fixtures_dir)

    t0 = time.monotonic()
    allow = rl.load_allowlists()
    layers = load_layers()
    cache_path = None if args.no_cache else os.path.join(
        args.build_dir, "analyzer_cache.json")
    program = tree_program(args.build_dir, cache_path)

    if args.explain:
        return explain(program, allow, layers, args.explain)

    rules = tuple(args.rule) if args.rule else RULES
    findings = run_rules(program, rules, allow, layers)
    findings += check_stale_path_entries(program, allow)
    if args.graph_dump:
        graph_dump(program, args.graph_dump)

    enforcing = []
    for f in findings:
        if f.rule == "unused-include" and not args.strict:
            print(str(f).replace(": error: ", ": warning: ", 1))
        else:
            print(f)
            enforcing.append(f)
    elapsed = time.monotonic() - t0
    per_rule = {}
    for f in findings:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    if args.summary_md:
        write_summary_md(args.summary_md, per_rule, program, elapsed)
    unresolved_names = sorted(set(u[3] for u in program.unresolved))
    note = ""
    if unresolved_names:
        shown = ", ".join(unresolved_names[:15])
        if len(unresolved_names) > 15:
            shown += ", ..."
        note = (f"; {len(unresolved_names)} unresolved call name(s) "
                f"[{shown}] (see --graph-dump)")
    print(f"analyzer.py: {len(program.facts)} files "
          f"({program.cache_hits} cached), {len(rules)} rule(s), "
          f"{len(enforcing)} finding(s) "
          f"({len(findings) - len(enforcing)} report-only), "
          f"{elapsed:.2f}s{note}",
          file=sys.stderr if enforcing else sys.stdout)
    return 1 if enforcing else 0


if __name__ == "__main__":
    sys.exit(main())
