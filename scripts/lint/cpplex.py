"""Minimal C++ lexer for the project lint rules.

Produces a token stream with comments stripped and string/char literals
collapsed to single STRING/CHAR tokens, so rules never match inside text.
This is deliberately a *lexical* engine, not a parser: the rules in
run_lints.py operate on token patterns (plus a heuristic function-body
extractor for the reachability rule), which keeps the linter dependency-
free -- it runs on a bare python3, no libclang/clang-query needed.  The
rule semantics are declarative enough that an AST engine could replace
this module without touching the rule definitions; until the toolchain
ships clang python bindings everywhere, lexical matching plus the fixture
self-tests (tests/lint_fixtures) is the contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
PP = "pp"  # one whole preprocessor directive line (continuations folded)


@dataclass
class Token:
    kind: str
    value: str
    line: int
    col: int


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*")
# Longest-first so '::' lexes as one token, '...' as one token, etc.
_PUNCTS = [
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
]


def lex(text: str) -> list[Token]:
    """Tokenizes C++ source text; never raises on malformed input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        # Whitespace
        if c in " \t\r\n\f\v":
            advance(1)
            continue
        # Line comment
        if text.startswith("//", i):
            while i < n and text[i] != "\n":
                advance(1)
            continue
        # Block comment
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            advance((end + 2 if end != -1 else n) - i)
            continue
        # Preprocessor directive: fold up to the unescaped newline
        if c == "#" and (not tokens or tokens[-1].line != line):
            start, start_line, start_col = i, line, col
            while i < n:
                if text[i] == "\n" and not text[start:i].rstrip().endswith(
                        "\\"):
                    break
                advance(1)
            tokens.append(
                Token(PP, " ".join(text[start:i].split()), start_line,
                      start_col))
            continue
        # Raw string literal
        m = re.match(r'(?:u8|u|U|L)?R"([^()\\ ]*)\(', text[i:])
        if m:
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            tokens.append(Token(STRING, "<raw>", line, col))
            advance((end + len(closer) if end != -1 else n) - i)
            continue
        # String / char literal (with encoding prefixes)
        m = re.match(r"(?:u8|u|U|L)?(['\"])", text[i:])
        if m:
            quote = m.group(1)
            j = i + m.end()
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            tokens.append(
                Token(STRING if quote == '"' else CHAR, "<lit>", line, col))
            advance(min(j + 1, n) - i)
            continue
        # Identifier / keyword
        m = _IDENT_RE.match(text, i)
        if m:
            tokens.append(Token(IDENT, m.group(0), line, col))
            advance(len(m.group(0)))
            continue
        # Number (pp-number, loosely)
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUMBER_RE.match(text, i)
            tokens.append(Token(NUMBER, m.group(0), line, col))
            advance(len(m.group(0)))
            continue
        # Punctuation
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line, col))
                advance(len(p))
                break
        else:
            tokens.append(Token(PUNCT, c, line, col))
            advance(1)
    return tokens


def qualified_at(tokens: list[Token], index: int) -> str:
    """The `a::b::c` qualified name whose *last* identifier sits at
    `index`; walks `::`-joined identifiers leftwards."""
    parts = [tokens[index].value]
    j = index
    while (j >= 2 and tokens[j - 1].kind == PUNCT
           and tokens[j - 1].value == "::" and tokens[j - 2].kind == IDENT):
        parts.append(tokens[j - 2].value)
        j -= 2
    return "::".join(reversed(parts))


def match_qualified(tokens: list[Token], index: int, name: str) -> bool:
    """True when the qualified name ending at `index` ends with `name`
    (e.g. name='std::mutex' matches both `std::mutex` and
    `::std::mutex`)."""
    q = qualified_at(tokens, index)
    return q == name or q.endswith("::" + name)
