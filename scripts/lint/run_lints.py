#!/usr/bin/env python3
"""Project lint pass: machine-enforces the repo's hand-enforced conventions.

Rules (each with a per-rule allowlist in allowlists.json):

  raw-sync            no std::mutex / std::thread / std::lock_guard /
                      std::condition_variable (or their headers) outside
                      src/support/ -- concurrency goes through the
                      annotated support::Mutex/MutexLock/CondVar wrappers
                      or the ThreadPool, so clang -Wthread-safety can see
                      every lock in the tree.
  rng-determinism     no rand()/srand(), std::random_device, or
                      argless-seeded std engines outside support/rng --
                      all randomness derives from the experiment seed via
                      support::Rng (fixed-seed runs stay bit-for-bit).
  catch-swallow       no `catch (...)` in src/ that swallows without
                      rethrowing (or capturing via std::current_exception
                      for a later rethrow).
  simd-isolation      no x86 intrinsic headers (<immintrin.h> and
                      friends) or _mm*/__m* intrinsics outside
                      src/support/simd* -- ISA-specific code lives behind
                      the runtime-dispatched KernelTable
                      (support/simd.hpp), keeping every other TU portable
                      and the scalar bit-pins the default.
  telemetry-hotpath   no allocation (new/malloc/containers growing), no
                      lock, no ad-hoc std::chrono::*::now(), and no throw
                      reachable from the telemetry emission paths
                      (telemetry::Span begin/close, counter_add,
                      counter_max) -- the lock-free ring guarantee,
                      checked by intra-file call-graph reachability with
                      allowlisted cold paths (buffer-full self-flush,
                      first-use adopt, label interning).

Usage:
  run_lints.py --build-dir build            # lint the tree (TU set from
                                            # compile_commands.json + src
                                            # headers); exit 1 on findings
  run_lints.py --files a.cpp b.cpp          # lint specific files
  run_lints.py --self-test                  # fixture suite: every rule
                                            # must flag its bad fixture
                                            # and pass the clean ones
  run_lints.py --rule raw-sync --files f    # restrict to one rule

Engine: the dependency-free lexical matcher in cpplex.py (see its module
docstring for why, and for the AST-engine upgrade path).  Diagnostics are
gcc-style `file:line:col: error: [rule] message` so editors and CI
annotate them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpplex  # noqa: E402
from cpplex import IDENT, PP, PUNCT, Token  # noqa: E402

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: error: "
                f"[{self.rule}] {self.message}")


# --------------------------------------------------------------------------
# Shared token helpers

_KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "new", "delete", "throw",
    "noexcept", "assert",
}


def _calls(tokens: list[Token]):
    """Yields (index, name) for every identifier directly followed by '('
    -- call expressions, constructor-style casts, and declarations of the
    form `Type name(arg)` (the last one is deliberate: for the lock types
    it IS the acquisition site)."""
    for k in range(len(tokens) - 1):
        t, nxt = tokens[k], tokens[k + 1]
        if (t.kind == IDENT and t.value not in _KEYWORDS_NOT_CALLS
                and nxt.kind == PUNCT and nxt.value == "("):
            yield k, t.value


def _find_matching(tokens: list[Token], start: int, open_: str,
                   close: str) -> int:
    """Index of the token closing the bracket opened at `start` (which
    must hold `open_`); len(tokens) if unbalanced."""
    depth = 0
    for k in range(start, len(tokens)):
        v = tokens[k].value
        if tokens[k].kind == PUNCT:
            if v == open_:
                depth += 1
            elif v == close:
                depth -= 1
                if depth == 0:
                    return k
    return len(tokens)


# --------------------------------------------------------------------------
# Rule: raw-sync

_RAW_SYNC_TYPES = {
    "std::mutex", "std::timed_mutex", "std::recursive_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::thread", "std::jthread",
    "std::lock_guard", "std::unique_lock", "std::scoped_lock",
    "std::shared_lock", "std::condition_variable",
    "std::condition_variable_any", "std::call_once", "std::once_flag",
    "std::async",
}
_RAW_SYNC_HEADERS = {"<mutex>", "<thread>", "<shared_mutex>",
                     "<condition_variable>", "<future>"}


def rule_raw_sync(path: str, tokens: list[Token]) -> list[Finding]:
    out = []
    for k, t in enumerate(tokens):
        if t.kind == PP and t.value.startswith("#include"):
            header = t.value.split("#include", 1)[1].strip()
            if header in _RAW_SYNC_HEADERS:
                out.append(
                    Finding(
                        "raw-sync", path, t.line, t.col,
                        f"raw concurrency header {header}: use "
                        "support/sync.hpp (annotated Mutex/MutexLock/"
                        "CondVar) or support/parallel.hpp instead"))
        elif t.kind == IDENT:
            for name in _RAW_SYNC_TYPES:
                if t.value == name.rsplit("::", 1)[1] and \
                        cpplex.match_qualified(tokens, k, name):
                    out.append(
                        Finding(
                            "raw-sync", path, t.line, t.col,
                            f"{name} outside src/support/: the analysis "
                            "cannot see std primitives -- use the "
                            "annotated support::Mutex/MutexLock/CondVar "
                            "(support/sync.hpp) or support::ThreadPool"))
                    break
    return out


# --------------------------------------------------------------------------
# Rule: rng-determinism

_RNG_ENGINES = {"std::mt19937", "std::mt19937_64", "std::minstd_rand",
                "std::minstd_rand0", "std::default_random_engine",
                "std::ranlux24", "std::ranlux48", "std::knuth_b"}


def rule_rng_determinism(path: str, tokens: list[Token]) -> list[Finding]:
    out = []
    for k, t in enumerate(tokens):
        if t.kind != IDENT:
            continue
        if t.value in ("rand", "srand") and k + 1 < len(tokens) \
                and tokens[k + 1].value == "(" \
                and (k == 0 or tokens[k - 1].value not in ("::", ".", "->")
                     or cpplex.match_qualified(tokens, k, "std::" + t.value)):
            out.append(
                Finding(
                    "rng-determinism", path, t.line, t.col,
                    f"{t.value}() breaks seed determinism: draw from a "
                    "support::Rng stream forked off the experiment seed"))
        elif t.value == "random_device" and \
                cpplex.match_qualified(tokens, k, "std::random_device"):
            out.append(
                Finding(
                    "rng-determinism", path, t.line, t.col,
                    "std::random_device is non-deterministic by design: "
                    "seed a support::Rng from the experiment config "
                    "instead"))
        elif t.value in {n.rsplit("::", 1)[1] for n in _RNG_ENGINES} and \
                any(cpplex.match_qualified(tokens, k, n)
                    for n in _RNG_ENGINES):
            # Flag only *argless* construction: `std::mt19937 g;`,
            # `std::mt19937()`, `std::mt19937{}` -- the default seed is a
            # process-invariant constant, which silently decouples the
            # stream from the experiment seed.  Seeded forms pass (though
            # support::Rng is still the idiomatic source).
            nxt = tokens[k + 1] if k + 1 < len(tokens) else None
            after = tokens[k + 2] if k + 2 < len(tokens) else None
            third = tokens[k + 3] if k + 3 < len(tokens) else None
            argless = False
            if nxt is not None and nxt.kind == IDENT:
                argless = after is not None and (
                    after.value in (";", ",", ")") or
                    (after.value == "(" and third is not None
                     and third.value == ")") or
                    (after.value == "{" and third is not None
                     and third.value == "}"))
            elif nxt is not None and nxt.value in ("(", "{"):
                close = ")" if nxt.value == "(" else "}"
                argless = after is not None and after.value == close
            if argless:
                out.append(
                    Finding(
                        "rng-determinism", path, t.line, t.col,
                        "argless std engine construction uses the fixed "
                        "default seed: derive the stream from the "
                        "experiment seed via support::Rng"))
    return out


# --------------------------------------------------------------------------
# Rule: catch-swallow

_RETHROW_MARKERS = {"throw", "current_exception", "rethrow_exception",
                    "rethrow_if_nested"}


def rule_catch_swallow(path: str, tokens: list[Token]) -> list[Finding]:
    out = []
    k = 0
    while k < len(tokens):
        t = tokens[k]
        if t.kind == IDENT and t.value == "catch" and k + 1 < len(tokens) \
                and tokens[k + 1].value == "(":
            close = _find_matching(tokens, k + 1, "(", ")")
            params = tokens[k + 2:close]
            is_catch_all = any(p.kind == PUNCT and p.value == "..."
                               for p in params)
            body_open = close + 1
            if is_catch_all and body_open < len(tokens) \
                    and tokens[body_open].value == "{":
                body_close = _find_matching(tokens, body_open, "{", "}")
                body = tokens[body_open + 1:body_close]
                if not any(b.kind == IDENT and b.value in _RETHROW_MARKERS
                           for b in body):
                    out.append(
                        Finding(
                            "catch-swallow", path, t.line, t.col,
                            "catch (...) swallows the exception: rethrow "
                            "(`throw;`), capture it via "
                            "std::current_exception for a later rethrow, "
                            "or narrow the handler to the types you can "
                            "actually handle"))
                k = body_open
                continue
        k += 1
    return out


# --------------------------------------------------------------------------
# Rule: simd-isolation

# x86 intrinsic headers (umbrella and per-ISA) -- none may appear outside
# the dispatch layer.
_SIMD_HEADERS = {
    "<immintrin.h>", "<x86intrin.h>", "<x86gprintrin.h>", "<xmmintrin.h>",
    "<emmintrin.h>", "<pmmintrin.h>", "<tmmintrin.h>", "<smmintrin.h>",
    "<nmmintrin.h>", "<wmmintrin.h>", "<ammintrin.h>",
}

_SIMD_IDENT_PREFIXES = ("_mm_", "_mm256_", "_mm512_", "__m128", "__m256",
                        "__m512")


def rule_simd_isolation(path: str, tokens: list[Token]) -> list[Finding]:
    out = []
    for t in tokens:
        if t.kind == PP and t.value.startswith("#include"):
            header = t.value.split("#include", 1)[1].strip()
            if header in _SIMD_HEADERS:
                out.append(
                    Finding(
                        "simd-isolation", path, t.line, t.col,
                        f"x86 intrinsic header {header} outside "
                        "src/support/simd*: ISA-specific code lives "
                        "behind the runtime-dispatched KernelTable "
                        "(support/simd.hpp) so every other TU stays "
                        "portable and the scalar bit-pins stay the "
                        "default"))
        elif t.kind == IDENT and t.value.startswith(_SIMD_IDENT_PREFIXES):
            out.append(
                Finding(
                    "simd-isolation", path, t.line, t.col,
                    f"x86 intrinsic `{t.value}` outside src/support/simd*: "
                    "add the kernel to the KernelTable "
                    "(support/simd.hpp) instead of open-coding ISA "
                    "instructions here"))
    return out


# --------------------------------------------------------------------------
# Rule: telemetry-hotpath

# The emission entry points of src/telemetry/telemetry.{hpp,cpp}: the Span
# constructor/close pair and the counter emitters, plus the helpers the
# hot path is composed of (kept explicit so a rename breaks the lint
# rather than silently un-scoping the rule).
_HOTPATH_ROOTS = {"Span", "close", "counter_add", "counter_max", "put",
                  "make_record", "local_buffer", "next_span_id",
                  "current_context"}

_HOTPATH_FORBIDDEN_CALLS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "push_back", "emplace", "emplace_back", "insert", "resize", "reserve",
    "append", "assign",
    "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "lock",
    "Lock", "try_lock", "TryLock", "wait",
    "now",
}

_FUNC_NAME_STOPWORDS = _KEYWORDS_NOT_CALLS | {"operator", "defined"}

# Member names of std vocabulary types (atomics, containers, optionals)
# that must not resolve to same-named project functions when building
# call-graph edges -- `g_enabled.load(...)` is std::atomic::load, not
# Dump::load.  Forbidden-call detection is unaffected (it matches call
# sites directly, so `.lock()` still trips the rule).
_EDGE_IGNORED_NAMES = {
    "load", "store", "exchange", "compare_exchange_strong",
    "compare_exchange_weak", "fetch_add", "fetch_sub", "find", "count",
    "begin", "end", "size", "empty", "clear", "erase", "get", "reset",
    "release", "data", "max", "min", "value_or", "has_value", "front",
    "back",
}


def _extract_functions(tokens: list[Token]):
    """Heuristic function-definition extractor: yields
    (qualified_name, body_tokens) for every `name(...) ... {body}` shape,
    including inline class methods.  Good enough for the telemetry TU and
    validated by the fixture self-tests."""
    k = 0
    n = len(tokens)
    while k < n:
        t = tokens[k]
        if t.kind == IDENT and t.value not in _FUNC_NAME_STOPWORDS \
                and k + 1 < n and tokens[k + 1].value == "(":
            name = cpplex.qualified_at(tokens, k)
            close = _find_matching(tokens, k + 1, "(", ")")
            # Scan the gap between `)` and a possible `{`: specifiers,
            # ctor init lists (nested parens consumed whole), trailing
            # return types.  A top-level `;` or `=` disqualifies
            # (declaration, `= default`, assignment...).
            j = close + 1
            is_definition = True
            while j < n:
                v = tokens[j].value
                if v == "{":
                    break
                if tokens[j].kind == PUNCT and v in (";", "="):
                    is_definition = False
                    break
                if tokens[j].kind == PUNCT and v == "(":
                    j = _find_matching(tokens, j, "(", ")") + 1
                    continue
                j += 1
            if is_definition and j < n and tokens[j].value == "{":
                body_close = _find_matching(tokens, j, "{", "}")
                yield name, tokens[j + 1:body_close]
                k = j + 1
                continue
        k += 1


def rule_telemetry_hotpath(path: str, tokens: list[Token],
                           stop_functions: dict) -> list[Finding]:
    functions = {}
    for name, body in _extract_functions(tokens):
        functions.setdefault(name, []).append(body)
        last = name.rsplit("::", 1)[-1]
        if last != name:
            functions.setdefault(last, []).append(body)

    # Reachability from the emission roots, stopping at allowlisted cold
    # paths; remember one call chain per function for the diagnostic.
    chains = {root: root for root in _HOTPATH_ROOTS if root in functions}
    work = list(chains)
    while work:
        fn = work.pop()
        for body in functions.get(fn, []):
            for _, callee in _calls(body):
                if callee in stop_functions or callee in chains \
                        or callee in _EDGE_IGNORED_NAMES:
                    continue
                if callee in functions:
                    chains[callee] = f"{chains[fn]} -> {callee}"
                    work.append(callee)

    out = []
    seen = set()
    for fn, chain in chains.items():
        if "::" in fn:
            continue  # qualified alias of an unqualified entry
        for body in functions.get(fn, []):
            for k, callee in _calls(body):
                if callee in _HOTPATH_FORBIDDEN_CALLS and \
                        callee not in stop_functions:
                    t = body[k]
                    key = (t.line, t.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(
                        Finding(
                            "telemetry-hotpath", path, t.line, t.col,
                            f"`{callee}` reachable from the telemetry "
                            f"emission path ({chain}): the record hot "
                            "path must not allocate, lock, block, or "
                            "read ad-hoc clocks -- route cold work "
                            "through an allowlisted flush path "
                            "(scripts/lint/allowlists.json)"))
            for k, t in enumerate(body):
                if t.kind == IDENT and t.value in ("new", "throw"):
                    key = (t.line, t.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(
                        Finding(
                            "telemetry-hotpath", path, t.line, t.col,
                            f"`{t.value}` reachable from the telemetry "
                            f"emission path ({chain}): the record hot "
                            "path must not allocate or throw"))
    return out


# --------------------------------------------------------------------------
# Driver

RULES = ("raw-sync", "rng-determinism", "catch-swallow", "simd-isolation",
         "telemetry-hotpath")


def load_allowlists() -> dict:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "allowlists.json")
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def rel_to_repo(path: str) -> str:
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(
        os.sep, "/")


def lint_file(path: str, virtual_path: str, rules, allow) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as f:
        tokens = cpplex.lex(f.read())
    findings: list[Finding] = []

    def exempt(rule: str) -> bool:
        prefixes = allow.get(rule, {}).get("exempt_paths", {})
        return any(virtual_path.startswith(p) for p in prefixes)

    in_src = virtual_path.startswith("src/")
    if "raw-sync" in rules and in_src and not exempt("raw-sync"):
        findings += rule_raw_sync(path, tokens)
    if "rng-determinism" in rules and in_src and \
            not exempt("rng-determinism"):
        findings += rule_rng_determinism(path, tokens)
    if "catch-swallow" in rules and in_src and not exempt("catch-swallow"):
        findings += rule_catch_swallow(path, tokens)
    if "simd-isolation" in rules and in_src and not exempt("simd-isolation"):
        findings += rule_simd_isolation(path, tokens)
    if "telemetry-hotpath" in rules and \
            virtual_path.startswith("src/telemetry/"):
        stops = allow.get("telemetry-hotpath", {}).get("stop_functions", {})
        findings += rule_telemetry_hotpath(path, tokens, stops)
    return findings


def tree_files(build_dir: str) -> list[str]:
    """The TU set from compile_commands.json plus every header under
    src/ (headers never appear as compile-command entries)."""
    cc_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(cc_path):
        sys.exit(f"run_lints.py: {cc_path} not found -- configure with "
                 "cmake (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default "
                 "in this project) or pass --build-dir")
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    files = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if rel_to_repo(path).startswith("src/"):
            files.add(path)
    for root, _, names in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in names:
            if name.endswith((".hpp", ".h", ".hh", ".hxx")):
                files.add(os.path.join(root, name))
    return sorted(files)


def fixture_virtual_path(path: str) -> str:
    """Fixtures live outside src/; lint them as if they sat at the paths
    their names encode (telemetry fixtures inside src/telemetry/)."""
    base = os.path.basename(path)
    if "telemetry" in base:
        return "src/telemetry/" + base
    return "src/" + base


def self_test(fixtures_dir: str, allow) -> int:
    failures = 0
    fixtures = sorted(os.listdir(fixtures_dir))
    for name in fixtures:
        if not name.endswith((".cpp", ".hpp")):
            continue
        path = os.path.join(fixtures_dir, name)
        findings = lint_file(path, fixture_virtual_path(path), RULES, allow)
        if name.startswith("bad_"):
            # bad_<rule-with-underscores>[_variant].cpp must be flagged
            # by exactly the rule its name encodes.
            stem = name[len("bad_"):].rsplit(".", 1)[0]
            expected = next(
                (r for r in RULES if stem.replace("_", "-").startswith(r)),
                None)
            hit = [f for f in findings if f.rule == expected]
            if expected is None:
                print(f"self-test: {name}: no rule matches fixture name")
                failures += 1
            elif not hit:
                print(f"self-test: {name}: expected a [{expected}] "
                      f"finding, got {[f.rule for f in findings]}")
                failures += 1
            else:
                print(f"self-test: {name}: flagged by [{expected}] "
                      f"({len(hit)} finding(s)) -- ok")
        elif name.startswith("clean"):
            if findings:
                print(f"self-test: {name}: expected clean, got:")
                for f in findings:
                    print(f"  {f}")
                failures += 1
            else:
                print(f"self-test: {name}: clean -- ok")
    if failures:
        print(f"self-test: {failures} fixture expectation(s) failed")
        return 1
    print(f"self-test: all fixture expectations hold")
    return 0


_RULE_FNS = {
    "raw-sync": rule_raw_sync,
    "rng-determinism": rule_rng_determinism,
    "catch-swallow": rule_catch_swallow,
    "simd-isolation": rule_simd_isolation,
}


def check_stale_allowlists(pairs, allow) -> list[Finding]:
    """Dead allowlist entries are worse than none: they read as a live
    justification for a suppression that no longer happens.  An
    exempt_paths prefix is stale when it matches no linted file OR when
    re-running its rule on the matched files (exemption off) produces
    zero findings -- either way the entry suppresses nothing.  A
    telemetry-hotpath stop_function is stale when the name no longer
    appears as an identifier anywhere in the linted src/telemetry/
    sources."""
    findings: list[Finding] = []
    allowlist_rel = "scripts/lint/allowlists.json"
    token_cache: dict[str, list[Token]] = {}

    def tokens_of(path: str) -> list[Token]:
        if path not in token_cache:
            with open(path, encoding="utf-8", errors="replace") as f:
                token_cache[path] = cpplex.lex(f.read())
        return token_cache[path]

    for rule, fn in _RULE_FNS.items():
        for prefix, why in allow.get(rule, {}).get("exempt_paths",
                                                   {}).items():
            matched = [(p, v) for p, v in pairs if v.startswith(prefix)]
            if not matched:
                findings.append(Finding(
                    rule, allowlist_rel, 1, 1,
                    f"stale exempt_paths entry `{prefix}`: matches no "
                    "linted file -- delete it (and its justification: "
                    f"{why!r})"))
                continue
            suppressed = 0
            for path, virtual in matched:
                if virtual.startswith("src/"):
                    suppressed += len(fn(path, tokens_of(path)))
            if suppressed == 0:
                findings.append(Finding(
                    rule, allowlist_rel, 1, 1,
                    f"stale exempt_paths entry `{prefix}`: the {rule} "
                    "rule finds nothing there even with the exemption "
                    "off, so the entry suppresses nothing -- delete it"))
    telemetry_idents: set[str] = set()
    for path, virtual in pairs:
        if virtual.startswith("src/telemetry/"):
            telemetry_idents.update(
                t.value for t in tokens_of(path) if t.kind == IDENT)
    for name, why in allow.get("telemetry-hotpath",
                               {}).get("stop_functions", {}).items():
        if name not in telemetry_idents:
            findings.append(Finding(
                "telemetry-hotpath", allowlist_rel, 1, 1,
                f"stale stop_functions entry `{name}`: no such "
                "identifier appears in the linted telemetry sources "
                f"any more -- delete it (justification was: {why!r})"))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT,
                                                            "build"))
    parser.add_argument("--files", nargs="*", default=None,
                        help="lint these files instead of the tree")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="restrict to the given rule(s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite under "
                             "tests/lint_fixtures")
    parser.add_argument("--fixtures-dir",
                        default=os.path.join(REPO_ROOT, "tests",
                                             "lint_fixtures"))
    args = parser.parse_args()

    allow = load_allowlists()
    if args.self_test:
        return self_test(args.fixtures_dir, allow)

    rules = tuple(args.rule) if args.rule else RULES
    if args.files is not None:
        pairs = [(f, fixture_virtual_path(f) if "lint_fixtures" in f
                  else rel_to_repo(f)) for f in args.files]
    else:
        pairs = [(f, rel_to_repo(f)) for f in tree_files(args.build_dir)]

    findings: list[Finding] = []
    for path, virtual in pairs:
        findings += lint_file(path, virtual, rules, allow)
    if args.files is None:
        # Tree mode sees every linted file, so staleness is decidable;
        # --files subsets would declare live entries stale.
        findings += check_stale_allowlists(pairs, allow)
    for f in findings:
        print(f)
    if findings:
        print(f"run_lints.py: {len(findings)} finding(s) across "
              f"{len(pairs)} file(s)", file=sys.stderr)
        return 1
    print(f"run_lints.py: {len(pairs)} file(s) clean under "
          f"{len(rules)} rule(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
