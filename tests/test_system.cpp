// The pluggable strategy API: registry lookup and error paths, bit-for-bit
// equivalence between run_system specs and the legacy free functions,
// run_suite concurrency, and the robust Aggregator rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/system.hpp"

namespace {

namespace core = fairbfl::core;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;

core::EnvironmentConfig small_env() {
    core::EnvironmentConfig config;
    config.data.samples = 600;
    config.data.feature_dim = 8;
    config.data.num_classes = 4;
    config.data.noise_sigma = 0.25;
    config.data.seed = 71;
    config.partition.scheme = ml::PartitionScheme::kLabelShards;
    config.partition.num_clients = 10;
    config.partition.seed = 71;
    return config;
}

fl::FlConfig small_fl() {
    fl::FlConfig config;
    config.client_ratio = 0.5;
    config.rounds = 8;
    config.sgd.learning_rate = 0.1;
    config.sgd.epochs = 3;
    config.sgd.batch_size = 10;
    config.seed = 42;
    return config;
}

void expect_identical(const core::SystemRun& a, const core::SystemRun& b) {
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t i = 0; i < a.series.size(); ++i) {
        EXPECT_EQ(a.series[i].round, b.series[i].round);
        EXPECT_EQ(a.series[i].delay_seconds, b.series[i].delay_seconds);
        EXPECT_EQ(a.series[i].elapsed_seconds, b.series[i].elapsed_seconds);
        EXPECT_EQ(a.series[i].accuracy, b.series[i].accuracy);
    }
    EXPECT_EQ(a.average_delay, b.average_delay);
    EXPECT_EQ(a.average_accuracy, b.average_accuracy);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
    EXPECT_EQ(a.converged_round, b.converged_round);
    EXPECT_EQ(a.converged_elapsed_seconds, b.converged_elapsed_seconds);
}

// --- Registry -------------------------------------------------------------

TEST(SystemRegistry, GlobalHasTheBuiltins) {
    auto& registry = core::SystemRegistry::global();
    for (const char* name :
         {"fedavg", "fedprox", "fairbfl", "fairbfl_discard", "pure_fl",
          "vanilla_bfl", "blockchain"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
    }
    const auto names = registry.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SystemRegistry, UnknownNameThrowsListingKnownSystems) {
    const auto env = core::build_environment(small_env());
    core::SystemSpec spec;
    spec.system = "does_not_exist";
    try {
        (void)core::run_system(env, spec);
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("does_not_exist"), std::string::npos);
        EXPECT_NE(message.find("fairbfl"), std::string::npos);
        EXPECT_NE(message.find("blockchain"), std::string::npos);
    }
}

TEST(SystemRegistry, DuplicateRegistrationThrowsUnlessReplacing) {
    core::SystemRegistry registry;
    const auto factory = [](const core::Environment&,
                            const core::SystemSpec&) {
        return std::unique_ptr<core::System>();
    };
    registry.add("custom", factory);
    EXPECT_THROW(registry.add("custom", factory), std::invalid_argument);
    EXPECT_NO_THROW(registry.add("custom", factory, /*replace=*/true));
    EXPECT_TRUE(registry.contains("custom"));
    EXPECT_FALSE(registry.contains("fairbfl"));  // locals start empty
}

TEST(SystemRegistry, CustomSystemRunsThroughRunSystem) {
    // A toy constant-delay system registered in a local registry: new
    // scenarios are registrations, not core edits.
    class Constant final : public core::System {
    public:
        [[nodiscard]] std::string_view name() const noexcept override {
            return "constant";
        }
        [[nodiscard]] std::size_t default_rounds() const noexcept override {
            return 4;
        }
        core::SeriesPoint run_round() override {
            core::SeriesPoint point;
            point.round = rounds_++;
            point.delay_seconds = 2.0;
            point.accuracy = 0.5;
            series_.push_back(point);
            return point;
        }
        [[nodiscard]] core::SystemRun finalize() const override {
            core::SystemRun run;
            run.name = "constant";
            run.series = series_;
            run.finalize();
            return run;
        }

    private:
        std::uint64_t rounds_ = 0;
        std::vector<core::SeriesPoint> series_;
    };

    core::SystemRegistry registry;
    registry.add("constant",
                 [](const core::Environment&, const core::SystemSpec&) {
                     return std::make_unique<Constant>();
                 });

    const core::Environment env;  // never touched by the toy system
    core::SystemSpec spec;
    spec.system = "constant";
    const auto run = core::run_system(env, spec, registry);
    ASSERT_EQ(run.series.size(), 4U);
    EXPECT_EQ(run.average_delay, 2.0);
    EXPECT_EQ(run.series.back().elapsed_seconds, 8.0);
}

// --- Equivalence with the legacy entry points ------------------------------

// The deprecated shims are exactly what these tests exercise.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Equivalence, FairBflSpecReproducesLegacyRunFairbfl) {
    const auto env = core::build_environment(small_env());
    core::FairBflConfig config;
    config.fl = small_fl();
    config.miners = 2;

    // The legacy loop, driven by hand (what run_fairbfl held before the
    // registry existed).
    core::SystemRun manual;
    manual.name = "FAIR";
    core::FairBfl system(*env.model, env.make_clients(), env.test, config);
    for (std::size_t r = 0; r < config.fl.rounds; ++r) {
        const core::BflRoundRecord record = system.run_round();
        manual.series.push_back({record.fl.round, record.delay.total(), 0.0,
                                 record.fl.test_accuracy});
    }
    manual.finalize();

    const auto via_registry =
        core::run_system(env, core::fairbfl_spec(config, "FAIR"));
    expect_identical(via_registry, manual);

    const auto via_shim = core::run_fairbfl(env, config, "FAIR");
    expect_identical(via_shim, manual);
}

TEST(Equivalence, FedAvgSpecReproducesLegacyRunFedavg) {
    const auto env = core::build_environment(small_env());
    const auto config = small_fl();
    const core::DelayParams delay;

    core::SystemRun manual;
    manual.name = "FedAvg";
    const core::DelayModel delays(delay);
    fl::FedAvg trainer(*env.model, env.make_clients(), env.test, config);
    for (std::size_t r = 0; r < config.rounds; ++r) {
        const fl::RoundRecord record = trainer.run_round();
        manual.series.push_back(
            {record.round,
             core::fl_round_delay(delays, env, record.participant_ids,
                                  config.sgd, record.round, config.seed),
             0.0, record.test_accuracy});
    }
    manual.finalize();

    expect_identical(core::run_system(env, core::fedavg_spec(config, delay)),
                     manual);
    expect_identical(core::run_fedavg(env, config, delay), manual);
}

TEST(Equivalence, BlockchainSpecReproducesLegacyRunBlockchain) {
    core::BlockchainBaselineConfig config;
    config.workers = 20;
    config.miners = 2;
    config.rounds = 6;

    core::SystemRun manual;
    manual.name = "Blockchain";
    core::BlockchainBaseline system(config);
    for (std::size_t r = 0; r < config.rounds; ++r) {
        const core::BlockchainRoundRecord record = system.run_round();
        manual.series.push_back(
            {record.round, record.delay.total(), 0.0, 0.0});
    }
    manual.finalize();

    const core::Environment none;
    expect_identical(
        core::run_system(none, core::blockchain_spec(config)), manual);
    expect_identical(core::run_blockchain(config), manual);
}

TEST(Equivalence, PureFlSpecMatchesStageTogglesOff) {
    const auto env = core::build_environment(small_env());
    core::FairBflConfig config;
    config.fl = small_fl();

    auto toggled = config;
    toggled.stage_exchange = false;
    toggled.stage_mining = false;
    const auto legacy = core::run_fairbfl(env, toggled, "pure-FL");

    expect_identical(core::run_system(env, core::pure_fl_spec(config)),
                     [&] {
                         auto run = legacy;
                         run.name = "pure-FL";
                         return run;
                     }());
}

#pragma GCC diagnostic pop

// --- run_suite -------------------------------------------------------------

TEST(RunSuite, MatchesSerialRunsInSpecOrder) {
    const auto env = core::build_environment(small_env());
    core::FairBflConfig fair;
    fair.fl = small_fl();

    const std::vector<core::SystemSpec> specs{
        core::fairbfl_spec(fair, "FAIR"),
        core::fedavg_spec(small_fl(), core::DelayParams{}),
        core::pure_fl_spec(fair),
    };
    const auto concurrent = core::run_suite(env, specs);
    ASSERT_EQ(concurrent.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expect_identical(concurrent[i], core::run_system(env, specs[i]));
}

TEST(RunSuite, PropagatesTheFirstFailure) {
    const auto env = core::build_environment(small_env());
    std::vector<core::SystemSpec> specs(2);
    specs[0] = core::fedavg_spec(small_fl(), core::DelayParams{});
    specs[1].system = "no_such_system";
    EXPECT_THROW((void)core::run_suite(env, specs), std::out_of_range);
}

// --- System surface --------------------------------------------------------

TEST(SystemInterface, LedgerAccessorsMatchTheSystemKind) {
    const auto env = core::build_environment(small_env());
    core::FairBflConfig fair;
    fair.fl = small_fl();

    const auto chained = core::SystemRegistry::global().make(
        env, core::fairbfl_spec(fair));
    (void)chained->run_round();
    ASSERT_NE(chained->blockchain(), nullptr);
    EXPECT_GE(chained->blockchain()->height(), 1U);
    EXPECT_NE(chained->reward_ledger(), nullptr);

    const auto chainless = core::SystemRegistry::global().make(
        env, core::fedavg_spec(small_fl(), core::DelayParams{}));
    EXPECT_EQ(chainless->blockchain(), nullptr);
    EXPECT_EQ(chainless->reward_ledger(), nullptr);
}

// --- Robust aggregators ----------------------------------------------------

std::vector<fl::GradientUpdate> column_updates(
    std::initializer_list<float> values) {
    std::vector<fl::GradientUpdate> updates;
    fl::NodeId id = 0;
    for (const float v : values) {
        fl::GradientUpdate update;
        update.client = id++;
        update.weights = {v, -v};
        update.num_samples = 10;
        updates.push_back(update);
    }
    return updates;
}

TEST(RobustAggregators, TrimmedMeanDropsTheTails) {
    const auto aggregator = core::make_aggregator("trimmed_mean", 0.2);
    // ceil(0.2 * 5) = 1 from each tail: the forged 100 never contributes.
    const auto out =
        aggregator->aggregate(column_updates({1.0F, 2.0F, 3.0F, 4.0F, 100.0F}));
    ASSERT_EQ(out.size(), 2U);
    EXPECT_FLOAT_EQ(out[0], 3.0F);
    EXPECT_FLOAT_EQ(out[1], -3.0F);
}

TEST(RobustAggregators, TrimmedMeanKeepsAtLeastOneValue) {
    // With 2 updates even a large trim must leave the middle intact.
    const auto aggregator = core::make_aggregator("trimmed_mean", 0.4);
    const auto out = aggregator->aggregate(column_updates({1.0F, 3.0F}));
    EXPECT_FLOAT_EQ(out[0], 2.0F);
}

TEST(RobustAggregators, CoordinateMedianOddAndEven) {
    const auto aggregator = core::make_aggregator("median");
    const auto odd =
        aggregator->aggregate(column_updates({1.0F, 2.0F, 3.0F, 4.0F, 100.0F}));
    EXPECT_FLOAT_EQ(odd[0], 3.0F);
    const auto even =
        aggregator->aggregate(column_updates({1.0F, 2.0F, 4.0F, 100.0F}));
    EXPECT_FLOAT_EQ(even[0], 3.0F);  // (2 + 4) / 2
}

TEST(RobustAggregators, MedianResistsAForgedMinority) {
    // 7 honest updates near 1.0, 2 forged at -50: the median stays honest
    // while the simple average is dragged far off.
    std::vector<fl::GradientUpdate> updates =
        column_updates({0.9F, 0.95F, 1.0F, 1.0F, 1.05F, 1.1F, 1.0F,
                        -50.0F, -50.0F});
    const auto median = core::make_aggregator("median")->aggregate(updates);
    const auto mean = fl::simple_average(updates);
    EXPECT_NEAR(median[0], 1.0F, 0.1F);
    EXPECT_LT(mean[0], -9.0F);
}

TEST(RobustAggregators, FactoryRejectsBadArguments) {
    EXPECT_THROW((void)core::make_aggregator("nope"), std::invalid_argument);
    EXPECT_THROW((void)core::make_aggregator("trimmed_mean", 0.5),
                 std::invalid_argument);
    EXPECT_THROW((void)core::make_consensus("nope"), std::invalid_argument);
}

TEST(RobustAggregators, FairAggregatorUsesScoresWhenGiven) {
    const auto aggregator = core::make_aggregator("fair");
    const auto updates = column_updates({0.0F, 4.0F});
    const std::vector<double> theta{3.0, 1.0};
    const auto weighted = aggregator->aggregate_weighted(updates, theta);
    EXPECT_FLOAT_EQ(weighted[0], 1.0F);  // 0.75 * 0 + 0.25 * 4
    const auto unweighted = aggregator->aggregate(updates);
    EXPECT_FLOAT_EQ(unweighted[0], 2.0F);
}

TEST(RobustAggregators, ExplicitFairAggregatorMatchesTheDefaultPipeline) {
    // "fair" IS the default behaviour (simple provisional + Eq. 1
    // settlement), so configuring it explicitly must change nothing.
    const auto env = core::build_environment(small_env());
    core::FairBflConfig config;
    config.fl = small_fl();

    auto explicit_fair = config;
    explicit_fair.aggregator = core::make_aggregator("fair");

    expect_identical(core::run_system(env, core::fairbfl_spec(explicit_fair)),
                     core::run_system(env, core::fairbfl_spec(config)));
}

TEST(RobustAggregators, ConfiguredRuleGovernsTheIncentiveSettlementToo) {
    // With Algorithm 2 left ON, a configured rule must still shape the
    // final global update (it used to be silently ignored there).  The
    // series diverging from the default proves the settlement routed
    // through the rule; which rule *wins* on accuracy depends on the data
    // geometry and is covered by the dedicated defense tests.
    const auto env = core::build_environment(small_env());
    core::FairBflConfig config;
    config.fl = small_fl();
    config.fl.client_ratio = 1.0;

    auto routed = config;
    routed.aggregator = core::make_aggregator("median");

    const auto with_median = core::run_system(env, core::fairbfl_spec(routed));
    const auto with_eq1 = core::run_system(env, core::fairbfl_spec(config));
    EXPECT_NE(with_median.final_accuracy, with_eq1.final_accuracy);
}

TEST(RobustAggregators, TrimmedMeanDefendsFairBflWithoutClustering) {
    // End to end: sign-flip attackers, incentive layer off, the robust
    // combine alone keeps the model learning.
    const auto env = core::build_environment(small_env());
    core::FairBflConfig config;
    config.fl = small_fl();
    config.fl.client_ratio = 1.0;
    config.enable_incentive = false;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.min_attackers = 2;
    config.attack.max_attackers = 2;
    config.aggregator = core::make_aggregator("trimmed_mean", 0.25);

    auto undefended = config;
    undefended.aggregator = core::make_aggregator("simple");

    const auto robust = core::run_system(env, core::fairbfl_spec(config));
    const auto naive = core::run_system(env, core::fairbfl_spec(undefended));
    EXPECT_GT(robust.final_accuracy, naive.final_accuracy);
}

}  // namespace
