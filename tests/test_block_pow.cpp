// Blocks (sealing, encoding) and the proof-of-work puzzle (Eq. 4).

#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "chain/pow.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::support::Rng;

ch::Block make_test_block() {
    ch::Block block;
    block.header.index = 1;
    block.header.difficulty = 1;
    block.transactions.push_back(ch::make_gradient_tx(
        ch::TxKind::kGlobalUpdate, 0, 1, std::vector<float>{1.0F, 2.0F}));
    block.transactions.push_back(ch::make_reward_tx(0, 1, 5, 0.5));
    block.seal_transactions();
    return block;
}

TEST(Block, SealMakesMerkleConsistent) {
    ch::Block block = make_test_block();
    EXPECT_TRUE(block.merkle_consistent());
    block.transactions.push_back(ch::make_reward_tx(0, 1, 6, 0.5));
    EXPECT_FALSE(block.merkle_consistent());  // stale root
    block.seal_transactions();
    EXPECT_TRUE(block.merkle_consistent());
}

TEST(Block, EncodeDecodeRoundTrip) {
    const ch::Block block = make_test_block();
    const auto encoded = block.encode();
    ch::ByteReader reader(encoded);
    EXPECT_EQ(ch::Block::decode(reader), block);
    EXPECT_TRUE(reader.exhausted());
}

TEST(Block, SizeBytesMatchesEncoding) {
    const ch::Block block = make_test_block();
    EXPECT_EQ(block.size_bytes(), block.encode().size());
}

TEST(Block, HeaderHashChangesWithNonce) {
    ch::BlockHeader header = make_test_block().header;
    const auto h1 = header.hash();
    header.nonce++;
    EXPECT_NE(header.hash(), h1);
}

TEST(Block, GenesisIsDeterministicPerChainId) {
    EXPECT_EQ(ch::make_genesis(1).header.hash(),
              ch::make_genesis(1).header.hash());
    EXPECT_NE(ch::make_genesis(1).header.hash(),
              ch::make_genesis(2).header.hash());
    EXPECT_TRUE(ch::make_genesis(0).merkle_consistent());
}

TEST(Pow, TargetShrinksWithDifficulty) {
    EXPECT_EQ(ch::target_for_difficulty(0), ch::kTarget1);
    EXPECT_EQ(ch::target_for_difficulty(1), ch::kTarget1);
    EXPECT_EQ(ch::target_for_difficulty(4), ch::kTarget1 / 4);
    EXPECT_LT(ch::target_for_difficulty(1000),
              ch::target_for_difficulty(10));
}

TEST(Pow, DifficultyOneAcceptsAlmostEverything) {
    // Target is 2^64-1; only an all-ones prefix misses, so any real hash
    // passes.
    ch::BlockHeader header = make_test_block().header;
    header.difficulty = 1;
    const auto result = ch::mine(header, /*max_attempts=*/4);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->attempts, 4U);
}

TEST(Pow, MineFindsNonceAtModerateDifficulty) {
    ch::BlockHeader header = make_test_block().header;
    header.difficulty = 1 << 10;  // ~1024 attempts expected
    const auto result = ch::mine(header, /*max_attempts=*/1 << 17);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(ch::meets_target(result->hash, header.difficulty));
    // Re-verification: plugging the nonce back reproduces the hash.
    header.nonce = result->nonce;
    EXPECT_EQ(header.hash(), result->hash);
}

TEST(Pow, MineExhaustsOnImpossibleBudget) {
    ch::BlockHeader header = make_test_block().header;
    header.difficulty = ~0ULL;  // target 1: essentially impossible
    EXPECT_FALSE(ch::mine(header, /*max_attempts=*/100).has_value());
}

TEST(Pow, SampleMiningSecondsMatchesExpectation) {
    // Mean of Exp(rate) with rate = hashrate / difficulty.
    Rng rng(5);
    const double hashrate = 1e6;
    const std::uint64_t difficulty = 2'000'000;  // mean 2 s
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += ch::sample_mining_seconds(hashrate, difficulty, rng);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Pow, AttemptCountScalesWithDifficulty) {
    // Statistical: attempts at difficulty 2^12 should exceed those at 2^6
    // when averaged over several headers.
    double attempts_low = 0.0;
    double attempts_high = 0.0;
    for (std::uint64_t i = 0; i < 12; ++i) {
        ch::BlockHeader header = make_test_block().header;
        header.timestamp_ms = i;  // vary the header
        header.difficulty = 1 << 6;
        attempts_low +=
            static_cast<double>(ch::mine(header, 1 << 22)->attempts);
        header.difficulty = 1 << 12;
        attempts_high +=
            static_cast<double>(ch::mine(header, 1 << 22)->attempts);
    }
    EXPECT_GT(attempts_high, attempts_low);
}

}  // namespace
