// Fault-injection simulation harness: seeded, data-driven FaultPlans
// (dropout, straggler tails, duplicate delivery, churn) driven through
// the async round engine, asserting that the incentive layer's
// guarantees -- per-round reward-budget conservation and attacker
// detection -- survive every fault mode, and that any faulted schedule
// replays byte-identically across thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "core/fairbfl.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/fault_plan.hpp"
#include "support/parallel.hpp"

namespace {

namespace core = fairbfl::core;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;
namespace support = fairbfl::support;

struct World {
    ml::Dataset data;
    std::unique_ptr<ml::Model> model;
    std::vector<ml::DatasetView> shards;
    ml::DatasetView test;

    explicit World(std::size_t clients = 10, std::uint64_t seed = 61)
        : data(ml::make_synthetic_mnist({.samples = 600,
                                         .feature_dim = 8,
                                         .num_classes = 4,
                                         .noise_sigma = 0.25,
                                         .seed = seed})) {
        model = ml::make_logistic_regression(8, 4);
        const auto split = ml::train_test_split(data, 0.2, seed);
        test = split.test;
        ml::PartitionParams params;
        params.scheme = ml::PartitionScheme::kIid;
        params.num_clients = clients;
        params.seed = seed;
        shards = ml::partition(split.train, params);
    }

    [[nodiscard]] std::vector<fl::Client> clients() const {
        return fl::make_clients(*model, shards);
    }
};

/// Table-2 attack settings on the fast fixture: full participation (the
/// n+1 clustered points Algorithm 2 expects), sign-flip forgeries at
/// magnitude 3, up to 3 attackers per round, discard defense.
core::FairBflConfig attacked_config() {
    core::FairBflConfig config;
    config.fl.client_ratio = 1.0;
    config.fl.rounds = 12;
    config.fl.sgd.learning_rate = 0.1;
    config.fl.sgd.epochs = 3;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = 42;
    config.miners = 2;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.magnitude = 3.0;
    config.attack.max_attackers = 3;
    config.incentive.strategy =
        fairbfl::incentive::LowContributionStrategy::kDiscard;
    return config;
}

/// Per-round reward-budget conservation: the ledger's entries for each
/// round must sum to exactly what that round's settlement reported.
void expect_budget_conserved(const core::FairBfl& system,
                             const std::vector<core::BflRoundRecord>& runs) {
    std::vector<double> per_round(runs.size(), 0.0);
    for (const auto& entry : system.ledger().history()) {
        ASSERT_LT(entry.round, runs.size());
        per_round[entry.round] += entry.amount;
    }
    for (std::size_t r = 0; r < runs.size(); ++r) {
        EXPECT_NEAR(per_round[r], runs[r].round_reward_total, 1e-9)
            << "round " << r << " ledger sum drifted from its settlement";
    }
}

double mean_detection(const std::vector<core::BflRoundRecord>& runs) {
    double sum = 0.0;
    for (const auto& record : runs) sum += record.detection_rate;
    return sum / static_cast<double>(runs.size());
}

// ---------------------------------------------------------------------------
// FaultPlan: seeded, data-driven, immutable.

TEST(FaultPlan, HandAuthoredEntriesAnswerQueries) {
    support::FaultPlan plan;
    plan.add_dropout(/*round=*/1, /*client=*/4);
    plan.add_straggler(/*round=*/2, /*client=*/5, /*factor=*/10.0);
    plan.add_duplicate(/*round=*/3, /*client=*/6, /*copies=*/2);
    plan.add_churn(/*first=*/4, /*last=*/6, /*client=*/7);
    EXPECT_TRUE(plan.dropped(1, 4));
    EXPECT_FALSE(plan.dropped(0, 4));
    EXPECT_FALSE(plan.dropped(1, 3));
    EXPECT_DOUBLE_EQ(plan.delay_factor(2, 5), 10.0);
    EXPECT_DOUBLE_EQ(plan.delay_factor(2, 4), 1.0);
    EXPECT_EQ(plan.duplicates(3, 6), 2U);
    EXPECT_EQ(plan.duplicates(3, 5), 0U);
    EXPECT_TRUE(plan.dropped(4, 7));
    EXPECT_TRUE(plan.dropped(6, 7));
    EXPECT_FALSE(plan.dropped(7, 7));
    EXPECT_EQ(plan.size(), 4U);
}

TEST(FaultPlan, SampledPlansAreSeedDeterministic) {
    support::FaultSpec spec;
    spec.dropout_rate = 0.1;
    spec.straggler_rate = 0.1;
    spec.duplicate_rate = 0.1;
    spec.churn_rate = 0.05;
    const auto a = support::FaultPlan::sampled(spec, 7, 5, 10);
    const auto b = support::FaultPlan::sampled(spec, 7, 5, 10);
    const auto c = support::FaultPlan::sampled(spec, 8, 5, 10);
    EXPECT_EQ(a.size(), b.size());
    bool identical = true;
    bool differs_from_c = a.size() != c.size();
    for (std::uint64_t r = 0; r < 5; ++r) {
        for (fl::NodeId n = 0; n < 10; ++n) {
            identical &= a.dropped(r, n) == b.dropped(r, n) &&
                         a.delay_factor(r, n) == b.delay_factor(r, n) &&
                         a.duplicates(r, n) == b.duplicates(r, n);
            differs_from_c |= a.dropped(r, n) != c.dropped(r, n) ||
                              a.delay_factor(r, n) != c.delay_factor(r, n);
        }
    }
    EXPECT_TRUE(identical);
    EXPECT_TRUE(differs_from_c);
}

// ---------------------------------------------------------------------------
// Fault modes through the full system.

TEST(FaultInjection, DropoutMidRoundConservesBudgetAndDetection) {
    World world;
    core::FairBflConfig config = attacked_config();
    config.round.quorum_fraction = 0.99;  // waits, but tolerates dropouts

    // Full-participation baseline at the same attack settings.
    core::FairBfl baseline(*world.model, world.clients(), world.test,
                           attacked_config());
    const auto base_runs = baseline.run(5);
    expect_budget_conserved(baseline, base_runs);

    // Drop two honest clients mid-experiment (avoid ever dropping an
    // attacker: that would *raise* apparent detection for free).
    auto plan = std::make_shared<support::FaultPlan>();
    for (fl::NodeId client = 0; client < 10; ++client) {
        bool attacks = false;
        for (const auto& record : base_runs)
            for (const auto id : record.attacker_clients)
                attacks |= id == client;
        if (attacks) continue;
        plan->add_dropout(1, client);
        plan->add_dropout(3, client);
        break;
    }
    ASSERT_EQ(plan->size(), 2U);

    core::FairBflConfig faulted_config = config;
    faulted_config.fault_plan = plan;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         faulted_config);
    const auto runs = system.run(5);
    expect_budget_conserved(system, runs);
    EXPECT_NEAR(mean_detection(runs), mean_detection(base_runs), 0.02)
        << "dropouts shifted attacker detection by more than 2%";
}

TEST(FaultInjection, StragglerTailArrivesLateAndRejoins) {
    World world;
    core::FairBflConfig config = attacked_config();
    // Deadline sized to the healthy tail (~5 virtual seconds on this
    // fixture): a 10x straggler must miss it.
    config.round.quorum_fraction = 1.0;
    config.round.deadline_ns = 15'000'000'000ULL;  // 15 virtual seconds
    config.round.late_policy = core::LatePolicy::kNextRound;

    core::FairBfl probe(*world.model, world.clients(), world.test, config);
    const auto probe_rec = probe.run_round();
    ASSERT_GT(probe_rec.on_time_updates, 0U)
        << "deadline too tight for the healthy fixture";
    ASSERT_EQ(probe_rec.late_updates, 0U)
        << "healthy fixture must fit the deadline";
    ASSERT_FALSE(probe_rec.fl.participant_ids.empty());

    // p99-style tail: one participating client slowed 10x in both rounds
    // (a persistent straggler -- its round-0 gradient carries into round 1
    // while its fresh round-1 update is late again).
    auto plan = std::make_shared<support::FaultPlan>();
    plan->add_straggler(0, probe_rec.fl.participant_ids.front(), 10.0);
    plan->add_straggler(1, probe_rec.fl.participant_ids.front(), 10.0);
    core::FairBflConfig faulted = config;
    faulted.fault_plan = plan;
    core::FairBfl system(*world.model, world.clients(), world.test, faulted);
    const auto first = system.run_round();
    EXPECT_TRUE(first.deadline_fired);
    EXPECT_EQ(first.late_updates, 1U);
    EXPECT_EQ(first.on_time_updates, probe_rec.on_time_updates - 1);
    const auto second = system.run_round();
    EXPECT_EQ(second.carried_in_updates, 1U)
        << "the straggler's gradient must join the next round";

    const auto runs = std::vector<core::BflRoundRecord>{first, second};
    expect_budget_conserved(system, runs);
}

TEST(FaultInjection, DuplicateDeliveryIsByteExactlyHarmless) {
    World world;
    core::FairBflConfig config = attacked_config();
    config.round.quorum_fraction = 0.6;
    config.round.deadline_ns = 120'000'000'000ULL;

    core::FairBfl clean(*world.model, world.clients(), world.test, config);
    const auto clean_runs = clean.run(3);

    // Replay every client's upload twice, every round.
    auto plan = std::make_shared<support::FaultPlan>();
    for (std::uint64_t round = 0; round < 3; ++round)
        for (fl::NodeId client = 0; client < 10; ++client)
            plan->add_duplicate(round, client, 2);
    core::FairBflConfig faulted = config;
    faulted.fault_plan = plan;
    core::FairBfl system(*world.model, world.clients(), world.test, faulted);
    const auto runs = system.run(3);

    std::size_t dropped = 0;
    for (const auto& record : runs) dropped += record.duplicate_updates_dropped;
    EXPECT_GT(dropped, 0U) << "replays must actually have been delivered";

    // Dedup-on-arrival means replays never change membership: the whole
    // series -- and the weights -- must be byte-identical.
    ASSERT_EQ(clean.weights().size(), system.weights().size());
    EXPECT_EQ(std::memcmp(clean.weights().data(), system.weights().data(),
                          clean.weights().size() * sizeof(float)),
              0);
    for (std::size_t r = 0; r < runs.size(); ++r) {
        EXPECT_EQ(runs[r].fl.test_accuracy, clean_runs[r].fl.test_accuracy);
        EXPECT_EQ(runs[r].on_time_updates, clean_runs[r].on_time_updates);
        EXPECT_EQ(runs[r].late_updates, clean_runs[r].late_updates);
    }
    expect_budget_conserved(system, runs);
}

TEST(FaultInjection, ChurnAcrossFiveRoundsKeepsGuarantees) {
    World world;
    // kKeepAll still *flags* attackers (detection is the clustering
    // outcome, strategy-independent) but never benches them, so selection
    // stays at the full population every round and the baseline's
    // attacker sampling is byte-for-byte the faulted run's.  kDiscard
    // would bench flagged clients and fork the two runs' memberships.
    core::FairBflConfig lockstep = attacked_config();
    lockstep.incentive.strategy =
        fairbfl::incentive::LowContributionStrategy::kKeepAll;
    core::FairBflConfig config = lockstep;
    config.round.quorum_fraction = 0.9;
    config.round.deadline_ns = 120'000'000'000ULL;

    core::FairBfl baseline(*world.model, world.clients(), world.test,
                           lockstep);
    const auto base_runs = baseline.run(5);

    // Staggered 2-round outages (rounds 0-1, 2-3, 4), each on a client
    // that is honest *during its own span* -- churning an attacker away
    // would shift apparent detection by construction, not by defect.
    // Attack sampling never touches the fault plan's RNG streams, so the
    // baseline's per-round attacker sets are the faulted run's too.
    const auto honest_during = [&](fl::NodeId client, std::uint64_t first,
                                   std::uint64_t last) {
        for (std::uint64_t r = first; r <= last; ++r)
            for (const auto id : base_runs[r].attacker_clients)
                if (id == client) return false;
        return true;
    };
    auto plan = std::make_shared<support::FaultPlan>();
    fl::NodeId candidate = 0;
    for (const auto [first, last] :
         {std::pair<std::uint64_t, std::uint64_t>{0, 1}, {2, 3}, {4, 4}}) {
        while (candidate < 10 && !honest_during(candidate, first, last))
            ++candidate;
        ASSERT_LT(candidate, 10U) << "fixture ran out of honest clients";
        plan->add_churn(first, last, candidate);
        ++candidate;
    }
    ASSERT_EQ(plan->size(), 3U);
    core::FairBflConfig faulted = config;
    faulted.fault_plan = plan;
    core::FairBfl system(*world.model, world.clients(), world.test, faulted);
    const auto runs = system.run(5);

    ASSERT_EQ(runs.size(), 5U);
    for (const auto& record : runs) {
        // Every churn span removes exactly one honest client per round.
        EXPECT_EQ(record.on_time_updates, 9U);
        EXPECT_EQ(record.late_updates, 0U);
    }
    expect_budget_conserved(system, runs);
    expect_budget_conserved(baseline, base_runs);
    EXPECT_NEAR(mean_detection(runs), mean_detection(base_runs), 0.02)
        << "churn shifted attacker detection by more than 2%";
    // Churn must not wreck learning relative to the same attacked run at
    // full membership (one-sided: under kKeepAll the forged gradients
    // make both trajectories noisy, and losing an honest client can just
    // as well land on a *better* path).
    EXPECT_GT(runs.back().fl.test_accuracy,
              base_runs.back().fl.test_accuracy - 0.05);
}

// ---------------------------------------------------------------------------
// Determinism: the same faulted scenario replays byte-identically
// whatever the worker-thread count.

std::vector<unsigned char> faulted_weight_bytes(const World& world,
                                                unsigned threads) {
    core::FairBflConfig config = attacked_config();
    config.round.quorum_fraction = 0.6;
    config.round.deadline_ns = 90'000'000'000ULL;
    config.round.late_policy = core::LatePolicy::kRetroactive;
    support::FaultSpec spec;
    spec.dropout_rate = 0.05;
    spec.straggler_rate = 0.1;
    spec.straggler_factor = 10.0;
    spec.duplicate_rate = 0.1;
    config.fault_plan = std::make_shared<support::FaultPlan>(
        support::FaultPlan::sampled(spec, /*seed=*/9, /*rounds=*/4,
                                    /*clients=*/10));
    support::ThreadPool pool(threads);
    config.pool = &pool;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    (void)system.run(4);
    const auto weights = system.weights();
    std::vector<unsigned char> bytes(weights.size() * sizeof(float));
    std::memcpy(bytes.data(), weights.data(), bytes.size());
    return bytes;
}

TEST(FaultInjection, FaultedScenarioIsByteIdenticalAcrossThreadCounts) {
    World world;
    const auto one = faulted_weight_bytes(world, 1);
    const auto four = faulted_weight_bytes(world, 4);
    EXPECT_EQ(one, four)
        << "same seed, same fault plan: 1 vs 4 worker threads diverged";
}

}  // namespace
