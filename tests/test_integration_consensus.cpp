// Integration: FAIR-BFL rounds replicated through the consensus simulator.
//
// The FairBfl orchestrator commits each round's block to its canonical
// chain; here we additionally gossip those blocks through m miner replicas
// and check that (a) all replicas converge to the canonical chain and
// (b) any replica can serve Procedure I's "read the global gradient from
// the latest block" identically.

#include <gtest/gtest.h>

#include "chain/consensus.hpp"
#include "chain/storage.hpp"
#include "core/fairbfl.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace core = fairbfl::core;
namespace ch = fairbfl::chain;
namespace ml = fairbfl::ml;
namespace fl = fairbfl::fl;

struct World {
    ml::Dataset data = ml::make_synthetic_mnist({.samples = 400,
                                                 .feature_dim = 8,
                                                 .num_classes = 4,
                                                 .seed = 91});
    std::unique_ptr<ml::Model> model = ml::make_logistic_regression(8, 4);
    std::vector<ml::DatasetView> shards;
    ml::DatasetView test;

    World() {
        const auto split = ml::train_test_split(data, 0.2, 91);
        test = split.test;
        ml::PartitionParams params;
        params.scheme = ml::PartitionScheme::kIid;
        params.num_clients = 8;
        params.seed = 91;
        shards = ml::partition(split.train, params);
    }
};

TEST(IntegrationConsensus, ReplicasTrackTheCanonicalChain) {
    World world;
    core::FairBflConfig config;
    config.fl.client_ratio = 0.5;
    config.fl.rounds = 6;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.seed = 91;
    config.chain_id = 0xC0FFEE;
    core::FairBfl system(*world.model, fl::make_clients(*world.model,
                                                        world.shards),
                         world.test, config);

    ch::NetworkParams net;
    net.miner_jitter_sigma = 0.0;
    ch::ConsensusSim sim(3, 0xC0FFEE, ch::NetworkModel(net), 91);

    double now = 0.0;
    for (int r = 0; r < 6; ++r) {
        const auto record = system.run_round();
        now += record.delay.total();
        // The round's winner broadcasts the freshly committed block.
        const ch::Block& block =
            system.blockchain().at(system.blockchain().height() - 1);
        const auto origin = static_cast<std::size_t>(r % 3);
        // Deliver directly to the origin replica, gossip to the rest.
        (void)sim.broadcast(origin, block, now);
        sim.advance_to(now + 1.0);
    }
    sim.drain();

    EXPECT_TRUE(sim.consistent());
    for (std::size_t m = 0; m < 3; ++m) {
        EXPECT_EQ(sim.replica(m).height(), system.blockchain().height());
        EXPECT_EQ(sim.replica(m).tip().header.hash(),
                  system.blockchain().tip().header.hash());
        // Procedure I served from any replica gives the same weights.
        const auto gradient = sim.replica(m).latest_global_gradient();
        ASSERT_TRUE(gradient.has_value());
        ASSERT_EQ(gradient->size(), system.weights().size());
        for (std::size_t i = 0; i < gradient->size(); ++i)
            EXPECT_FLOAT_EQ((*gradient)[i], system.weights()[i]);
    }
}

TEST(IntegrationConsensus, ExportedChainAuditableOnAnyReplica) {
    World world;
    core::FairBflConfig config;
    config.fl.client_ratio = 0.5;
    config.fl.rounds = 4;
    config.fl.seed = 92;
    config.chain_id = 0xAB;
    core::FairBfl system(*world.model, fl::make_clients(*world.model,
                                                        world.shards),
                         world.test, config);
    (void)system.run();

    // Export from the orchestrator, re-import as an auditor would, verify
    // the reward history replays identically.
    const auto bytes = ch::export_chain(system.blockchain());
    const auto audited = ch::import_chain(bytes, 0xAB);
    ASSERT_TRUE(audited.has_value());
    double replayed = 0.0;
    for (std::size_t h = 1; h < audited->height(); ++h) {
        for (const auto& tx : audited->at(h).transactions) {
            if (tx.kind == ch::TxKind::kReward)
                replayed += ch::parse_reward_tx(tx).amount;
        }
    }
    EXPECT_NEAR(replayed, system.ledger().grand_total(), 0.02);
}

}  // namespace
