// Experiment harness: environment building, unified runs, metric math, and
// the headline cross-system orderings (the shapes behind Figures 4a/4b).
// Runs go through run_system (core/system.hpp); the deprecated free
// functions are covered by the equivalence tests in test_system.cpp.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/system.hpp"

namespace {

namespace core = fairbfl::core;
namespace ml = fairbfl::ml;

core::EnvironmentConfig small_env() {
    core::EnvironmentConfig config;
    config.data.samples = 600;
    config.data.feature_dim = 8;
    config.data.num_classes = 4;
    config.data.noise_sigma = 0.25;
    config.data.seed = 71;
    config.partition.scheme = ml::PartitionScheme::kIid;
    config.partition.num_clients = 10;
    config.partition.seed = 71;
    return config;
}

fairbfl::fl::FlConfig small_fl() {
    fairbfl::fl::FlConfig config;
    config.client_ratio = 0.5;
    config.rounds = 10;
    config.sgd.learning_rate = 0.1;
    config.sgd.epochs = 3;
    config.sgd.batch_size = 10;
    config.seed = 42;
    return config;
}

TEST(Environment, BuildsConsistentWorld) {
    const auto env = core::build_environment(small_env());
    EXPECT_EQ(env.dataset->size(), 600U);
    EXPECT_EQ(env.shards.size(), 10U);
    EXPECT_EQ(env.test.size(), 90U);  // 15% default test fraction
    EXPECT_NE(env.model, nullptr);
    std::size_t train_total = 0;
    for (const auto& shard : env.shards) train_total += shard.size();
    EXPECT_EQ(train_total, env.train.size());
    const auto clients = env.make_clients();
    EXPECT_EQ(clients.size(), 10U);
}

TEST(Environment, MlpVariantBuilds) {
    auto config = small_env();
    config.model = core::ModelKind::kMlp;
    config.mlp_hidden = 16;
    const auto env = core::build_environment(config);
    EXPECT_EQ(env.model->name(), "mlp");
}

TEST(SystemRun, FinalizeComputesAggregates) {
    core::SystemRun run;
    run.series = {{0, 2.0, 0.0, 0.5},
                  {1, 4.0, 0.0, 0.7},
                  {2, 6.0, 0.0, 0.9}};
    run.finalize();
    EXPECT_DOUBLE_EQ(run.average_delay, 4.0);
    EXPECT_NEAR(run.average_accuracy, 0.7, 1e-12);
    EXPECT_DOUBLE_EQ(run.final_accuracy, 0.9);
    EXPECT_DOUBLE_EQ(run.series[2].elapsed_seconds, 12.0);
}

TEST(SystemRun, ConvergenceDetected) {
    core::SystemRun run;
    for (std::uint64_t r = 0; r < 10; ++r)
        run.series.push_back({r, 1.0, 0.0, r < 3 ? 0.1 * double(r) : 0.9});
    run.finalize();
    EXPECT_NE(run.converged_round, fairbfl::support::ConvergenceDetector::npos);
    EXPECT_GT(run.converged_elapsed_seconds, 0.0);
}

TEST(SystemRun, FinalizeSafeOnEmptySeries) {
    core::SystemRun run;
    run.finalize();
    EXPECT_EQ(run.average_delay, 0.0);
    EXPECT_EQ(run.average_accuracy, 0.0);
    EXPECT_EQ(run.final_accuracy, 0.0);
    EXPECT_EQ(run.converged_round, fairbfl::support::ConvergenceDetector::npos);
    EXPECT_EQ(run.converged_elapsed_seconds, 0.0);
    run.finalize();  // twice on empty must be just as safe
    EXPECT_EQ(run.average_delay, 0.0);
}

TEST(SystemRun, FinalizeIsIdempotent) {
    core::SystemRun run;
    for (std::uint64_t r = 0; r < 10; ++r)
        run.series.push_back({r, 2.0, 0.0, r < 3 ? 0.1 * double(r) : 0.8});
    run.finalize();
    const core::SystemRun first = run;
    run.finalize();  // run_suite calls finalize defensively
    EXPECT_EQ(run.average_delay, first.average_delay);
    EXPECT_EQ(run.average_accuracy, first.average_accuracy);
    EXPECT_EQ(run.final_accuracy, first.final_accuracy);
    EXPECT_EQ(run.converged_round, first.converged_round);
    EXPECT_EQ(run.converged_elapsed_seconds, first.converged_elapsed_seconds);
    for (std::size_t i = 0; i < run.series.size(); ++i)
        EXPECT_EQ(run.series[i].elapsed_seconds,
                  first.series[i].elapsed_seconds);
}

TEST(SystemRun, FinalizeRecomputesAfterSeriesShrinks) {
    core::SystemRun run;
    run.series = {{0, 2.0, 0.0, 0.9}, {1, 4.0, 0.0, 0.9}};
    run.finalize();
    run.series.clear();
    run.finalize();  // stale aggregates must not survive
    EXPECT_EQ(run.average_delay, 0.0);
    EXPECT_EQ(run.final_accuracy, 0.0);
}

TEST(Harness, FedAvgRunProducesLearningSeries) {
    const auto env = core::build_environment(small_env());
    const auto run = core::run_system(env, core::fedavg_spec(small_fl(), core::DelayParams{}));
    ASSERT_EQ(run.series.size(), 10U);
    EXPECT_GT(run.series.back().accuracy, run.series.front().accuracy);
    EXPECT_GT(run.average_delay, 0.0);
    EXPECT_EQ(run.name, "FedAvg");
}

TEST(Harness, FairBflBetweenBlockchainAndFedAvgOnDelay) {
    // The Figure 4a ordering at paper-like scale (shrunk rounds).
    const auto env = core::build_environment([] {
        auto c = small_env();
        c.partition.num_clients = 100;
        c.data.samples = 3000;
        return c;
    }());

    auto fl_config = small_fl();
    fl_config.client_ratio = 0.1;
    fl_config.rounds = 12;

    const core::DelayParams delay;
    const auto fedavg = core::run_system(env, core::fedavg_spec(fl_config, delay));

    core::FairBflConfig fair_config;
    fair_config.fl = fl_config;
    fair_config.miners = 2;
    fair_config.delay = delay;
    const auto fair = core::run_system(env, core::fairbfl_spec(fair_config));

    core::BlockchainBaselineConfig bc_config;
    bc_config.workers = 100;
    bc_config.miners = 2;
    bc_config.rounds = 12;
    bc_config.delay = delay;
    const auto blockchain = core::run_system(env, core::blockchain_spec(bc_config));

    EXPECT_LT(fedavg.average_delay, fair.average_delay);
    EXPECT_LT(fair.average_delay, blockchain.average_delay);
}

TEST(Harness, FairBflAccuracyTracksFedAvg) {
    // Figure 4b: FAIR ~= FedAvg on accuracy.
    const auto env = core::build_environment(small_env());
    const auto fl_config = small_fl();
    const auto fedavg = core::run_system(env, core::fedavg_spec(fl_config, core::DelayParams{}));
    core::FairBflConfig fair_config;
    fair_config.fl = fl_config;
    const auto fair = core::run_system(env, core::fairbfl_spec(fair_config));
    EXPECT_NEAR(fair.final_accuracy, fedavg.final_accuracy, 0.08);
}

TEST(Harness, FedProxRunsUnderSharedProtocol) {
    const auto env = core::build_environment(small_env());
    fairbfl::fl::FedProxConfig config;
    config.base = small_fl();
    config.prox_mu = 0.05;
    config.drop_percent = 0.1;
    const auto run = core::run_system(env, core::fedprox_spec(config, core::DelayParams{}));
    EXPECT_EQ(run.series.size(), 10U);
    EXPECT_GT(run.final_accuracy, 0.5);
}

TEST(Harness, BlockchainRunHasNoAccuracy) {
    core::BlockchainBaselineConfig config;
    config.workers = 10;
    config.rounds = 5;
    const core::Environment none;  // pure ledger ignores the environment
    const auto run = core::run_system(none, core::blockchain_spec(config));
    for (const auto& point : run.series) EXPECT_EQ(point.accuracy, 0.0);
    EXPECT_GT(run.average_delay, 0.0);
}

TEST(Harness, FlRoundDelayScalesWithParticipants) {
    const auto env = core::build_environment(small_env());
    const core::DelayModel delays{core::DelayParams{}};
    const auto sgd = small_fl().sgd;
    const double few = core::fl_round_delay(delays, env, {0, 1}, sgd, 0, 42);
    const double many = core::fl_round_delay(
        delays, env, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, sgd, 0, 42);
    EXPECT_GE(many, few);  // max over more clients dominates
}

}  // namespace
