// Algorithm 2: contribution identification, reward math, strategies, and
// the reward ledger.

#include <gtest/gtest.h>

#include <cmath>

#include "incentive/contribution.hpp"
#include "incentive/reward.hpp"
#include "support/rng.hpp"
#include "support/vecmath.hpp"

namespace {

namespace inc = fairbfl::incentive;
namespace fl = fairbfl::fl;
using fairbfl::support::Rng;

/// Honest updates tightly packed around `base`; forged ones far away.
std::vector<fl::GradientUpdate> make_round(std::size_t honest,
                                           std::size_t forged,
                                           std::uint64_t seed,
                                           std::size_t dim = 12) {
    Rng rng(seed);
    std::vector<float> base(dim);
    for (auto& v : base) v = static_cast<float>(rng.normal());

    std::vector<fl::GradientUpdate> updates;
    fl::NodeId id = 0;
    for (std::size_t i = 0; i < honest; ++i) {
        fl::GradientUpdate u;
        u.client = id++;
        u.weights = base;
        for (auto& v : u.weights)
            v += static_cast<float>(0.02 * rng.normal());
        updates.push_back(std::move(u));
    }
    for (std::size_t i = 0; i < forged; ++i) {
        fl::GradientUpdate u;
        u.client = id++;
        u.weights.resize(dim);
        for (std::size_t d = 0; d < dim; ++d)
            u.weights[d] = -3.0F * base[d] +
                           static_cast<float>(0.5 * rng.normal());
        updates.push_back(std::move(u));
    }
    return updates;
}

inc::ContributionConfig default_config() {
    inc::ContributionConfig config;
    config.dbscan.adaptive_eps = true;
    config.dbscan.min_pts = 3;
    return config;
}

TEST(Contribution, HonestMajorityIsHighForgedIsLow) {
    auto updates = make_round(10, 2, 1);
    const auto provisional = fl::simple_average(updates);
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());

    ASSERT_EQ(report.entries.size(), 12U);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_TRUE(report.entries[i].high) << "honest client " << i;
    for (std::size_t i = 10; i < 12; ++i)
        EXPECT_FALSE(report.entries[i].high) << "forged client " << i;
    EXPECT_EQ(report.high_indices.size(), 10U);
    EXPECT_EQ(report.low_indices.size(), 2U);
}

TEST(Contribution, RewardsSumToBaseAndOnlyHighEarn) {
    auto updates = make_round(8, 2, 2);
    const auto provisional = fl::simple_average(updates);
    auto config = default_config();
    config.reward_base = 5.0;
    const auto report =
        inc::identify_contributions(updates, provisional, config);

    double total = 0.0;
    for (const auto& entry : report.entries) {
        if (!entry.high) {
            EXPECT_DOUBLE_EQ(entry.reward, 0.0);
        }
        total += entry.reward;
    }
    EXPECT_NEAR(total, 5.0, 1e-9);
    EXPECT_NEAR(report.total_reward(), 5.0, 1e-9);
}

TEST(Contribution, RewardProportionalToTheta) {
    auto updates = make_round(6, 0, 3);
    const auto provisional = fl::simple_average(updates);
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());
    // reward_i / reward_j == theta_i / theta_j for high contributors.
    const auto& e = report.entries;
    for (std::size_t i = 1; i < e.size(); ++i) {
        if (e[0].theta > 1e-12 && e[i].theta > 1e-12) {
            EXPECT_NEAR(e[i].reward / e[0].reward, e[i].theta / e[0].theta,
                        1e-6);
        }
    }
}

TEST(Contribution, IdenticalGradientsSplitRewardEvenly) {
    std::vector<fl::GradientUpdate> updates;
    for (fl::NodeId id = 0; id < 4; ++id) {
        fl::GradientUpdate u;
        u.client = id;
        u.weights = {1.0F, 2.0F, 3.0F};
        updates.push_back(std::move(u));
    }
    const auto provisional = fl::simple_average(updates);
    auto config = default_config();
    config.dbscan.adaptive_eps = false;
    config.dbscan.eps = 0.5;
    const auto report =
        inc::identify_contributions(updates, provisional, config);
    for (const auto& entry : report.entries)
        EXPECT_NEAR(entry.reward, 0.25, 1e-9);
}

TEST(Contribution, TinyRoundsDegradeToEveryoneHigh) {
    // With n + 1 points <= min_pts there is no k-distance sample;
    // suggest_eps returns 0, DBSCAN labels everything noise, and
    // Algorithm 2 must degrade to plain fair aggregation (everyone high,
    // rewards still summing to base) -- not cluster on an invented eps.
    for (const std::size_t n : {1U, 2U}) {
        auto updates = make_round(n, 0, 10 + n);
        const auto provisional = fl::simple_average(updates);
        const auto report = inc::identify_contributions(updates, provisional,
                                                        default_config());
        ASSERT_EQ(report.entries.size(), n);
        EXPECT_EQ(report.clustering.num_clusters, 0) << n;
        EXPECT_EQ(report.global_cluster, fairbfl::cluster::ClusterResult::kNoise);
        double total = 0.0;
        for (const auto& entry : report.entries) {
            EXPECT_TRUE(entry.high);
            total += entry.reward;
        }
        EXPECT_NEAR(total, 1.0, 1e-9) << n;
    }
}

TEST(Contribution, EmptyUpdateSetYieldsEmptyReport) {
    const std::vector<fl::GradientUpdate> updates;
    const std::vector<float> provisional{1.0F};
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());
    EXPECT_TRUE(report.entries.empty());
    EXPECT_DOUBLE_EQ(report.total_reward(), 0.0);
}

TEST(Contribution, LowClientsSortedIds) {
    auto updates = make_round(6, 3, 4);
    const auto provisional = fl::simple_average(updates);
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());
    const auto low = report.low_clients();
    EXPECT_EQ(low.size(), 3U);
    for (std::size_t i = 1; i < low.size(); ++i)
        EXPECT_LT(low[i - 1], low[i]);
}

TEST(Contribution, KMeansVariantAlsoSeparates) {
    auto updates = make_round(10, 2, 5);
    const auto provisional = fl::simple_average(updates);
    auto config = default_config();
    config.clustering = "kmeans";
    config.kmeans.k = 2;
    const auto report =
        inc::identify_contributions(updates, provisional, config);
    // The two forged clients must not share the global's cluster.
    EXPECT_FALSE(report.entries[10].high);
    EXPECT_FALSE(report.entries[11].high);
}

TEST(Strategy, KeepAllUsesEveryUpdate) {
    auto updates = make_round(6, 2, 6);
    const auto provisional = fl::simple_average(updates);
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());
    const auto survivors = inc::surviving_indices(
        updates.size(), report, inc::LowContributionStrategy::kKeepAll);
    EXPECT_EQ(survivors.size(), updates.size());
}

TEST(Strategy, DiscardDropsLowContributors) {
    auto updates = make_round(6, 2, 7);
    const auto provisional = fl::simple_average(updates);
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());
    const auto survivors = inc::surviving_indices(
        updates.size(), report, inc::LowContributionStrategy::kDiscard);
    EXPECT_EQ(survivors.size(), 6U);
    for (const auto i : survivors) EXPECT_LT(i, 6U);
}

TEST(Strategy, DiscardYieldsCleanerGlobalUnderAttack) {
    // The recomputed global (discard) must be closer to the honest mean
    // than the provisional average that includes forged gradients.
    auto updates = make_round(10, 3, 8);
    std::vector<fl::GradientUpdate> honest_only(updates.begin(),
                                                updates.begin() + 10);
    const auto honest_mean = fl::simple_average(honest_only);
    const auto provisional = fl::simple_average(updates);
    const auto report =
        inc::identify_contributions(updates, provisional, default_config());
    const auto cleaned = inc::apply_strategy(
        updates, report, inc::LowContributionStrategy::kDiscard);

    const double dirty_gap = std::sqrt(
        fairbfl::support::squared_distance(provisional, honest_mean));
    const double clean_gap = std::sqrt(
        fairbfl::support::squared_distance(cleaned, honest_mean));
    EXPECT_LT(clean_gap, dirty_gap * 0.5);
}

TEST(Strategy, DiscardWithNoHighFallsBackToAll) {
    auto updates = make_round(4, 0, 9);
    inc::ContributionReport report;
    report.entries.resize(4);
    for (std::size_t i = 0; i < 4; ++i) {
        report.entries[i].client = static_cast<fl::NodeId>(i);
        report.entries[i].theta = 0.1;
        report.entries[i].high = false;
        report.low_indices.push_back(i);
    }
    const auto survivors = inc::surviving_indices(
        4, report, inc::LowContributionStrategy::kDiscard);
    EXPECT_EQ(survivors.size(), 4U);
    const auto aggregated = inc::apply_strategy(
        updates, report, inc::LowContributionStrategy::kDiscard);
    EXPECT_EQ(aggregated.size(), updates[0].weights.size());
}

TEST(RewardLedger, AccumulatesAcrossRounds) {
    inc::RewardLedger ledger;
    ledger.record_entry({0, 1, 2.0});
    ledger.record_entry({0, 2, 1.0});
    ledger.record_entry({1, 1, 0.5});
    EXPECT_DOUBLE_EQ(ledger.total_for(1), 2.5);
    EXPECT_DOUBLE_EQ(ledger.total_for(2), 1.0);
    EXPECT_DOUBLE_EQ(ledger.total_for(99), 0.0);
    EXPECT_DOUBLE_EQ(ledger.grand_total(), 3.5);
    EXPECT_EQ(ledger.rounds_recorded(), 2U);
    EXPECT_EQ(ledger.history().size(), 3U);
}

TEST(RewardLedger, LeaderboardSortedByTotal) {
    inc::RewardLedger ledger;
    ledger.record_entry({0, 5, 1.0});
    ledger.record_entry({0, 3, 4.0});
    ledger.record_entry({1, 7, 4.0});  // tie with 3 -> lower id first
    const auto board = ledger.leaderboard();
    ASSERT_EQ(board.size(), 3U);
    EXPECT_EQ(board[0].first, 3U);
    EXPECT_EQ(board[1].first, 7U);
    EXPECT_EQ(board[2].first, 5U);
}

TEST(RewardLedger, RecordSkipsZeroRewards) {
    inc::RewardLedger ledger;
    inc::ContributionReport report;
    report.entries.resize(2);
    report.entries[0] = {.client = 1, .theta = 0.5, .high = true, .reward = 1.0};
    report.entries[1] = {.client = 2, .theta = 0.9, .high = false, .reward = 0.0};
    ledger.record(3, report);
    EXPECT_EQ(ledger.history().size(), 1U);
    EXPECT_DOUBLE_EQ(ledger.total_for(2), 0.0);
}

}  // namespace
