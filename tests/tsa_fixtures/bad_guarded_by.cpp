// Thread-safety-analysis fixture: must FAIL to compile under
// -Wthread-safety -Werror=thread-safety.  The field is GUARDED_BY the
// mutex but the method touches it without holding the lock -- exactly
// the class of race the capability annotations exist to reject.  The
// configure-time try_compile in CMakeLists.txt asserts this TU is
// rejected whenever the compiler is Clang; if it ever compiles, the
// analysis has been silently disabled.
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace {

class Counter {
public:
    void unguarded_bump() {
        ++value_;  // missing MutexLock: a thread-safety error
    }

private:
    fairbfl::support::Mutex mutex_;
    int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Counter counter;
    counter.unguarded_bump();
    return 0;
}
