// Thread-safety-analysis fixture: must COMPILE under -Wthread-safety
// -Werror=thread-safety.  Control for bad_guarded_by.cpp -- it proves
// the try_compile harness itself is sound (include paths, standard,
// flags), so a failure of the negative fixture can only mean the
// analysis caught the violation, not that the harness is broken.
#include "support/sync.hpp"
#include "support/thread_annotations.hpp"

namespace {

class Counter {
public:
    void guarded_bump() {
        fairbfl::support::MutexLock lock(mutex_);
        ++value_;
    }

private:
    fairbfl::support::Mutex mutex_;
    int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Counter counter;
    counter.guarded_bump();
    return 0;
}
