// Fixed-seed equivalence pins for the shared-distance-matrix refactor.
//
// The expected labels / theta / rewards below were captured from the
// pre-refactor implementation (each stage computing its own distances) on
// a fixed-seed synthetic round.  The refactored pipeline -- one
// DistanceMatrix shared by suggest_eps, the clustering scan, the
// nearest-cluster fallback, and the theta scores -- must reproduce them:
// labels exactly, scores to EXPECT_DOUBLE_EQ (theta arithmetic is
// bit-preserved by construction; the tolerance only absorbs
// cross-compiler FP-contraction differences).

#include <gtest/gtest.h>

#include "incentive/contribution.hpp"
#include "support/rng.hpp"
#include "support/vecmath.hpp"

namespace {

namespace inc = fairbfl::incentive;
namespace cl = fairbfl::cluster;
namespace fl = fairbfl::fl;
namespace vm = fairbfl::support;
using fairbfl::support::Rng;

/// Two honest blobs plus two outliers -- the generator the fixtures were
/// captured with.  Do not change without re-capturing the expectations.
std::vector<fl::GradientUpdate> synth_updates(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
    Rng rng(seed);
    std::vector<fl::GradientUpdate> updates(n);
    for (std::size_t i = 0; i < n; ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].num_samples = 10 + i;
        updates[i].weights.resize(dim);
        const bool outlier = i + 2 >= n;
        for (std::size_t d = 0; d < dim; ++d) {
            const double base = outlier ? 5.0 * (d % 2 ? -1.0 : 1.0)
                                        : 0.1 * static_cast<double>(d % 7);
            updates[i].weights[d] =
                static_cast<float>(base + 0.05 * rng.normal());
        }
    }
    return updates;
}

struct Fixture {
    std::vector<fl::GradientUpdate> updates;
    std::vector<float> global;
    std::vector<float> reference;
};

Fixture make_fixture() {
    Fixture f;
    f.updates = synth_updates(10, 16, 1234);
    f.global.assign(16, 0.0F);
    for (const auto& u : f.updates)
        for (std::size_t d = 0; d < 16; ++d)
            f.global[d] += u.weights[d] / 10.0F;
    f.reference.assign(16, 0.01F);
    return f;
}

const std::vector<double> kExpectedTheta{
    0x1.5c92e1025b6a2p-1, 0x1.6deba89402f4ap-1, 0x1.956cd226546d7p-1,
    0x1.6e4ff7416c15p-1,  0x1.88c0f9ac3a592p-1, 0x1.9c596c4e7eb21p-1,
    0x1.937313f09a0cep-1, 0x1.84ccc6062a99fp-1, 0x1.1b72c4ed1608p-5,
    0x1.2545cc55cac4p-5};

const std::vector<double> kExpectedReward{
    0x1.cf04dc420b47bp-4, 0x1.e60fa7e961227p-4, 0x1.0d449b95f4edbp-3,
    0x1.e694e586013abp-4, 0x1.04da2b11b394ep-3, 0x1.11dde72e607e1p-3,
    0x1.0bf4b65f04b62p-3, 0x1.0239e6f23b76bp-3, 0.0,
    0.0};

void expect_pinned_scores(const inc::ContributionReport& report) {
    ASSERT_EQ(report.entries.size(), 10U);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(report.entries[i].theta, kExpectedTheta[i]) << i;
        EXPECT_DOUBLE_EQ(report.entries[i].reward, kExpectedReward[i]) << i;
        EXPECT_EQ(report.entries[i].high, i < 8) << i;
    }
}

TEST(ContributionEquivalence, DefaultEuclideanConfigMatchesPreRefactor) {
    const Fixture f = make_fixture();
    const auto report = inc::identify_contributions(
        f.updates, f.global, inc::ContributionConfig{}, f.reference);
    EXPECT_EQ(report.global_cluster, 0);
    EXPECT_EQ(report.clustering.num_clusters, 1);
    const std::vector<int> expected_labels{0, 0, 0, 0, 0, 0, 0, 0, -1, -1,
                                           -1};
    EXPECT_EQ(report.clustering.labels, expected_labels);
    expect_pinned_scores(report);
    // The default config routes through the "exact" GradientIndex backend.
    EXPECT_EQ(report.index_backend, "exact");
    EXPECT_GT(report.index_build_seconds, 0.0);
}

// Selecting the exact backend by key must be the identity refactor: same
// labels, same bit-pinned theta/reward series as the pre-GradientIndex
// pipeline (the dense matrix wrapped, not reimplemented).
TEST(ContributionEquivalence, ExplicitExactIndexKeyMatchesPreRefactor) {
    const Fixture f = make_fixture();
    for (const auto metric : {cl::Metric::kEuclidean, cl::Metric::kCosine}) {
        inc::ContributionConfig config;
        config.index = "exact";
        config.dbscan.metric = metric;
        const auto report = inc::identify_contributions(f.updates, f.global,
                                                        config, f.reference);
        EXPECT_EQ(report.global_cluster, 0);
        expect_pinned_scores(report);
    }
}

// Approximate backends fall back to the dense matrix below their cost
// break-even (11 points here), so on this fixture the whole report --
// clusters, membership, theta, rewards -- is the exact one.
TEST(ContributionEquivalence, ApproximateBackendsMatchOnSmallRounds) {
    const Fixture f = make_fixture();
    for (const char* backend : {"random_projection", "sampled"}) {
        inc::ContributionConfig config;
        config.index = backend;
        const auto report = inc::identify_contributions(f.updates, f.global,
                                                        config, f.reference);
        EXPECT_EQ(report.index_backend, backend);
        EXPECT_EQ(report.global_cluster, 0);
        EXPECT_EQ(report.clustering.num_clusters, 1);
        expect_pinned_scores(report);
    }
}

TEST(ContributionEquivalence, CosineConfigMatchesPreRefactor) {
    const Fixture f = make_fixture();
    inc::ContributionConfig config;
    config.dbscan.metric = cl::Metric::kCosine;
    const auto report =
        inc::identify_contributions(f.updates, f.global, config, f.reference);
    EXPECT_EQ(report.global_cluster, 0);
    EXPECT_EQ(report.clustering.num_clusters, 2);
    const std::vector<int> expected_labels{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1};
    EXPECT_EQ(report.clustering.labels, expected_labels);
    expect_pinned_scores(report);
}

// The stronger compiler-independent invariant: theta must be bit-identical
// to computing cosine_distance directly on the effective gradients,
// whether it is read from the cosine matrix or batch-computed alongside a
// Euclidean clustering matrix.
TEST(ContributionEquivalence, ThetaBitIdenticalToDirectCosine) {
    const Fixture f = make_fixture();
    std::vector<std::vector<float>> deltas;
    for (const auto& u : f.updates) {
        std::vector<float> d(u.weights.begin(), u.weights.end());
        for (std::size_t j = 0; j < d.size(); ++j) d[j] -= f.reference[j];
        deltas.push_back(std::move(d));
    }
    std::vector<float> global_delta(f.global.begin(), f.global.end());
    for (std::size_t j = 0; j < global_delta.size(); ++j)
        global_delta[j] -= f.reference[j];

    for (const auto metric : {cl::Metric::kEuclidean, cl::Metric::kCosine}) {
        // Theta feeds rewards, so it must stay exact under *every*
        // backend -- approximate indexes included (they are comparison-
        // only; the pipeline recomputes theta with the exact kernel).
        for (const char* backend : {"exact", "random_projection", "sampled"}) {
            inc::ContributionConfig config;
            config.index = backend;
            config.dbscan.metric = metric;
            const auto report = inc::identify_contributions(
                f.updates, f.global, config, f.reference);
            for (std::size_t i = 0; i < deltas.size(); ++i) {
                EXPECT_EQ(report.entries[i].theta,
                          vm::cosine_distance(deltas[i], global_delta))
                    << "metric=" << static_cast<int>(metric) << " i=" << i
                    << " index=" << backend;
            }
        }
    }
}

// Regression for the nearest-cluster fallback hardcoding cosine distance:
// when the provisional global lands in DBSCAN noise, the fallback must use
// the *configured* metric.  Geometry where the two metrics disagree:
// cluster A sits near the origin pointing +x, cluster B sits at (4, 3),
// and the global at (5, 0) -- cosine-nearest to A (same direction),
// Euclidean-nearest to B.
TEST(ContributionEquivalence, NoiseFallbackUsesConfiguredMetric) {
    const auto make_update = [](fl::NodeId id, float x, float y) {
        fl::GradientUpdate u;
        u.client = id;
        u.weights = {x, y};
        return u;
    };
    std::vector<fl::GradientUpdate> updates;
    updates.push_back(make_update(0, 0.010F, 0.000F));
    updates.push_back(make_update(1, 0.011F, 0.001F));
    updates.push_back(make_update(2, 0.009F, -0.001F));
    updates.push_back(make_update(3, 4.00F, 3.00F));
    updates.push_back(make_update(4, 4.01F, 3.01F));
    updates.push_back(make_update(5, 3.99F, 2.99F));
    const std::vector<float> global{5.0F, 0.0F};

    inc::ContributionConfig config;
    config.dbscan.adaptive_eps = false;
    config.dbscan.eps = 0.5;
    config.dbscan.min_pts = 3;

    config.dbscan.metric = cl::Metric::kEuclidean;
    const auto euclid =
        inc::identify_contributions(updates, global, config);
    ASSERT_EQ(euclid.clustering.num_clusters, 2);
    ASSERT_EQ(euclid.clustering.labels[updates.size()],
              cl::ClusterResult::kNoise);
    // Euclidean fallback picks B (label of updates 3-5); the old
    // hardcoded-cosine fallback picked A.
    EXPECT_EQ(euclid.global_cluster, euclid.clustering.labels[3]);
}

}  // namespace
