// Network delay sampling and the mining race (forks, winners, timing).

#include <gtest/gtest.h>

#include "chain/mining_race.hpp"
#include "chain/network.hpp"
#include "support/stats.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::support::Rng;
using fairbfl::support::RunningStats;

TEST(Network, UploadTimeGrowsWithPayload) {
    ch::NetworkModel net;
    Rng rng(1);
    RunningStats small;
    RunningStats large;
    for (int i = 0; i < 2000; ++i) {
        small.add(net.client_upload_seconds(1'000, rng));
        large.add(net.client_upload_seconds(10'000'000, rng));
    }
    EXPECT_GT(large.mean(), small.mean() * 2);
    EXPECT_GT(small.mean(), 0.0);
}

TEST(Network, MinerLinksFasterThanClientLinks) {
    ch::NetworkModel net;
    Rng rng(2);
    RunningStats client;
    RunningStats miner;
    for (int i = 0; i < 2000; ++i) {
        client.add(net.client_upload_seconds(100'000, rng));
        miner.add(net.miner_link_seconds(100'000, rng));
    }
    EXPECT_GT(client.mean(), miner.mean());
}

TEST(Network, SingleNodeExchangesAreFree) {
    ch::NetworkModel net;
    Rng rng(3);
    EXPECT_EQ(net.exchange_seconds(1, 1000, rng), 0.0);
    EXPECT_EQ(net.block_propagation_seconds(1, 1000, rng), 0.0);
}

TEST(Network, ExchangeGrowsWithMinerCount) {
    // Max over more links stochastically dominates max over fewer.
    ch::NetworkModel net;
    Rng rng(4);
    RunningStats few;
    RunningStats many;
    for (int i = 0; i < 2000; ++i) {
        few.add(net.exchange_seconds(2, 50'000, rng));
        many.add(net.exchange_seconds(10, 50'000, rng));
    }
    EXPECT_GT(many.mean(), few.mean());
}

TEST(Network, DisturbanceInflatesTail) {
    ch::NetworkParams calm;
    calm.disturbance_prob = 0.0;
    ch::NetworkParams rough;
    rough.disturbance_prob = 0.5;
    rough.disturbance_penalty = 10.0;
    Rng rng_calm(5);
    Rng rng_rough(5);
    RunningStats calm_stats;
    RunningStats rough_stats;
    for (int i = 0; i < 3000; ++i) {
        calm_stats.add(
            ch::NetworkModel(calm).client_upload_seconds(1000, rng_calm));
        rough_stats.add(
            ch::NetworkModel(rough).client_upload_seconds(1000, rng_rough));
    }
    EXPECT_GT(rough_stats.mean(), calm_stats.mean() * 2);
}

TEST(Race, WinnerIsValidMiner) {
    const auto miners = ch::uniform_miners(5, 1e6);
    const ch::MiningRace race(miners, ch::NetworkModel{}, 1'000'000);
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        const auto outcome = race.run(1000, /*allow_forks=*/true, rng);
        EXPECT_LT(outcome.winner, 5U);
        EXPECT_GT(outcome.solve_seconds, 0.0);
    }
}

TEST(Race, MoreMinersSolveFaster) {
    // Min of m exponentials has mean (difficulty/hashrate)/m.
    Rng rng2(7);
    Rng rng8(8);
    const ch::MiningRace race2(ch::uniform_miners(2, 1e6), ch::NetworkModel{},
                               4'000'000);
    const ch::MiningRace race8(ch::uniform_miners(8, 1e6), ch::NetworkModel{},
                               4'000'000);
    RunningStats t2;
    RunningStats t8;
    for (int i = 0; i < 4000; ++i) {
        t2.add(race2.run(100, false, rng2).solve_seconds);
        t8.add(race8.run(100, false, rng8).solve_seconds);
    }
    EXPECT_NEAR(t2.mean(), 2.0, 0.15);   // 4s per miner / 2
    EXPECT_NEAR(t8.mean(), 0.5, 0.05);   // 4s per miner / 8
}

TEST(Race, NoForksWhenDisallowed) {
    const ch::MiningRace race(ch::uniform_miners(10, 1e6), ch::NetworkModel{},
                              100'000);
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const auto outcome = race.run(100'000, /*allow_forks=*/false, rng);
        EXPECT_FALSE(outcome.forked);
        EXPECT_EQ(outcome.fork_merge_seconds, 0.0);
    }
}

TEST(Race, ForkRateGrowsWithMiners) {
    // Propagation is a relay chain, so the fork window widens with the
    // miner count; with per-miner rates held fixed the wide fleet forks
    // far more often.
    ch::NetworkParams net;
    net.miner_bandwidth_Bps = 1e6;  // 1 s per 1 MB block hop
    std::size_t forks2 = 0;
    std::size_t forks10 = 0;
    Rng rngA(10);
    Rng rngB(11);
    const ch::MiningRace race2(ch::uniform_miners(2, 1e6),
                               ch::NetworkModel(net), 2'000'000);
    const ch::MiningRace race10(ch::uniform_miners(10, 1e6),
                                ch::NetworkModel(net), 2'000'000);
    for (int i = 0; i < 500; ++i) {
        if (race2.run(1'000'000, true, rngA).forked) ++forks2;
        if (race10.run(1'000'000, true, rngB).forked) ++forks10;
    }
    EXPECT_GT(forks10, forks2);
    EXPECT_GT(forks10, 250U);  // should fork most of the time
}

TEST(Race, ForkMergeCostsTime) {
    ch::NetworkParams slow_net;
    slow_net.miner_bandwidth_Bps = 1e5;
    const ch::MiningRace race(ch::uniform_miners(10, 1e6),
                              ch::NetworkModel(slow_net), 2'000'000);
    Rng rng(12);
    for (int i = 0; i < 300; ++i) {
        const auto outcome = race.run(1'000'000, true, rng);
        if (outcome.forked) {
            EXPECT_GE(outcome.fork_width, 2U);
            EXPECT_GT(outcome.fork_merge_seconds, 0.0);
            EXPECT_GT(outcome.total_seconds(),
                      outcome.solve_seconds + outcome.propagation_seconds);
            return;  // saw at least one fork with cost: pass
        }
    }
    FAIL() << "no fork observed in 300 races";
}

TEST(Race, EmptyFleetIsInert) {
    const ch::MiningRace race({}, ch::NetworkModel{}, 1000);
    Rng rng(13);
    const auto outcome = race.run(100, true, rng);
    EXPECT_EQ(outcome.total_seconds(), 0.0);
}

}  // namespace
