// Vector kernels: correctness and edge cases (zero vectors, clamping).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/vecmath.hpp"

namespace {

namespace vm = fairbfl::support;

TEST(VecMath, Axpy) {
    std::vector<float> x{1.0F, 2.0F, 3.0F};
    std::vector<float> y{10.0F, 20.0F, 30.0F};
    vm::axpy(2.0F, x, y);
    EXPECT_FLOAT_EQ(y[0], 12.0F);
    EXPECT_FLOAT_EQ(y[1], 24.0F);
    EXPECT_FLOAT_EQ(y[2], 36.0F);
}

TEST(VecMath, ScaleAndFill) {
    std::vector<float> x{1.0F, -2.0F, 4.0F};
    vm::scale(x, 0.5F);
    EXPECT_FLOAT_EQ(x[1], -1.0F);
    vm::fill(x, 7.0F);
    for (const float v : x) EXPECT_FLOAT_EQ(v, 7.0F);
}

TEST(VecMath, DotAndNorm) {
    std::vector<float> x{3.0F, 4.0F};
    EXPECT_DOUBLE_EQ(vm::dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(vm::norm2(x), 5.0);
}

TEST(VecMath, SquaredDistance) {
    std::vector<float> x{1.0F, 1.0F};
    std::vector<float> y{4.0F, 5.0F};
    EXPECT_DOUBLE_EQ(vm::squared_distance(x, y), 25.0);
}

TEST(VecMath, CosineDistanceIdenticalIsZero) {
    std::vector<float> x{1.0F, 2.0F, 3.0F};
    EXPECT_NEAR(vm::cosine_distance(x, x), 0.0, 1e-12);
}

TEST(VecMath, CosineDistanceOppositeIsTwo) {
    std::vector<float> x{1.0F, 0.0F};
    std::vector<float> y{-1.0F, 0.0F};
    EXPECT_NEAR(vm::cosine_distance(x, y), 2.0, 1e-12);
}

TEST(VecMath, CosineDistanceOrthogonalIsOne) {
    std::vector<float> x{1.0F, 0.0F};
    std::vector<float> y{0.0F, 5.0F};
    EXPECT_NEAR(vm::cosine_distance(x, y), 1.0, 1e-12);
}

TEST(VecMath, CosineDistanceScaleInvariant) {
    std::vector<float> x{1.0F, 2.0F, -1.0F};
    std::vector<float> y{2.0F, 4.0F, -2.0F};
    EXPECT_NEAR(vm::cosine_distance(x, y), 0.0, 1e-6);
}

TEST(VecMath, CosineDistanceZeroVectorIsMax) {
    std::vector<float> x{0.0F, 0.0F};
    std::vector<float> y{1.0F, 2.0F};
    EXPECT_DOUBLE_EQ(vm::cosine_distance(x, y), 1.0);
    EXPECT_DOUBLE_EQ(vm::cosine_distance(y, x), 1.0);
}

TEST(VecMath, WeightedSum) {
    std::vector<std::vector<float>> rows{{1.0F, 0.0F}, {0.0F, 1.0F}};
    std::vector<double> weights{0.25, 0.75};
    std::vector<float> out(2);
    vm::weighted_sum(rows, weights, out);
    EXPECT_FLOAT_EQ(out[0], 0.25F);
    EXPECT_FLOAT_EQ(out[1], 0.75F);
}

TEST(VecMath, MeanOf) {
    std::vector<std::vector<float>> rows{{2.0F, 4.0F}, {4.0F, 8.0F}};
    std::vector<float> out(2);
    vm::mean_of(rows, out);
    EXPECT_FLOAT_EQ(out[0], 3.0F);
    EXPECT_FLOAT_EQ(out[1], 6.0F);
}

TEST(VecMath, MeanOfEmptyIsZero) {
    std::vector<std::vector<float>> rows;
    std::vector<float> out(3, 9.0F);
    vm::mean_of(rows, out);
    for (const float v : out) EXPECT_FLOAT_EQ(v, 0.0F);
}

}  // namespace
