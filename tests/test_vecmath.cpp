// Vector kernels: correctness and edge cases (zero vectors, clamping).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/vecmath.hpp"

namespace {

namespace vm = fairbfl::support;

TEST(VecMath, Axpy) {
    std::vector<float> x{1.0F, 2.0F, 3.0F};
    std::vector<float> y{10.0F, 20.0F, 30.0F};
    vm::axpy(2.0F, x, y);
    EXPECT_FLOAT_EQ(y[0], 12.0F);
    EXPECT_FLOAT_EQ(y[1], 24.0F);
    EXPECT_FLOAT_EQ(y[2], 36.0F);
}

TEST(VecMath, ScaleAndFill) {
    std::vector<float> x{1.0F, -2.0F, 4.0F};
    vm::scale(x, 0.5F);
    EXPECT_FLOAT_EQ(x[1], -1.0F);
    vm::fill(x, 7.0F);
    for (const float v : x) EXPECT_FLOAT_EQ(v, 7.0F);
}

TEST(VecMath, DotAndNorm) {
    std::vector<float> x{3.0F, 4.0F};
    EXPECT_DOUBLE_EQ(vm::dot(x, x), 25.0);
    EXPECT_DOUBLE_EQ(vm::norm2(x), 5.0);
}

TEST(VecMath, SquaredDistance) {
    std::vector<float> x{1.0F, 1.0F};
    std::vector<float> y{4.0F, 5.0F};
    EXPECT_DOUBLE_EQ(vm::squared_distance(x, y), 25.0);
}

TEST(VecMath, CosineDistanceIdenticalIsZero) {
    std::vector<float> x{1.0F, 2.0F, 3.0F};
    EXPECT_NEAR(vm::cosine_distance(x, x), 0.0, 1e-12);
}

TEST(VecMath, CosineDistanceOppositeIsTwo) {
    std::vector<float> x{1.0F, 0.0F};
    std::vector<float> y{-1.0F, 0.0F};
    EXPECT_NEAR(vm::cosine_distance(x, y), 2.0, 1e-12);
}

TEST(VecMath, CosineDistanceOrthogonalIsOne) {
    std::vector<float> x{1.0F, 0.0F};
    std::vector<float> y{0.0F, 5.0F};
    EXPECT_NEAR(vm::cosine_distance(x, y), 1.0, 1e-12);
}

TEST(VecMath, CosineDistanceScaleInvariant) {
    std::vector<float> x{1.0F, 2.0F, -1.0F};
    std::vector<float> y{2.0F, 4.0F, -2.0F};
    EXPECT_NEAR(vm::cosine_distance(x, y), 0.0, 1e-6);
}

TEST(VecMath, CosineDistanceZeroVectorIsMax) {
    std::vector<float> x{0.0F, 0.0F};
    std::vector<float> y{1.0F, 2.0F};
    EXPECT_DOUBLE_EQ(vm::cosine_distance(x, y), 1.0);
    EXPECT_DOUBLE_EQ(vm::cosine_distance(y, x), 1.0);
}

TEST(VecMath, WeightedSum) {
    std::vector<std::vector<float>> rows{{1.0F, 0.0F}, {0.0F, 1.0F}};
    std::vector<double> weights{0.25, 0.75};
    std::vector<float> out(2);
    vm::weighted_sum(rows, weights, out);
    EXPECT_FLOAT_EQ(out[0], 0.25F);
    EXPECT_FLOAT_EQ(out[1], 0.75F);
}

TEST(VecMath, MeanOf) {
    std::vector<std::vector<float>> rows{{2.0F, 4.0F}, {4.0F, 8.0F}};
    std::vector<float> out(2);
    vm::mean_of(rows, out);
    EXPECT_FLOAT_EQ(out[0], 3.0F);
    EXPECT_FLOAT_EQ(out[1], 6.0F);
}

TEST(VecMath, MeanOfEmptyIsZero) {
    std::vector<std::vector<float>> rows;
    std::vector<float> out(3, 9.0F);
    vm::mean_of(rows, out);
    for (const float v : out) EXPECT_FLOAT_EQ(v, 0.0F);
}

// --- Blocked / batch kernels -----------------------------------------------

std::vector<float> random_vec(std::size_t n, std::uint32_t& state) {
    std::vector<float> v(n);
    for (auto& x : v) {
        state = state * 1664525U + 1013904223U;
        x = static_cast<float>(static_cast<double>(state) / 4294967296.0 -
                               0.5);
    }
    return v;
}

TEST(VecMath, AxpyUnrollMatchesReferenceOnOddSizes) {
    std::uint32_t state = 1;
    for (const std::size_t n : {0UL, 1UL, 3UL, 4UL, 5UL, 17UL, 1023UL}) {
        const auto x = random_vec(n, state);
        auto y = random_vec(n, state);
        auto reference = y;
        for (std::size_t i = 0; i < n; ++i)
            reference[i] += 1.5F * x[i];
        vm::axpy(1.5F, x, y);
        EXPECT_EQ(y, reference) << "n=" << n;
    }
}

TEST(VecMath, BlockedDotCloseToExactDot) {
    std::uint32_t state = 2;
    for (const std::size_t n : {1UL, 4UL, 7UL, 1000UL, 4099UL}) {
        const auto x = random_vec(n, state);
        const auto y = random_vec(n, state);
        const double exact = vm::dot(x, y);
        // Reassociated, so not bit-equal in general -- but tight.
        EXPECT_NEAR(vm::dot_blocked(x, y), exact,
                    1e-9 * (1.0 + std::abs(exact)))
            << "n=" << n;
    }
}

TEST(VecMath, BlockedSquaredDistanceCloseToExact) {
    std::uint32_t state = 3;
    for (const std::size_t n : {1UL, 5UL, 64UL, 4097UL}) {
        const auto x = random_vec(n, state);
        const auto y = random_vec(n, state);
        const double exact = vm::squared_distance(x, y);
        EXPECT_NEAR(vm::squared_distance_blocked(x, y), exact,
                    1e-9 * (1.0 + exact))
            << "n=" << n;
    }
}

TEST(VecMath, CachedCosineBitIdenticalToPlain) {
    std::uint32_t state = 4;
    const auto x = random_vec(129, state);
    const auto y = random_vec(129, state);
    EXPECT_EQ(vm::cosine_distance_cached(x, y, vm::norm2(x), vm::norm2(y)),
              vm::cosine_distance(x, y));
}

TEST(VecMath, BatchCosineBitIdenticalToPairwise) {
    std::uint32_t state = 5;
    std::vector<std::vector<float>> rows;
    for (int i = 0; i < 9; ++i) rows.push_back(random_vec(33, state));
    const auto query = random_vec(33, state);
    std::vector<double> out(rows.size());
    vm::cosine_distances_to(rows, query, out);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(out[i], vm::cosine_distance(rows[i], query)) << i;
}

TEST(VecMath, NormsOfMatchesNorm2) {
    std::uint32_t state = 6;
    std::vector<std::vector<float>> rows;
    for (int i = 0; i < 5; ++i) rows.push_back(random_vec(11, state));
    const auto norms = vm::norms_of(rows);
    ASSERT_EQ(norms.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(norms[i], vm::norm2(rows[i])) << i;
}

// --- Training-engine kernels: bit-identity to their scalar references ------

TEST(VecMath, GemvBitIdenticalToPerRowDot) {
    std::uint32_t state = 11;
    // Row counts cover the 4-block, the 2-row tail, and the single-row
    // tail; odd column counts cover the 2-column unroll remainder.
    for (const std::size_t rows : {1UL, 2UL, 3UL, 4UL, 5UL, 6UL, 7UL, 10UL,
                                   13UL, 32UL}) {
        for (const std::size_t cols : {1UL, 2UL, 7UL, 64UL, 783UL}) {
            const auto a = random_vec(rows * cols, state);
            const auto x = random_vec(cols, state);
            const auto bias = random_vec(rows, state);
            std::vector<float> expect(rows);
            for (std::size_t r = 0; r < rows; ++r) {
                expect[r] =
                    bias[r] +
                    static_cast<float>(vm::dot(
                        std::span<const float>(a).subspan(r * cols, cols),
                        x));
            }
            std::vector<float> got(rows);
            vm::gemv(a, rows, cols, x, bias, got);
            EXPECT_EQ(got, expect) << rows << "x" << cols;

            // Biasless form: the bare cast double sum.
            for (std::size_t r = 0; r < rows; ++r) {
                expect[r] = static_cast<float>(vm::dot(
                    std::span<const float>(a).subspan(r * cols, cols), x));
            }
            vm::gemv(a, rows, cols, x, {}, got);
            EXPECT_EQ(got, expect) << rows << "x" << cols << " no-bias";
        }
    }
}

TEST(VecMath, GemvTransposeAccumulateBitIdenticalToScalarLoop) {
    std::uint32_t state = 12;
    const std::size_t rows = 10, cols = 13;
    const auto a = random_vec(rows * cols, state);
    const auto d = random_vec(rows, state);

    std::vector<float> expect(cols, 0.0F);
    for (std::size_t j = 0; j < cols; ++j) {
        float acc = 0.0F;
        for (std::size_t r = 0; r < rows; ++r) acc += d[r] * a[r * cols + j];
        expect[j] = acc;
    }
    std::vector<float> got(cols, 0.0F);
    vm::gemv_transpose_accumulate(a, rows, cols, d, got);
    EXPECT_EQ(got, expect);
}

TEST(VecMath, OuterAccumulateBitIdenticalToPerRowAxpy) {
    std::uint32_t state = 13;
    const std::size_t rows = 7, cols = 19;
    const auto d = random_vec(rows, state);
    const auto x = random_vec(cols, state);
    auto expect = random_vec(rows * cols, state);
    auto got = expect;

    for (std::size_t r = 0; r < rows; ++r)
        vm::axpy(d[r], x, std::span<float>(expect).subspan(r * cols, cols));
    vm::outer_accumulate(d, x, rows, cols, got);
    EXPECT_EQ(got, expect);
}

TEST(VecMath, AddScaledDiffBitIdenticalToScalarLoop) {
    std::uint32_t state = 14;
    for (const std::size_t n : {0UL, 1UL, 3UL, 4UL, 5UL, 17UL, 1023UL}) {
        const auto x = random_vec(n, state);
        const auto z = random_vec(n, state);
        auto expect = random_vec(n, state);
        auto got = expect;
        for (std::size_t i = 0; i < n; ++i)
            expect[i] += 0.25F * (x[i] - z[i]);
        vm::add_scaled_diff(0.25F, x, z, got);
        EXPECT_EQ(got, expect) << "n=" << n;
    }
}

// The parallel determinism contract of the combine kernels: a
// multi-threaded pool must reproduce the serial accumulation bit-for-bit
// (each element sums its rows in row order regardless of chunking).
TEST(VecMath, WeightedSumParallelBitIdenticalToSerial) {
    std::uint32_t state = 7;
    const std::size_t dim = 3 * 8192 + 17;  // spans several chunks
    std::vector<std::vector<float>> rows;
    for (int r = 0; r < 6; ++r) rows.push_back(random_vec(dim, state));
    const std::vector<double> weights{0.1, 0.3, 0.05, 0.25, 0.2, 0.1};

    std::vector<float> serial(dim, 0.0F);
    for (std::size_t r = 0; r < rows.size(); ++r)
        vm::axpy(static_cast<float>(weights[r]), rows[r], serial);

    fairbfl::support::ThreadPool pool(4);
    std::vector<float> parallel(dim, 0.0F);
    vm::weighted_sum(rows, weights, parallel, pool);
    EXPECT_EQ(parallel, serial);
}

TEST(VecMath, MeanOfParallelBitIdenticalToSerial) {
    std::uint32_t state = 8;
    const std::size_t dim = 2 * 8192 + 5;
    std::vector<std::vector<float>> rows;
    for (int r = 0; r < 5; ++r) rows.push_back(random_vec(dim, state));

    std::vector<float> serial(dim, 0.0F);
    for (const auto& row : rows) vm::axpy(1.0F, row, serial);
    vm::scale(serial, 1.0F / static_cast<float>(rows.size()));

    fairbfl::support::ThreadPool pool(4);
    std::vector<float> parallel(dim, 0.0F);
    vm::mean_of(rows, parallel, pool);
    EXPECT_EQ(parallel, serial);
}

}  // namespace
