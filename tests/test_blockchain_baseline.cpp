// Pure-blockchain baseline: queuing, fork behaviour, ledger integrity.

#include <gtest/gtest.h>

#include "core/blockchain_baseline.hpp"

namespace {

namespace core = fairbfl::core;

core::BlockchainBaselineConfig small_config() {
    core::BlockchainBaselineConfig config;
    config.workers = 20;
    config.miners = 2;
    config.tx_payload_bytes = 1000;
    config.rounds = 5;
    config.seed = 42;
    return config;
}

TEST(BlockchainBaseline, DrainsBacklogEveryRound) {
    core::BlockchainBaseline system(small_config());
    for (int r = 0; r < 5; ++r) {
        const auto record = system.run_round();
        EXPECT_EQ(record.transactions, 20U);
        EXPECT_GE(record.blocks_mined, 1U);
        EXPECT_EQ(record.mempool_backlog, 0U);
    }
}

TEST(BlockchainBaseline, LedgerHoldsEveryTransaction) {
    auto config = small_config();
    core::BlockchainBaseline system(config);
    const auto history = system.run();
    std::size_t blocks = 0;
    std::size_t txs = 0;
    const auto& chain = system.blockchain();
    for (std::size_t h = 1; h < chain.height(); ++h) {
        ++blocks;
        txs += chain.at(h).transactions.size();
    }
    std::size_t expected_blocks = 0;
    for (const auto& record : history) expected_blocks += record.blocks_mined;
    EXPECT_EQ(blocks, expected_blocks);
    EXPECT_EQ(txs, 20U * 5U);
    EXPECT_TRUE(chain.validate_full_chain());
}

TEST(BlockchainBaseline, BlockCountGrowsWithWorkers) {
    // Queuing: 120 workers x ~1KB > 100KB block -> at least 2 blocks/round.
    auto small = small_config();
    auto big = small_config();
    big.workers = 120;
    core::BlockchainBaseline sys_small(small);
    core::BlockchainBaseline sys_big(big);
    const auto rec_small = sys_small.run_round();
    const auto rec_big = sys_big.run_round();
    EXPECT_GT(rec_big.blocks_mined, rec_small.blocks_mined);
}

TEST(BlockchainBaseline, DelayGrowsWithWorkers) {
    auto a = small_config();
    a.workers = 20;
    a.rounds = 8;
    auto b = small_config();
    b.workers = 120;
    b.rounds = 8;
    double delay_small = 0.0;
    double delay_big = 0.0;
    for (const auto& r : core::BlockchainBaseline(a).run())
        delay_small += r.delay.total();
    for (const auto& r : core::BlockchainBaseline(b).run())
        delay_big += r.delay.total();
    EXPECT_GT(delay_big, delay_small);
}

TEST(BlockchainBaseline, ForksAppearWithManyMiners) {
    auto config = small_config();
    config.miners = 10;
    config.rounds = 20;
    config.delay.network.miner_bandwidth_Bps = 2e5;  // slow gossip
    core::BlockchainBaseline system(config);
    std::size_t forks = 0;
    for (const auto& record : system.run()) forks += record.forks;
    EXPECT_GT(forks, 0U);
}

TEST(BlockchainBaseline, DeterministicInSeed) {
    core::BlockchainBaseline a(small_config());
    core::BlockchainBaseline b(small_config());
    const auto ra = a.run(3);
    const auto rb = b.run(3);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(ra[i].delay.total(), rb[i].delay.total());
}

TEST(BlockchainBaseline, SignedModeProducesVerifiedChain) {
    auto config = small_config();
    config.workers = 4;
    config.key_bits = 384;
    core::BlockchainBaseline system(config);
    (void)system.run_round();
    const auto& chain = system.blockchain();
    EXPECT_GE(chain.height(), 2U);
    for (const auto& tx : chain.at(1).transactions)
        EXPECT_FALSE(tx.signature.empty());
}

}  // namespace
