// Dataset / DatasetView / synthetic generator / train-test split / IDX.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "ml/dataset.hpp"
#include "ml/idx_loader.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace ml = fairbfl::ml;

ml::Dataset tiny_dataset() {
    ml::Dataset ds(2, 3);
    ds.add(std::vector<float>{0.0F, 0.1F}, 0);
    ds.add(std::vector<float>{1.0F, 1.1F}, 1);
    ds.add(std::vector<float>{2.0F, 2.1F}, 2);
    ds.add(std::vector<float>{3.0F, 3.1F}, 0);
    return ds;
}

TEST(Dataset, AddAndAccess) {
    const ml::Dataset ds = tiny_dataset();
    EXPECT_EQ(ds.size(), 4U);
    EXPECT_EQ(ds.feature_dim(), 2U);
    EXPECT_EQ(ds.num_classes(), 3U);
    EXPECT_EQ(ds.label_of(1), 1);
    EXPECT_FLOAT_EQ(ds.features_of(2)[0], 2.0F);
}

TEST(Dataset, RejectsBadInput) {
    ml::Dataset ds(2, 3);
    EXPECT_THROW(ds.add(std::vector<float>{1.0F}, 0), std::invalid_argument);
    EXPECT_THROW(ds.add(std::vector<float>{1.0F, 2.0F}, 3),
                 std::invalid_argument);
    EXPECT_THROW(ds.add(std::vector<float>{1.0F, 2.0F}, -1),
                 std::invalid_argument);
}

TEST(DatasetView, AllCoversDataset) {
    const ml::Dataset ds = tiny_dataset();
    const auto view = ml::DatasetView::all(ds);
    EXPECT_EQ(view.size(), ds.size());
    for (std::size_t i = 0; i < view.size(); ++i)
        EXPECT_EQ(view.label_of(i), ds.label_of(i));
}

TEST(DatasetView, BatchesSplitCorrectly) {
    const ml::Dataset ds = tiny_dataset();
    const auto view = ml::DatasetView::all(ds);
    const auto batches = view.batches(3);
    ASSERT_EQ(batches.size(), 2U);
    EXPECT_EQ(batches[0].size(), 3U);
    EXPECT_EQ(batches[1].size(), 1U);  // ragged tail
    // Batch of zero is clamped to one.
    EXPECT_EQ(view.batches(0).size(), 4U);
}

TEST(DatasetView, TakeClamps) {
    const ml::Dataset ds = tiny_dataset();
    const auto view = ml::DatasetView::all(ds);
    EXPECT_EQ(view.take(2).size(), 2U);
    EXPECT_EQ(view.take(100).size(), 4U);
}

TEST(TrainTestSplit, PartitionsWithoutOverlap) {
    const auto ds = ml::make_synthetic_mnist(
        {.samples = 200, .feature_dim = 8, .num_classes = 4, .seed = 1});
    const auto split = ml::train_test_split(ds, 0.25, 7);
    EXPECT_EQ(split.test.size(), 50U);
    EXPECT_EQ(split.train.size(), 150U);
    std::set<std::size_t> train_idx(split.train.indices().begin(),
                                    split.train.indices().end());
    for (const auto i : split.test.indices())
        EXPECT_FALSE(train_idx.contains(i));
}

TEST(TrainTestSplit, DeterministicInSeed) {
    const auto ds = ml::make_synthetic_mnist({.samples = 100, .seed = 2});
    const auto a = ml::train_test_split(ds, 0.2, 7);
    const auto b = ml::train_test_split(ds, 0.2, 7);
    EXPECT_EQ(a.test.indices(), b.test.indices());
    const auto c = ml::train_test_split(ds, 0.2, 8);
    EXPECT_NE(a.test.indices(), c.test.indices());
}

TEST(SyntheticMnist, ShapeAndDeterminism) {
    ml::SyntheticMnistParams params;
    params.samples = 300;
    params.feature_dim = 16;
    params.seed = 9;
    const auto a = ml::make_synthetic_mnist(params);
    EXPECT_EQ(a.size(), 300U);
    EXPECT_EQ(a.feature_dim(), 16U);
    const auto b = ml::make_synthetic_mnist(params);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(a.label_of(i), b.label_of(i));
        EXPECT_EQ(a.features_of(i)[0], b.features_of(i)[0]);
    }
}

TEST(SyntheticMnist, PixelsInUnitRangeAllClassesPresent) {
    const auto ds = ml::make_synthetic_mnist({.samples = 2000, .seed = 3});
    std::set<std::int32_t> classes;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        classes.insert(ds.label_of(i));
        for (const float pixel : ds.features_of(i)) {
            ASSERT_GE(pixel, 0.0F);
            ASSERT_LE(pixel, 1.0F);
        }
    }
    EXPECT_EQ(classes.size(), 10U);
}

TEST(IdxLoader, MissingFilesReturnNullopt) {
    EXPECT_FALSE(ml::load_mnist_idx("/nonexistent/images",
                                    "/nonexistent/labels")
                     .has_value());
}

TEST(IdxLoader, ParsesWellFormedFiles) {
    // Write a 2-sample 2x2 IDX pair.
    const std::string img_path = "/tmp/fairbfl_test_images.idx";
    const std::string lbl_path = "/tmp/fairbfl_test_labels.idx";
    {
        std::ofstream img(img_path, std::ios::binary);
        const unsigned char img_header[] = {0, 0, 8, 3, 0, 0, 0, 2,
                                            0, 0, 0, 2, 0, 0, 0, 2};
        img.write(reinterpret_cast<const char*>(img_header), 16);
        const unsigned char pixels[] = {0, 64, 128, 255, 10, 20, 30, 40};
        img.write(reinterpret_cast<const char*>(pixels), 8);

        std::ofstream lbl(lbl_path, std::ios::binary);
        const unsigned char lbl_header[] = {0, 0, 8, 1, 0, 0, 0, 2};
        lbl.write(reinterpret_cast<const char*>(lbl_header), 8);
        const unsigned char labels[] = {7, 2};
        lbl.write(reinterpret_cast<const char*>(labels), 2);
    }
    const auto ds = ml::load_mnist_idx(img_path, lbl_path);
    ASSERT_TRUE(ds.has_value());
    EXPECT_EQ(ds->size(), 2U);
    EXPECT_EQ(ds->feature_dim(), 4U);
    EXPECT_EQ(ds->label_of(0), 7);
    EXPECT_EQ(ds->label_of(1), 2);
    EXPECT_FLOAT_EQ(ds->features_of(0)[3], 1.0F);  // 255 -> 1.0
    std::remove(img_path.c_str());
    std::remove(lbl_path.c_str());
}

TEST(IdxLoader, RejectsBadMagic) {
    const std::string img_path = "/tmp/fairbfl_bad_images.idx";
    const std::string lbl_path = "/tmp/fairbfl_bad_labels.idx";
    {
        std::ofstream img(img_path, std::ios::binary);
        const unsigned char junk[] = {1, 2, 3, 4, 0, 0, 0, 0,
                                      0, 0, 0, 0, 0, 0, 0, 0};
        img.write(reinterpret_cast<const char*>(junk), 16);
        std::ofstream lbl(lbl_path, std::ios::binary);
        lbl.write(reinterpret_cast<const char*>(junk), 8);
    }
    EXPECT_THROW((void)ml::load_mnist_idx(img_path, lbl_path),
                 std::runtime_error);
    std::remove(img_path.c_str());
    std::remove(lbl_path.c_str());
}

}  // namespace
