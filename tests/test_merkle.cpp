// Merkle trees: roots, proofs, and tamper detection.

#include <gtest/gtest.h>

#include "chain/merkle.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::crypto::Digest;
using fairbfl::crypto::Sha256;

std::vector<Digest> make_leaves(std::size_t n) {
    std::vector<Digest> leaves;
    leaves.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        leaves.push_back(Sha256::hash("leaf-" + std::to_string(i)));
    return leaves;
}

TEST(Merkle, EmptySetHasSentinelRoot) {
    EXPECT_EQ(ch::merkle_root({}), Sha256::hash(std::string_view{}));
}

TEST(Merkle, SingleLeafRootIsLeaf) {
    const auto leaves = make_leaves(1);
    EXPECT_EQ(ch::merkle_root(leaves), leaves[0]);
}

TEST(Merkle, RootDependsOnOrder) {
    auto leaves = make_leaves(4);
    const Digest original = ch::merkle_root(leaves);
    std::swap(leaves[0], leaves[1]);
    EXPECT_NE(ch::merkle_root(leaves), original);
}

TEST(Merkle, RootChangesWhenLeafChanges) {
    auto leaves = make_leaves(5);
    const Digest original = ch::merkle_root(leaves);
    leaves[3] = Sha256::hash("tampered");
    EXPECT_NE(ch::merkle_root(leaves), original);
}

TEST(Merkle, ProofOutOfRangeThrows) {
    const auto leaves = make_leaves(3);
    EXPECT_THROW((void)ch::merkle_proof(leaves, 3), std::out_of_range);
}

TEST(Merkle, ProofRejectsWrongLeaf) {
    const auto leaves = make_leaves(8);
    const Digest root = ch::merkle_root(leaves);
    const auto proof = ch::merkle_proof(leaves, 2);
    EXPECT_EQ(ch::merkle_apply(leaves[2], proof), root);
    EXPECT_NE(ch::merkle_apply(leaves[3], proof), root);
}

// Every leaf of trees of several sizes (odd sizes exercise duplication).
class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
    const auto leaves = make_leaves(GetParam());
    const Digest root = ch::merkle_root(leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        const auto proof = ch::merkle_proof(leaves, i);
        EXPECT_EQ(ch::merkle_apply(leaves[i], proof), root)
            << "leaf " << i << " of " << leaves.size();
    }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33));

}  // namespace
