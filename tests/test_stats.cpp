// RunningStats, percentile, moving average, and the paper's convergence rule.

#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace {

namespace st = fairbfl::support;

TEST(RunningStats, MeanVarianceMinMax) {
    st::RunningStats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8U);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
    st::RunningStats stats;
    stats.add(42.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Stats, MeanOfSpan) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(st::mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(st::mean(std::span<const double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
    std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(st::percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(st::percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(st::percentile(xs, 50.0), 25.0);
}

TEST(Stats, MovingAverageWarmsUp) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const auto ma = st::moving_average(xs, 2);
    ASSERT_EQ(ma.size(), 4U);
    EXPECT_DOUBLE_EQ(ma[0], 1.0);    // window not yet full
    EXPECT_DOUBLE_EQ(ma[1], 1.5);
    EXPECT_DOUBLE_EQ(ma[2], 2.5);
    EXPECT_DOUBLE_EQ(ma[3], 3.5);
}

TEST(Convergence, FiresAfterFiveStableRounds) {
    // Paper §5.2: change within 0.5% for 5 consecutive rounds (i.e. five
    // consecutive round-over-round deltas below the tolerance).
    st::ConvergenceDetector detector;
    EXPECT_FALSE(detector.add(0.10));   // round 0: nothing to compare
    EXPECT_FALSE(detector.add(0.50));   // round 1: big jump
    EXPECT_FALSE(detector.add(0.902));  // round 2: big jump, streak resets
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(detector.add(0.902));  // 3..6
    EXPECT_TRUE(detector.add(0.903));   // round 7: 5th stable delta
    EXPECT_TRUE(detector.converged());
    EXPECT_EQ(detector.converged_at(), 7U);
}

TEST(Convergence, ResetsOnLargeChange) {
    st::ConvergenceDetector detector;
    detector.add(0.5);
    detector.add(0.5);
    detector.add(0.5);
    detector.add(0.6);  // breaks the streak
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(detector.add(0.6));
    EXPECT_TRUE(detector.add(0.6));
}

TEST(Convergence, StickyOnceConverged) {
    st::ConvergenceDetector detector;
    for (int i = 0; i < 6; ++i) detector.add(0.9);
    ASSERT_TRUE(detector.converged());
    const auto round = detector.converged_at();
    detector.add(0.1);  // later jumps do not un-converge
    EXPECT_TRUE(detector.converged());
    EXPECT_EQ(detector.converged_at(), round);
}

TEST(Convergence, CustomToleranceAndPatience) {
    st::ConvergenceDetector detector(0.05, 2);
    detector.add(1.00);
    detector.add(1.04);
    EXPECT_TRUE(detector.add(1.02));
}

}  // namespace
