// Confusion matrix and derived metrics.

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/vecmath.hpp"

namespace {

namespace ml = fairbfl::ml;

TEST(ConfusionMatrix, HandComputedCounts) {
    ml::ConfusionMatrix cm;
    cm.num_classes = 3;
    //          predicted: 0  1  2
    cm.counts = {5, 1, 0,   // actual 0
                 2, 6, 2,   // actual 1
                 0, 0, 4};  // actual 2
    EXPECT_EQ(cm.at(1, 0), 2U);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 15.0 / 20.0);
    EXPECT_DOUBLE_EQ(cm.recall(0), 5.0 / 6.0);
    EXPECT_DOUBLE_EQ(cm.recall(1), 6.0 / 10.0);
    EXPECT_DOUBLE_EQ(cm.recall(2), 1.0);
    EXPECT_NEAR(cm.macro_recall(), (5.0 / 6.0 + 0.6 + 1.0) / 3.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyClassExcludedFromMacroRecall) {
    ml::ConfusionMatrix cm;
    cm.num_classes = 2;
    cm.counts = {4, 0,
                 0, 0};  // class 1 has no support
    EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
    EXPECT_DOUBLE_EQ(cm.macro_recall(), 1.0);  // only class 0 counted
}

TEST(ConfusionMatrix, AllZeroIsSafe) {
    ml::ConfusionMatrix cm;
    cm.num_classes = 2;
    cm.counts = {0, 0, 0, 0};
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(cm.macro_recall(), 0.0);
}

TEST(ConfusionMatrix, AgreesWithModelAccuracy) {
    const auto data = ml::make_synthetic_mnist({.samples = 300,
                                                .feature_dim = 8,
                                                .num_classes = 4,
                                                .seed = 5});
    auto model = ml::make_logistic_regression(8, 4);
    std::vector<float> params(model->param_count());
    fairbfl::support::Rng rng(1);
    model->init_params(params, rng);
    const auto view = ml::DatasetView::all(data);

    const auto cm = ml::confusion_matrix(*model, params, view);
    EXPECT_DOUBLE_EQ(cm.accuracy(), model->accuracy(params, view));
    // Row sums equal per-class sample counts.
    std::vector<std::size_t> support(4, 0);
    for (std::size_t i = 0; i < view.size(); ++i)
        ++support[static_cast<std::size_t>(view.label_of(i))];
    for (std::size_t c = 0; c < 4; ++c) {
        std::size_t row = 0;
        for (std::size_t p = 0; p < 4; ++p) row += cm.at(c, p);
        EXPECT_EQ(row, support[c]);
    }
}

TEST(ConfusionMatrix, PerfectModelIsDiagonal) {
    // Train to (near) perfection on an easy problem, expect diagonal mass.
    const auto data = ml::make_synthetic_mnist({.samples = 200,
                                                .feature_dim = 8,
                                                .num_classes = 3,
                                                .noise_sigma = 0.1,
                                                .seed = 6});
    auto model = ml::make_logistic_regression(8, 3);
    std::vector<float> params(model->param_count(), 0.0F);
    const auto view = ml::DatasetView::all(data);
    std::vector<float> grad(params.size());
    for (int i = 0; i < 300; ++i) {
        fairbfl::support::fill(grad, 0.0F);
        (void)model->loss_and_gradient(params, view, grad);
        fairbfl::support::axpy(-0.5F, grad, params);
    }
    const auto cm = ml::confusion_matrix(*model, params, view);
    EXPECT_GT(cm.accuracy(), 0.97);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_GT(cm.recall(c), 0.9);
}

}  // namespace
