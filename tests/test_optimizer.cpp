// SGD local solver (Eq. 3), proximal variant, decreasing-step schedule.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/optimizer.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/vecmath.hpp"

namespace {

namespace ml = fairbfl::ml;
using fairbfl::support::Rng;

struct Fixture {
    ml::Dataset data = ml::make_synthetic_mnist({.samples = 200,
                                                 .feature_dim = 6,
                                                 .num_classes = 3,
                                                 .noise_sigma = 0.2,
                                                 .seed = 31});
    std::unique_ptr<ml::Model> model =
        ml::make_logistic_regression(6, 3, 1e-4);

    std::vector<float> init_params(std::uint64_t seed = 1) const {
        std::vector<float> params(model->param_count());
        Rng rng(seed);
        model->init_params(params, rng);
        return params;
    }
};

TEST(Sgd, ReducesLoss) {
    Fixture f;
    auto params = f.init_params();
    const auto view = ml::DatasetView::all(f.data);
    const double before = f.model->loss(params, view);
    ml::SgdParams sgd;
    sgd.learning_rate = 0.1;
    sgd.epochs = 5;
    sgd.batch_size = 10;
    Rng rng(2);
    const auto result = sgd_train(*f.model, params, view, sgd, rng);
    EXPECT_GT(result.steps_taken, 0U);
    EXPECT_LT(f.model->loss(params, view), before);
}

TEST(Sgd, StepCountMatchesEpochsTimesBatches) {
    Fixture f;
    auto params = f.init_params();
    const auto view = ml::DatasetView::all(f.data).take(45);
    ml::SgdParams sgd;
    sgd.epochs = 3;
    sgd.batch_size = 10;  // ceil(45/10) = 5 batches
    Rng rng(3);
    const auto result = sgd_train(*f.model, params, view, sgd, rng);
    EXPECT_EQ(result.steps_taken, 15U);
}

TEST(Sgd, EmptyShardIsNoop) {
    Fixture f;
    auto params = f.init_params();
    const auto before = params;
    const ml::DatasetView empty(f.data, {});
    ml::SgdParams sgd;
    Rng rng(4);
    const auto result = sgd_train(*f.model, params, empty, sgd, rng);
    EXPECT_EQ(result.steps_taken, 0U);
    EXPECT_EQ(params, before);
}

TEST(Sgd, DeterministicGivenSameRngState) {
    Fixture f;
    auto pa = f.init_params();
    auto pb = f.init_params();
    const auto view = ml::DatasetView::all(f.data);
    ml::SgdParams sgd;
    Rng ra(5);
    Rng rb(5);
    (void)sgd_train(*f.model, pa, view, sgd, ra);
    (void)sgd_train(*f.model, pb, view, sgd, rb);
    EXPECT_EQ(pa, pb);
}

TEST(Sgd, ProximalTermAnchorsToGlobal) {
    // With a huge prox coefficient the weights barely move from the anchor.
    Fixture f;
    const auto anchor = f.init_params();
    const auto view = ml::DatasetView::all(f.data);

    auto free_params = anchor;
    auto prox_params = anchor;
    ml::SgdParams sgd;
    sgd.learning_rate = 0.05;
    sgd.epochs = 3;
    {
        Rng rng(6);
        (void)sgd_train(*f.model, free_params, view, sgd, rng);
    }
    // eta * prox_mu must stay < 1 for the proximal pull to contract.
    sgd.prox_mu = 10.0;
    {
        Rng rng(6);
        (void)sgd_train(*f.model, prox_params, view, sgd, rng, anchor);
    }
    std::vector<float> diff_free(anchor.size());
    std::vector<float> diff_prox(anchor.size());
    for (std::size_t i = 0; i < anchor.size(); ++i) {
        diff_free[i] = free_params[i] - anchor[i];
        diff_prox[i] = prox_params[i] - anchor[i];
    }
    EXPECT_LT(fairbfl::support::norm2(diff_prox),
              0.3 * fairbfl::support::norm2(diff_free));
}

TEST(Sgd, ProxIgnoredWithoutAnchor) {
    Fixture f;
    auto pa = f.init_params();
    auto pb = f.init_params();
    const auto view = ml::DatasetView::all(f.data);
    ml::SgdParams plain;
    ml::SgdParams prox_no_anchor;
    prox_no_anchor.prox_mu = 10.0;
    Rng ra(7);
    Rng rb(7);
    (void)sgd_train(*f.model, pa, view, plain, ra);
    (void)sgd_train(*f.model, pb, view, prox_no_anchor, rb);
    EXPECT_EQ(pa, pb);
}

TEST(Schedule, GammaAndRateFollowTheorem) {
    // eta_r = 2 / (mu (gamma + r)), gamma = max(8L/mu, E).
    ml::DecreasingStepSchedule schedule{.mu = 0.5, .L = 4.0, .E = 5};
    EXPECT_DOUBLE_EQ(schedule.gamma(), 64.0);  // 8*4/0.5 = 64 > E
    EXPECT_DOUBLE_EQ(schedule.rate_at(0), 2.0 / (0.5 * 64.0));
    EXPECT_DOUBLE_EQ(schedule.rate_at(36), 2.0 / (0.5 * 100.0));

    ml::DecreasingStepSchedule small{.mu = 10.0, .L = 1.0, .E = 5};
    EXPECT_DOUBLE_EQ(small.gamma(), 5.0);  // E dominates
}

TEST(Schedule, RateIsDecreasingAndSatisfiesEtaConstraint) {
    // The proof needs eta_r <= 2 * eta_{r+E}.
    ml::DecreasingStepSchedule schedule{.mu = 1.0, .L = 4.0, .E = 5};
    for (std::size_t r = 0; r + 1 < 200; ++r) {
        EXPECT_GT(schedule.rate_at(r), schedule.rate_at(r + 1));
        EXPECT_LE(schedule.rate_at(r), 2.0 * schedule.rate_at(r + schedule.E));
    }
}

}  // namespace
