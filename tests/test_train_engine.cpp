// Batched local-learning engine: bit-equivalence against the per-sample
// reference path, across batch sizes, thread counts, models, and whole
// fixed-seed rounds.
//
// The refactor's contract is exact: packed-batch kernels (support::gemv /
// outer_accumulate and friends) preserve per-sample accumulation order, so
// every loss, gradient, weight vector and series point must equal the
// reference path bit for bit -- EXPECT_EQ on floats/doubles, no tolerances.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "fl/local_trainer.hpp"
#include "ml/optimizer.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/vecmath.hpp"

namespace {

namespace ml = fairbfl::ml;
namespace fl = fairbfl::fl;
namespace core = fairbfl::core;
using fairbfl::support::Rng;
using fairbfl::support::ThreadPool;

struct EngineFactory {
    const char* label;
    std::unique_ptr<ml::Model> (*make)(std::size_t dim, std::size_t classes);
};

std::unique_ptr<ml::Model> make_lr(std::size_t dim, std::size_t classes) {
    return ml::make_logistic_regression(dim, classes, 1e-3);
}
std::unique_ptr<ml::Model> make_mlp_small(std::size_t dim,
                                          std::size_t classes) {
    return ml::make_mlp(dim, 13, classes, 1e-3);
}

class TrainEngineTest : public ::testing::TestWithParam<EngineFactory> {
protected:
    // Odd feature_dim exercises the gemv column-unroll tail; 10 classes
    // exercise the 4+4+2 row blocking; the MLP's 13 hidden units hit the
    // 4+4+4+1 path.
    static ml::Dataset make_data(std::size_t samples = 53) {
        return ml::make_synthetic_mnist({.samples = samples,
                                         .feature_dim = 39,
                                         .num_classes = 10,
                                         .noise_sigma = 0.3,
                                         .seed = 77});
    }

    static std::vector<float> init_params(const ml::Model& model,
                                          std::uint64_t seed) {
        std::vector<float> params(model.param_count());
        Rng rng(seed);
        model.init_params(params, rng);
        return params;
    }
};

TEST_P(TrainEngineTest, BatchedLossAndGradientBitEqualsReference) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto view = ml::DatasetView::all(data);
    const auto params = init_params(*model, 5);

    ml::PackedBatch pack;
    pack.pack(view);
    ml::TrainWorkspace ws_ref;
    ml::TrainWorkspace ws_bat;

    for (const std::size_t batch_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{32}, view.size()}) {
        const auto batch = view.take(batch_size);
        std::vector<float> grad_ref(model->param_count(), 0.0F);
        std::vector<float> grad_bat(model->param_count(), 0.0F);
        const double loss_ref =
            model->loss_and_gradient(params, batch, ws_ref, grad_ref);

        std::vector<std::size_t> rows(batch_size);
        for (std::size_t i = 0; i < batch_size; ++i) rows[i] = i;
        const double loss_bat = model->loss_and_gradient_batch(
            params, pack, rows, ws_bat, grad_bat);

        EXPECT_EQ(loss_ref, loss_bat)
            << GetParam().label << " B=" << batch_size;
        ASSERT_EQ(0, std::memcmp(grad_ref.data(), grad_bat.data(),
                                 grad_ref.size() * sizeof(float)))
            << GetParam().label << " B=" << batch_size;
    }
}

TEST_P(TrainEngineTest, BatchedSgdTrainBitEqualsReference) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto view = ml::DatasetView::all(data);

    for (const std::size_t batch_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{32}, view.size()}) {
        ml::SgdParams sgd;
        sgd.learning_rate = 0.05;
        sgd.epochs = 3;
        sgd.batch_size = batch_size;

        auto p_ref = init_params(*model, 9);
        auto p_bat = p_ref;
        ml::TrainWorkspace ws_ref;
        ml::TrainWorkspace ws_bat;
        ml::PackedBatch pack;
        pack.pack(view);

        Rng rng_ref(31);
        Rng rng_bat(31);
        const auto res_ref =
            ml::sgd_train(*model, p_ref, view, sgd, rng_ref, ws_ref);
        const auto res_bat =
            ml::sgd_train(*model, p_bat, pack, sgd, rng_bat, ws_bat);

        EXPECT_EQ(res_ref.steps_taken, res_bat.steps_taken);
        EXPECT_EQ(res_ref.final_loss, res_bat.final_loss)
            << GetParam().label << " B=" << batch_size;
        EXPECT_EQ(p_ref, p_bat) << GetParam().label << " B=" << batch_size;
    }
}

TEST_P(TrainEngineTest, BatchedProximalSgdBitEqualsReference) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto view = ml::DatasetView::all(data);
    const auto anchor = init_params(*model, 2);

    ml::SgdParams sgd;
    sgd.epochs = 2;
    sgd.batch_size = 10;
    sgd.prox_mu = 0.5;  // FedProx pull, now a fused vecmath kernel

    auto p_ref = anchor;
    auto p_bat = anchor;
    ml::TrainWorkspace ws;
    ml::PackedBatch pack;
    pack.pack(view);
    Rng rng_ref(8);
    Rng rng_bat(8);
    (void)ml::sgd_train(*model, p_ref, view, sgd, rng_ref, ws, anchor);
    (void)ml::sgd_train(*model, p_bat, pack, sgd, rng_bat, ws, anchor);
    EXPECT_EQ(p_ref, p_bat) << GetParam().label;
}

TEST_P(TrainEngineTest, WorkspaceOverloadMatchesAllocatingOverload) {
    // Satellite pin: the reference path reusing workspace scratch must not
    // drift from the historical allocate-per-call overload.
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto view = ml::DatasetView::all(data);
    ml::SgdParams sgd;
    sgd.epochs = 2;
    sgd.batch_size = 10;

    auto p_alloc = init_params(*model, 4);
    auto p_ws = p_alloc;
    Rng rng_a(6);
    Rng rng_b(6);
    const auto res_alloc = ml::sgd_train(*model, p_alloc, view, sgd, rng_a);
    ml::TrainWorkspace ws;
    const auto res_ws = ml::sgd_train(*model, p_ws, view, sgd, rng_b, ws);
    EXPECT_EQ(res_alloc.final_loss, res_ws.final_loss);
    EXPECT_EQ(p_alloc, p_ws);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, TrainEngineTest,
    ::testing::Values(EngineFactory{"logistic", &make_lr},
                      EngineFactory{"mlp", &make_mlp_small}),
    [](const auto& param_info) { return param_info.param.label; });

TEST(PackedBatch, GathersRowsAndValidatesCache) {
    const auto data = ml::make_synthetic_mnist(
        {.samples = 20, .feature_dim = 7, .num_classes = 3, .seed = 3});
    const auto split = ml::train_test_split(data, 0.4, 11);

    ml::PackedBatch pack;
    pack.pack(split.train);
    ASSERT_EQ(pack.size(), split.train.size());
    ASSERT_EQ(pack.feature_dim(), 7U);
    for (std::size_t i = 0; i < pack.size(); ++i) {
        const auto expect = split.train.features_of(i);
        const auto got = pack.row(i);
        ASSERT_EQ(0, std::memcmp(expect.data(), got.data(),
                                 expect.size() * sizeof(float)));
        EXPECT_EQ(pack.label(i), split.train.label_of(i));
    }
    EXPECT_TRUE(pack.packed_from(split.train));
    EXPECT_FALSE(pack.packed_from(split.test));
}

// --- LocalTrainer: engine x thread-count equivalence ------------------------

struct TrainerWorld {
    core::Environment env;
    std::vector<fl::Client> clients;
};

TrainerWorld make_world(core::ModelKind kind) {
    core::EnvironmentConfig cfg;
    cfg.data.samples = 240;
    cfg.data.feature_dim = 23;
    cfg.data.seed = 13;
    cfg.partition.num_clients = 12;
    cfg.partition.seed = 13;
    cfg.model = kind;
    cfg.mlp_hidden = 9;
    TrainerWorld world{core::build_environment(cfg), {}};
    world.clients = world.env.make_clients();
    return world;
}

TEST(LocalTrainer, BatchedEqualsReferenceAcrossThreadCountsAndRounds) {
    for (const auto kind :
         {core::ModelKind::kLogistic, core::ModelKind::kMlp}) {
        const TrainerWorld world = make_world(kind);
        std::vector<float> weights(world.env.model->param_count());
        Rng rng(1);
        world.env.model->init_params(weights, rng);
        std::vector<std::size_t> selected{0, 2, 3, 5, 7, 11};
        ml::SgdParams sgd;
        sgd.epochs = 2;
        sgd.batch_size = 6;

        ThreadPool pool1(1);
        ThreadPool pool4(4);
        fl::LocalTrainer reference(
            fl::LocalTrainer::Options{.batched = false, .pool = &pool1});
        fl::LocalTrainer batched1(
            fl::LocalTrainer::Options{.batched = true, .pool = &pool1});
        fl::LocalTrainer batched4(
            fl::LocalTrainer::Options{.batched = true, .pool = &pool4});

        // Several rounds so the per-client pack/workspace caches are
        // exercised on reuse, not just first touch.
        for (std::uint64_t round = 0; round < 3; ++round) {
            const auto ref = reference.run(world.clients, selected, weights,
                                           sgd, round, 42);
            const auto bat1 = batched1.run(world.clients, selected, weights,
                                           sgd, round, 42);
            const auto bat4 = batched4.run(world.clients, selected, weights,
                                           sgd, round, 42);
            ASSERT_EQ(ref.size(), bat1.size());
            ASSERT_EQ(ref.size(), bat4.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                EXPECT_EQ(ref[i], bat1[i]) << "round " << round << " i " << i;
                EXPECT_EQ(ref[i], bat4[i]) << "round " << round << " i " << i;
            }
        }
    }
}

// --- Full fixed-seed round series: engine choice must be invisible ----------

TEST(RoundEquivalence, FairBflSeriesIdenticalUnderBothEngines) {
    core::EnvironmentConfig env_cfg;
    env_cfg.data.samples = 300;
    env_cfg.data.feature_dim = 17;
    env_cfg.data.seed = 21;
    env_cfg.partition.num_clients = 10;
    env_cfg.partition.seed = 21;
    env_cfg.noisy_client_fraction = 0.2;
    const core::Environment env = core::build_environment(env_cfg);

    auto run_with = [&](bool batched) {
        core::SystemSpec spec;
        spec.system = "fairbfl";
        spec.rounds = 5;
        spec.fair.fl.rounds = 5;
        spec.fair.fl.seed = 4;
        spec.fair.fl.client_ratio = 0.7;
        spec.fair.fl.batched_training = batched;
        return core::run_system(env, spec);
    };
    const core::SystemRun batched = run_with(true);
    const core::SystemRun reference = run_with(false);

    ASSERT_EQ(batched.series.size(), reference.series.size());
    for (std::size_t i = 0; i < batched.series.size(); ++i) {
        EXPECT_EQ(batched.series[i].accuracy, reference.series[i].accuracy)
            << i;
        EXPECT_EQ(batched.series[i].delay_seconds,
                  reference.series[i].delay_seconds)
            << i;
    }
    EXPECT_EQ(batched.final_accuracy, reference.final_accuracy);
    EXPECT_EQ(batched.average_accuracy, reference.average_accuracy);
}

TEST(RoundEquivalence, FedProxSeriesIdenticalUnderBothEngines) {
    core::EnvironmentConfig env_cfg;
    env_cfg.data.samples = 200;
    env_cfg.data.feature_dim = 11;
    env_cfg.data.seed = 33;
    env_cfg.partition.num_clients = 8;
    env_cfg.partition.seed = 33;
    const core::Environment env = core::build_environment(env_cfg);

    auto run_with = [&](bool batched) {
        core::SystemSpec spec;
        spec.system = "fedprox";
        spec.rounds = 4;
        spec.fedprox.base.rounds = 4;
        spec.fedprox.base.seed = 6;
        spec.fedprox.base.client_ratio = 0.8;
        spec.fedprox.base.batched_training = batched;
        spec.fedprox.prox_mu = 0.1;
        spec.fedprox.drop_percent = 0.25;
        return core::run_system(env, spec);
    };
    const core::SystemRun batched = run_with(true);
    const core::SystemRun reference = run_with(false);
    ASSERT_EQ(batched.series.size(), reference.series.size());
    for (std::size_t i = 0; i < batched.series.size(); ++i)
        EXPECT_EQ(batched.series[i].accuracy, reference.series[i].accuracy)
            << i;
    EXPECT_EQ(batched.final_accuracy, reference.final_accuracy);
}

}  // namespace
