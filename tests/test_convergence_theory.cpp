// Empirical validation of Theorem 3.1: under the decreasing step size
// eta_r = 2/(mu(gamma+r)) on a strongly convex objective, the optimality
// gap is dominated by C/(gamma+r).
//
// We use L2-regularized multinomial logistic regression (mu = the L2
// coefficient under cross-entropy's convexity) trained by the FAIR-BFL
// round structure with fair aggregation and partial participation --
// exactly the setting of the theorem.

#include <gtest/gtest.h>

#include <cmath>

#include "fl/aggregation.hpp"
#include "fl/fedavg.hpp"
#include "ml/optimizer.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/vecmath.hpp"

namespace {

namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;

struct ConvexWorld {
    ml::Dataset data = ml::make_synthetic_mnist({.samples = 400,
                                                 .feature_dim = 6,
                                                 .num_classes = 3,
                                                 .noise_sigma = 0.25,
                                                 .seed = 81});
    std::unique_ptr<ml::Model> model = ml::make_logistic_regression(6, 3, 1e-2);
    ml::DatasetView all = ml::DatasetView::all(data);

    /// F* estimated by long full-batch training.
    double optimum() const {
        std::vector<float> params(model->param_count(), 0.0F);
        std::vector<float> grad(params.size());
        for (int step = 0; step < 3000; ++step) {
            fairbfl::support::fill(grad, 0.0F);
            (void)model->loss_and_gradient(params, all, grad);
            fairbfl::support::axpy(-0.5F, grad, params);
        }
        return model->loss(params, all);
    }
};

TEST(ConvergenceTheory, GapDecreasesUnderDecreasingStepSchedule) {
    ConvexWorld world;
    const double f_star = world.optimum();

    ml::PartitionParams part;
    part.scheme = ml::PartitionScheme::kIid;
    part.num_clients = 8;
    part.seed = 81;
    const auto shards = ml::partition(world.all, part);
    auto clients = fl::make_clients(*world.model, shards);

    const ml::DecreasingStepSchedule schedule{.mu = 0.5, .L = 4.0, .E = 2};

    std::vector<float> weights(world.model->param_count(), 0.0F);
    std::vector<double> gaps;
    for (std::size_t round = 0; round < 60; ++round) {
        const auto selected = fl::sample_clients(8, 0.75, round, 42);
        ml::SgdParams sgd;
        sgd.learning_rate = schedule.rate_at(round);
        sgd.epochs = schedule.E;
        sgd.batch_size = 10;
        const auto updates =
            fl::run_local_updates(clients, selected, weights, sgd, round, 42);
        weights = fl::simple_average(updates);
        gaps.push_back(world.model->loss(weights, world.all) - f_star);
    }

    // (1) The trailing gap is far below the initial gap.
    const double early = (gaps[0] + gaps[1] + gaps[2]) / 3.0;
    double late = 0.0;
    for (std::size_t i = gaps.size() - 5; i < gaps.size(); ++i)
        late += gaps[i];
    late /= 5.0;
    EXPECT_LT(late, 0.3 * early);

    // (2) Theorem-shaped envelope: gap_r <= C / (gamma + r) for a constant
    // C fitted on the first round.  Allow slack x3 for stochasticity.
    const double gamma = schedule.gamma();
    const double c_fit = gaps[0] * (gamma + 0.0);
    for (std::size_t r = 5; r < gaps.size(); ++r) {
        EXPECT_LT(gaps[r], 3.0 * c_fit / (gamma + static_cast<double>(r)))
            << "round " << r;
    }
}

TEST(ConvergenceTheory, GapNonIncreasingOnAverage) {
    // Moving-average of the gap must be monotone-ish: compare thirds.
    ConvexWorld world;
    const double f_star = world.optimum();

    ml::PartitionParams part;
    part.scheme = ml::PartitionScheme::kLabelShards;  // non-IID: the paper's
    part.num_clients = 8;                             // "regardless of the
    part.shards_per_client = 2;                       // data distribution"
    part.seed = 82;
    const auto shards = ml::partition(world.all, part);
    auto clients = fl::make_clients(*world.model, shards);
    const ml::DecreasingStepSchedule schedule{.mu = 0.5, .L = 4.0, .E = 2};

    std::vector<float> weights(world.model->param_count(), 0.0F);
    std::vector<double> gaps;
    for (std::size_t round = 0; round < 45; ++round) {
        const auto selected = fl::sample_clients(8, 1.0, round, 7);
        ml::SgdParams sgd;
        sgd.learning_rate = schedule.rate_at(round);
        sgd.epochs = schedule.E;
        sgd.batch_size = 10;
        const auto updates =
            fl::run_local_updates(clients, selected, weights, sgd, round, 7);
        weights = fl::simple_average(updates);
        gaps.push_back(world.model->loss(weights, world.all) - f_star);
    }
    auto third = [&](std::size_t k) {
        double sum = 0.0;
        for (std::size_t i = k * 15; i < (k + 1) * 15; ++i) sum += gaps[i];
        return sum / 15.0;
    };
    EXPECT_GT(third(0), third(1));
    EXPECT_GT(third(1), third(2));
}

}  // namespace
