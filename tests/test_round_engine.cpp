// Async round engine: the virtual-clock event loop, the
// quorum-or-deadline collection state machine, late-gradient policies,
// and -- most load-bearing -- the degenerate-config bit-pin: with full
// participation and no deadline the engine-driven FairBfl must reproduce
// the pre-engine lockstep series bit-for-bit.

#include <gtest/gtest.h>

#include <cstring>

#include "core/event_loop.hpp"
#include "core/fairbfl.hpp"
#include "core/round_engine.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/parallel.hpp"

namespace {

namespace core = fairbfl::core;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;
namespace support = fairbfl::support;

using core::CollectOutcome;
using core::EventLoop;
using core::LatePolicy;
using core::PendingDelivery;
using core::RoundConfig;
using core::RoundEngine;
using core::VirtualTime;

// ---------------------------------------------------------------------------
// EventLoop: deterministic (time, sequence) ordering on a monotone clock.

TEST(EventLoop, FiresInTimeThenSequenceOrder) {
    EventLoop loop;
    std::vector<int> order;
    loop.schedule_at(30, [&](EventLoop&) { order.push_back(3); });
    loop.schedule_at(10, [&](EventLoop&) { order.push_back(1); });
    loop.schedule_at(10, [&](EventLoop&) { order.push_back(2); });  // tie:
    // same time, later sequence -> fires second.
    loop.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), 30U);
    EXPECT_EQ(loop.processed(), 3U);
}

TEST(EventLoop, ClockIsMonotoneEvenForPastSchedules) {
    EventLoop loop;
    std::vector<VirtualTime> observed;
    loop.schedule_at(100, [&](EventLoop& inner) {
        observed.push_back(inner.now());
        // Scheduling "in the past" clamps to now: time never rewinds.
        inner.schedule_at(5, [&](EventLoop& inner2) {
            observed.push_back(inner2.now());
        });
    });
    loop.run_until_idle();
    ASSERT_EQ(observed.size(), 2U);
    EXPECT_EQ(observed[0], 100U);
    EXPECT_EQ(observed[1], 100U);
}

TEST(EventLoop, CancelSuppressesExactlyThatEvent) {
    EventLoop loop;
    int fired = 0;
    const auto id = loop.schedule_at(10, [&](EventLoop&) { ++fired; });
    loop.schedule_at(20, [&](EventLoop&) { ++fired; });
    EXPECT_TRUE(loop.cancel(id));
    EXPECT_FALSE(loop.cancel(id));  // second cancel: already dead
    loop.run_until_idle();
    EXPECT_EQ(fired, 1);
}

TEST(EventLoop, RunUntilStopsAtDeadlineAndAdvancesClock) {
    EventLoop loop;
    int fired = 0;
    loop.schedule_at(10, [&](EventLoop&) { ++fired; });
    loop.schedule_at(50, [&](EventLoop&) { ++fired; });
    loop.run_until(30);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(loop.now(), 30U);
    EXPECT_EQ(loop.pending(), 1U);
    loop.run_until_idle();
    EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// RoundConfig: quorum arithmetic and the degenerate predicate.

TEST(RoundConfig, QuorumCountClampsAndRounds) {
    RoundConfig config;
    EXPECT_FALSE(config.engaged());  // full participation, no deadline
    EXPECT_EQ(config.quorum_count(7), 7U);
    config.quorum_fraction = 0.5;
    EXPECT_TRUE(config.engaged());
    EXPECT_EQ(config.quorum_count(7), 4U);  // ceil(3.5)
    EXPECT_EQ(config.quorum_count(0), 0U);
    config.quorum_fraction = 0.01;
    EXPECT_EQ(config.quorum_count(7), 1U);  // never zero when nonempty
    config.quorum_fraction = 1.0;
    config.deadline_ns = 1;
    EXPECT_TRUE(config.engaged());
}

TEST(RoundConfig, LatePolicyNamesRoundTrip) {
    EXPECT_EQ(core::parse_late_policy("next_round"), LatePolicy::kNextRound);
    EXPECT_EQ(core::parse_late_policy("retroactive"),
              LatePolicy::kRetroactive);
    EXPECT_FALSE(core::parse_late_policy("sometime").has_value());
    EXPECT_EQ(core::late_policy_name(LatePolicy::kRetroactive),
              "retroactive");
}

// ---------------------------------------------------------------------------
// Collection state machine over synthetic deliveries.

std::vector<PendingDelivery> four_arrivals() {
    return {{0, 100, false}, {1, 200, false}, {2, 300, false},
            {3, 400, false}};
}

TEST(RoundEngine, DegenerateConfigTriggersAtLastArrival) {
    RoundEngine engine;  // quorum 1.0, no deadline: lockstep semantics
    const CollectOutcome out = engine.collect(four_arrivals());
    EXPECT_EQ(out.on_time.size(), 4U);
    EXPECT_TRUE(out.late.empty());
    EXPECT_TRUE(out.quorum_met);
    EXPECT_FALSE(out.deadline_fired);
    EXPECT_EQ(out.trigger_ns, 400U);
    EXPECT_EQ(out.first_arrival_ns, 100U);
}

TEST(RoundEngine, QuorumBeforeDeadline) {
    RoundEngine engine(RoundConfig{.quorum_fraction = 0.5,
                                   .deadline_ns = 10'000});
    const CollectOutcome out = engine.collect(four_arrivals());
    EXPECT_EQ(out.quorum_needed, 2U);
    EXPECT_TRUE(out.quorum_met);
    EXPECT_FALSE(out.deadline_fired);
    EXPECT_EQ(out.trigger_ns, 200U);  // second arrival closed the quorum
    EXPECT_EQ(out.on_time, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(out.late, (std::vector<std::size_t>{2, 3}));
    EXPECT_DOUBLE_EQ(out.wait_quorum_seconds(), 100e-9);
}

TEST(RoundEngine, DeadlineBeforeQuorum) {
    RoundEngine engine(RoundConfig{.quorum_fraction = 1.0,
                                   .deadline_ns = 250});
    const CollectOutcome out = engine.collect(four_arrivals());
    EXPECT_TRUE(out.deadline_fired);
    EXPECT_FALSE(out.quorum_met);
    EXPECT_EQ(out.trigger_ns, 250U);
    EXPECT_EQ(out.on_time, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(out.late, (std::vector<std::size_t>{2, 3}));
}

TEST(RoundEngine, ArrivalAtExactDeadlineCountsOnTime) {
    RoundEngine engine(RoundConfig{.quorum_fraction = 1.0,
                                   .deadline_ns = 300});
    const CollectOutcome out = engine.collect(four_arrivals());
    // The update at t=300 ties the deadline; the arrival was scheduled
    // first (lower sequence) so it wins the tie.
    EXPECT_EQ(out.on_time, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(out.late, (std::vector<std::size_t>{3}));
}

TEST(RoundEngine, DuplicateDeliveriesAreDroppedNotDoubleCounted) {
    RoundEngine engine(RoundConfig{.quorum_fraction = 0.75,
                                   .deadline_ns = 10'000});
    std::vector<PendingDelivery> deliveries = four_arrivals();
    deliveries.push_back({0, 150, true});  // replay of update 0
    deliveries.push_back({1, 250, true});  // replay of update 1
    const CollectOutcome out = engine.collect(std::move(deliveries));
    EXPECT_EQ(out.quorum_needed, 3U);  // replays don't inflate the quorum
    EXPECT_EQ(out.duplicates_dropped, 2U);
    EXPECT_EQ(out.on_time, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(out.trigger_ns, 300U);
}

TEST(RoundEngine, DrainedWithoutQuorumStillResolves) {
    // Dropouts made the quorum unreachable and no deadline is set: the
    // engine aggregates what exists instead of blocking forever.
    RoundEngine engine(RoundConfig{.quorum_fraction = 0.9,
                                   .deadline_ns = 0});
    const CollectOutcome out =
        engine.collect(std::vector<PendingDelivery>{{0, 100, false}});
    EXPECT_EQ(out.quorum_needed, 1U);
    EXPECT_EQ(out.on_time.size(), 1U);
    EXPECT_TRUE(out.quorum_met);
    EXPECT_FALSE(out.deadline_fired);
}

TEST(RoundEngine, NothingDeliverableResolvesEmpty) {
    RoundEngine engine(RoundConfig{.quorum_fraction = 0.5,
                                   .deadline_ns = 500});
    const CollectOutcome out =
        engine.collect(std::vector<PendingDelivery>{});
    EXPECT_EQ(out.quorum_needed, 0U);
    EXPECT_TRUE(out.on_time.empty());
    EXPECT_FALSE(out.quorum_met);
}

TEST(RoundEngine, AsyncRaceMintsEmptyBlocksUntilTrigger) {
    RoundEngine engine(RoundConfig{.quorum_fraction = 1.0,
                                   .deadline_ns = 2'000'000'000});
    auto rng = support::Rng::fork(7, /*stream=*/0xECE);
    core::MiningRaceSpec race;
    race.mean_solve_seconds = 0.05;  // ~20 solves/virtual second
    race.rng = &rng;
    // One delivery a full virtual second out: the race should land a
    // healthy number of empty solves first.
    const CollectOutcome out = engine.collect(
        std::vector<PendingDelivery>{{0, 1'000'000'000, false}}, &race);
    EXPECT_GT(out.empty_blocks, 5U);
    EXPECT_LT(out.empty_blocks, 100U);
    EXPECT_EQ(out.on_time.size(), 1U);
}

TEST(RoundEngine, CarryoverStoreHandsBackOnce) {
    RoundEngine engine;
    fl::GradientUpdate update;
    update.client = 9;
    engine.carry({update});
    EXPECT_EQ(engine.carryover_count(), 1U);
    const auto taken = engine.take_carryovers();
    ASSERT_EQ(taken.size(), 1U);
    EXPECT_EQ(taken[0].client, 9U);
    EXPECT_EQ(engine.carryover_count(), 0U);
}

// ---------------------------------------------------------------------------
// FairBfl integration: the degenerate-config bit-pin and late policies.

struct World {
    ml::Dataset data;
    std::unique_ptr<ml::Model> model;
    std::vector<ml::DatasetView> shards;
    ml::DatasetView test;

    explicit World(std::size_t clients = 10, std::uint64_t seed = 61)
        : data(ml::make_synthetic_mnist({.samples = 600,
                                         .feature_dim = 8,
                                         .num_classes = 4,
                                         .noise_sigma = 0.25,
                                         .seed = seed})) {
        model = ml::make_logistic_regression(8, 4);
        const auto split = ml::train_test_split(data, 0.2, seed);
        test = split.test;
        ml::PartitionParams params;
        params.scheme = ml::PartitionScheme::kIid;
        params.num_clients = clients;
        params.seed = seed;
        shards = ml::partition(split.train, params);
    }

    [[nodiscard]] std::vector<fl::Client> clients() const {
        return fl::make_clients(*model, shards);
    }
};

core::FairBflConfig fast_config() {
    core::FairBflConfig config;
    config.fl.client_ratio = 0.5;
    config.fl.rounds = 12;
    config.fl.sgd.learning_rate = 0.1;
    config.fl.sgd.epochs = 3;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = 42;
    config.miners = 2;
    return config;
}

// Captured from the pre-engine lockstep round loop (World(10, 61),
// fast_config(), run(4)): {accuracy, mean_local_loss, t_local, t_up,
// t_ex, t_gl, t_bl} per round, then the final 36 weights.  Hexfloat so
// the pin is exact: the engine's degenerate config must reproduce every
// value bit-for-bit.
struct PinnedRound {
    double accuracy, loss, t_local, t_up, t_ex, t_gl, t_bl;
};

constexpr PinnedRound kLockstepSeries[] = {
    {0x1.aeeeeeeeeeeefp-1, 0x1.4e97df108ab47p+0, 0x1.16d0579fa125bp+2,
     0x1.146072c3395a5p-4, 0x1.4b64750d644f7p-7, 0x1.19ce075f6fd22p-6,
     0x1.2265ce7fcd358p+2},
    {0x1.c888888888889p-1, 0x1.3947d79f9e968p+0, 0x1.01c85cc2ad353p+2,
     0x1.1270c3da51917p-4, 0x1.47854bbda1f9fp-7, 0x1.19ce075f6fd22p-6,
     0x1.ac45ab111c123p-1},
    {0x1.aaaaaaaaaaaabp-1, 0x1.281b2b39834f6p+0, 0x1.359f746569288p+2,
     0x1.c43007df2dfacp-4, 0x1.65b29468e21bfp-7, 0x1.19ce075f6fd22p-6,
     0x1.1af12a69782p+1},
    {0x1.8888888888889p-1, 0x1.123e9446bf0f2p+0, 0x1.359f746569288p+2,
     0x1.2f9e1127e03cep-4, 0x1.47ee9bb18ac6ep-7, 0x1.19ce075f6fd22p-6,
     0x1.429990d51ebf4p+1},
};

constexpr float kLockstepWeights[36] = {
    -0x1.ce2cc8p-3F, -0x1.5ac954p-3F, 0x1.41254ep-2F,  0x1.cefa7cp-4F,
    0x1.20cf1cp-2F,  0x1.9036acp-4F,  0x1.b83868p-3F,  -0x1.c7b9a8p-2F,
    0x1.20187cp-2F,  0x1.68c438p-5F,  0x1.1aacep-6F,   -0x1.4e5086p-1F,
    0x1.580d82p-3F,  -0x1.34bc48p-6F, 0x1.9b6554p-7F,  0x1.6a750ap-3F,
    -0x1.cce9acp-8F, 0x1.60b13cp-2F,  -0x1.5576eap-3F, 0x1.db91d4p-2F,
    -0x1.e6bf66p-3F, -0x1.6bab06p-3F, -0x1.9d1ba8p-3F, 0x1.1f633p-4F,
    -0x1.501836p-5F, -0x1.982c82p-3F, -0x1.8af006p-3F, 0x1.76ac98p-4F,
    -0x1.987fa8p-3F, 0x1.d228ccp-4F,  -0x1.9e0ccap-8F, 0x1.c11f3cp-3F,
    0x1.5af5fcp-4F,  -0x1.7adadap-4F, 0x1.f34aa2p-7F,  -0x1.e846bcp-8F,
};

TEST(RoundEnginePin, DegenerateConfigReproducesLockstepSeriesBitForBit) {
    World world;
    core::FairBflConfig config = fast_config();
    // Spell the degenerate setting out: this is the config the pin holds
    // for, and engaged() must say so.
    config.round.quorum_fraction = 1.0;
    config.round.deadline_ns = 0;
    ASSERT_FALSE(config.round.engaged());
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto history = system.run(4);
    ASSERT_EQ(history.size(), 4U);
    for (std::size_t r = 0; r < history.size(); ++r) {
        const auto& record = history[r];
        const auto& pin = kLockstepSeries[r];
        EXPECT_EQ(record.fl.test_accuracy, pin.accuracy) << "round " << r;
        EXPECT_EQ(record.fl.mean_local_loss, pin.loss) << "round " << r;
        EXPECT_EQ(record.delay.t_local, pin.t_local) << "round " << r;
        EXPECT_EQ(record.delay.t_up, pin.t_up) << "round " << r;
        EXPECT_EQ(record.delay.t_ex, pin.t_ex) << "round " << r;
        EXPECT_EQ(record.delay.t_gl, pin.t_gl) << "round " << r;
        EXPECT_EQ(record.delay.t_bl, pin.t_bl) << "round " << r;
        // Degenerate rounds have no engine residue.
        EXPECT_EQ(record.late_updates, 0U);
        EXPECT_EQ(record.carried_in_updates, 0U);
        EXPECT_FALSE(record.deadline_fired);
        EXPECT_EQ(record.empty_blocks_this_round, 0U);
    }
    const auto weights = system.weights();
    ASSERT_EQ(weights.size(), 36U);
    for (std::size_t i = 0; i < weights.size(); ++i)
        EXPECT_EQ(weights[i], kLockstepWeights[i]) << "weight " << i;
}

TEST(RoundEngineFairBfl, QuorumRoundRunsPartialMembership) {
    World world;
    core::FairBflConfig config = fast_config();
    config.round.quorum_fraction = 0.5;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto record = system.run_round();
    // 5 selected, quorum at ceil(2.5)=3: the trigger left stragglers late.
    EXPECT_EQ(record.quorum_needed, 3U);
    EXPECT_EQ(record.on_time_updates, 3U);
    EXPECT_EQ(record.late_updates, 2U);
    EXPECT_EQ(record.fl.participants, 3U);
    EXPECT_GT(record.wait_quorum_seconds, 0.0);
}

TEST(RoundEngineFairBfl, NextRoundPolicyCarriesLateGradientsForward) {
    World world;
    core::FairBflConfig config = fast_config();
    config.round.quorum_fraction = 0.5;
    config.round.late_policy = LatePolicy::kNextRound;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto first = system.run_round();
    ASSERT_GT(first.late_updates, 0U);
    const auto second = system.run_round();
    // Last round's stragglers joined this round's set...
    EXPECT_EQ(second.carried_in_updates, first.late_updates);
    // ...on top of this round's own on-time arrivals.
    EXPECT_EQ(second.fl.participants,
              second.on_time_updates + second.carried_in_updates);
}

TEST(RoundEngineFairBfl, RetroactivePolicyResettlesTheRound) {
    World world;
    core::FairBflConfig next_cfg = fast_config();
    next_cfg.round.quorum_fraction = 0.5;
    next_cfg.round.late_policy = LatePolicy::kNextRound;
    core::FairBfl next_system(*world.model, world.clients(), world.test,
                              next_cfg);
    const auto next_rec = next_system.run_round();
    ASSERT_GT(next_rec.late_updates, 0U);

    core::FairBflConfig retro_cfg = next_cfg;
    retro_cfg.round.late_policy = LatePolicy::kRetroactive;
    core::FairBfl retro_system(*world.model, world.clients(), world.test,
                               retro_cfg);
    const auto retro_rec = retro_system.run_round();
    // Same virtual schedule, so the same split...
    EXPECT_EQ(retro_rec.late_updates, next_rec.late_updates);
    // ...but the retroactive settlement folds the late set back in.
    EXPECT_EQ(retro_rec.fl.participants,
              retro_rec.on_time_updates + retro_rec.late_updates);
    EXPECT_GT(retro_rec.fl.participants, next_rec.fl.participants);
    // The weights must differ: more gradients shaped them.
    const auto next_w = next_system.weights();
    const auto retro_w = retro_system.weights();
    ASSERT_EQ(next_w.size(), retro_w.size());
    bool any_differs = false;
    for (std::size_t i = 0; i < next_w.size(); ++i)
        any_differs |= next_w[i] != retro_w[i];
    EXPECT_TRUE(any_differs);
    // Budget conservation survives the amendment: the ledger holds
    // exactly what the (amended) report settled.
    EXPECT_NEAR(retro_system.ledger().grand_total(),
                retro_rec.round_reward_total, 1e-9);
}

/// Runs `rounds` rounds on an explicit pool and returns the weight bytes.
std::vector<unsigned char> run_weights(const World& world,
                                       core::FairBflConfig config,
                                       unsigned threads,
                                       std::size_t rounds) {
    support::ThreadPool pool(threads);
    config.pool = &pool;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    (void)system.run(rounds);
    const auto weights = system.weights();
    std::vector<unsigned char> bytes(weights.size() * sizeof(float));
    std::memcpy(bytes.data(), weights.data(), bytes.size());
    return bytes;
}

TEST(RoundEngineFairBfl, ThreadCountNeverChangesTheOutcome) {
    World world;
    core::FairBflConfig config = fast_config();
    // An *engaged* config, where the event schedule actually matters.
    config.round.quorum_fraction = 0.6;
    config.round.deadline_ns = 60'000'000'000ULL;  // 60 virtual seconds
    config.round.late_policy = LatePolicy::kNextRound;
    const auto one = run_weights(world, config, 1, 3);
    const auto four = run_weights(world, config, 4, 3);
    EXPECT_EQ(one, four) << "weight bytes differ across 1 vs 4 threads";
}

}  // namespace
