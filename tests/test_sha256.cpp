// SHA-256 against FIPS 180-4 / NIST test vectors, plus incremental hashing.

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"

namespace {

using fairbfl::crypto::Digest;
using fairbfl::crypto::Sha256;
using fairbfl::crypto::to_hex;

TEST(Sha256, EmptyString) {
    EXPECT_EQ(to_hex(Sha256::hash(std::string_view{})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(to_hex(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(to_hex(Sha256::hash(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 hasher;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) hasher.update(chunk);
    EXPECT_EQ(to_hex(hasher.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    // Split the same message at awkward boundaries.
    const std::string msg =
        "The quick brown fox jumps over the lazy dog, repeatedly and "
        "at block boundaries 0123456789012345678901234567890123456789";
    const Digest whole = Sha256::hash(msg);
    for (const std::size_t split : {1UL, 55UL, 56UL, 63UL, 64UL, 65UL}) {
        Sha256 hasher;
        hasher.update(std::string_view(msg).substr(0, split));
        hasher.update(std::string_view(msg).substr(split));
        EXPECT_EQ(hasher.finish(), whole) << "split at " << split;
    }
}

TEST(Sha256, ResetReusesHasher) {
    Sha256 hasher;
    hasher.update("garbage");
    (void)hasher.finish();
    hasher.reset();
    hasher.update("abc");
    EXPECT_EQ(to_hex(hasher.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, ExactBlockLengths) {
    // 55/56/64-byte messages exercise every padding branch.
    EXPECT_EQ(to_hex(Sha256::hash(std::string(55, 'x'))),
              to_hex(Sha256::hash(std::string(55, 'x'))));
    const Digest d56 = Sha256::hash(std::string(56, 'x'));
    const Digest d64 = Sha256::hash(std::string(64, 'x'));
    EXPECT_NE(to_hex(d56), to_hex(d64));
}

TEST(Sha256, Leading64BigEndian) {
    Digest digest{};
    digest[0] = 0x01;
    digest[7] = 0xFF;
    EXPECT_EQ(fairbfl::crypto::leading64(digest), 0x01000000000000FFULL);
}

TEST(Sha256, LeadingZeroBits) {
    Digest digest{};
    EXPECT_EQ(fairbfl::crypto::leading_zero_bits(digest), 256);
    digest[0] = 0x10;  // 0001 0000
    EXPECT_EQ(fairbfl::crypto::leading_zero_bits(digest), 3);
    digest[0] = 0x80;
    EXPECT_EQ(fairbfl::crypto::leading_zero_bits(digest), 0);
}

TEST(Sha256, AvalancheOnSingleBitFlip) {
    const Digest a = Sha256::hash("fairbfl");
    const Digest b = Sha256::hash("fairbfm");  // last char +1
    int differing_bits = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        unsigned x = static_cast<unsigned>(a[i] ^ b[i]);
        while (x != 0U) {
            differing_bits += static_cast<int>(x & 1U);
            x >>= 1U;
        }
    }
    EXPECT_GT(differing_bits, 80);  // ~128 expected
}

}  // namespace
