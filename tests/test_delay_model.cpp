// Delay model: component behaviour and the orderings the paper's figures
// rely on.

#include <gtest/gtest.h>

#include "core/delay_model.hpp"
#include "support/stats.hpp"

namespace {

namespace core = fairbfl::core;
using fairbfl::support::Rng;
using fairbfl::support::RunningStats;

TEST(DelayModel, TLocalIsMaxOverClients) {
    const core::DelayModel model;
    const std::vector<std::size_t> ids{0, 1, 2};
    const std::vector<std::size_t> steps{10, 100, 20};
    const double all = model.t_local(ids, steps, 42);
    const double slow_only = model.t_local(
        std::vector<std::size_t>{1}, std::vector<std::size_t>{100}, 42);
    EXPECT_DOUBLE_EQ(all, std::max(
        slow_only,
        std::max(model.t_local(std::vector<std::size_t>{0},
                               std::vector<std::size_t>{10}, 42),
                 model.t_local(std::vector<std::size_t>{2},
                               std::vector<std::size_t>{20}, 42))));
}

TEST(DelayModel, TLocalScalesWithBatchSteps) {
    const core::DelayModel model;
    const std::vector<std::size_t> ids{7};
    const double few = model.t_local(ids, std::vector<std::size_t>{10}, 42);
    const double many = model.t_local(ids, std::vector<std::size_t>{100}, 42);
    EXPECT_NEAR(many / few, 10.0, 1e-9);  // same hetero factor cancels
}

TEST(DelayModel, HeteroFactorIsStablePerClient) {
    const core::DelayModel model;
    const std::vector<std::size_t> steps{50};
    const double a = model.t_local(std::vector<std::size_t>{3}, steps, 42);
    const double b = model.t_local(std::vector<std::size_t>{3}, steps, 42);
    EXPECT_DOUBLE_EQ(a, b);
    const double other = model.t_local(std::vector<std::size_t>{4}, steps, 42);
    EXPECT_NE(a, other);
}

TEST(DelayModel, TGlQuadraticInClusteredPoints) {
    const core::DelayModel model;
    const double none = model.t_gl(10, 0);
    const double small = model.t_gl(10, 10);
    const double large = model.t_gl(10, 100);
    EXPECT_LT(none, small);
    EXPECT_NEAR((large - none) / (small - none), 100.0, 1e-6);
}

TEST(DelayModel, FairMiningFlatAcrossMinerCounts) {
    // Difficulty retargeting keeps the fleet's block interval constant, so
    // FAIR's mining delay barely moves with the miner count (Figure 6b's
    // flat FAIR curve); only the small relay propagation grows.
    const core::DelayModel model;
    Rng rng2(1);
    Rng rng8(1);
    RunningStats m2;
    RunningStats m8;
    for (int i = 0; i < 2000; ++i) {
        m2.add(model.t_bl_fair(2, 1000, rng2));
        m8.add(model.t_bl_fair(8, 1000, rng8));
    }
    EXPECT_GT(m8.mean(), 0.8 * m2.mean());
    EXPECT_LT(m8.mean(), 1.5 * m2.mean());
}

TEST(DelayModel, VanillaMiningSlowerThanFairSameSetting) {
    // Idle-mining waste + forks make the vanilla race strictly costlier.
    const core::DelayModel model;
    Rng rng_fair(2);
    Rng rng_van(2);
    RunningStats fair;
    RunningStats vanilla;
    for (int i = 0; i < 2000; ++i) {
        fair.add(model.t_bl_fair(2, 1000, rng_fair));
        vanilla.add(model.t_bl_vanilla(2, 1, 1000, rng_van));
    }
    EXPECT_GT(vanilla.mean(), fair.mean() * 1.2);
}

TEST(DelayModel, VanillaMiningScalesWithBlockCount) {
    const core::DelayModel model;
    Rng rng1(3);
    Rng rng3(3);
    RunningStats one;
    RunningStats three;
    for (int i = 0; i < 1000; ++i) {
        one.add(model.t_bl_vanilla(2, 1, 1000, rng1));
        three.add(model.t_bl_vanilla(2, 3, 1000, rng3));
    }
    EXPECT_NEAR(three.mean() / one.mean(), 3.0, 0.35);
}

TEST(DelayModel, VanillaForkCostGrowsWithMiners) {
    // The Figure 6b mechanism: more miners -> more forks -> superlinear
    // delay growth for the vanilla chain.
    core::DelayParams params;
    const core::DelayModel model(params);
    RunningStats m2;
    RunningStats m10;
    Rng rngA(4);
    Rng rngB(4);
    std::size_t forks2 = 0;
    std::size_t forks10 = 0;
    for (int i = 0; i < 1500; ++i) {
        std::size_t f = 0;
        m2.add(model.t_bl_vanilla(2, 1, params.max_block_bytes, rngA, &f));
        forks2 += f;
        m10.add(model.t_bl_vanilla(10, 1, params.max_block_bytes, rngB, &f));
        forks10 += f;
    }
    EXPECT_GT(forks10, forks2 * 2);
}

TEST(DelayModel, RoundDelayTotalSumsComponents) {
    core::RoundDelay delay;
    delay.t_local = 1.0;
    delay.t_up = 0.5;
    delay.t_ex = 0.25;
    delay.t_gl = 0.125;
    delay.t_bl = 2.0;
    EXPECT_DOUBLE_EQ(delay.total(), 3.875);
}

}  // namespace
