// Transactions: encoding, ids, signing, reward/gradient payload helpers.

#include <gtest/gtest.h>

#include "chain/transaction.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::crypto::KeyStore;

ch::Transaction sample_tx() {
    return ch::make_gradient_tx(ch::TxKind::kLocalGradient, /*origin=*/3,
                                /*round=*/9, std::vector<float>{1.0F, -2.0F});
}

TEST(Transaction, EncodeDecodeRoundTrip) {
    const ch::Transaction tx = sample_tx();
    const auto encoded = tx.encode();
    ch::ByteReader reader(encoded);
    const ch::Transaction decoded = ch::Transaction::decode(reader);
    EXPECT_EQ(decoded, tx);
    EXPECT_TRUE(reader.exhausted());
}

TEST(Transaction, SizeBytesMatchesEncoding) {
    const ch::Transaction tx = sample_tx();
    EXPECT_EQ(tx.size_bytes(), tx.encode().size());
}

TEST(Transaction, IdChangesWithContent) {
    ch::Transaction a = sample_tx();
    ch::Transaction b = a;
    b.round = 10;
    EXPECT_NE(a.id(), b.id());
    EXPECT_EQ(a.id(), sample_tx().id());
}

TEST(Transaction, GradientPayloadRoundTrip) {
    const std::vector<float> grad{0.5F, -0.25F, 3.0F};
    const auto tx = ch::make_gradient_tx(ch::TxKind::kGlobalUpdate, 1, 2, grad);
    EXPECT_EQ(ch::parse_gradient_tx(tx), grad);
}

TEST(Transaction, GradientHelpersRejectWrongKind) {
    EXPECT_THROW((void)ch::make_gradient_tx(ch::TxKind::kReward, 0, 0, {}),
                 std::invalid_argument);
    ch::Transaction reward = ch::make_reward_tx(0, 1, 2, 0.5);
    EXPECT_THROW((void)ch::parse_gradient_tx(reward), std::invalid_argument);
}

TEST(Transaction, RewardPayloadRoundTrip) {
    const auto tx = ch::make_reward_tx(/*miner=*/7, /*round=*/3,
                                       /*client=*/12, /*amount=*/0.125);
    const auto info = ch::parse_reward_tx(tx);
    EXPECT_EQ(info.client, 12U);
    EXPECT_DOUBLE_EQ(info.amount, 0.125);
    EXPECT_EQ(tx.origin, 7U);
}

TEST(Transaction, RewardAmountQuantizedToMillis) {
    const auto tx = ch::make_reward_tx(0, 0, 1, 0.0004);  // below 1 milli
    EXPECT_DOUBLE_EQ(ch::parse_reward_tx(tx).amount, 0.0);
    const auto tx2 = ch::make_reward_tx(0, 0, 1, 0.0006);
    EXPECT_DOUBLE_EQ(ch::parse_reward_tx(tx2).amount, 0.001);
}

TEST(Transaction, SignatureVerifiesAndTamperFails) {
    KeyStore keys(11, 384);
    keys.register_node(3);
    ch::Transaction tx = sample_tx();
    ch::sign_transaction(tx, keys);
    EXPECT_TRUE(ch::verify_transaction(tx, keys));

    ch::Transaction forged = tx;
    forged.payload[0] ^= 1;  // flip a payload bit
    EXPECT_FALSE(ch::verify_transaction(forged, keys));

    ch::Transaction impersonated = tx;
    keys.register_node(4);
    impersonated.origin = 4;  // claims another author
    EXPECT_FALSE(ch::verify_transaction(impersonated, keys));
}

TEST(Transaction, DisabledCryptoAlwaysVerifies) {
    KeyStore keys(11, 0);
    ch::Transaction tx = sample_tx();
    ch::sign_transaction(tx, keys);
    EXPECT_TRUE(tx.signature.empty());
    EXPECT_TRUE(ch::verify_transaction(tx, keys));
}

}  // namespace
