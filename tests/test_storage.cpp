// Chain persistence: export/parse/import round-trips, tamper rejection,
// file I/O, signature re-validation on import.

#include <gtest/gtest.h>

#include <cstdio>

#include "chain/storage.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::crypto::KeyStore;

ch::Blockchain build_chain(std::size_t blocks, const KeyStore* keys = nullptr) {
    ch::Blockchain chain(77, keys);
    chain.set_check_pow(false);
    for (std::size_t i = 0; i < blocks; ++i) {
        ch::Block block;
        block.header.index = chain.tip().header.index + 1;
        block.header.prev_hash = chain.tip().header.hash();
        block.header.timestamp_ms = i;
        ch::Transaction tx = ch::make_gradient_tx(
            ch::TxKind::kGlobalUpdate, 0, i,
            std::vector<float>{static_cast<float>(i), 2.0F});
        if (keys != nullptr) ch::sign_transaction(tx, *keys);
        block.transactions.push_back(std::move(tx));
        block.seal_transactions();
        EXPECT_EQ(chain.submit(block), ch::BlockVerdict::kAccepted);
    }
    return chain;
}

TEST(Storage, ExportParseRoundTrip) {
    const auto chain = build_chain(5);
    const auto bytes = ch::export_chain(chain);
    const auto blocks = ch::parse_chain(bytes);
    ASSERT_EQ(blocks.size(), 6U);  // genesis + 5
    for (std::size_t h = 0; h < blocks.size(); ++h)
        EXPECT_EQ(blocks[h], chain.at(h));
}

TEST(Storage, ImportRebuildsIdenticalChain) {
    const auto chain = build_chain(5);
    const auto imported = ch::import_chain(ch::export_chain(chain), 77);
    ASSERT_TRUE(imported.has_value());
    EXPECT_EQ(imported->height(), chain.height());
    EXPECT_EQ(imported->tip().header.hash(), chain.tip().header.hash());
    EXPECT_TRUE(imported->validate_full_chain());
}

TEST(Storage, ImportRejectsWrongChainId) {
    const auto chain = build_chain(2);
    EXPECT_FALSE(ch::import_chain(ch::export_chain(chain), 78).has_value());
}

TEST(Storage, ImportRejectsTamperedBlock) {
    const auto chain = build_chain(3);
    auto bytes = ch::export_chain(chain);
    // Flip a byte well inside a block body (immutability check).
    bytes[bytes.size() / 2] ^= 0x01;
    EXPECT_FALSE(ch::import_chain(bytes, 77).has_value());
}

TEST(Storage, ParseRejectsGarbage) {
    const std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_THROW((void)ch::parse_chain(junk), std::runtime_error);
    // Trailing bytes after a valid chain are also rejected.
    auto bytes = ch::export_chain(build_chain(1));
    bytes.push_back(0);
    EXPECT_THROW((void)ch::parse_chain(bytes), std::runtime_error);
}

TEST(Storage, SignatureRevalidationOnImport) {
    KeyStore keys(5, 384);
    keys.register_node(0);
    const auto chain = build_chain(2, &keys);
    const auto bytes = ch::export_chain(chain);

    // With the right keystore: accepted.
    EXPECT_TRUE(ch::import_chain(bytes, 77, &keys).has_value());
    // With a different keystore: every signature fails.
    KeyStore other(6, 384);
    other.register_node(0);
    EXPECT_FALSE(ch::import_chain(bytes, 77, &other).has_value());
}

TEST(Storage, FileRoundTrip) {
    const std::string path = "/tmp/fairbfl_test_chain.bin";
    const auto chain = build_chain(4);
    ASSERT_TRUE(ch::save_chain(chain, path));
    const auto loaded = ch::load_chain(path, 77);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->height(), 5U);
    EXPECT_EQ(loaded->tip().header.hash(), chain.tip().header.hash());
    std::remove(path.c_str());
}

TEST(Storage, LoadMissingFileFails) {
    EXPECT_FALSE(ch::load_chain("/nonexistent/chain.bin", 77).has_value());
}

}  // namespace
