// Partitioners: exact coverage, shard balance, and skew ordering
// (IID < Dirichlet < label shards).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace ml = fairbfl::ml;

class PartitionSchemeTest
    : public ::testing::TestWithParam<ml::PartitionScheme> {};

TEST_P(PartitionSchemeTest, EverySampleAssignedExactlyOnce) {
    const auto ds = ml::make_synthetic_mnist({.samples = 1000, .seed = 5});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.scheme = GetParam();
    params.num_clients = 20;
    const auto shards = ml::partition(view, params);
    ASSERT_EQ(shards.size(), 20U);

    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (const auto& shard : shards) {
        total += shard.size();
        for (const auto idx : shard.indices()) {
            EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
        }
    }
    EXPECT_EQ(total, 1000U);
}

TEST_P(PartitionSchemeTest, DeterministicInSeed) {
    const auto ds = ml::make_synthetic_mnist({.samples = 400, .seed = 5});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.scheme = GetParam();
    params.num_clients = 10;
    const auto a = ml::partition(view, params);
    const auto b = ml::partition(view, params);
    for (std::size_t c = 0; c < 10; ++c)
        EXPECT_EQ(a[c].indices(), b[c].indices());
}

INSTANTIATE_TEST_SUITE_P(Schemes, PartitionSchemeTest,
                         ::testing::Values(ml::PartitionScheme::kIid,
                                           ml::PartitionScheme::kLabelShards,
                                           ml::PartitionScheme::kDirichlet));

TEST(Partition, IidShardsAreBalanced) {
    const auto ds = ml::make_synthetic_mnist({.samples = 1003, .seed = 6});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.scheme = ml::PartitionScheme::kIid;
    params.num_clients = 10;
    const auto shards = ml::partition(view, params);
    for (const auto& shard : shards) {
        EXPECT_GE(shard.size(), 100U);
        EXPECT_LE(shard.size(), 101U);
    }
}

TEST(Partition, LabelShardsLimitLabelDiversity) {
    // With 2 shards per client, most clients see at most ~3 labels.
    const auto ds = ml::make_synthetic_mnist({.samples = 5000, .seed = 7});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.scheme = ml::PartitionScheme::kLabelShards;
    params.num_clients = 50;
    params.shards_per_client = 2;
    const auto shards = ml::partition(view, params);
    std::size_t few_label_clients = 0;
    for (const auto& shard : shards) {
        std::set<std::int32_t> labels;
        for (std::size_t i = 0; i < shard.size(); ++i)
            labels.insert(shard.label_of(i));
        if (labels.size() <= 3) ++few_label_clients;
    }
    EXPECT_GE(few_label_clients, 45U);
}

TEST(Partition, SkewOrderingAcrossSchemes) {
    const auto ds = ml::make_synthetic_mnist({.samples = 5000, .seed = 8});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.num_clients = 25;

    params.scheme = ml::PartitionScheme::kIid;
    const double iid_skew = ml::label_skew(ml::partition(view, params), 10);

    params.scheme = ml::PartitionScheme::kLabelShards;
    const double shard_skew = ml::label_skew(ml::partition(view, params), 10);

    params.scheme = ml::PartitionScheme::kDirichlet;
    params.dirichlet_alpha = 0.5;
    const double dir_skew = ml::label_skew(ml::partition(view, params), 10);

    EXPECT_LT(iid_skew, 0.25);
    EXPECT_GT(shard_skew, 0.6);
    EXPECT_GT(dir_skew, iid_skew);
    EXPECT_LT(iid_skew, shard_skew);
}

TEST(Partition, DirichletAlphaControlsSkew) {
    const auto ds = ml::make_synthetic_mnist({.samples = 5000, .seed = 9});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.scheme = ml::PartitionScheme::kDirichlet;
    params.num_clients = 25;

    params.dirichlet_alpha = 100.0;  // near-IID
    const double smooth = ml::label_skew(ml::partition(view, params), 10);
    params.dirichlet_alpha = 0.1;    // heavily skewed
    const double spiky = ml::label_skew(ml::partition(view, params), 10);
    EXPECT_GT(spiky, smooth + 0.1);
}

TEST(Partition, ZeroClientsThrows) {
    const auto ds = ml::make_synthetic_mnist({.samples = 100, .seed = 1});
    const auto view = ml::DatasetView::all(ds);
    ml::PartitionParams params;
    params.num_clients = 0;
    EXPECT_THROW((void)ml::partition(view, params), std::invalid_argument);
}

}  // namespace
