// GradientIndex: exact-backend equivalence with the dense matrix, the
// string-keyed registry, approximate-backend quality (recall, attack
// detection within 2% of exact), and the small-n break-even fallbacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/dbscan.hpp"
#include "cluster/index.hpp"
#include "cluster/kmeans.hpp"
#include "core/experiment.hpp"
#include "core/fairbfl.hpp"
#include "incentive/contribution.hpp"
#include "support/rng.hpp"

namespace {

namespace cl = fairbfl::cluster;
namespace core = fairbfl::core;
using fairbfl::support::Rng;

/// `groups` tight gradient clusters in `dim` dims: shared random direction
/// per group (near-orthogonal across groups in high dim) plus small noise.
/// The honest-vs-forged structure Algorithm 2 sees: every point's true
/// nearest neighbours are its co-group members.
std::vector<std::vector<float>> grouped_gradients(std::size_t groups,
                                                  std::size_t per_group,
                                                  std::size_t dim,
                                                  std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<float>> points;
    for (std::size_t g = 0; g < groups; ++g) {
        std::vector<float> direction(dim);
        for (auto& v : direction) v = static_cast<float>(rng.normal());
        for (std::size_t i = 0; i < per_group; ++i) {
            std::vector<float> p(dim);
            for (std::size_t d = 0; d < dim; ++d)
                p[d] = direction[d] +
                       static_cast<float>(0.05 * rng.normal());
            points.push_back(std::move(p));
        }
    }
    return points;
}

TEST(ExactIndex, MatchesDistanceMatrixBitForBit) {
    const auto points = grouped_gradients(3, 5, 24, 1);
    const cl::DistanceMatrix matrix(cl::Metric::kEuclidean, points);
    const cl::ExactIndex index(cl::Metric::kEuclidean, points);

    ASSERT_EQ(index.size(), matrix.size());
    EXPECT_EQ(index.metric(), matrix.metric());
    EXPECT_TRUE(index.exact());
    EXPECT_EQ(index.name(), "exact");
    for (std::size_t i = 0; i < matrix.size(); ++i)
        for (std::size_t j = 0; j < matrix.size(); ++j)
            EXPECT_EQ(index.distance(i, j), matrix.at(i, j)) << i << "," << j;

    std::vector<double> row(matrix.size());
    index.distances_from(2, row);
    for (std::size_t j = 0; j < matrix.size(); ++j)
        EXPECT_EQ(row[j], matrix.at(2, j));
}

TEST(ExactIndex, NeighborsWithinMatchesRowScan) {
    const auto points = grouped_gradients(2, 6, 16, 2);
    const cl::ExactIndex index(cl::Metric::kEuclidean, points);
    const double eps = 1.0;
    for (std::size_t i = 0; i < index.size(); ++i) {
        const auto neighbors = index.neighbors_within(i, eps);
        // Ascending, self included, exactly the <= eps set.
        EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
        EXPECT_TRUE(std::binary_search(neighbors.begin(), neighbors.end(), i));
        std::size_t count = 0;
        for (std::size_t j = 0; j < index.size(); ++j)
            if (index.distance(i, j) <= eps) ++count;
        EXPECT_EQ(neighbors.size(), count);
    }
}

TEST(ExactIndex, NearestOfPicksArgminFirstTieWins) {
    // Collinear points: distances from index 0 are 1, 2, 2 -- the first
    // of the tied candidates must win (the fallback's determinism).
    const std::vector<std::vector<float>> points{
        {0.0F}, {1.0F}, {-2.0F}, {2.0F}};
    const cl::ExactIndex index(cl::Metric::kEuclidean, points);
    const std::vector<std::size_t> all{1, 2, 3};
    EXPECT_EQ(index.nearest_of(0, all), 1U);
    const std::vector<std::size_t> tied{2, 3};
    EXPECT_EQ(index.nearest_of(0, tied), 2U);
}

TEST(LazyIndex, ComputesExactMetricWithZeroBuild) {
    const auto points = grouped_gradients(2, 5, 24, 11);
    for (const auto metric : {cl::Metric::kEuclidean, cl::Metric::kCosine}) {
        const cl::LazyIndex index(metric, points);
        EXPECT_TRUE(index.exact());
        EXPECT_EQ(index.name(), "lazy");
        ASSERT_EQ(index.size(), points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(index.distance(i, i), 0.0);
            for (std::size_t j = 0; j < points.size(); ++j) {
                if (i == j) continue;
                // Per-query evaluation of the exact pairwise kernel.
                EXPECT_EQ(index.distance(i, j),
                          cl::distance(metric, points[i], points[j]));
            }
        }
    }
}

TEST(LazyIndex, KMeansSeedingBitIdenticalToPointsPathUnderEuclidean) {
    // Under "auto", k-means resolves to the lazy backend; with the
    // Euclidean metric the seed distances are the same kernel calls on
    // the same vectors as the points path, so the labels must be equal.
    const auto points = grouped_gradients(3, 8, 64, 12);
    const fairbfl::cluster::KMeans kmeans({.k = 3,
                                           .max_iterations = 50,
                                           .metric = cl::Metric::kEuclidean,
                                           .seed = 5});
    const cl::LazyIndex lazy(cl::Metric::kEuclidean, points);
    EXPECT_EQ(kmeans.cluster_with(lazy, points).labels,
              kmeans.cluster(points).labels);
}

TEST(AutoIndex, ResolvesPerClusteringAlgorithm) {
    // "auto" (the config default) picks the backend matching the
    // algorithm's access pattern: exact for dbscan's dense scan, lazy for
    // kmeans' seed-only touches.
    namespace inc = fairbfl::incentive;
    std::vector<fairbfl::fl::GradientUpdate> updates(6);
    Rng rng(13);
    for (std::size_t i = 0; i < updates.size(); ++i) {
        updates[i].client = static_cast<fairbfl::fl::NodeId>(i);
        updates[i].weights.resize(16);
        for (auto& w : updates[i].weights)
            w = static_cast<float>(rng.normal());
    }
    const auto provisional = fairbfl::fl::simple_average(updates);

    inc::ContributionConfig config;
    ASSERT_EQ(config.index, "auto");
    EXPECT_EQ(inc::identify_contributions(updates, provisional, config)
                  .index_backend,
              "exact");
    config.clustering = "kmeans";
    config.kmeans.k = 2;
    EXPECT_EQ(inc::identify_contributions(updates, provisional, config)
                  .index_backend,
              "lazy");
}

TEST(IndexRegistry, BuiltinsRegisteredUnknownThrows) {
    auto& registry = cl::IndexRegistry::global();
    EXPECT_TRUE(registry.contains("exact"));
    EXPECT_TRUE(registry.contains("lazy"));
    EXPECT_TRUE(registry.contains("random_projection"));
    EXPECT_TRUE(registry.contains("sampled"));
    EXPECT_FALSE(registry.contains("flat_l2"));

    const auto points = grouped_gradients(2, 4, 8, 3);
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    for (const auto& name : registry.names()) {
        const auto index = registry.build(name, points, params);
        ASSERT_NE(index, nullptr);
        EXPECT_EQ(index->size(), points.size());
        EXPECT_EQ(index->metric(), cl::Metric::kEuclidean);
    }
    EXPECT_THROW((void)registry.build("flat_l2", points, params),
                 std::out_of_range);
    EXPECT_THROW(registry.add("exact", nullptr), std::invalid_argument);
}

// Recall of the sketch-space nearest neighbours against the exact ones,
// averaged over all queries.  k_nn = per_group - 1, so the true NN set of
// every point is exactly its co-group members.
double recall_at(const cl::GradientIndex& approx, const cl::ExactIndex& exact,
                 std::size_t k_nn) {
    const std::size_t n = exact.size();
    auto knn = [&](const cl::GradientIndex& index, std::size_t i) {
        std::vector<std::size_t> order;
        for (std::size_t j = 0; j < n; ++j)
            if (j != i) order.push_back(j);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return index.distance(i, a) < index.distance(i, b);
                  });
        order.resize(k_nn);
        std::sort(order.begin(), order.end());
        return order;
    };
    double hits = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto truth = knn(exact, i);
        const auto found = knn(approx, i);
        std::vector<std::size_t> common;
        std::set_intersection(truth.begin(), truth.end(), found.begin(),
                              found.end(), std::back_inserter(common));
        hits += static_cast<double>(common.size());
    }
    return hits / static_cast<double>(n * k_nn);
}

TEST(RandomProjectionIndex, RecallAtLeastPoint9OnGradientGroups) {
    // 10 groups x 8 gradients in 512 dims; projection_dims = 16 keeps the
    // sketch genuinely engaged (n = 80 > 2k = 32).
    const auto points = grouped_gradients(10, 8, 512, 4);
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.projection_dims = 16;
    const cl::RandomProjectionIndex approx(points, params);
    ASSERT_EQ(approx.sketch_dims(), 16U);
    const cl::ExactIndex exact(cl::Metric::kEuclidean, points);
    EXPECT_GE(recall_at(approx, exact, 7), 0.9);
}

TEST(SampledIndex, RecallAtLeastPoint9OnGradientGroups) {
    const auto points = grouped_gradients(10, 8, 512, 5);
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.pivots = 16;  // engaged: n = 80 > m = 16
    const cl::SampledIndex approx(points, params);
    ASSERT_EQ(approx.pivot_count(), 16U);
    const cl::ExactIndex exact(cl::Metric::kEuclidean, points);
    EXPECT_GE(recall_at(approx, exact, 7), 0.9);
}

TEST(SampledIndex, MemoryCappedAtPivotTable) {
    const auto points = grouped_gradients(10, 10, 64, 6);  // n = 100
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.pivots = 16;
    const cl::SampledIndex index(points, params);
    EXPECT_EQ(index.pivot_count(), 16U);
    // O(n m) doubles, far under the n^2 the dense matrix would need.
    EXPECT_EQ(index.storage_bytes(), 100U * 16U * sizeof(double));
    // Still a dissimilarity: symmetric with a zero diagonal.
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(index.distance(i, i), 0.0);
        for (std::size_t j = 0; j < 20; ++j)
            EXPECT_EQ(index.distance(i, j), index.distance(j, i));
    }
}

TEST(ApproximateIndexes, SmallRoundsFallBackToExactGeometry) {
    // Below the cost break-even (n <= 2k / n <= m) approximating is pure
    // loss, so both backends must answer with the exact metric -- Table-2
    // sized rounds decide identically to the "exact" backend.
    const auto points = grouped_gradients(2, 5, 32, 7);  // n = 10
    const cl::ExactIndex exact(cl::Metric::kEuclidean, points);
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;  // defaults: k = 48, m = 32
    const cl::RandomProjectionIndex projected(points, params);
    const cl::SampledIndex sampled(points, params);
    EXPECT_EQ(sampled.pivot_count(), 0U);
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = 0; j < points.size(); ++j) {
            EXPECT_EQ(projected.distance(i, j), exact.distance(i, j));
            EXPECT_EQ(sampled.distance(i, j), exact.distance(i, j));
        }
    }
}

TEST(ApproximateIndexes, DbscanLabelsMatchExactOnSeparatedGroups) {
    // End-to-end through the scan: adaptive eps from each index's own
    // geometry must recover the same well-separated partition.
    const auto points = grouped_gradients(4, 10, 256, 8);
    const cl::ExactIndex exact(cl::Metric::kEuclidean, points);
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.projection_dims = 12;
    params.pivots = 12;
    const cl::RandomProjectionIndex projected(points, params);
    const cl::SampledIndex sampled(points, params);

    auto scan = [&](const cl::GradientIndex& index) {
        const double eps = 2.0 * cl::suggest_eps(index, 3);
        const cl::Dbscan dbscan(
            {.eps = eps, .min_pts = 3, .metric = cl::Metric::kEuclidean});
        return dbscan.cluster_with(index, points);
    };
    const auto truth = scan(exact);
    ASSERT_EQ(truth.num_clusters, 4);
    EXPECT_EQ(scan(projected).labels, truth.labels);
    EXPECT_EQ(scan(sampled).labels, truth.labels);
}

// The acceptance gate: attack-detection rate under either approximate
// backend stays within 2% of exact, with the approximation *engaged* at
// its default tuning (n = 120 clients > 2k = 96 and > m = 32).  Table-2
// scale (10 clients) is covered by the break-even fallback instead, and
// pinned by the identical bench_table2_attacks output per backend.
TEST(ApproximateIndexes, AttackDetectionWithin2PercentOfExact) {
    core::EnvironmentConfig env_config;
    env_config.data.samples = 1200;
    env_config.data.seed = 9;
    env_config.partition.scheme = fairbfl::ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 120;
    env_config.partition.seed = 9;
    const core::Environment env = core::build_environment(env_config);

    auto detection = [&](const std::string& index) {
        core::FairBflConfig config;
        config.fl.client_ratio = 1.0;
        config.fl.rounds = 10;
        config.fl.seed = 9;
        config.attack.kind = core::AttackKind::kSignFlip;
        config.attack.magnitude = 3.0;
        config.attack.min_attackers = 2;
        config.attack.max_attackers = 6;
        config.incentive.index = index;
        core::FairBfl system(*env.model, env.make_clients(), env.test,
                             config);
        double rate = 0.0;
        for (std::size_t r = 0; r < config.fl.rounds; ++r)
            rate += system.run_round().detection_rate;
        return rate / static_cast<double>(config.fl.rounds);
    };

    const double exact = detection("exact");
    EXPECT_GT(exact, 0.5);  // the defense itself must be working
    EXPECT_NEAR(detection("random_projection"), exact, 0.02);
    EXPECT_NEAR(detection("sampled"), exact, 0.02);
}

}  // namespace
