// CSV writer escaping/teeing and the CLI flag parser.

#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.hpp"
#include "support/csv.hpp"

namespace {

using fairbfl::support::CliArgs;
using fairbfl::support::CsvWriter;

TEST(Csv, HeaderAndRows) {
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"round", "delay", "name"});
    csv.row().col(std::int64_t{1}).col(2.5).col("FAIR").end();
    EXPECT_EQ(out.str(), "round,delay,name\n1,2.5,FAIR\n");
}

TEST(Csv, EscapesSeparatorsAndQuotes) {
    std::ostringstream out;
    CsvWriter csv(out);
    csv.row().col("a,b").col("he said \"hi\"").end();
    EXPECT_EQ(out.str(), "\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, RowEmitsOnDestruction) {
    std::ostringstream out;
    CsvWriter csv(out);
    { csv.row().col(std::size_t{7}); }
    EXPECT_EQ(out.str(), "7\n");
}

TEST(Cli, ParsesTypedValues) {
    const char* argv[] = {"prog", "--rounds=50", "--eta=0.05",
                          "--name=test", "--paper"};
    CliArgs args(5, argv);
    EXPECT_EQ(args.get_int("rounds", 100), 50);
    EXPECT_DOUBLE_EQ(args.get_double("eta", 0.01), 0.05);
    EXPECT_EQ(args.get_string("name", "x"), "test");
    EXPECT_TRUE(args.get_flag("paper"));
    EXPECT_TRUE(args.finish("prog"));
}

TEST(Cli, FallbacksWhenAbsent) {
    const char* argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_EQ(args.get_int("rounds", 100), 100);
    EXPECT_DOUBLE_EQ(args.get_double("eta", 0.01), 0.01);
    EXPECT_FALSE(args.get_flag("paper"));
    EXPECT_TRUE(args.finish("prog"));
}

TEST(Cli, BooleanSpellings) {
    const char* argv[] = {"prog", "--a=false", "--b=0", "--c=true", "--d=1"};
    CliArgs args(5, argv);
    EXPECT_FALSE(args.get_flag("a"));
    EXPECT_FALSE(args.get_flag("b"));
    EXPECT_TRUE(args.get_flag("c"));
    EXPECT_TRUE(args.get_flag("d"));
}

TEST(Cli, RejectsUnknownFlags) {
    const char* argv[] = {"prog", "--rounds=5", "--bogus=1"};
    CliArgs args(3, argv);
    EXPECT_EQ(args.get_int("rounds", 1), 5);
    EXPECT_FALSE(args.finish("prog"));  // --bogus never consumed
}

TEST(Cli, HelpFlagDetected) {
    const char* argv[] = {"prog", "--help"};
    CliArgs args(2, argv);
    EXPECT_TRUE(args.help_requested());
}

TEST(Cli, MalformedIntIsFlaggedNotZero) {
    const char* argv[] = {"prog", "--rounds=abc"};
    CliArgs args(2, argv);
    EXPECT_EQ(args.get_int("rounds", 100), 100);  // fallback, not 0
    EXPECT_FALSE(args.finish("prog"));
}

TEST(Cli, TrailingGarbageIntIsFlagged) {
    const char* argv[] = {"prog", "--rounds=12x"};
    CliArgs args(2, argv);
    EXPECT_EQ(args.get_int("rounds", 100), 100);
    EXPECT_FALSE(args.finish("prog"));
}

TEST(Cli, BareNumericFlagIsFlagged) {
    // A bare `--rounds` stores "true"; reading it as a number used to
    // yield 0 silently.
    const char* argv[] = {"prog", "--rounds"};
    CliArgs args(2, argv);
    EXPECT_EQ(args.get_int("rounds", 100), 100);
    EXPECT_FALSE(args.finish("prog"));
}

TEST(Cli, MalformedDoubleIsFlagged) {
    const char* argv[] = {"prog", "--eta=0.05oops"};
    CliArgs args(2, argv);
    EXPECT_DOUBLE_EQ(args.get_double("eta", 0.01), 0.01);
    EXPECT_FALSE(args.finish("prog"));
}

TEST(Cli, WellFormedNumbersStillPass) {
    const char* argv[] = {"prog", "--rounds=-3", "--eta=1e-2"};
    CliArgs args(3, argv);
    EXPECT_EQ(args.get_int("rounds", 0), -3);
    EXPECT_DOUBLE_EQ(args.get_double("eta", 0.0), 0.01);
    EXPECT_TRUE(args.finish("prog"));
}

}  // namespace
