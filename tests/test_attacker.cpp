// Attack models and the detection-rate metric.

#include <gtest/gtest.h>

#include "core/attacker.hpp"
#include "support/vecmath.hpp"

namespace {

namespace core = fairbfl::core;
namespace fl = fairbfl::fl;

std::vector<fl::GradientUpdate> make_updates(std::size_t n,
                                             std::size_t dim = 8) {
    std::vector<fl::GradientUpdate> updates(n);
    for (std::size_t i = 0; i < n; ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].weights.assign(dim, static_cast<float>(i) * 0.1F + 1.0F);
    }
    return updates;
}

TEST(Attacker, NoneLeavesUpdatesUntouched) {
    auto updates = make_updates(5);
    const auto original = updates;
    const std::vector<float> global(8, 1.0F);
    const auto report = core::apply_attack(updates, global,
                                           {.kind = core::AttackKind::kNone},
                                           0, 42);
    EXPECT_TRUE(report.attacker_clients.empty());
    EXPECT_EQ(updates, original);
}

TEST(Attacker, CountWithinConfiguredBounds) {
    const std::vector<float> global(8, 1.0F);
    core::AttackConfig config;
    config.kind = core::AttackKind::kSignFlip;
    config.min_attackers = 1;
    config.max_attackers = 3;
    for (std::uint64_t round = 0; round < 30; ++round) {
        auto updates = make_updates(10);
        const auto report = core::apply_attack(updates, global, config,
                                               round, 42);
        EXPECT_GE(report.attacker_clients.size(), 1U);
        EXPECT_LE(report.attacker_clients.size(), 3U);
    }
}

TEST(Attacker, CountClampedToUpdateCount) {
    const std::vector<float> global(8, 1.0F);
    core::AttackConfig config;
    config.kind = core::AttackKind::kSignFlip;
    config.min_attackers = 5;
    config.max_attackers = 9;
    auto updates = make_updates(3);
    const auto report = core::apply_attack(updates, global, config, 0, 42);
    EXPECT_LE(report.attacker_clients.size(), 3U);
}

TEST(Attacker, DeterministicPerRoundAndSeed) {
    const std::vector<float> global(8, 1.0F);
    core::AttackConfig config;
    config.kind = core::AttackKind::kGaussian;
    auto a = make_updates(10);
    auto b = make_updates(10);
    const auto ra = core::apply_attack(a, global, config, 4, 42);
    const auto rb = core::apply_attack(b, global, config, 4, 42);
    EXPECT_EQ(ra.attacker_clients, rb.attacker_clients);
    EXPECT_EQ(a, b);
    auto c = make_updates(10);
    const auto rc = core::apply_attack(c, global, config, 5, 42);
    // A different round reselects attackers (statistically different).
    EXPECT_TRUE(ra.attacker_clients != rc.attacker_clients || a != c);
}

TEST(Attacker, SignFlipInvertsDelta) {
    auto updates = make_updates(1);
    std::vector<float> global(8, 1.0F);
    updates[0].weights.assign(8, 1.5F);  // delta = +0.5
    core::AttackConfig config;
    config.kind = core::AttackKind::kSignFlip;
    config.magnitude = 2.0;
    config.min_attackers = 1;
    config.max_attackers = 1;
    (void)core::apply_attack(updates, global, config, 0, 42);
    // w = global - 2 * delta = 1.0 - 1.0 = 0.0.
    for (const float w : updates[0].weights) EXPECT_FLOAT_EQ(w, 0.0F);
}

TEST(Attacker, ScaleBoostsDelta) {
    auto updates = make_updates(1);
    std::vector<float> global(8, 1.0F);
    updates[0].weights.assign(8, 1.5F);
    core::AttackConfig config;
    config.kind = core::AttackKind::kScale;
    config.magnitude = 4.0;
    config.min_attackers = 1;
    config.max_attackers = 1;
    (void)core::apply_attack(updates, global, config, 0, 42);
    for (const float w : updates[0].weights) EXPECT_FLOAT_EQ(w, 3.0F);
}

TEST(Attacker, GaussianMovesWeights) {
    auto updates = make_updates(1);
    const auto original = updates[0].weights;
    const std::vector<float> global(8, 1.0F);
    core::AttackConfig config;
    config.kind = core::AttackKind::kGaussian;
    config.magnitude = 1.0;
    config.min_attackers = 1;
    config.max_attackers = 1;
    (void)core::apply_attack(updates, global, config, 0, 42);
    EXPECT_GT(fairbfl::support::squared_distance(updates[0].weights, original),
              0.0);
}

TEST(DetectionRate, Formula) {
    EXPECT_DOUBLE_EQ(core::detection_rate({}, {}), 1.0);       // vacuous
    EXPECT_DOUBLE_EQ(core::detection_rate({1, 2}, {}), 0.0);
    EXPECT_DOUBLE_EQ(core::detection_rate({1, 2}, {2}), 0.5);
    EXPECT_DOUBLE_EQ(core::detection_rate({1, 2}, {1, 2, 9}), 1.0);
    EXPECT_NEAR(core::detection_rate({3, 6, 2}, {2, 6}), 2.0 / 3.0, 1e-12);
}

}  // namespace
