// Telemetry subsystem (src/telemetry/):
//
//   * multi-threaded writer stress: N threads x M nested spans through the
//     per-thread rings, zero lost or duplicated events, correct nesting;
//   * the hot path allocates nothing (global operator new/delete counters
//     around an emit window that stays inside one ring);
//   * fixed-seed pin: FairBfl's telemetry-derived StageWall matches the
//     decoded trace dump *exactly* (bit-identical doubles), so perf JSON
//     derived live and offline agree;
//   * JSON schema pin for the decoder export;
//   * Dump binary round-trip (encode/decode and save/load);
//   * FAIRBFL_TELEMETRY off emits nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/fairbfl.hpp"
#include "core/stage_wall.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"
#include "telemetry/decode.hpp"
#include "telemetry/telemetry.hpp"

// --- Global allocation counter ---------------------------------------------
// Replaces the binary's global new/delete with counting versions.  The
// allocation-free test snapshots the counter around an emit window on a
// quiescent thread; any Span/counter_add allocation shows up as a delta.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* ptr = std::malloc(size ? size : 1)) return ptr;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace {

namespace core = fairbfl::core;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;
namespace tel = fairbfl::telemetry;

// --- Stress ----------------------------------------------------------------

TEST(TelemetryStress, ManyThreadsLoseNothing) {
    tel::set_enabled(true);
    const tel::Label outer = tel::intern("stress.outer");
    const tel::Label inner = tel::intern("stress.inner");
    const tel::Label count = tel::intern("stress.count");

    // 8 threads x 1500 nested span pairs = 48k records: each ring (4096
    // slots) overflows several times, exercising the buffer-full
    // self-flush; thread exit exercises the retire flush.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kSpans = 1500;
    tel::Session session;
    {
        std::vector<std::thread> workers;
        workers.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            workers.emplace_back([&session] {
                const tel::ContextScope scope(session.context(3));
                for (unsigned i = 0; i < kSpans; ++i) {
                    tel::Span span_outer(tel::intern("stress.outer"));
                    {
                        tel::Span span_inner(tel::intern("stress.inner"));
                        tel::counter_add(tel::intern("stress.count"), 1);
                    }
                }
            });
        }
        for (auto& worker : workers) worker.join();
    }

    const tel::RoundStats stats = session.harvest(3);
    // Zero lost events: every span's begin AND end arrived (a lost end
    // leaves an open span; a lost begin leaves an unmatched end that never
    // counts as a span), and every counter increment arrived.
    EXPECT_EQ(stats.open_spans, 0U);
    EXPECT_EQ(stats.labels.at(std::string(tel::label_name(outer))).spans,
              std::uint64_t{kThreads} * kSpans);
    EXPECT_EQ(stats.labels.at(std::string(tel::label_name(inner))).spans,
              std::uint64_t{kThreads} * kSpans);
    EXPECT_EQ(stats.sum_of(tel::label_name(count)),
              std::uint64_t{kThreads} * kSpans);
    // Zero duplicated events: records = 2 begin/end pairs + 1 counter per
    // iteration, exactly.
    EXPECT_EQ(stats.records, std::uint64_t{kThreads} * kSpans * 5);
    // Span time flows inward: outer covers inner on every thread.
    EXPECT_GE(stats.seconds_of(tel::label_name(outer)),
              stats.seconds_of(tel::label_name(inner)));
}

TEST(TelemetryStress, NestingAndCrossThreadParentage) {
    tel::set_enabled(true);
    const tel::Label outer = tel::intern("nest.outer");
    const tel::Label inner = tel::intern("nest.inner");

    tel::capture_begin();
    std::uint64_t outer_id = 0;
    {
        tel::Span span_outer(outer);
        const tel::Context ctx = tel::current_context();
        outer_id = ctx.parent;  // current open span = the outer span
        // A worker thread inherits the fan-out context: its span must
        // parent under the outer span even though it runs elsewhere.
        std::thread worker([&ctx] {
            const tel::ContextScope scope(ctx.with_item(7));
            tel::Span span_inner(tel::intern("nest.inner"));
        });
        worker.join();
    }
    const tel::Dump dump = tel::capture_end();

    ASSERT_NE(outer_id, 0U);
    bool saw_outer = false;
    bool saw_inner = false;
    for (const tel::Record& record : dump.records) {
        if (record.kind != tel::RecordKind::kSpanBegin) continue;
        if (record.label == outer) {
            saw_outer = true;
            EXPECT_EQ(record.value, outer_id);
            EXPECT_EQ(record.depth, 0);
            EXPECT_EQ(record.item, tel::kNoItem);
        } else if (record.label == inner) {
            saw_inner = true;
            EXPECT_EQ(record.parent, outer_id);  // cross-thread link
            EXPECT_EQ(record.item, 7U);
        }
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner);
}

// --- Allocation-free hot path ----------------------------------------------

TEST(TelemetryHotPath, EmitsWithoutAllocating) {
    tel::set_enabled(true);
    // Intern outside the window (interning allocates, by design) and emit
    // once so this thread's ring is adopted.
    const tel::Label label = tel::intern("hot.span");
    const tel::Label counter = tel::intern("hot.counter");
    { tel::Span warmup(label); }
    tel::counter_add(counter, 1);
    tel::flush_all();  // empty the ring: the window below cannot overflow

    // 1000 spans + 1000 counters = 3000 records < 4096 ring slots, so no
    // self-flush and -- with no session and no capture -- no consumer
    // runs.  Every event is a plain slot store: zero allocations.
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        tel::Span span(label);
        tel::counter_add(counter, static_cast<std::uint64_t>(i));
    }
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0U);
}

// --- Fixed-seed pin: live StageWall == decoded dump ------------------------

struct World {
    ml::Dataset data;
    std::unique_ptr<ml::Model> model;
    std::vector<ml::DatasetView> shards;
    ml::DatasetView test;

    // 32 clients: enough for the shard tree to keep 4 shards of >= 8
    // after the min_shard_clients clamp.
    explicit World(std::size_t clients = 32, std::uint64_t seed = 61)
        : data(ml::make_synthetic_mnist({.samples = 600,
                                         .feature_dim = 8,
                                         .num_classes = 4,
                                         .noise_sigma = 0.25,
                                         .seed = seed})) {
        model = ml::make_logistic_regression(8, 4);
        const auto split = ml::train_test_split(data, 0.2, seed);
        test = split.test;
        ml::PartitionParams params;
        params.scheme = ml::PartitionScheme::kIid;
        params.num_clients = clients;
        params.seed = seed;
        shards = ml::partition(split.train, params);
    }

    [[nodiscard]] std::vector<fl::Client> clients() const {
        return fl::make_clients(*model, shards);
    }
};

core::FairBflConfig pin_config() {
    core::FairBflConfig config;
    config.fl.client_ratio = 1.0;
    config.fl.rounds = 3;
    config.fl.sgd.learning_rate = 0.1;
    config.fl.sgd.epochs = 2;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = 42;
    config.miners = 2;
    config.incentive.sharding.shards = 4;  // exercise the shard fan-out
    return config;
}

TEST(TelemetryPin, LiveWallMatchesDecodedDumpExactly) {
    tel::set_enabled(true);
    World world;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         pin_config());
    const std::uint32_t sid = system.telemetry_session().id();

    tel::capture_begin();
    const auto history = system.run();
    const tel::Dump live = tel::capture_end();
    ASSERT_EQ(history.size(), 3U);
    ASSERT_FALSE(live.records.empty());

    // Round-trip through the binary format: the offline path is the
    // decoded file, not the in-memory capture.
    const tel::Dump dump = tel::Dump::decode(live.encode());

    for (std::size_t r = 0; r < history.size(); ++r) {
        // `auto` on purpose: naming the deprecated StageWall type would
        // warn; the pin only cares about the field values.
        const auto& live_wall = history[r].wall;
        const auto dump_wall = core::stage_wall_from(
            tel::dump_round_stats(dump, sid, static_cast<std::uint32_t>(r)));
        // Exactly equal, not approximately: the capture and the session
        // harvest route the same records in the same order, and
        // round_stats sums deterministically, so live and offline must be
        // bit-identical.
        EXPECT_EQ(live_wall.local, dump_wall.local) << "round " << r;
        EXPECT_EQ(live_wall.cluster, dump_wall.cluster) << "round " << r;
        EXPECT_EQ(live_wall.aggregate, dump_wall.aggregate) << "round " << r;
        EXPECT_EQ(live_wall.mine, dump_wall.mine) << "round " << r;
        EXPECT_EQ(live_wall.index_build, dump_wall.index_build)
            << "round " << r;
        EXPECT_EQ(live_wall.cluster_shards, dump_wall.cluster_shards)
            << "round " << r;
        EXPECT_EQ(live_wall.cluster_root, dump_wall.cluster_root)
            << "round " << r;
        EXPECT_EQ(live_wall.index_peak_bytes, dump_wall.index_peak_bytes)
            << "round " << r;
        // And the stages really ran: every watched stage is positive.
        EXPECT_GT(live_wall.local, 0.0) << "round " << r;
        EXPECT_GT(live_wall.cluster, 0.0) << "round " << r;
        EXPECT_GT(live_wall.index_build, 0.0) << "round " << r;
        EXPECT_GT(live_wall.cluster_shards, 0.0) << "round " << r;
        EXPECT_GT(live_wall.cluster_root, 0.0) << "round " << r;
        EXPECT_GT(live_wall.index_peak_bytes, 0U) << "round " << r;
    }

    // Simulated delay components ride along as counters.
    const tel::RoundStats r0 = tel::dump_round_stats(dump, sid, 0);
    EXPECT_GT(r0.sum_of("delay.local_ns"), 0U);
    EXPECT_GT(r0.sum_of("delay.bl_ns"), 0U);
    // Per-client training spans carry the client ordinal.
    EXPECT_EQ(r0.labels.at("local.client").spans, 32U);
}

// --- JSON schema pin --------------------------------------------------------

TEST(TelemetryDecode, JsonSchemaIsPinned) {
    tel::set_enabled(true);
    tel::capture_begin();
    {
        const tel::ContextScope scope(
            tel::Context{.session = 0, .round = 5});
        tel::Span span(tel::labels::round_local());
        tel::counter_max(tel::labels::index_bytes(), 4096);
    }
    const tel::Dump dump = tel::capture_end();
    const std::string json = tel::to_json(dump);

    // The export is the bench_perf_round shape: schema_version plus the
    // per-round `seconds.*` stage keys -- renaming any of these breaks
    // scripts/compare_perf.py, so the strings are pinned here.
    for (const char* needle :
         {"\"trace\": \"fairbfl_telemetry\"", "\"schema_version\": 2",
          "\"rounds\": [", "\"seconds\": {", "\"local\":", "\"cluster\":",
          "\"index_build\":", "\"shard_cluster\":", "\"root_cluster\":",
          "\"aggregate\":", "\"mine\":", "\"total\":",
          "\"index_peak_bytes\": 4096", "\"round\": 5"}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing JSON key: " << needle;
    }

    const std::string text = tel::to_text(dump);
    EXPECT_NE(text.find("round.local"), std::string::npos);
    EXPECT_NE(text.find("cluster.index_bytes"), std::string::npos);
}

// --- Dump round-trip --------------------------------------------------------

TEST(TelemetryDump, BinaryRoundTripAndFile) {
    tel::set_enabled(true);
    tel::capture_begin();
    {
        tel::Span span(tel::intern("dump.span"));
        tel::counter_add(tel::intern("dump.counter"), 99);
    }
    const tel::Dump dump = tel::capture_end();
    ASSERT_GE(dump.records.size(), 3U);

    const tel::Dump back = tel::Dump::decode(dump.encode());
    ASSERT_EQ(back.records.size(), dump.records.size());
    ASSERT_EQ(back.labels.size(), dump.labels.size());
    for (std::size_t i = 0; i < dump.records.size(); ++i) {
        EXPECT_EQ(back.records[i].time_ns, dump.records[i].time_ns);
        EXPECT_EQ(back.records[i].value, dump.records[i].value);
        EXPECT_EQ(back.records[i].label, dump.records[i].label);
        EXPECT_EQ(back.records[i].kind, dump.records[i].kind);
    }
    EXPECT_EQ(back.name_of(tel::intern("dump.span")), "dump.span");

    const std::string path = ::testing::TempDir() + "telemetry_dump.fbtl";
    ASSERT_TRUE(dump.save(path));
    const auto loaded = tel::Dump::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->records.size(), dump.records.size());
    std::remove(path.c_str());

    // Corrupt stream: load refuses instead of throwing across main.
    EXPECT_THROW((void)tel::Dump::decode({}), std::invalid_argument);
}

// --- Disabled switch --------------------------------------------------------

TEST(TelemetrySwitch, DisabledEmitsNothing) {
    tel::set_enabled(false);
    tel::Session session;
    {
        const tel::ContextScope scope(session.context(1));
        tel::Span span(tel::intern("off.span"));
        tel::counter_add(tel::intern("off.counter"), 1);
    }
    const tel::RoundStats stats = session.harvest(1);
    EXPECT_EQ(stats.records, 0U);
    tel::set_enabled(true);

    // Re-enabled: the same code path emits again.
    tel::Session session2;
    {
        const tel::ContextScope scope(session2.context(1));
        tel::Span span(tel::intern("off.span"));
    }
    EXPECT_EQ(session2.harvest(1).labels.at("off.span").spans, 1U);
}

}  // namespace
