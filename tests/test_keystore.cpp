// KeyStore: registration, per-node signing, disabled-crypto mode.

#include <gtest/gtest.h>

#include "crypto/keystore.hpp"

namespace {

using fairbfl::crypto::KeyStore;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
    return {s.begin(), s.end()};
}

TEST(KeyStore, RegisterAndSign) {
    KeyStore store(42, 384);
    store.register_node(1);
    store.register_node(2);
    EXPECT_TRUE(store.has_node(1));
    EXPECT_FALSE(store.has_node(3));
    EXPECT_EQ(store.size(), 2U);

    const auto payload = bytes_of("w_{r+1} from client 1");
    const auto sig = store.sign(1, payload);
    EXPECT_TRUE(store.verify(1, payload, sig));
    // Signature from node 1 must not verify as node 2.
    EXPECT_FALSE(store.verify(2, payload, sig));
}

TEST(KeyStore, UnknownNodeVerifyFailsSignThrows) {
    KeyStore store(42, 384);
    const auto payload = bytes_of("x");
    EXPECT_THROW((void)store.sign(9, payload), std::out_of_range);
    EXPECT_FALSE(store.verify(9, payload, {}));
}

TEST(KeyStore, ReRegisterIsIdempotent) {
    KeyStore store(42, 384);
    store.register_node(5);
    const auto payload = bytes_of("stable key");
    const auto sig = store.sign(5, payload);
    store.register_node(5);  // must not rotate the key
    EXPECT_TRUE(store.verify(5, payload, sig));
    EXPECT_EQ(store.size(), 1U);
}

TEST(KeyStore, DeterministicAcrossInstances) {
    KeyStore a(7, 384);
    KeyStore b(7, 384);
    a.register_node(3);
    b.register_node(3);
    const auto payload = bytes_of("same seed, same key");
    EXPECT_TRUE(b.verify(3, payload, a.sign(3, payload)));
}

TEST(KeyStore, DifferentSeedsDifferentKeys) {
    KeyStore a(7, 384);
    KeyStore b(8, 384);
    a.register_node(3);
    b.register_node(3);
    const auto payload = bytes_of("cross-seed");
    EXPECT_FALSE(b.verify(3, payload, a.sign(3, payload)));
}

TEST(KeyStore, DisabledCryptoShortCircuits) {
    KeyStore store(42, 0);
    EXPECT_FALSE(store.crypto_enabled());
    store.register_node(1);  // no-op
    EXPECT_EQ(store.size(), 0U);
    const auto payload = bytes_of("anything");
    EXPECT_TRUE(store.sign(1, payload).empty());
    EXPECT_TRUE(store.verify(1, payload, {}));
    EXPECT_TRUE(store.verify(999, payload, bytes_of("junk")));
}

}  // namespace
