// FAIR-BFL integration: Algorithm 1 end-to-end -- learning progress, chain
// growth, block data scope, rewards, discard strategy, attack defense,
// flexibility toggles, and the RSA path.

#include <gtest/gtest.h>

#include "core/fairbfl.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace core = fairbfl::core;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;
namespace inc = fairbfl::incentive;
namespace ch = fairbfl::chain;

struct World {
    ml::Dataset data;
    std::unique_ptr<ml::Model> model;
    std::vector<ml::DatasetView> shards;
    ml::DatasetView test;

    explicit World(std::size_t clients = 10, std::uint64_t seed = 61)
        : data(ml::make_synthetic_mnist({.samples = 600,
                                         .feature_dim = 8,
                                         .num_classes = 4,
                                         .noise_sigma = 0.25,
                                         .seed = seed})) {
        model = ml::make_logistic_regression(8, 4);
        const auto split = ml::train_test_split(data, 0.2, seed);
        test = split.test;
        ml::PartitionParams params;
        params.scheme = ml::PartitionScheme::kIid;
        params.num_clients = clients;
        params.seed = seed;
        shards = ml::partition(split.train, params);
    }

    [[nodiscard]] std::vector<fl::Client> clients() const {
        return fl::make_clients(*model, shards);
    }
};

core::FairBflConfig fast_config() {
    core::FairBflConfig config;
    config.fl.client_ratio = 0.5;
    config.fl.rounds = 12;
    config.fl.sgd.learning_rate = 0.1;
    config.fl.sgd.epochs = 3;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = 42;
    config.miners = 2;
    return config;
}

/// Variant that learns slowly enough to observe progress across rounds.
core::FairBflConfig slow_config() {
    auto config = fast_config();
    config.fl.sgd.learning_rate = 0.01;
    config.fl.sgd.epochs = 1;
    return config;
}

TEST(FairBfl, LearnsAndGrowsChainTogether) {
    World world;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         slow_config());
    const auto history = system.run();
    ASSERT_EQ(history.size(), 12U);
    EXPECT_GT(history.back().fl.test_accuracy,
              history.front().fl.test_accuracy + 0.1);
    // One block per round (Assumptions 1+2): genesis + 12.
    EXPECT_EQ(system.blockchain().height(), 13U);
    EXPECT_EQ(system.blockchain().reorg_count(), 0U);
    EXPECT_TRUE(system.blockchain().validate_full_chain());
}

TEST(FairBfl, BlocksContainOnlyGlobalAndRewards) {
    // Assumption 2: no kLocalGradient transaction ever reaches a block.
    World world;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         fast_config());
    (void)system.run(4);
    const auto& chain = system.blockchain();
    for (std::size_t h = 1; h < chain.height(); ++h) {
        std::size_t globals = 0;
        for (const auto& tx : chain.at(h).transactions) {
            EXPECT_NE(tx.kind, ch::TxKind::kLocalGradient);
            if (tx.kind == ch::TxKind::kGlobalUpdate) ++globals;
        }
        EXPECT_EQ(globals, 1U) << "block " << h;
    }
}

TEST(FairBfl, ChainGlobalGradientMatchesWeights) {
    World world;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         fast_config());
    (void)system.run(3);
    const auto on_chain = system.blockchain().latest_global_gradient();
    ASSERT_TRUE(on_chain.has_value());
    ASSERT_EQ(on_chain->size(), system.weights().size());
    for (std::size_t i = 0; i < on_chain->size(); ++i)
        EXPECT_FLOAT_EQ((*on_chain)[i], system.weights()[i]);
}

TEST(FairBfl, RewardsRecordedOnChainAndLedgerAgree) {
    World world;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         fast_config());
    const auto history = system.run(5);

    double on_chain_total = 0.0;
    const auto& chain = system.blockchain();
    for (std::size_t h = 1; h < chain.height(); ++h) {
        for (const auto& tx : chain.at(h).transactions) {
            if (tx.kind == ch::TxKind::kReward)
                on_chain_total += ch::parse_reward_tx(tx).amount;
        }
    }
    // Ledger totals match the chain's reward transactions (both quantized
    // to milli-units on-chain; allow that rounding).
    EXPECT_NEAR(on_chain_total, system.ledger().grand_total(), 0.01);
    // Every round with high contributors paid out ~base (1.0).
    for (const auto& record : history)
        EXPECT_NEAR(record.round_reward_total, 1.0, 1e-6);
}

TEST(FairBfl, DeterministicAcrossRuns) {
    World a;
    World b;
    core::FairBfl sa(*a.model, a.clients(), a.test, fast_config());
    core::FairBfl sb(*b.model, b.clients(), b.test, fast_config());
    const auto ha = sa.run(5);
    const auto hb = sb.run(5);
    for (std::size_t r = 0; r < 5; ++r) {
        EXPECT_DOUBLE_EQ(ha[r].fl.test_accuracy, hb[r].fl.test_accuracy);
        EXPECT_DOUBLE_EQ(ha[r].delay.total(), hb[r].delay.total());
    }
}

TEST(FairBfl, DelayComponentsAllPresent) {
    World world;
    core::FairBfl system(*world.model, world.clients(), world.test,
                         fast_config());
    const auto record = system.run_round();
    EXPECT_GT(record.delay.t_local, 0.0);
    EXPECT_GT(record.delay.t_up, 0.0);
    EXPECT_GT(record.delay.t_ex, 0.0);   // 2 miners exchange
    EXPECT_GT(record.delay.t_gl, 0.0);
    EXPECT_GT(record.delay.t_bl, 0.0);
    EXPECT_DOUBLE_EQ(record.delay.total(),
                     record.delay.t_local + record.delay.t_up +
                         record.delay.t_ex + record.delay.t_gl +
                         record.delay.t_bl);
}

TEST(FairBfl, PureFlModeSkipsChainAndExchange) {
    World world;
    auto config = slow_config();
    config.stage_exchange = false;
    config.stage_mining = false;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto history = system.run(6);
    EXPECT_EQ(system.blockchain().height(), 1U);  // genesis only
    for (const auto& record : history) {
        EXPECT_DOUBLE_EQ(record.delay.t_bl, 0.0);
        EXPECT_DOUBLE_EQ(record.delay.t_ex, 0.0);
        EXPECT_EQ(record.blocks_this_round, 0U);
    }
    // Still learns.
    EXPECT_GT(history.back().fl.test_accuracy,
              history.front().fl.test_accuracy);
}

TEST(FairBfl, SingleMinerHasNoExchangeDelay) {
    World world;
    auto config = fast_config();
    config.miners = 1;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto record = system.run_round();
    EXPECT_DOUBLE_EQ(record.delay.t_ex, 0.0);
    EXPECT_GT(record.delay.t_bl, 0.0);
}

TEST(FairBfl, DiscardDefendsAgainstPoisoning) {
    // With sign-flip attackers, discard keeps accuracy close to the clean
    // run while keep-all should suffer.
    World clean_world(10, 62);
    World attacked_keep(10, 62);
    World attacked_discard(10, 62);

    auto base = fast_config();
    base.fl.rounds = 10;
    base.fl.client_ratio = 1.0;  // all 10 clients each round

    core::FairBfl clean(*clean_world.model, clean_world.clients(),
                        clean_world.test, base);

    auto attack_cfg = base;
    attack_cfg.attack.kind = core::AttackKind::kSignFlip;
    attack_cfg.attack.magnitude = 3.0;
    attack_cfg.attack.min_attackers = 2;
    attack_cfg.attack.max_attackers = 3;
    core::FairBfl keep(*attacked_keep.model, attacked_keep.clients(),
                       attacked_keep.test, attack_cfg);

    auto discard_cfg = attack_cfg;
    discard_cfg.incentive.strategy =
        inc::LowContributionStrategy::kDiscard;
    core::FairBfl discard(*attacked_discard.model, attacked_discard.clients(),
                          attacked_discard.test, discard_cfg);

    const double acc_clean = clean.run().back().fl.test_accuracy;
    const double acc_keep = keep.run().back().fl.test_accuracy;
    const double acc_discard = discard.run().back().fl.test_accuracy;

    EXPECT_GT(acc_discard, acc_keep);
    EXPECT_GT(acc_discard, acc_clean - 0.15);
}

TEST(FairBfl, DetectionRateReportedUnderAttack) {
    World world;
    auto config = fast_config();
    config.fl.client_ratio = 1.0;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.min_attackers = 1;
    config.attack.max_attackers = 3;
    config.incentive.strategy = inc::LowContributionStrategy::kDiscard;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto history = system.run(10);
    double mean_detection = 0.0;
    for (const auto& record : history) {
        EXPECT_FALSE(record.attacker_clients.empty());
        mean_detection += record.detection_rate;
    }
    mean_detection /= static_cast<double>(history.size());
    EXPECT_GT(mean_detection, 0.5);  // Table 2 territory
}

TEST(FairBfl, DiscardBenchesClientsForNextRound) {
    World world;
    auto config = fast_config();
    config.fl.client_ratio = 1.0;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.min_attackers = 2;
    config.attack.max_attackers = 2;
    config.incentive.strategy = inc::LowContributionStrategy::kDiscard;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto first = system.run_round();
    const auto second = system.run_round();
    if (!first.low_contribution_clients.empty()) {
        // Benched clients cannot appear among the next round's participants.
        for (const auto benched : first.low_contribution_clients) {
            for (const auto id : second.fl.participant_ids)
                EXPECT_NE(id, benched);
        }
        EXPECT_LT(second.fl.selected, 10U);
    }
}

TEST(FairBfl, RsaPathSignsEveryBlockTransaction) {
    World world;
    auto config = fast_config();
    config.key_bits = 384;  // small keys keep the test quick
    config.fl.rounds = 2;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    (void)system.run(2);
    const auto& chain = system.blockchain();
    EXPECT_EQ(chain.height(), 3U);
    for (std::size_t h = 1; h < chain.height(); ++h) {
        for (const auto& tx : chain.at(h).transactions)
            EXPECT_FALSE(tx.signature.empty());
    }
    EXPECT_TRUE(chain.validate_full_chain());
}

TEST(FairBfl, ZeroMinersStillSignsWinnerBlock) {
    // Regression: with config.miners == 0 and mining on, the winner's
    // block is signed by proxy id clients_.size(), which used to be
    // registered only for k < miners -- KeyStore::sign then threw
    // std::out_of_range as soon as crypto was enabled.
    World world;
    auto config = fast_config();
    config.miners = 0;
    config.key_bits = 384;
    config.fl.rounds = 2;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    std::vector<core::BflRoundRecord> records;
    ASSERT_NO_THROW(records = system.run(2));
    EXPECT_EQ(system.blockchain().height(), 3U);  // genesis + 2 rounds
    EXPECT_TRUE(system.blockchain().validate_full_chain());
    for (const auto& record : records)
        EXPECT_EQ(record.chain_height, record.fl.round + 2);
}

TEST(FairBfl, ZeroMinersEncryptedUploadStillDelivers) {
    // The upload stage addresses a proxy miner even when miners == 0; the
    // encrypted path must find that proxy's key pair registered.
    World world(6);
    auto config = fast_config();
    config.miners = 0;
    config.key_bits = 384;
    config.encrypt_gradients = true;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    core::BflRoundRecord record;
    ASSERT_NO_THROW(record = system.run_round());
    EXPECT_GT(record.fl.participants, 0U);  // nothing dropped undecryptable
}

TEST(FairBfl, EncryptedGradientPathLearnsIdentically) {
    // Hybrid encryption is pure transport: the decrypted gradients must
    // produce the same model as the plaintext path, while the wire payload
    // (and hence T_up) grows by the key-wrap + tag overhead.
    World plain_world(6, 63);
    World enc_world(6, 63);
    auto config = fast_config();
    config.fl.rounds = 2;
    config.key_bits = 384;
    core::FairBfl plain(*plain_world.model, plain_world.clients(),
                        plain_world.test, config);
    config.encrypt_gradients = true;
    core::FairBfl encrypted(*enc_world.model, enc_world.clients(),
                            enc_world.test, config);
    const auto rec_plain = plain.run_round();
    const auto rec_enc = encrypted.run_round();
    EXPECT_EQ(rec_plain.fl.test_accuracy, rec_enc.fl.test_accuracy);
    EXPECT_TRUE(std::equal(plain.weights().begin(), plain.weights().end(),
                           encrypted.weights().begin()));
    EXPECT_GT(rec_enc.delay.t_up, rec_plain.delay.t_up);  // bigger payload
}

TEST(FairBfl, IncentiveDisabledStillAggregates) {
    World world;
    auto config = fast_config();
    config.enable_incentive = false;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto history = system.run(6);
    EXPECT_GT(history.back().fl.test_accuracy,
              history.front().fl.test_accuracy);
    EXPECT_DOUBLE_EQ(system.ledger().grand_total(), 0.0);
    for (const auto& record : history)
        EXPECT_TRUE(record.low_contribution_clients.empty());
}

TEST(FairBfl, Assumption2AblationPutsGradientsOnChain) {
    World world;
    auto config = fast_config();
    config.record_local_gradients = true;
    // Small blocks force multi-block rounds (queuing).
    config.delay.max_block_bytes = 600;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    const auto record = system.run_round();
    EXPECT_GT(record.blocks_this_round, 1U);
    bool found_local = false;
    const auto& tip = system.blockchain().tip();
    for (const auto& tx : tip.transactions)
        if (tx.kind == ch::TxKind::kLocalGradient) found_local = true;
    EXPECT_TRUE(found_local);
}

TEST(FairBfl, Assumption1AblationCanFork) {
    World world;
    auto config = fast_config();
    config.async_mining = true;
    config.miners = 10;
    // Slow links widen the fork window.
    config.delay.network.miner_bandwidth_Bps = 1e5;
    config.delay.max_block_bytes = 1'000'000;
    config.record_local_gradients = true;
    config.delay.difficulty = 2'000'000;
    core::FairBfl system(*world.model, world.clients(), world.test, config);
    std::size_t forks = 0;
    for (int r = 0; r < 8; ++r) forks += system.run_round().forks_this_round;
    EXPECT_GT(forks, 0U);
}

}  // namespace
