// FL primitives: gradient sets (Procedure III semantics), client sampling,
// aggregation rules.

#include <gtest/gtest.h>

#include "fl/aggregation.hpp"
#include "fl/client.hpp"
#include "fl/gradient.hpp"
#include "fl/sampling.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;

fl::GradientUpdate update_of(fl::NodeId client, std::vector<float> w,
                             std::size_t samples = 10) {
    fl::GradientUpdate u;
    u.client = client;
    u.weights = std::move(w);
    u.num_samples = samples;
    return u;
}

TEST(GradientSet, DeduplicatesByClient) {
    fl::GradientSet set;
    EXPECT_TRUE(set.add(update_of(1, {1.0F})));
    EXPECT_TRUE(set.add(update_of(2, {2.0F})));
    EXPECT_FALSE(set.add(update_of(1, {9.0F})));  // duplicate client
    EXPECT_EQ(set.size(), 2U);
    EXPECT_TRUE(set.contains(1));
    EXPECT_FALSE(set.contains(3));
}

TEST(GradientSet, MergeMirrorsExchangeProcedure) {
    // Two miners with overlapping client sets end up identical after a
    // bidirectional merge (Algorithm 1 lines 16-22).
    fl::GradientSet a;
    a.add(update_of(1, {1.0F}));
    a.add(update_of(2, {2.0F}));
    fl::GradientSet b;
    b.add(update_of(2, {2.0F}));
    b.add(update_of(3, {3.0F}));

    EXPECT_EQ(a.merge(b), 1U);  // only client 3 is new
    EXPECT_EQ(b.merge(a), 1U);  // only client 1 is new
    a.canonicalize();
    b.canonicalize();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.updates()[i].client, b.updates()[i].client);
}

TEST(GradientSet, CanonicalizeSortsById) {
    fl::GradientSet set;
    set.add(update_of(5, {1.0F}));
    set.add(update_of(1, {1.0F}));
    set.add(update_of(3, {1.0F}));
    set.canonicalize();
    EXPECT_EQ(set.updates()[0].client, 1U);
    EXPECT_EQ(set.updates()[1].client, 3U);
    EXPECT_EQ(set.updates()[2].client, 5U);
}

TEST(Sampling, RatioControlsCount) {
    EXPECT_EQ(fl::sample_clients(100, 0.1, 0, 42).size(), 10U);
    EXPECT_EQ(fl::sample_clients(100, 1.0, 0, 42).size(), 100U);
    EXPECT_EQ(fl::sample_clients(100, 0.005, 0, 42).size(), 1U);  // ceil
    EXPECT_EQ(fl::sample_clients(100, 0.0, 0, 42).size(), 1U);    // min 1
}

TEST(Sampling, DistinctSortedInRange) {
    const auto sample = fl::sample_clients(50, 0.3, 7, 42);
    EXPECT_EQ(sample.size(), 15U);
    for (std::size_t i = 1; i < sample.size(); ++i) {
        EXPECT_LT(sample[i - 1], sample[i]);  // sorted and distinct
        EXPECT_LT(sample[i], 50U);
    }
}

TEST(Sampling, DeterministicPerRoundSeedPair) {
    EXPECT_EQ(fl::sample_clients(100, 0.1, 3, 42),
              fl::sample_clients(100, 0.1, 3, 42));
    EXPECT_NE(fl::sample_clients(100, 0.1, 3, 42),
              fl::sample_clients(100, 0.1, 4, 42));
    EXPECT_NE(fl::sample_clients(100, 0.1, 3, 42),
              fl::sample_clients(100, 0.1, 3, 43));
}

TEST(Sampling, ExcludeClientsRemovesBenched) {
    const std::vector<std::size_t> selected{1, 2, 3, 4, 5};
    const auto survivors = fl::exclude_clients(selected, {2, 4, 9});
    EXPECT_EQ(survivors, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(Aggregation, SimpleAverage) {
    std::vector<fl::GradientUpdate> updates{update_of(0, {1.0F, 3.0F}),
                                            update_of(1, {3.0F, 5.0F})};
    const auto avg = fl::simple_average(updates);
    EXPECT_FLOAT_EQ(avg[0], 2.0F);
    EXPECT_FLOAT_EQ(avg[1], 4.0F);
}

TEST(Aggregation, WeightedNormalizesWeights) {
    std::vector<fl::GradientUpdate> updates{update_of(0, {0.0F}),
                                            update_of(1, {10.0F})};
    const auto out = fl::weighted_aggregate(updates, std::vector<double>{1.0, 3.0});
    EXPECT_NEAR(out[0], 7.5F, 1e-5);
}

TEST(Aggregation, SampleWeightedUsesReportedCounts) {
    std::vector<fl::GradientUpdate> updates{update_of(0, {0.0F}, 10),
                                            update_of(1, {10.0F}, 30)};
    const auto out = fl::sample_weighted_average(updates);
    EXPECT_NEAR(out[0], 7.5F, 1e-5);
}

TEST(Aggregation, FairMatchesEquationOne) {
    // p_i = theta_i / sum theta.
    std::vector<fl::GradientUpdate> updates{update_of(0, {1.0F}),
                                            update_of(1, {2.0F}),
                                            update_of(2, {3.0F})};
    const std::vector<double> theta{0.1, 0.2, 0.7};
    const auto out = fl::fair_aggregate(updates, theta);
    EXPECT_NEAR(out[0], 0.1F * 1.0F + 0.2F * 2.0F + 0.7F * 3.0F, 1e-5);
}

TEST(Aggregation, ErrorsOnBadInput) {
    EXPECT_THROW((void)fl::simple_average({}), std::invalid_argument);
    std::vector<fl::GradientUpdate> ragged{update_of(0, {1.0F}),
                                           update_of(1, {1.0F, 2.0F})};
    EXPECT_THROW((void)fl::simple_average(ragged), std::invalid_argument);
    std::vector<fl::GradientUpdate> ok{update_of(0, {1.0F})};
    EXPECT_THROW((void)fl::weighted_aggregate(ok, std::vector<double>{1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)fl::weighted_aggregate(ok, std::vector<double>{0.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)fl::weighted_aggregate(ok, std::vector<double>{-1.0}),
                 std::invalid_argument);
}

TEST(Client, LocalUpdateImprovesLocalFit) {
    const auto data = ml::make_synthetic_mnist({.samples = 120,
                                                .feature_dim = 6,
                                                .num_classes = 3,
                                                .noise_sigma = 0.2,
                                                .seed = 41});
    auto model = ml::make_logistic_regression(6, 3);
    const fl::Client client(0, *model, ml::DatasetView::all(data));

    std::vector<float> global(model->param_count());
    fairbfl::support::Rng rng(1);
    model->init_params(global, rng);
    const double before = client.local_accuracy(global);

    ml::SgdParams sgd;
    sgd.learning_rate = 0.1;
    sgd.epochs = 10;
    const auto update = client.local_update(global, sgd, /*round=*/0,
                                            /*root_seed=*/42);
    EXPECT_EQ(update.client, 0U);
    EXPECT_EQ(update.num_samples, 120U);
    EXPECT_GT(client.local_accuracy(update.weights), before);
}

TEST(Client, LocalUpdateDeterministicPerRound) {
    const auto data = ml::make_synthetic_mnist({.samples = 60,
                                                .feature_dim = 6,
                                                .num_classes = 3,
                                                .seed = 43});
    auto model = ml::make_logistic_regression(6, 3);
    const fl::Client client(4, *model, ml::DatasetView::all(data));
    std::vector<float> global(model->param_count(), 0.01F);
    ml::SgdParams sgd;
    const auto a = client.local_update(global, sgd, 5, 42);
    const auto b = client.local_update(global, sgd, 5, 42);
    EXPECT_EQ(a.weights, b.weights);
    const auto c = client.local_update(global, sgd, 6, 42);
    EXPECT_NE(a.weights, c.weights);  // new round, new shuffle stream
}

TEST(MakeClients, AssignsSequentialIds) {
    const auto data = ml::make_synthetic_mnist({.samples = 50, .seed = 44});
    auto model = ml::make_logistic_regression(data.feature_dim(), 10);
    const auto view = ml::DatasetView::all(data);
    ml::PartitionParams params;
    params.num_clients = 5;
    params.scheme = ml::PartitionScheme::kIid;
    const auto shards = ml::partition(view, params);
    const auto clients = fl::make_clients(*model, shards);
    ASSERT_EQ(clients.size(), 5U);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(clients[i].id(), i);
        EXPECT_EQ(clients[i].num_samples(), shards[i].size());
    }
}

}  // namespace
