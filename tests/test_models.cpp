// Models: gradient correctness (finite differences), loss behaviour,
// trainability on separable data, for both logistic regression and MLP.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/model.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/vecmath.hpp"

namespace {

namespace ml = fairbfl::ml;
using fairbfl::support::Rng;

struct ModelFactory {
    const char* label;
    std::unique_ptr<ml::Model> (*make)(std::size_t dim, std::size_t classes);
};

std::unique_ptr<ml::Model> make_lr(std::size_t dim, std::size_t classes) {
    return ml::make_logistic_regression(dim, classes, 1e-3);
}
std::unique_ptr<ml::Model> make_mlp_small(std::size_t dim,
                                          std::size_t classes) {
    return ml::make_mlp(dim, 8, classes, 1e-3);
}

class ModelTest : public ::testing::TestWithParam<ModelFactory> {
protected:
    static ml::Dataset make_data() {
        return ml::make_synthetic_mnist({.samples = 300,
                                         .feature_dim = 6,
                                         .num_classes = 3,
                                         .noise_sigma = 0.2,
                                         .seed = 21});
    }
};

TEST_P(ModelTest, GradientMatchesFiniteDifferences) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto batch = ml::DatasetView::all(data).take(16);

    std::vector<float> params(model->param_count());
    Rng rng(3);
    model->init_params(params, rng);
    // Nudge params off zero-bias so all gradient paths are active.
    for (auto& p : params) p += 0.05F;

    std::vector<float> grad(params.size(), 0.0F);
    (void)model->loss_and_gradient(params, batch, grad);

    // Spot-check a spread of coordinates.
    const double eps = 1e-3;
    for (std::size_t i = 0; i < params.size();
         i += std::max<std::size_t>(1, params.size() / 17)) {
        std::vector<float> plus(params);
        std::vector<float> minus(params);
        plus[i] += static_cast<float>(eps);
        minus[i] -= static_cast<float>(eps);
        const double numeric =
            (model->loss(plus, batch) - model->loss(minus, batch)) /
            (2.0 * eps);
        EXPECT_NEAR(grad[i], numeric, 5e-3)
            << GetParam().label << " coordinate " << i;
    }
}

TEST_P(ModelTest, LossAndGradientAgreeOnLossValue) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto batch = ml::DatasetView::all(data).take(32);
    std::vector<float> params(model->param_count());
    Rng rng(4);
    model->init_params(params, rng);
    std::vector<float> grad(params.size(), 0.0F);
    const double from_grad_call = model->loss_and_gradient(params, batch, grad);
    EXPECT_NEAR(from_grad_call, model->loss(params, batch), 1e-9);
}

TEST_P(ModelTest, InitialLossNearLogC) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    std::vector<float> params(model->param_count());
    Rng rng(5);
    model->init_params(params, rng);
    const double loss = model->loss(params, ml::DatasetView::all(data));
    EXPECT_NEAR(loss, std::log(3.0), 0.25);  // near-uniform predictions
}

TEST_P(ModelTest, GradientDescentReducesLossAndFits) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    const auto view = ml::DatasetView::all(data);
    std::vector<float> params(model->param_count());
    Rng rng(6);
    model->init_params(params, rng);

    const double initial_loss = model->loss(params, view);
    std::vector<float> grad(params.size());
    for (int step = 0; step < 150; ++step) {
        fairbfl::support::fill(grad, 0.0F);
        (void)model->loss_and_gradient(params, view, grad);
        fairbfl::support::axpy(-0.5F, grad, params);
    }
    EXPECT_LT(model->loss(params, view), initial_loss * 0.5);
    EXPECT_GT(model->accuracy(params, view), 0.85) << GetParam().label;
}

TEST_P(ModelTest, PredictIsArgmaxConsistentWithAccuracy) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    std::vector<float> params(model->param_count());
    Rng rng(7);
    model->init_params(params, rng);
    const auto view = ml::DatasetView::all(data).take(50);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
        const auto pred = model->predict(params, view.features_of(i));
        ASSERT_GE(pred, 0);
        ASSERT_LT(pred, 3);
        if (pred == view.label_of(i)) ++correct;
    }
    EXPECT_DOUBLE_EQ(model->accuracy(params, view),
                     static_cast<double>(correct) / 50.0);
}

TEST_P(ModelTest, EmptyBatchContributesNothing) {
    const auto data = make_data();
    auto model = GetParam().make(data.feature_dim(), data.num_classes());
    std::vector<float> params(model->param_count(), 0.1F);
    const ml::DatasetView empty(data, {});
    std::vector<float> grad(params.size(), 0.0F);
    EXPECT_DOUBLE_EQ(model->loss_and_gradient(params, empty, grad), 0.0);
    for (const float g : grad) EXPECT_FLOAT_EQ(g, 0.0F);
    EXPECT_DOUBLE_EQ(model->accuracy(params, empty), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Models, ModelTest,
    ::testing::Values(ModelFactory{"logistic", &make_lr},
                      ModelFactory{"mlp", &make_mlp_small}),
    [](const auto& param_info) { return param_info.param.label; });

TEST(ModelShapes, ParamCounts) {
    EXPECT_EQ(ml::make_logistic_regression(64, 10)->param_count(),
              64U * 10U + 10U);
    EXPECT_EQ(ml::make_mlp(64, 32, 10)->param_count(),
              32U * 64U + 32U + 10U * 32U + 10U);
}

TEST(ModelShapes, InitIsDeterministic) {
    auto model = ml::make_logistic_regression(8, 3);
    std::vector<float> a(model->param_count());
    std::vector<float> b(model->param_count());
    Rng ra(9);
    Rng rb(9);
    model->init_params(a, ra);
    model->init_params(b, rb);
    EXPECT_EQ(a, b);
}

}  // namespace
