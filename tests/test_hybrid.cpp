// Hybrid encryption: round-trips, tamper rejection, wrong-key rejection,
// and gradient-sized payloads.

#include <gtest/gtest.h>

#include "crypto/hybrid.hpp"

namespace {

namespace cr = fairbfl::crypto;
using fairbfl::support::Rng;

struct HybridFixture : ::testing::Test {
    Rng keygen_rng{1};
    cr::RsaKeyPair keys = cr::generate_keypair(512, keygen_rng);
    Rng msg_rng{2};
};

TEST_F(HybridFixture, RoundTripShortMessage) {
    const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
    const auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    EXPECT_EQ(cr::hybrid_decrypt(keys.priv, ct), msg);
}

TEST_F(HybridFixture, RoundTripGradientSizedMessage) {
    // A 650-float gradient: far beyond raw RSA capacity.
    std::vector<std::uint8_t> msg(650 * 4);
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 31);
    const auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    EXPECT_EQ(ct.body.size(), msg.size());
    EXPECT_EQ(cr::hybrid_decrypt(keys.priv, ct), msg);
}

TEST_F(HybridFixture, EmptyMessage) {
    const std::vector<std::uint8_t> msg;
    const auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    EXPECT_TRUE(cr::hybrid_decrypt(keys.priv, ct).empty());
}

TEST_F(HybridFixture, CiphertextHidesPlaintext) {
    const std::vector<std::uint8_t> msg(256, 0x00);  // all zeros
    const auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    // The body must not be all zeros (keystream applied).
    std::size_t zeros = 0;
    for (const auto b : ct.body)
        if (b == 0) ++zeros;
    EXPECT_LT(zeros, 32U);  // ~1/256 of 256 bytes expected
}

TEST_F(HybridFixture, FreshKeyPerMessage) {
    const std::vector<std::uint8_t> msg{9, 9, 9};
    const auto ct1 = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    const auto ct2 = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    EXPECT_NE(ct1.wrapped_key, ct2.wrapped_key);
    EXPECT_NE(ct1.body, ct2.body);  // different keystream
}

TEST_F(HybridFixture, TamperedBodyRejected) {
    const std::vector<std::uint8_t> msg{1, 2, 3, 4};
    auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    ct.body[0] ^= 0x80;
    EXPECT_THROW((void)cr::hybrid_decrypt(keys.priv, ct),
                 std::runtime_error);
}

TEST_F(HybridFixture, TamperedTagRejected) {
    const std::vector<std::uint8_t> msg{1, 2, 3, 4};
    auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    ct.tag[5] ^= 0x01;
    EXPECT_THROW((void)cr::hybrid_decrypt(keys.priv, ct),
                 std::runtime_error);
}

TEST_F(HybridFixture, WrongPrivateKeyRejected) {
    const std::vector<std::uint8_t> msg{1, 2, 3, 4};
    const auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    Rng other_rng(3);
    const auto other = cr::generate_keypair(512, other_rng);
    EXPECT_THROW((void)cr::hybrid_decrypt(other.priv, ct),
                 std::runtime_error);
}

TEST_F(HybridFixture, TotalBytesAccounting) {
    const std::vector<std::uint8_t> msg(100, 7);
    const auto ct = cr::hybrid_encrypt(keys.pub, msg, msg_rng);
    EXPECT_EQ(ct.total_bytes(),
              ct.wrapped_key.size() + ct.body.size() + ct.tag.size());
}

}  // namespace
