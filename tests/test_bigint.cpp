// BigUint arithmetic: identities, division invariants, modexp, primality.

#include <gtest/gtest.h>

#include "crypto/bigint.hpp"

namespace {

using fairbfl::crypto::BigUint;
using fairbfl::support::Rng;

TEST(BigUint, ZeroAndSmallValues) {
    BigUint zero;
    EXPECT_TRUE(zero.is_zero());
    EXPECT_EQ(zero.bit_length(), 0U);
    EXPECT_EQ(zero.to_hex(), "0");
    BigUint one(1);
    EXPECT_FALSE(one.is_zero());
    EXPECT_TRUE(one.is_odd());
    EXPECT_EQ(one.bit_length(), 1U);
}

TEST(BigUint, HexRoundTrip) {
    const std::string hex = "deadbeefcafebabe0123456789abcdef";
    EXPECT_EQ(BigUint::from_hex(hex).to_hex(), hex);
    EXPECT_EQ(BigUint::from_hex("0").to_hex(), "0");
    EXPECT_EQ(BigUint::from_hex("00000ff").to_hex(), "ff");
}

TEST(BigUint, FromHexRejectsGarbage) {
    EXPECT_THROW((void)BigUint::from_hex("xyz"), std::invalid_argument);
}

TEST(BigUint, BytesRoundTrip) {
    const std::vector<std::uint8_t> bytes{0x00, 0x01, 0xFF, 0x80, 0x7F};
    const BigUint v = BigUint::from_bytes_be(bytes);
    EXPECT_EQ(v.to_bytes_be(5), bytes);
    // Narrower width that still fits (leading 0x00 dropped).
    EXPECT_EQ(v.to_bytes_be(4),
              (std::vector<std::uint8_t>{0x01, 0xFF, 0x80, 0x7F}));
    EXPECT_THROW((void)v.to_bytes_be(3), std::length_error);
}

TEST(BigUint, ComparisonOrdering) {
    EXPECT_LT(BigUint(5), BigUint(7));
    EXPECT_GT(BigUint::from_hex("100000000"), BigUint(0xFFFFFFFFULL));
    EXPECT_EQ(BigUint(42), BigUint(42));
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
    const BigUint a(0xFFFFFFFFULL);
    const BigUint sum = a + BigUint(1);
    EXPECT_EQ(sum.to_hex(), "100000000");
    EXPECT_EQ((sum + sum).to_hex(), "200000000");
}

TEST(BigUint, SubtractionBorrows) {
    const BigUint a = BigUint::from_hex("100000000");
    EXPECT_EQ((a - BigUint(1)).to_hex(), "ffffffff");
    EXPECT_EQ((a - a).to_hex(), "0");
}

TEST(BigUint, MultiplicationKnownProduct) {
    const BigUint a = BigUint::from_hex("ffffffffffffffff");
    const BigUint b = BigUint::from_hex("ffffffffffffffff");
    EXPECT_EQ((a * b).to_hex(), "fffffffffffffffe0000000000000001");
    EXPECT_TRUE((a * BigUint{}).is_zero());
}

TEST(BigUint, ShiftsAreInverse) {
    const BigUint v = BigUint::from_hex("123456789abcdef");
    for (const std::size_t s : {1UL, 31UL, 32UL, 33UL, 100UL}) {
        EXPECT_EQ(((v << s) >> s), v) << "shift " << s;
    }
    EXPECT_TRUE((v >> 100).is_zero());
}

TEST(BigUint, DivModInvariant) {
    // a == q * b + r with r < b, across sizes.
    Rng rng(77);
    for (int i = 0; i < 50; ++i) {
        const BigUint a = BigUint::random_bits(200, rng);
        const BigUint b = BigUint::random_bits(
            static_cast<std::size_t>(rng.uniform_int(8, 150)), rng);
        const auto [q, r] = a.divmod(b);
        EXPECT_LT(r, b);
        EXPECT_EQ(q * b + r, a);
    }
}

TEST(BigUint, DivisionByZeroThrows) {
    EXPECT_THROW((void)BigUint(1).divmod(BigUint{}), std::domain_error);
}

TEST(BigUint, SingleLimbDivisionFastPath) {
    const BigUint a = BigUint::from_hex("123456789abcdef0123456789");
    const auto [q, r] = a.divmod(BigUint(1000));
    EXPECT_EQ(q * BigUint(1000) + r, a);
    EXPECT_LT(r, BigUint(1000));
}

TEST(BigUint, ModPowSmallKnown) {
    // 4^13 mod 497 = 445 (classic example).
    EXPECT_EQ(BigUint::mod_pow(BigUint(4), BigUint(13), BigUint(497)),
              BigUint(445));
    // Fermat: a^(p-1) = 1 mod p.
    EXPECT_EQ(BigUint::mod_pow(BigUint(7), BigUint(1008), BigUint(1009)),
              BigUint(1));
}

TEST(BigUint, ModPowEvenModulusFallback) {
    // 3^5 mod 16 = 243 mod 16 = 3 (non-Montgomery path).
    EXPECT_EQ(BigUint::mod_pow(BigUint(3), BigUint(5), BigUint(16)),
              BigUint(3));
}

TEST(BigUint, ModPowMatchesNaiveOnRandomInputs) {
    Rng rng(88);
    for (int i = 0; i < 20; ++i) {
        const auto base = static_cast<std::uint64_t>(rng.uniform_int(2, 1000));
        const auto exp = static_cast<std::uint64_t>(rng.uniform_int(0, 20));
        const auto mod =
            static_cast<std::uint64_t>(rng.uniform_int(3, 100000)) | 1ULL;
        std::uint64_t naive = 1 % mod;
        for (std::uint64_t e = 0; e < exp; ++e) naive = naive * base % mod;
        EXPECT_EQ(
            BigUint::mod_pow(BigUint(base), BigUint(exp), BigUint(mod)),
            BigUint(naive))
            << base << "^" << exp << " mod " << mod;
    }
}

TEST(BigUint, Gcd) {
    EXPECT_EQ(BigUint::gcd(BigUint(48), BigUint(36)), BigUint(12));
    EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(5)), BigUint(1));
    EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(9)), BigUint(9));
}

TEST(BigUint, ModInverse) {
    // 3 * 4 = 12 = 1 mod 11.
    const auto inv = BigUint::mod_inverse(BigUint(3), BigUint(11));
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(*inv, BigUint(4));
    // Not coprime -> nullopt.
    EXPECT_FALSE(BigUint::mod_inverse(BigUint(6), BigUint(9)).has_value());
}

TEST(BigUint, ModInverseRandomRoundTrip) {
    Rng rng(99);
    const BigUint m = BigUint::from_hex("fffffffb");  // prime
    for (int i = 0; i < 30; ++i) {
        const BigUint a =
            BigUint(static_cast<std::uint64_t>(rng.uniform_int(2, 1 << 30)));
        const auto inv = BigUint::mod_inverse(a, m);
        ASSERT_TRUE(inv.has_value());
        EXPECT_EQ((a * *inv) % m, BigUint(1));
    }
}

TEST(BigUint, RandomBitsHasExactWidth) {
    Rng rng(11);
    for (const std::size_t bits : {8UL, 32UL, 33UL, 64UL, 127UL, 256UL}) {
        const BigUint v = BigUint::random_bits(bits, rng);
        EXPECT_EQ(v.bit_length(), bits);
    }
}

TEST(BigUint, RandomBelowIsBelow) {
    Rng rng(12);
    const BigUint bound = BigUint::from_hex("123456789");
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(BigUint::random_below(bound, rng), bound);
}

TEST(BigUint, PrimalityKnownValues) {
    Rng rng(13);
    for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 104729ULL, 1000003ULL})
        EXPECT_TRUE(BigUint::is_probable_prime(BigUint(p), 20, rng)) << p;
    for (const std::uint64_t c : {1ULL, 4ULL, 104730ULL, 1000001ULL,
                                  561ULL /* Carmichael */})
        EXPECT_FALSE(BigUint::is_probable_prime(BigUint(c), 20, rng)) << c;
}

TEST(BigUint, GeneratePrimeHasRequestedWidthAndIsPrime) {
    Rng rng(14);
    const BigUint p = BigUint::generate_prime(96, rng);
    EXPECT_EQ(p.bit_length(), 96U);
    EXPECT_TRUE(BigUint::is_probable_prime(p, 30, rng));
}

}  // namespace
