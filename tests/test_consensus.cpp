// Multi-replica consensus: propagation, temporary divergence, longest-chain
// reconciliation, and eventual consistency under concurrent mining.

#include <gtest/gtest.h>

#include "chain/consensus.hpp"

namespace {

namespace ch = fairbfl::chain;

ch::NetworkModel fast_net() {
    ch::NetworkParams params;
    params.miner_base_latency_s = 0.01;
    params.miner_jitter_sigma = 0.0;
    return ch::NetworkModel(params);
}

TEST(Consensus, SingleBlockReachesAllReplicas) {
    ch::ConsensusSim sim(4, 9, fast_net(), 42);
    const ch::Block block = sim.make_child_block(0, {}, 1);
    EXPECT_EQ(sim.broadcast(0, block, 0.0), ch::BlockVerdict::kAccepted);
    EXPECT_FALSE(sim.consistent());  // peers have not heard yet
    sim.drain();
    EXPECT_TRUE(sim.consistent());
    for (std::size_t m = 0; m < 4; ++m)
        EXPECT_EQ(sim.replica(m).height(), 2U);
}

TEST(Consensus, DeliveryRespectsSimulatedTime) {
    ch::ConsensusSim sim(3, 9, fast_net(), 42);
    const ch::Block block = sim.make_child_block(0, {}, 1);
    (void)sim.broadcast(0, block, /*now=*/10.0);
    sim.advance_to(10.0);  // links take ~10 ms: nothing due yet
    EXPECT_EQ(sim.replica(1).height(), 1U);
    EXPECT_GT(sim.in_flight(), 0U);
    sim.advance_to(11.0);
    EXPECT_EQ(sim.replica(1).height(), 2U);
    EXPECT_EQ(sim.in_flight(), 0U);
}

TEST(Consensus, CompetingBlocksForkThenReconcile) {
    // Miners 0 and 1 mine children of genesis "simultaneously"; replicas
    // disagree until one side extends its branch.
    ch::ConsensusSim sim(2, 9, fast_net(), 42);
    const ch::Block a = sim.make_child_block(0, {}, 100);
    const ch::Block b = sim.make_child_block(1, {}, 200);  // same parent
    (void)sim.broadcast(0, a, 0.0);
    (void)sim.broadcast(1, b, 0.0);
    sim.drain();
    // Both replicas hold both blocks; each keeps its own tip (tie).
    EXPECT_EQ(sim.distinct_tips(), 2U);
    EXPECT_EQ(sim.replica(0).total_blocks_known(), 3U);

    // Miner 0 extends its branch: longest chain wins everywhere.
    const ch::Block a2 = sim.make_child_block(0, {}, 101);
    (void)sim.broadcast(0, a2, 1.0);
    sim.drain();
    EXPECT_TRUE(sim.consistent());
    EXPECT_EQ(sim.replica(1).tip().header.hash(), a2.header.hash());
    EXPECT_EQ(sim.replica(1).reorg_count(), 1U);  // replica 1 switched
}

TEST(Consensus, ManyRoundsOfConcurrentMiningConverge) {
    // Torture: every round two random miners build on their own current
    // tips before hearing each other; after the dust settles all replicas
    // agree and hold a valid chain.
    ch::ConsensusSim sim(5, 9, fast_net(), 43);
    fairbfl::support::Rng rng(99);
    double now = 0.0;
    for (int round = 0; round < 30; ++round) {
        const auto m1 = static_cast<std::size_t>(rng.uniform_int(0, 4));
        auto m2 = static_cast<std::size_t>(rng.uniform_int(0, 4));
        const ch::Block b1 = sim.make_child_block(
            m1, {}, static_cast<std::uint64_t>(round) * 10 + 1);
        (void)sim.broadcast(m1, b1, now);
        if (rng.bernoulli(0.4)) {  // concurrent competitor
            if (m2 == m1) m2 = (m2 + 1) % 5;
            const ch::Block b2 = sim.make_child_block(
                m2, {}, static_cast<std::uint64_t>(round) * 10 + 2);
            (void)sim.broadcast(m2, b2, now + 0.001);
        }
        now += 1.0;
        sim.advance_to(now);
    }
    // Let a single miner finish the race so ties resolve.
    const ch::Block closer = sim.make_child_block(0, {}, 999);
    (void)sim.broadcast(0, closer, now);
    const ch::Block closer2 = sim.make_child_block(0, {}, 1000);
    (void)sim.broadcast(0, closer2, now + 0.5);
    sim.drain();

    EXPECT_TRUE(sim.consistent());
    for (std::size_t m = 0; m < 5; ++m) {
        EXPECT_TRUE(sim.replica(m).validate_full_chain());
        EXPECT_GE(sim.replica(m).height(), 30U);
    }
}

TEST(Consensus, TransactionsSurviveReplication) {
    ch::ConsensusSim sim(3, 9, fast_net(), 44);
    std::vector<ch::Transaction> txs;
    txs.push_back(ch::make_gradient_tx(ch::TxKind::kGlobalUpdate, 7, 0,
                                       std::vector<float>{1.5F, -2.5F}));
    const ch::Block block = sim.make_child_block(0, txs, 1);
    (void)sim.broadcast(0, block, 0.0);
    sim.drain();
    for (std::size_t m = 0; m < 3; ++m) {
        const auto gradient = sim.replica(m).latest_global_gradient();
        ASSERT_TRUE(gradient.has_value()) << "replica " << m;
        EXPECT_EQ(*gradient, (std::vector<float>{1.5F, -2.5F}));
    }
}

}  // namespace
