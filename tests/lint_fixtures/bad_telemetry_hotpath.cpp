// Lint fixture: must be flagged by [telemetry-hotpath].  The emission
// entry point (counter_add) reaches an allocation through a helper --
// exactly the regression the call-graph reachability walk exists to
// catch.  (Linted as if at src/telemetry/bad_telemetry_hotpath.cpp.)
#include <cstdint>

struct Record {
    std::uint64_t value;
};

void sink(const Record& r);

void emit(const Record& r) {
    auto* copy = new Record(r);  // allocation on the record path
    sink(*copy);
}

void counter_add(std::uint64_t value) {
    Record record{value};
    emit(record);
}
