// Lint fixture: must be flagged by [rng-determinism].  Every randomness
// source here decouples the run from the experiment seed: rand() and the
// argless engine use process-invariant default state, std::random_device
// is entropy by design.
#include <cstdlib>
#include <random>

int roll_libc() { return std::rand() % 6; }

int roll_unqualified() { return rand() % 6; }

unsigned hardware_entropy() {
    std::random_device rd;
    return rd();
}

unsigned default_seeded() {
    std::mt19937 gen;  // argless: fixed default seed, not the experiment's
    return gen();
}
