// Lint fixture: must be flagged by [raw-sync].  Raw std concurrency
// primitives outside src/support/ are invisible to clang's thread-safety
// analysis; the linter points at the annotated support::Mutex wrappers.
// (Linted as if at src/bad_raw_sync.cpp -- see run_lints.py.)
#include <mutex>
#include <thread>

struct Holder {
    std::mutex mu;
    int value = 0;

    void set(int v) {
        std::lock_guard<std::mutex> lock(mu);
        value = v;
    }
};

void spawn_detached() {
    std::thread([] {}).detach();
}
