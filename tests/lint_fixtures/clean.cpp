// Lint fixture: must pass every rule.  Exercises the near-miss shapes:
// a rethrowing catch-all, a capture-for-later catch-all, seed-derived
// randomness, and an explicitly seeded std engine (allowed -- only the
// *argless* form is flagged).
#include <random>

int risky();

struct Runner {
    bool saw_error = false;

    int run() {
        try {
            return risky();
        } catch (...) {
            saw_error = true;
            throw;  // rethrow: not a swallow
        }
    }
};

unsigned lcg_from_seed(unsigned seed) {
    return seed * 1664525u + 1013904223u;
}

unsigned seeded_engine(unsigned seed) {
    std::mt19937 gen(seed);  // seeded from the experiment: allowed
    return static_cast<unsigned>(gen());
}
