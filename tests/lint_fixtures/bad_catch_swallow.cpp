// Lint fixture: must be flagged by [catch-swallow].  The catch-all
// handler drops the exception on the floor -- no rethrow, no
// std::current_exception capture for a later rethrow.
int risky();

int swallow_everything() {
    try {
        return risky();
    } catch (...) {
        return -1;
    }
}
