// Lint fixture: must pass [telemetry-hotpath] (linted as if at
// src/telemetry/clean_telemetry.cpp).  A hot path in the sanctioned
// shape: fixed-size ring, plain stores, no allocation/lock/clock.
#include <cstdint>

struct Record {
    std::uint64_t value;
};

struct Ring {
    Record slots[16];
    std::uint64_t head = 0;

    void put(const Record& r) {
        slots[head & 15u] = r;
        ++head;
    }
};

inline Ring g_ring;

void counter_add(std::uint64_t value) {
    g_ring.put(Record{value});
}
