// Lint fixture: must be flagged by [simd-isolation].  x86 intrinsic
// headers and _mm*/__m* spellings outside src/support/simd* bypass the
// runtime-dispatched KernelTable -- the code stops compiling on non-x86
// hosts and silently diverges from the pinned scalar series.
// (Linted as if at src/bad_simd_isolation.cpp -- see run_lints.py.)
#include <immintrin.h>

double open_coded_dot(const float* x, const float* y) {
    __m256 a = _mm256_loadu_ps(x);
    __m256 b = _mm256_loadu_ps(y);
    __m256 p = _mm256_mul_ps(a, b);
    alignas(32) float lanes[8];
    _mm256_storeu_ps(lanes, p);
    double acc = 0.0;
    for (const float v : lanes) acc += v;
    return acc;
}
