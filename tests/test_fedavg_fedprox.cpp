// FedAvg / FedProx trainers: learning progress, determinism, straggler
// handling.

#include <gtest/gtest.h>

#include "fl/fedavg.hpp"
#include "fl/fedprox.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;

struct World {
    ml::Dataset data;
    std::unique_ptr<ml::Model> model;
    std::vector<ml::DatasetView> shards;
    ml::DatasetView train;
    ml::DatasetView test;

    explicit World(std::size_t clients = 10, std::uint64_t seed = 51,
                   ml::PartitionScheme scheme = ml::PartitionScheme::kIid)
        : data(ml::make_synthetic_mnist({.samples = 600,
                                         .feature_dim = 8,
                                         .num_classes = 4,
                                         .noise_sigma = 0.25,
                                         .seed = seed})) {
        model = ml::make_logistic_regression(8, 4);
        const auto split = ml::train_test_split(data, 0.2, seed);
        train = split.train;
        test = split.test;
        ml::PartitionParams params;
        params.scheme = scheme;
        params.num_clients = clients;
        params.seed = seed;
        shards = ml::partition(train, params);
    }

    [[nodiscard]] std::vector<fl::Client> clients() const {
        return fl::make_clients(*model, shards);
    }
};

fl::FlConfig fast_config() {
    fl::FlConfig config;
    config.client_ratio = 0.5;
    config.rounds = 15;
    config.sgd.learning_rate = 0.1;
    config.sgd.epochs = 3;
    config.sgd.batch_size = 10;
    config.seed = 42;
    return config;
}

TEST(FedAvg, AccuracyImprovesOverRounds) {
    World world;
    fl::FedAvg trainer(*world.model, world.clients(), world.test,
                       fast_config());
    const auto history = trainer.run();
    ASSERT_EQ(history.size(), 15U);
    EXPECT_GT(history.back().test_accuracy,
              history.front().test_accuracy + 0.15);
    EXPECT_GT(history.back().test_accuracy, 0.7);
}

TEST(FedAvg, RecordsAreCoherent) {
    World world;
    fl::FedAvg trainer(*world.model, world.clients(), world.test,
                       fast_config());
    const auto record = trainer.run_round();
    EXPECT_EQ(record.round, 0U);
    EXPECT_EQ(record.selected, 5U);  // 0.5 * 10
    EXPECT_EQ(record.participants, 5U);
    EXPECT_EQ(record.participant_ids.size(), 5U);
    EXPECT_GT(record.mean_local_loss, 0.0);
    EXPECT_EQ(trainer.current_round(), 1U);
}

TEST(FedAvg, DeterministicAcrossInstances) {
    World a;
    World b;
    fl::FedAvg ta(*a.model, a.clients(), a.test, fast_config());
    fl::FedAvg tb(*b.model, b.clients(), b.test, fast_config());
    const auto ha = ta.run(5);
    const auto hb = tb.run(5);
    for (std::size_t r = 0; r < 5; ++r)
        EXPECT_DOUBLE_EQ(ha[r].test_accuracy, hb[r].test_accuracy);
    EXPECT_TRUE(std::equal(ta.weights().begin(), ta.weights().end(),
                           tb.weights().begin()));
}

TEST(FedAvg, NonIidIsHarderThanIid) {
    World iid(10, 52, ml::PartitionScheme::kIid);
    World skew(10, 52, ml::PartitionScheme::kLabelShards);
    auto config = fast_config();
    config.rounds = 8;
    fl::FedAvg ti(*iid.model, iid.clients(), iid.test, config);
    fl::FedAvg ts(*skew.model, skew.clients(), skew.test, config);
    const double acc_iid = ti.run().back().test_accuracy;
    const double acc_skew = ts.run().back().test_accuracy;
    EXPECT_GE(acc_iid, acc_skew - 0.02);  // non-IID never meaningfully wins
}

TEST(FedProx, LearnsComparablyToFedAvg) {
    World world;
    fl::FedProxConfig config;
    config.base = fast_config();
    config.prox_mu = 0.01;
    fl::FedProx trainer(*world.model, world.clients(), world.test, config);
    const auto history = trainer.run();
    EXPECT_GT(history.back().test_accuracy, 0.65);
}

TEST(FedProx, DropPercentZeroKeepsEveryone) {
    World world;
    fl::FedProxConfig config;
    config.base = fast_config();
    config.drop_percent = 0.0;
    fl::FedProx trainer(*world.model, world.clients(), world.test, config);
    const auto record = trainer.run_round();
    EXPECT_EQ(record.participants, record.selected);
    EXPECT_EQ(trainer.total_dropped(), 0U);
}

TEST(FedProx, DropPercentDiscardsStragglers) {
    World world;
    fl::FedProxConfig config;
    config.base = fast_config();
    config.base.rounds = 10;
    config.drop_percent = 0.5;  // aggressive so the effect is visible
    config.keep_partial_work = false;
    fl::FedProx trainer(*world.model, world.clients(), world.test, config);
    std::size_t participants = 0;
    std::size_t selected = 0;
    for (int r = 0; r < 10; ++r) {
        const auto record = trainer.run_round();
        participants += record.participants;
        selected += record.selected;
    }
    EXPECT_LT(participants, selected);
    EXPECT_EQ(trainer.total_dropped(), selected - participants);
}

TEST(FedProx, KeepPartialWorkRetainsStragglers) {
    World world;
    fl::FedProxConfig config;
    config.base = fast_config();
    config.drop_percent = 0.5;
    config.keep_partial_work = true;
    fl::FedProx trainer(*world.model, world.clients(), world.test, config);
    for (int r = 0; r < 5; ++r) {
        const auto record = trainer.run_round();
        EXPECT_EQ(record.participants, record.selected);
    }
    EXPECT_EQ(trainer.total_dropped(), 0U);
}

TEST(FedProx, NeverLosesWholeRound) {
    World world;
    fl::FedProxConfig config;
    config.base = fast_config();
    config.drop_percent = 1.0;  // everyone straggles
    config.keep_partial_work = false;
    fl::FedProx trainer(*world.model, world.clients(), world.test, config);
    const auto record = trainer.run_round();
    EXPECT_GE(record.participants, 1U);
}

TEST(RunLocalUpdates, ParallelMatchesSerialOrdering) {
    World world;
    const auto clients = world.clients();
    std::vector<float> global(world.model->param_count(), 0.01F);
    const std::vector<std::size_t> selected{1, 3, 5, 7};
    ml::SgdParams sgd;
    const auto updates =
        fl::run_local_updates(clients, selected, global, sgd, 0, 42);
    ASSERT_EQ(updates.size(), 4U);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(updates[i].client, selected[i]);
        // Must equal a direct serial call (thread count irrelevant).
        const auto direct =
            clients[selected[i]].local_update(global, sgd, 0, 42);
        EXPECT_EQ(updates[i].weights, direct.weights);
    }
}

}  // namespace
