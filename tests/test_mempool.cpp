// Mempool: FIFO order, byte-capacity packing, drain estimation.

#include <gtest/gtest.h>

#include "chain/mempool.hpp"

namespace {

namespace ch = fairbfl::chain;

ch::Transaction payload_tx(std::uint32_t origin, std::size_t payload_bytes) {
    ch::Transaction tx;
    tx.kind = ch::TxKind::kPayload;
    tx.origin = origin;
    tx.payload.assign(payload_bytes, 0xAA);
    return tx;
}

TEST(Mempool, FifoOrderPreserved) {
    ch::Mempool pool(1 << 20);
    for (std::uint32_t i = 0; i < 5; ++i) pool.add(payload_tx(i, 10));
    const auto block = pool.pack_block();
    ASSERT_EQ(block.size(), 5U);
    for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(block[i].origin, i);
    EXPECT_TRUE(pool.empty());
}

TEST(Mempool, RespectsByteCapacity) {
    // Each tx is 100-byte payload + 21 bytes framing = 121 bytes.
    const std::size_t tx_bytes = payload_tx(0, 100).size_bytes();
    ch::Mempool pool(tx_bytes * 3);
    for (std::uint32_t i = 0; i < 7; ++i) pool.add(payload_tx(i, 100));
    EXPECT_EQ(pool.pack_block().size(), 3U);
    EXPECT_EQ(pool.pack_block().size(), 3U);
    EXPECT_EQ(pool.pack_block().size(), 1U);
    EXPECT_TRUE(pool.empty());
}

TEST(Mempool, OversizedTransactionStillPacksAlone) {
    ch::Mempool pool(50);
    pool.add(payload_tx(1, 500));  // far beyond the block size
    pool.add(payload_tx(2, 10));
    const auto block = pool.pack_block();
    ASSERT_EQ(block.size(), 1U);
    EXPECT_EQ(block[0].origin, 1U);
    EXPECT_EQ(pool.size(), 1U);
}

TEST(Mempool, PendingBytesTracked) {
    ch::Mempool pool(1000);
    EXPECT_EQ(pool.pending_bytes(), 0U);
    const auto tx = payload_tx(0, 64);
    pool.add(tx);
    pool.add(tx);
    EXPECT_EQ(pool.pending_bytes(), 2 * tx.size_bytes());
    (void)pool.pack_block();
    EXPECT_EQ(pool.pending_bytes(), 0U);
}

TEST(Mempool, BlocksToDrainMatchesActualPacking) {
    const std::size_t tx_bytes = payload_tx(0, 200).size_bytes();
    ch::Mempool pool(tx_bytes * 2 + 1);
    for (std::uint32_t i = 0; i < 9; ++i) pool.add(payload_tx(i, 200));
    const std::size_t estimate = pool.blocks_to_drain();
    std::size_t actual = 0;
    while (!pool.empty()) {
        (void)pool.pack_block();
        ++actual;
    }
    EXPECT_EQ(estimate, actual);
    EXPECT_EQ(estimate, 5U);  // ceil(9 / 2)
}

TEST(Mempool, BlocksToDrainEmptyIsZero) {
    ch::Mempool pool(100);
    EXPECT_EQ(pool.blocks_to_drain(), 0U);
}

TEST(Mempool, ClearDropsEverything) {
    ch::Mempool pool(100);
    pool.add(payload_tx(0, 10));
    pool.clear();
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(pool.pending_bytes(), 0U);
}

TEST(Mempool, AddAllKeepsOrder) {
    ch::Mempool pool(1 << 20);
    std::vector<ch::Transaction> batch{payload_tx(3, 8), payload_tx(1, 8),
                                       payload_tx(2, 8)};
    pool.add_all(batch);
    const auto block = pool.pack_block();
    ASSERT_EQ(block.size(), 3U);
    EXPECT_EQ(block[0].origin, 3U);
    EXPECT_EQ(block[1].origin, 1U);
    EXPECT_EQ(block[2].origin, 2U);
}

}  // namespace
