// Incremental cross-round GradientIndex maintenance (index update() +
// cluster/index_cache.hpp).
//
// The central pin: with every point flagged moved -- equivalently, an
// IndexCache with refresh_threshold == 0 -- update() must be bit-identical
// to a from-scratch rebuild over the new points, for both updatable
// backends.  The deterministic projection matrix / pivot copies make this
// an exact property, not a tolerance; a fixed-seed multi-round series
// through identify_contributions must therefore produce byte-equal
// reports with and without the cache.  The re-sketch-skipping path
// (nonzero threshold) is quality-pinned instead: recall >= 0.9 against
// exact geometry after several rounds of converging drift.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/index.hpp"
#include "cluster/index_cache.hpp"
#include "fl/aggregation.hpp"
#include "incentive/contribution.hpp"
#include "support/rng.hpp"

namespace {

namespace cl = fairbfl::cluster;
namespace inc = fairbfl::incentive;
using fairbfl::support::Rng;

/// Same grouped-gradient geometry as test_gradient_index.cpp: tight
/// clusters with near-orthogonal directions in high dim.
std::vector<std::vector<float>> grouped_gradients(std::size_t groups,
                                                  std::size_t per_group,
                                                  std::size_t dim,
                                                  std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<float>> points;
    for (std::size_t g = 0; g < groups; ++g) {
        std::vector<float> direction(dim);
        for (auto& v : direction) v = static_cast<float>(rng.normal());
        for (std::size_t i = 0; i < per_group; ++i) {
            std::vector<float> p(dim);
            for (std::size_t d = 0; d < dim; ++d)
                p[d] = direction[d] +
                       static_cast<float>(0.05 * rng.normal());
            points.push_back(std::move(p));
        }
    }
    return points;
}

/// Drifts `scale * normal` noise onto the flagged points -- one round of
/// converging training as the index sees it.
std::vector<std::vector<float>> drifted(
    const std::vector<std::vector<float>>& points,
    const std::vector<std::uint8_t>& moved, double scale, Rng& rng) {
    std::vector<std::vector<float>> next = points;
    for (std::size_t i = 0; i < next.size(); ++i) {
        if (!moved[i]) continue;
        for (auto& v : next[i])
            v += static_cast<float>(scale * rng.normal());
    }
    return next;
}

void expect_same_distances(const cl::GradientIndex& got,
                           const cl::GradientIndex& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        for (std::size_t j = 0; j < got.size(); ++j)
            EXPECT_EQ(got.distance(i, j), want.distance(i, j))
                << i << "," << j;
}

TEST(RandomProjectionIndex, UpdateEqualsRebuildBitForBit) {
    // Engaged sketch: n = 60 > 2k = 24.  Three rounds of drift; each
    // round flags exactly the points that moved (a strict subset, then
    // everyone), and the maintained index must equal a fresh build over
    // the current points -- same projection seed, same arithmetic.
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.projection_dims = 12;
    auto points = grouped_gradients(6, 10, 256, 31);
    cl::RandomProjectionIndex maintained(points, params);
    ASSERT_TRUE(maintained.supports_update());

    Rng rng(32);
    for (std::size_t round = 0; round < 3; ++round) {
        std::vector<std::uint8_t> moved(points.size(), 0);
        for (std::size_t i = 0; i < points.size(); ++i)
            moved[i] = round == 2 || i % 3 == round ? 1 : 0;
        points = drifted(points, moved, 0.02, rng);
        ASSERT_TRUE(maintained.update(points, moved));
        const cl::RandomProjectionIndex rebuilt(points, params);
        expect_same_distances(maintained, rebuilt);
        // The banded queries read the re-sorted norm order; pin them too.
        for (std::size_t i = 0; i < points.size(); i += 7) {
            EXPECT_EQ(maintained.kth_distance(i, 5), rebuilt.kth_distance(i, 5));
            EXPECT_EQ(maintained.neighbors_within(i, 1.5),
                      rebuilt.neighbors_within(i, 1.5));
        }
    }
}

TEST(SampledIndex, UpdateEqualsRebuildBitForBitIncludingMovedPivots) {
    // Engaged profiles: n = 60 > m = 12.  The drift deliberately hits
    // pivot points (i % 2) so the moved-pivot column refresh is exercised:
    // a moved pivot changes *everyone's* signature coordinate.
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.pivots = 12;
    auto points = grouped_gradients(6, 10, 128, 41);
    cl::SampledIndex maintained(points, params);
    ASSERT_EQ(maintained.pivot_count(), 12U);
    ASSERT_TRUE(maintained.supports_update());

    Rng rng(42);
    for (std::size_t round = 0; round < 3; ++round) {
        std::vector<std::uint8_t> moved(points.size(), 0);
        for (std::size_t i = 0; i < points.size(); ++i)
            moved[i] = round == 2 || i % 2 == round % 2 ? 1 : 0;
        points = drifted(points, moved, 0.02, rng);
        ASSERT_TRUE(maintained.update(points, moved));
        const cl::SampledIndex rebuilt(points, params);
        expect_same_distances(maintained, rebuilt);
    }
}

TEST(GradientIndexUpdate, RejectsIncompatibleShapesAndFallbacks) {
    const auto points = grouped_gradients(2, 5, 32, 51);  // n = 10: fallback
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    cl::RandomProjectionIndex fallback(points, params);
    ASSERT_TRUE(fallback.exact());
    EXPECT_FALSE(fallback.supports_update());
    const std::vector<std::uint8_t> moved(points.size(), 1);
    EXPECT_FALSE(fallback.update(points, moved));

    params.projection_dims = 4;  // engaged: n = 10 > 2k = 8
    cl::RandomProjectionIndex engaged(points, params);
    ASSERT_TRUE(engaged.supports_update());
    auto fewer = points;
    fewer.pop_back();
    EXPECT_FALSE(engaged.update(fewer, moved));  // cardinality changed
    auto narrower = points;
    for (auto& p : narrower) p.resize(16);
    EXPECT_FALSE(engaged.update(narrower, moved));  // dimensionality changed
}

TEST(IndexCache, ZeroThresholdSeriesMatchesUncachedRebuilds) {
    // The cache's own equivalence: acquire/release across rounds with
    // refresh_threshold = 0 re-sketches everything, so every acquired
    // index must answer exactly like an uncached registry build.
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.projection_dims = 12;
    params.refresh_threshold = 0.0;
    cl::IndexCache cache;
    auto points = grouped_gradients(6, 10, 256, 61);
    Rng rng(62);
    for (std::size_t round = 0; round < 4; ++round) {
        auto acquired =
            cache.acquire(0, "random_projection", points, params);
        const auto fresh = cl::IndexRegistry::global().build(
            "random_projection", points, params);
        expect_same_distances(*acquired, *fresh);
        cache.release(0, "random_projection", points, params,
                      std::move(acquired));
        points = drifted(points, std::vector<std::uint8_t>(points.size(), 1),
                         0.02, rng);
    }
}

TEST(IndexCache, SlotsAreIsolatedAndExactBackendsNeverCached) {
    const auto points_a = grouped_gradients(4, 8, 128, 71);
    const auto points_b = grouped_gradients(4, 8, 128, 72);
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.projection_dims = 8;
    params.refresh_threshold = 0.0;
    cl::IndexCache cache;
    // Different slots hold different point sets without interfering.
    auto a = cache.acquire(0, "random_projection", points_a, params);
    auto b = cache.acquire(1, "random_projection", points_b, params);
    EXPECT_NE(a->distance(0, 1), b->distance(0, 1));
    cache.release(0, "random_projection", points_a, params, std::move(a));
    cache.release(1, "random_projection", points_b, params, std::move(b));
    auto a2 = cache.acquire(0, "random_projection", points_a, params);
    const auto fresh_a = cl::IndexRegistry::global().build(
        "random_projection", points_a, params);
    expect_same_distances(*a2, *fresh_a);

    // An exact backend is dropped on release (rebuilding it is the pinned
    // behavior) -- the next acquire still serves a valid exact index.
    auto exact = cache.acquire(2, "exact", points_a, params);
    ASSERT_TRUE(exact->exact());
    EXPECT_FALSE(exact->supports_update());
    cache.release(2, "exact", points_a, params, std::move(exact));
    auto exact2 = cache.acquire(2, "exact", points_a, params);
    EXPECT_TRUE(exact2->exact());
}

TEST(IndexCache, NonzeroThresholdKeepsRecallOnConvergingDrift) {
    // The work-skipping path: with the default threshold most points'
    // small converging drift is ignored (their sketches go slightly
    // stale), yet neighbour recall against exact geometry must stay
    // >= 0.9 after several rounds -- staleness bounded by the threshold
    // cannot scramble well-separated groups.
    cl::IndexParams params;
    params.metric = cl::Metric::kEuclidean;
    params.projection_dims = 16;
    params.refresh_threshold = 0.05;
    cl::IndexCache cache;
    auto points = grouped_gradients(10, 8, 512, 81);
    Rng rng(82);
    std::unique_ptr<cl::GradientIndex> index;
    for (std::size_t round = 0; round < 4; ++round) {
        index = cache.acquire(0, "random_projection", points, params);
        cache.release(0, "random_projection", points, params,
                      std::move(index));
        // Sub-threshold drift for most points, a few larger movers.
        std::vector<std::uint8_t> all(points.size(), 1);
        points = drifted(points, all, 0.005, rng);
        for (std::size_t i = 0; i < points.size(); i += 11)
            for (auto& v : points[i]) v += static_cast<float>(0.1 * rng.normal());
    }
    index = cache.acquire(0, "random_projection", points, params);
    const cl::ExactIndex exact(cl::Metric::kEuclidean, points);
    const std::size_t k_nn = 7;
    double hits = 0.0;
    auto knn = [&](const cl::GradientIndex& idx, std::size_t i) {
        std::vector<std::size_t> order;
        for (std::size_t j = 0; j < idx.size(); ++j)
            if (j != i) order.push_back(j);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return idx.distance(i, a) < idx.distance(i, b);
                  });
        order.resize(k_nn);
        std::sort(order.begin(), order.end());
        return order;
    };
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const auto truth = knn(exact, i);
        const auto found = knn(*index, i);
        std::vector<std::size_t> common;
        std::set_intersection(truth.begin(), truth.end(), found.begin(),
                              found.end(), std::back_inserter(common));
        hits += static_cast<double>(common.size());
    }
    EXPECT_GE(hits / static_cast<double>(exact.size() * k_nn), 0.9);
}

TEST(IdentifyContributions, CachedSeriesBitIdenticalAtZeroThreshold) {
    // End-to-end through Algorithm 2: a fixed-seed multi-round series with
    // the cache installed (threshold 0) must reproduce the uncached series
    // byte for byte -- labels, theta, rewards, backend, peak bytes.
    const std::size_t clients = 50;
    const std::size_t dim = 192;
    Rng rng(91);
    std::vector<fairbfl::fl::GradientUpdate> updates(clients);
    for (std::size_t i = 0; i < clients; ++i) {
        updates[i].client = static_cast<fairbfl::fl::NodeId>(i);
        updates[i].weights.resize(dim);
        for (auto& w : updates[i].weights)
            w = static_cast<float>(rng.normal());
    }

    inc::ContributionConfig cached;
    cached.index = "random_projection";
    cached.index_params.projection_dims = 12;  // engaged: 51 > 24
    cached.index_params.refresh_threshold = 0.0;
    inc::ContributionConfig uncached = cached;
    cached.index_cache = std::make_shared<cl::IndexCache>();
    ASSERT_EQ(uncached.index_cache, nullptr);

    for (std::size_t round = 0; round < 4; ++round) {
        const auto provisional = fairbfl::fl::simple_average(updates);
        const auto with_cache =
            inc::identify_contributions(updates, provisional, cached);
        const auto without =
            inc::identify_contributions(updates, provisional, uncached);
        EXPECT_EQ(with_cache.clustering.labels, without.clustering.labels);
        EXPECT_EQ(with_cache.global_cluster, without.global_cluster);
        EXPECT_EQ(with_cache.high_indices, without.high_indices);
        EXPECT_EQ(with_cache.index_backend, without.index_backend);
        EXPECT_EQ(with_cache.index_peak_bytes, without.index_peak_bytes);
        ASSERT_EQ(with_cache.entries.size(), without.entries.size());
        for (std::size_t i = 0; i < with_cache.entries.size(); ++i) {
            EXPECT_EQ(with_cache.entries[i].theta, without.entries[i].theta);
            EXPECT_EQ(with_cache.entries[i].reward,
                      without.entries[i].reward);
            EXPECT_EQ(with_cache.entries[i].high, without.entries[i].high);
        }
        // Next round: every client drifts a little.
        for (auto& update : updates)
            for (auto& w : update.weights)
                w += static_cast<float>(0.02 * rng.normal());
    }
}

TEST(SampledIndex, FallbackReportsExactRowsForThetaReadback) {
    // The break-even bugfix: a fallback holding the dense matrix must say
    // so, so the theta read-back reuses the rows it already paid for.
    const auto points = grouped_gradients(2, 4, 32, 95);  // n = 8 <= m
    cl::IndexParams params;
    params.metric = cl::Metric::kCosine;
    const cl::SampledIndex sampled(points, params);
    ASSERT_EQ(sampled.pivot_count(), 0U);
    EXPECT_TRUE(sampled.exact());
    EXPECT_TRUE(sampled.precomputed_rows());
    const cl::RandomProjectionIndex projected(points, params);  // n <= 2k
    EXPECT_TRUE(projected.exact());
    EXPECT_TRUE(projected.precomputed_rows());
    // distances_from on the fallback serves the exact dense row.
    const cl::ExactIndex exact(cl::Metric::kCosine, points);
    std::vector<double> row(points.size());
    std::vector<double> truth(points.size());
    sampled.distances_from(3, row);
    exact.distances_from(3, truth);
    EXPECT_EQ(row, truth);
    projected.distances_from(3, row);
    EXPECT_EQ(row, truth);
}

}  // namespace
