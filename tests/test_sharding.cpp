// Shard-tree Algorithm 2 (fl/sharding.hpp + incentive/hierarchical.hpp):
//
//   * shards=1 is the flat pipeline bit-for-bit (same pinned theta/reward
//     series as tests/test_contribution_equivalence.cpp);
//   * attack detection at shards=4, n=128 stays within 2% of flat;
//   * per-client rewards conserve the round budget under sharding;
//   * results are independent of the fan-out pool's thread count;
//   * peak per-pass index memory drops >= 3x at the acceptance point
//     (n=256, d=7850, exact backend);
//   * the shard plan itself is balanced, covering, and clamped.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/attacker.hpp"
#include "core/fairbfl.hpp"
#include "incentive/hierarchical.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/rng.hpp"

namespace {

namespace core = fairbfl::core;
namespace inc = fairbfl::incentive;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;
using fairbfl::support::Rng;
using fairbfl::support::ThreadPool;

// --- Fixtures --------------------------------------------------------------

/// The test_contribution_equivalence generator: two honest blobs plus two
/// outliers.  Kept in sync so the pinned series below stay valid.
std::vector<fl::GradientUpdate> synth_updates(std::size_t n, std::size_t dim,
                                              std::uint64_t seed) {
    Rng rng(seed);
    std::vector<fl::GradientUpdate> updates(n);
    for (std::size_t i = 0; i < n; ++i) {
        updates[i].client = static_cast<fl::NodeId>(i);
        updates[i].num_samples = 10 + i;
        updates[i].weights.resize(dim);
        const bool outlier = i + 2 >= n;
        for (std::size_t d = 0; d < dim; ++d) {
            const double base = outlier ? 5.0 * (d % 2 ? -1.0 : 1.0)
                                        : 0.1 * static_cast<double>(d % 7);
            updates[i].weights[d] =
                static_cast<float>(base + 0.05 * rng.normal());
        }
    }
    return updates;
}

struct Fixture {
    std::vector<fl::GradientUpdate> updates;
    std::vector<float> global;
    std::vector<float> reference;
};

Fixture make_fixture() {
    Fixture f;
    f.updates = synth_updates(10, 16, 1234);
    f.global.assign(16, 0.0F);
    for (const auto& u : f.updates)
        for (std::size_t d = 0; d < 16; ++d)
            f.global[d] += u.weights[d] / 10.0F;
    f.reference.assign(16, 0.01F);
    return f;
}

/// A larger round: n clients in one honest blob, `attackers` of them
/// sign-flip-forged (every 16th index, offset 3 -- scattered across any
/// contiguous shard plan).  Returns the attacked fixture plus the
/// attacker ids.
struct AttackFixture {
    Fixture f;
    std::vector<fl::NodeId> attackers;
};

AttackFixture make_attack_fixture(std::size_t n, std::size_t dim,
                                  std::uint64_t seed) {
    AttackFixture out;
    Rng rng(seed);
    out.f.updates.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto& u = out.f.updates[i];
        u.client = static_cast<fl::NodeId>(i);
        u.num_samples = 20;
        u.weights.resize(dim);
        for (std::size_t d = 0; d < dim; ++d)
            u.weights[d] = static_cast<float>(0.1 * static_cast<double>(d % 7) +
                                              0.05 * rng.normal());
    }
    out.f.reference.assign(dim, 0.01F);
    for (std::size_t i = 3; i < n; i += 16) {
        // Sign-flip forgery around the reference, amplified (the Table 2
        // default attack shape).
        auto& u = out.f.updates[i];
        for (std::size_t d = 0; d < dim; ++d) {
            u.weights[d] = out.f.reference[d] -
                           3.0F * (u.weights[d] - out.f.reference[d]);
        }
        out.attackers.push_back(u.client);
    }
    out.f.global.assign(dim, 0.0F);
    for (const auto& u : out.f.updates)
        for (std::size_t d = 0; d < dim; ++d)
            out.f.global[d] += u.weights[d] / static_cast<float>(n);
    return out;
}

inc::ContributionConfig sharded_config(std::size_t shards) {
    inc::ContributionConfig config;
    config.sharding.shards = shards;
    return config;
}

// Pinned flat series (test_contribution_equivalence.cpp): shards=1 must
// reproduce these bit-for-bit.
const std::vector<double> kExpectedTheta{
    0x1.5c92e1025b6a2p-1, 0x1.6deba89402f4ap-1, 0x1.956cd226546d7p-1,
    0x1.6e4ff7416c15p-1,  0x1.88c0f9ac3a592p-1, 0x1.9c596c4e7eb21p-1,
    0x1.937313f09a0cep-1, 0x1.84ccc6062a99fp-1, 0x1.1b72c4ed1608p-5,
    0x1.2545cc55cac4p-5};

const std::vector<double> kExpectedReward{
    0x1.cf04dc420b47bp-4, 0x1.e60fa7e961227p-4, 0x1.0d449b95f4edbp-3,
    0x1.e694e586013abp-4, 0x1.04da2b11b394ep-3, 0x1.11dde72e607e1p-3,
    0x1.0bf4b65f04b62p-3, 0x1.0239e6f23b76bp-3, 0.0,
    0.0};

double detection_of(const inc::ContributionReport& report,
                    const std::vector<fl::NodeId>& attackers) {
    return core::detection_rate(attackers, report.low_clients());
}

// --- Shard plan ------------------------------------------------------------

TEST(ShardTree, PlanIsBalancedCoveringAndClamped) {
    const fl::ShardTree tree({.shards = 4, .min_shard_clients = 8});
    // 130 clients over 4 shards: sizes 33,33,32,32, covering [0, 130).
    const auto plan = tree.plan(130);
    ASSERT_EQ(plan.size(), 4U);
    std::size_t expect_begin = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        EXPECT_EQ(plan[s].begin, expect_begin);
        EXPECT_EQ(plan[s].size(), s < 2 ? 33U : 32U);
        expect_begin = plan[s].end;
    }
    EXPECT_EQ(expect_begin, 130U);
    // Too few clients to keep every shard at min_shard_clients: clamp.
    EXPECT_EQ(tree.shard_count(20), 2U);
    EXPECT_EQ(tree.shard_count(10), 1U);
    EXPECT_EQ(tree.shard_count(0), 1U);
    // The paper's 10-client Table 2 setting never splits.
    EXPECT_EQ(fl::ShardTree({.shards = 64, .min_shard_clients = 8})
                  .shard_count(10),
              1U);
}

// --- shards=1 equivalence --------------------------------------------------

TEST(ShardTreeEquivalence, ShardsOneBitIdenticalToFlatPinnedSeries) {
    const Fixture f = make_fixture();
    const auto flat = inc::identify_contributions(
        f.updates, f.global, inc::ContributionConfig{}, f.reference);
    const auto tree = inc::identify_contributions_hierarchical(
        f.updates, f.global, sharded_config(1), f.reference);
    const inc::ContributionReport& report = tree.report;

    ASSERT_EQ(report.entries.size(), 10U);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(report.entries[i].theta, kExpectedTheta[i]) << i;
        EXPECT_DOUBLE_EQ(report.entries[i].reward, kExpectedReward[i]) << i;
        EXPECT_EQ(report.entries[i].high, flat.entries[i].high) << i;
    }
    EXPECT_EQ(report.high_indices, flat.high_indices);
    EXPECT_EQ(report.low_indices, flat.low_indices);
    EXPECT_EQ(report.clustering.labels, flat.clustering.labels);
    EXPECT_EQ(report.global_cluster, flat.global_cluster);
    // The flat path leaves the hierarchical extras at their defaults, so
    // the settlement stays the flat Eq. 1 downstream.
    EXPECT_EQ(report.shard_count, 1U);
    EXPECT_TRUE(report.settled_weights.empty());
    EXPECT_EQ(tree.shard_passes.size(), 0U);
    // Both strategies settle identically to the flat pipeline.
    for (const auto strategy : {inc::LowContributionStrategy::kKeepAll,
                                inc::LowContributionStrategy::kDiscard}) {
        EXPECT_EQ(inc::apply_strategy(f.updates, report, strategy),
                  inc::apply_strategy(f.updates, flat, strategy));
    }
}

// A round too small for the requested fan-out must clamp back to flat --
// not degrade detection by clustering 2-point shards.
TEST(ShardTreeEquivalence, TinyRoundClampsToFlat) {
    const Fixture f = make_fixture();
    const auto tree = inc::identify_contributions_hierarchical(
        f.updates, f.global, sharded_config(4), f.reference);
    EXPECT_EQ(tree.report.shard_count, 1U);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(tree.report.entries[i].theta, kExpectedTheta[i]);
}

// --- Detection parity ------------------------------------------------------

TEST(ShardTreeDetection, ParityWithinTwoPercentOfFlatAtFourShards) {
    const AttackFixture ax = make_attack_fixture(128, 64, 777);
    const auto flat = inc::identify_contributions(
        ax.f.updates, ax.f.global, inc::ContributionConfig{}, ax.f.reference);
    const auto tree = inc::identify_contributions_hierarchical(
        ax.f.updates, ax.f.global, sharded_config(4), ax.f.reference);
    ASSERT_EQ(tree.report.shard_count, 4U);

    const double flat_rate = detection_of(flat, ax.attackers);
    const double tree_rate = detection_of(tree.report, ax.attackers);
    // The flat pipeline catches this fixture completely; the tree must
    // stay within 2% of whatever flat achieves.
    EXPECT_EQ(flat_rate, 1.0);
    EXPECT_GE(tree_rate, flat_rate - 0.02);
    // No honest client is falsely discarded by the hierarchy.
    EXPECT_EQ(tree.report.low_indices.size(), ax.attackers.size());
}

// --- Reward conservation ---------------------------------------------------

TEST(ShardTreeRewards, ConserveTheRoundBudgetUnderSharding) {
    const AttackFixture ax = make_attack_fixture(128, 64, 4242);
    for (const auto strategy : {inc::LowContributionStrategy::kKeepAll,
                                inc::LowContributionStrategy::kDiscard}) {
        auto config = sharded_config(4);
        config.strategy = strategy;
        config.reward_base = 2.5;
        const auto tree = inc::identify_contributions_hierarchical(
            ax.f.updates, ax.f.global, config, ax.f.reference);
        EXPECT_NEAR(tree.report.total_reward(), 2.5, 1e-9);
        // Attackers earn nothing; every reward is non-negative.
        for (const auto& entry : tree.report.entries) {
            EXPECT_GE(entry.reward, 0.0);
            if (!entry.high) EXPECT_EQ(entry.reward, 0.0);
        }
    }
}

// --- Determinism -----------------------------------------------------------

TEST(ShardTreeDeterminism, IndependentOfFanOutThreadCount) {
    const AttackFixture ax = make_attack_fixture(96, 32, 99);
    ThreadPool serial(1);
    ThreadPool wide(4);
    const auto a = inc::identify_contributions_hierarchical(
        ax.f.updates, ax.f.global, sharded_config(4), ax.f.reference, serial);
    const auto b = inc::identify_contributions_hierarchical(
        ax.f.updates, ax.f.global, sharded_config(4), ax.f.reference, wide);
    ASSERT_EQ(a.report.entries.size(), b.report.entries.size());
    for (std::size_t i = 0; i < a.report.entries.size(); ++i) {
        EXPECT_EQ(a.report.entries[i].theta, b.report.entries[i].theta) << i;
        EXPECT_EQ(a.report.entries[i].reward, b.report.entries[i].reward) << i;
        EXPECT_EQ(a.report.entries[i].high, b.report.entries[i].high) << i;
    }
    EXPECT_EQ(a.report.high_indices, b.report.high_indices);
    EXPECT_EQ(a.report.settled_weights, b.report.settled_weights);
    EXPECT_EQ(a.report.clustering.labels, b.report.clustering.labels);
}

// --- Memory ceiling --------------------------------------------------------

// The acceptance point: n=256 clients at the paper's 7850-parameter model,
// exact backend.  Four shards cut the peak per-pass index from (257)^2
// doubles to (65)^2 -- well past the required 3x.
TEST(ShardTreeMemory, PeakIndexBytesDropAtLeastThreeTimes) {
    AttackFixture ax = make_attack_fixture(256, 7850, 31337);
    const auto flat = inc::identify_contributions(
        ax.f.updates, ax.f.global, inc::ContributionConfig{}, ax.f.reference);
    const auto tree = inc::identify_contributions_hierarchical(
        ax.f.updates, ax.f.global, sharded_config(4), ax.f.reference);
    ASSERT_EQ(tree.report.shard_count, 4U);
    ASSERT_GT(flat.index_peak_bytes, 0U);
    ASSERT_GT(tree.report.index_peak_bytes, 0U);
    EXPECT_GE(flat.index_peak_bytes, 3 * tree.report.index_peak_bytes);
    // Exact backend arithmetic: (n+1)^2 doubles flat, (n/S+1)^2 per shard.
    EXPECT_EQ(flat.index_peak_bytes, 257U * 257U * sizeof(double));
    EXPECT_EQ(tree.report.index_peak_bytes, 65U * 65U * sizeof(double));
}

// --- End-to-end through FairBfl -------------------------------------------

TEST(ShardTreeFairBfl, ShardedRoundsRunDetectAndRecordPerLevelTiming) {
    ml::Dataset data = ml::make_synthetic_mnist({.samples = 800,
                                                 .feature_dim = 8,
                                                 .num_classes = 4,
                                                 .noise_sigma = 0.25,
                                                 .seed = 7});
    const auto model = ml::make_logistic_regression(8, 4);
    const auto split = ml::train_test_split(data, 0.2, 7);
    ml::PartitionParams params;
    params.scheme = ml::PartitionScheme::kIid;
    params.num_clients = 32;
    params.seed = 7;
    const auto shards = ml::partition(split.train, params);

    core::FairBflConfig config;
    config.fl.client_ratio = 1.0;
    config.fl.rounds = 2;
    config.fl.seed = 7;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.incentive.sharding.shards = 4;
    core::FairBfl system(*model, fl::make_clients(*model, shards),
                         split.test, config);
    const auto records = system.run();
    ASSERT_EQ(records.size(), 2U);
    for (const auto& record : records) {
        // Per-level timings ride inside the cluster stage.
        EXPECT_GT(record.wall.cluster, 0.0);
        EXPECT_GT(record.wall.cluster_shards, 0.0);
        EXPECT_GT(record.wall.cluster_root, 0.0);
        EXPECT_GT(record.wall.index_peak_bytes, 0U);
        // The hierarchy still pays the full budget each round.
        EXPECT_NEAR(record.round_reward_total, 1.0, 1e-9);
        EXPECT_EQ(record.detection_rate, 1.0);
    }
}

}  // namespace
