// Canonical serialization: round-trips and truncation errors.

#include <gtest/gtest.h>

#include "chain/bytes.hpp"

namespace {

using fairbfl::chain::ByteReader;
using fairbfl::chain::Bytes;
using fairbfl::chain::ByteWriter;

TEST(Bytes, IntegerRoundTrip) {
    ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFULL);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFU);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, FloatRoundTrip) {
    ByteWriter w;
    w.f32(3.14159F);
    w.f64(-2.718281828459045);
    ByteReader r(w.bytes());
    EXPECT_FLOAT_EQ(r.f32(), 3.14159F);
    EXPECT_DOUBLE_EQ(r.f64(), -2.718281828459045);
}

TEST(Bytes, FloatSpecialValues) {
    ByteWriter w;
    w.f32(0.0F);
    w.f32(-0.0F);
    w.f32(std::numeric_limits<float>::infinity());
    ByteReader r(w.bytes());
    EXPECT_EQ(r.f32(), 0.0F);
    EXPECT_EQ(r.f32(), -0.0F);
    EXPECT_EQ(r.f32(), std::numeric_limits<float>::infinity());
}

TEST(Bytes, BlobAndStringRoundTrip) {
    ByteWriter w;
    w.blob(Bytes{1, 2, 3});
    w.str("hello, chain");
    w.blob(Bytes{});
    ByteReader r(w.bytes());
    EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
    EXPECT_EQ(r.str(), "hello, chain");
    EXPECT_TRUE(r.blob().empty());
    EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, F32VectorRoundTrip) {
    const std::vector<float> v{1.0F, -0.5F, 1e-7F, 42.0F};
    ByteWriter w;
    w.f32_vector(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.f32_vector(), v);
}

TEST(Bytes, TruncatedInputThrows) {
    ByteWriter w;
    w.u32(7);
    {
        ByteReader r(w.bytes());
        EXPECT_THROW((void)r.u64(), std::out_of_range);
    }
    {
        // Length prefix claims more bytes than exist.
        ByteWriter w2;
        w2.u32(100);
        ByteReader r(w2.bytes());
        EXPECT_THROW((void)r.blob(), std::out_of_range);
    }
}

TEST(Bytes, RawReadsExactCount) {
    ByteWriter w;
    w.raw(Bytes{9, 8, 7, 6});
    ByteReader r(w.bytes());
    EXPECT_EQ(r.raw(2), (Bytes{9, 8}));
    EXPECT_EQ(r.remaining(), 2U);
    EXPECT_THROW((void)r.raw(3), std::out_of_range);
}

}  // namespace
