// ThreadPool / parallel_for: coverage, exception propagation, determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/parallel.hpp"

namespace {

using fairbfl::support::parallel_for;
using fairbfl::support::ThreadPool;

TEST(ThreadPool, RunsBodyOnEveryWorker) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4U);
    std::vector<std::atomic<int>> hits(4);
    pool.run([&](unsigned worker) { hits[worker]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsOnCaller) {
    ThreadPool pool(1);
    int calls = 0;
    pool.run([&](unsigned worker) {
        EXPECT_EQ(worker, 0U);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossRuns) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int i = 0; i < 10; ++i) pool.run([&](unsigned) { total++; });
    EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.run([](unsigned worker) {
        if (worker == 0) throw std::runtime_error("boom");
    }),
                 std::runtime_error);
    // The pool must survive the exception.
    std::atomic<int> total{0};
    pool.run([&](unsigned) { total++; });
    EXPECT_EQ(total.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    parallel_for(0, n, [&](std::size_t i) { counts[i]++; }, pool);
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
    ThreadPool pool(2);
    int calls = 0;
    parallel_for(5, 5, [&](std::size_t) { ++calls; }, pool);
    parallel_for(7, 3, [&](std::size_t) { ++calls; }, pool);
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RespectsOffsetRange) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(20);
    parallel_for(5, 15, [&](std::size_t i) { counts[i]++; }, pool);
    for (std::size_t i = 0; i < 20; ++i)
        EXPECT_EQ(counts[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
    // Sum of f(i) must not depend on how iterations map to workers.
    constexpr std::size_t n = 512;
    auto run_with = [&](unsigned threads) {
        ThreadPool pool(threads);
        std::vector<double> out(n);
        parallel_for(0, n, [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 1.5;
        }, pool, /*grain=*/7);
        return std::accumulate(out.begin(), out.end(), 0.0);
    };
    const double serial = run_with(1);
    EXPECT_DOUBLE_EQ(serial, run_with(2));
    EXPECT_DOUBLE_EQ(serial, run_with(8));
}

TEST(ParallelFor, PropagatesBodyException) {
    ThreadPool pool(4);
    EXPECT_THROW(parallel_for(0, 100,
                              [](std::size_t i) {
                                  if (i == 42)
                                      throw std::logic_error("bad index");
                              },
                              pool),
                 std::logic_error);
}

TEST(ParallelChunks, CoversRangeExactlyOnceWithFixedBoundaries) {
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    constexpr std::size_t chunk = 64;
    std::vector<std::atomic<int>> counts(n);
    std::atomic<bool> boundaries_ok{true};
    fairbfl::support::parallel_chunks(
        0, n, chunk,
        [&](std::size_t lo, std::size_t hi) {
            // Boundaries depend only on (begin, chunk), never the worker.
            if (lo % chunk != 0 || (hi != n && hi - lo != chunk))
                boundaries_ok = false;
            for (std::size_t i = lo; i < hi; ++i) counts[i]++;
        },
        pool);
    EXPECT_TRUE(boundaries_ok.load());
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelChunks, SmallRangeRunsAsSingleInlineChunk) {
    ThreadPool pool(4);
    int calls = 0;
    std::size_t seen_lo = 99, seen_hi = 0;
    fairbfl::support::parallel_chunks(
        3, 10, 64,
        [&](std::size_t lo, std::size_t hi) {
            ++calls;
            seen_lo = lo;
            seen_hi = hi;
        },
        pool);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(seen_lo, 3U);
    EXPECT_EQ(seen_hi, 10U);
}

TEST(ParallelChunks, EmptyRangeIsNoop) {
    ThreadPool pool(2);
    int calls = 0;
    fairbfl::support::parallel_chunks(
        5, 5, 8, [&](std::size_t, std::size_t) { ++calls; }, pool);
    EXPECT_EQ(calls, 0);
}

TEST(ParallelChunks, NestedInsidePoolTaskCoversRangeExactlyOnce) {
    // Under the work-stealing scheduler a nested fork fans out to idle
    // workers instead of degrading inline; either way each of the four
    // outer bodies must see its range covered exactly once.
    ThreadPool pool(4);
    std::atomic<int> covered{0};
    pool.run([&](unsigned) {
        fairbfl::support::parallel_chunks(
            0, 100, 10,
            [&](std::size_t lo, std::size_t hi) {
                covered += static_cast<int>(hi - lo);
            },
            pool);
    });
    EXPECT_EQ(covered.load(), 400);
}

}  // namespace
