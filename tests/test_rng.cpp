// Determinism, distribution sanity, and stream independence of the RNG.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/rng.hpp"

namespace {

using fairbfl::support::Rng;

TEST(Rng, SameSeedSameSequence) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(123);
    Rng b(124);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Rng, ForkIsDeterministic) {
    Rng a = Rng::fork(7, 3, 11);
    Rng b = Rng::fork(7, 3, 11);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkStreamsAreIndependent) {
    // Different (stream, round) pairs must give different sequences.
    Rng a = Rng::fork(7, 3, 11);
    Rng b = Rng::fork(7, 4, 11);
    Rng c = Rng::fork(7, 3, 12);
    int ab = 0;
    int ac = 0;
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        if (va == b()) ++ab;
        if (va == c()) ++ac;
    }
    EXPECT_LE(ab, 1);
    EXPECT_LE(ac, 1);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(1);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(2);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng rng(3);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(4);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
    Rng rng(5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
    Rng rng(6);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(4.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(7);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(8);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(std::span<int>(v));
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
    Rng rng(9);
    const auto sample = rng.sample_indices(50, 10);
    EXPECT_EQ(sample.size(), 10U);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10U);
    for (const auto i : sample) EXPECT_LT(i, 50U);
}

TEST(Rng, SampleIndicesClampsOversizedRequest) {
    Rng rng(10);
    const auto sample = rng.sample_indices(5, 100);
    EXPECT_EQ(sample.size(), 5U);
}

// Property sweep: uniform_int stays in range for many (lo, hi) pairs.
class RngRangeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RngRangeTest, UniformIntInBounds) {
    const auto [lo, hi] = GetParam();
    Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.uniform_int(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngRangeTest,
    ::testing::Values(std::pair{0, 1}, std::pair{0, 2}, std::pair{-10, 10},
                      std::pair{100, 1000}, std::pair{-5, -1},
                      std::pair{0, 1000000}));

}  // namespace
