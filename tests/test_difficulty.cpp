// Difficulty retargeting: adjustment direction, clamping, convergence of
// the closed loop against the stochastic mining model.

#include <gtest/gtest.h>

#include "chain/difficulty.hpp"
#include "chain/pow.hpp"
#include "support/stats.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::support::Rng;

TEST(Retarget, NoChangeBeforeWindowFills) {
    ch::DifficultyRetargeter retargeter(1000, {.window = 4});
    retargeter.observe_interval(0.1);
    retargeter.observe_interval(0.1);
    retargeter.observe_interval(0.1);
    EXPECT_EQ(retargeter.difficulty(), 1000U);
    EXPECT_EQ(retargeter.retarget_count(), 0U);
}

TEST(Retarget, FastBlocksRaiseDifficulty) {
    ch::DifficultyRetargeter retargeter(
        1000, {.target_interval_s = 3.0, .window = 4, .max_step = 8.0});
    for (int i = 0; i < 4; ++i) retargeter.observe_interval(1.0);
    // Blocks were 3x too fast -> difficulty x3.
    EXPECT_EQ(retargeter.difficulty(), 3000U);
    EXPECT_EQ(retargeter.retarget_count(), 1U);
}

TEST(Retarget, SlowBlocksLowerDifficulty) {
    ch::DifficultyRetargeter retargeter(
        1000, {.target_interval_s = 3.0, .window = 4, .max_step = 8.0});
    for (int i = 0; i < 4; ++i) retargeter.observe_interval(6.0);
    EXPECT_EQ(retargeter.difficulty(), 500U);
}

TEST(Retarget, StepIsClamped) {
    ch::DifficultyRetargeter retargeter(
        1000, {.target_interval_s = 3.0, .window = 2, .max_step = 4.0});
    retargeter.observe_interval(1e-6);
    retargeter.observe_interval(1e-6);
    EXPECT_EQ(retargeter.difficulty(), 4000U);  // not x3e6
    retargeter.observe_interval(1e9);
    retargeter.observe_interval(1e9);
    EXPECT_EQ(retargeter.difficulty(), 1000U);  // back down by /4
}

TEST(Retarget, RespectsBounds) {
    ch::RetargetParams params;
    params.target_interval_s = 3.0;
    params.window = 2;
    params.max_step = 1000.0;
    params.min_difficulty = 100;
    params.max_difficulty = 5000;
    ch::DifficultyRetargeter retargeter(1000, params);
    retargeter.observe_interval(1e-9);
    retargeter.observe_interval(1e-9);
    EXPECT_EQ(retargeter.difficulty(), 5000U);
    for (int i = 0; i < 10; ++i) retargeter.observe_interval(1e9);
    EXPECT_EQ(retargeter.difficulty(), 100U);
}

TEST(Retarget, ClosedLoopConvergesToTargetInterval) {
    // Feed the retargeter the exponential solve times its own difficulty
    // produces; the loop should settle near the target interval.
    const double hashrate = 1e6;
    const double target = 3.0;
    ch::DifficultyRetargeter retargeter(
        50'000,  // deliberately ~60x too easy
        {.target_interval_s = target, .window = 8, .max_step = 4.0});
    Rng rng(7);

    fairbfl::support::RunningStats late_intervals;
    for (int block = 0; block < 4000; ++block) {
        const double interval = ch::sample_mining_seconds(
            hashrate, retargeter.difficulty(), rng);
        retargeter.observe_interval(interval);
        if (block > 3000) late_intervals.add(interval);
    }
    EXPECT_GT(retargeter.retarget_count(), 100U);
    EXPECT_NEAR(late_intervals.mean(), target, 0.5);
}

}  // namespace
