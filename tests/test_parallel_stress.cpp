// Work-stealing scheduler stress: nested fan-out, concurrent run_suite-style
// callers, cross-pool nesting, exception propagation through nested forks.
//
// Built both in the regular suite and under -fsanitize=thread (the CI tsan
// job), so keep every assertion data-race-free: shared state is atomic or
// joined before reads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/parallel.hpp"

namespace {

using fairbfl::support::parallel_chunks;
using fairbfl::support::parallel_for;
using fairbfl::support::ThreadPool;

TEST(WorkStealing, NestedParallelForUsesMultipleWorkers) {
    // The acceptance criterion for the scheduler refactor: an inner
    // parallel_for issued from inside a pool task must fan out to idle
    // workers instead of running inline on the forking thread.  Inner
    // iterations sleep so any other worker has ample time to steal; a few
    // attempts absorb scheduler noise on single-core machines.
    ThreadPool pool(4);
    bool multi_worker_seen = false;
    for (int attempt = 0; attempt < 3 && !multi_worker_seen; ++attempt) {
        std::set<std::thread::id> inner_threads;
        std::mutex mutex;
        pool.run([&](unsigned worker) {
            if (worker != 0) return;  // leave three workers idle
            parallel_for(0, 48, [&](std::size_t) {
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
                const std::lock_guard lock(mutex);
                inner_threads.insert(std::this_thread::get_id());
            }, pool);
        });
        multi_worker_seen = inner_threads.size() >= 2;
    }
    EXPECT_TRUE(multi_worker_seen)
        << "nested parallel_for never left the forking thread";
}

TEST(WorkStealing, ConcurrentSuitesWithNestedLoopsComplete) {
    // run_suite's shape: pool workers pull "systems" off a shared counter,
    // and each system runs its own inner parallel_for on the same pool.
    // The old scheduler forced every inner loop inline; the new one must
    // interleave all of it without deadlock and without losing iterations.
    ThreadPool pool(4);
    constexpr std::size_t kSystems = 12;
    constexpr std::size_t kItems = 500;

    for (int repeat = 0; repeat < 5; ++repeat) {
        std::vector<std::atomic<std::uint64_t>> sums(kSystems);
        std::atomic<std::size_t> next{0};
        pool.run([&](unsigned) {
            for (;;) {
                const std::size_t system = next.fetch_add(1);
                if (system >= kSystems) return;
                parallel_for(0, kItems, [&](std::size_t i) {
                    sums[system].fetch_add(i + 1);
                }, pool);
            }
        });
        for (std::size_t s = 0; s < kSystems; ++s)
            ASSERT_EQ(sums[s].load(), kItems * (kItems + 1) / 2)
                << "repeat " << repeat << " system " << s;
    }
}

TEST(WorkStealing, ConcurrentExternalCallersShareOnePool) {
    // Multiple non-worker threads forking into the same pool at once: the
    // old implementation serialized whole fork/join cycles on a mutex; the
    // new one interleaves tasks.  Every caller must still see its own loop
    // complete exactly.
    ThreadPool pool(4);
    constexpr std::size_t kCallers = 6;
    constexpr std::size_t kItems = 400;
    std::vector<std::uint64_t> sums(kCallers, 0);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            std::atomic<std::uint64_t> sum{0};
            parallel_for(0, kItems, [&](std::size_t i) {
                sum.fetch_add(i * i);
            }, pool);
            sums[c] = sum.load();
        });
    }
    for (auto& t : callers) t.join();
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kItems; ++i) expected += i * i;
    for (std::size_t c = 0; c < kCallers; ++c)
        EXPECT_EQ(sums[c], expected) << "caller " << c;
}

TEST(WorkStealing, NestedChunksInsideConcurrentOuterTasks) {
    ThreadPool pool(3);
    std::atomic<std::uint64_t> covered{0};
    pool.run([&](unsigned) {
        parallel_chunks(0, 1000, 64, [&](std::size_t lo, std::size_t hi) {
            covered.fetch_add(hi - lo);
        }, pool);
    });
    // Each of the three outer bodies covers its full range once.
    EXPECT_EQ(covered.load(), 3000U);
}

TEST(WorkStealing, ExceptionFromNestedForkPropagatesThroughOuterRun) {
    ThreadPool pool(4);
    std::atomic<int> outer_done{0};
    EXPECT_THROW(
        pool.run([&](unsigned worker) {
            if (worker == 1) {
                parallel_for(0, 64, [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("inner boom");
                }, pool);
            }
            outer_done.fetch_add(1);
        }),
        std::runtime_error);
    // The pool must stay usable after the failed cycle.
    std::atomic<int> count{0};
    pool.run([&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 4);
}

TEST(WorkStealing, CrossPoolNestingCompletes) {
    // A task of pool A forking into pool B: the old rule degraded this
    // inline to dodge a cross-pool deadlock; the scheduler now lets B's
    // idle workers take the tasks while A's forker helps B drain.
    ThreadPool pool_a(3);
    ThreadPool pool_b(3);
    std::atomic<std::uint64_t> total{0};
    pool_a.run([&](unsigned) {
        parallel_for(0, 300, [&](std::size_t i) {
            total.fetch_add(i);
        }, pool_b);
    });
    EXPECT_EQ(total.load(), 3ULL * (299 * 300 / 2));
}

TEST(WorkStealing, DeepNestingDoesNotDeadlock) {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> leaves{0};
    pool.run([&](unsigned) {
        parallel_for(0, 4, [&](std::size_t) {
            parallel_for(0, 4, [&](std::size_t) {
                parallel_for(0, 8, [&](std::size_t) {
                    leaves.fetch_add(1);
                }, pool);
            }, pool);
        }, pool);
    });
    // 4 outer bodies x 4 x 4 x 8 leaves.
    EXPECT_EQ(leaves.load(), 4U * 4U * 4U * 8U);
}

}  // namespace
