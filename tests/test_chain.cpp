// Blockchain: validation verdicts, side branches, longest-chain reorgs,
// signature enforcement, and global-gradient lookup.

#include <gtest/gtest.h>

#include "chain/chain.hpp"

namespace {

namespace ch = fairbfl::chain;
using fairbfl::crypto::KeyStore;

ch::Block child_of(const ch::Block& parent, std::uint64_t salt = 0) {
    ch::Block block;
    block.header.index = parent.header.index + 1;
    block.header.prev_hash = parent.header.hash();
    block.header.difficulty = 1;
    block.header.timestamp_ms = salt;  // differentiates siblings
    block.seal_transactions();
    return block;
}

TEST(Chain, StartsAtGenesis) {
    ch::Blockchain chain(7);
    EXPECT_EQ(chain.height(), 1U);
    EXPECT_EQ(chain.tip().header.index, 0U);
    EXPECT_TRUE(chain.validate_full_chain());
}

TEST(Chain, AppendsValidBlocks) {
    ch::Blockchain chain(7);
    ch::Block b1 = child_of(chain.tip());
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kAccepted);
    ch::Block b2 = child_of(chain.tip(), 1);
    EXPECT_EQ(chain.submit(b2), ch::BlockVerdict::kAccepted);
    EXPECT_EQ(chain.height(), 3U);
    EXPECT_TRUE(chain.validate_full_chain());
}

TEST(Chain, RejectsDuplicates) {
    ch::Blockchain chain(7);
    const ch::Block b1 = child_of(chain.tip());
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kAccepted);
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kDuplicate);
}

TEST(Chain, RejectsUnknownParent) {
    ch::Blockchain chain(7);
    ch::Block orphan = child_of(chain.tip());
    orphan.header.prev_hash[0] ^= 1;
    EXPECT_EQ(chain.submit(orphan), ch::BlockVerdict::kBadParent);
}

TEST(Chain, RejectsBadIndex) {
    ch::Blockchain chain(7);
    ch::Block b1 = child_of(chain.tip());
    b1.header.index = 5;
    b1.seal_transactions();
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kBadIndex);
}

TEST(Chain, RejectsBadMerkleRoot) {
    ch::Blockchain chain(7);
    ch::Block b1 = child_of(chain.tip());
    b1.transactions.push_back(ch::make_reward_tx(0, 0, 1, 1.0));
    // Deliberately NOT resealed.
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kBadMerkle);
}

TEST(Chain, EnforcesPowWhenEnabled) {
    ch::Blockchain chain(7);
    ch::Block b1 = child_of(chain.tip());
    b1.header.difficulty = ~0ULL;  // impossible target, nonce not mined
    b1.seal_transactions();
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kBadPow);
    chain.set_check_pow(false);
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kAccepted);
}

TEST(Chain, SideBranchThenReorg) {
    ch::Blockchain chain(7);
    const ch::Block genesis = chain.genesis();
    // Main: g -> a1 -> a2.
    const ch::Block a1 = child_of(genesis, 1);
    ASSERT_EQ(chain.submit(a1), ch::BlockVerdict::kAccepted);
    const ch::Block a2 = child_of(a1, 2);
    ASSERT_EQ(chain.submit(a2), ch::BlockVerdict::kAccepted);
    // Fork from genesis: g -> b1 (shorter: side branch).
    const ch::Block b1 = child_of(genesis, 3);
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kAcceptedSideBranch);
    EXPECT_EQ(chain.tip().header.hash(), a2.header.hash());
    EXPECT_EQ(chain.orphaned_blocks(), 1U);
    // Extend the fork past the main chain: b2, b3 -> reorg.
    const ch::Block b2 = child_of(b1, 4);
    EXPECT_EQ(chain.submit(b2), ch::BlockVerdict::kAcceptedSideBranch);
    const ch::Block b3 = child_of(b2, 5);
    EXPECT_EQ(chain.submit(b3), ch::BlockVerdict::kAcceptedReorg);
    EXPECT_EQ(chain.tip().header.hash(), b3.header.hash());
    EXPECT_EQ(chain.height(), 4U);  // g, b1, b2, b3
    EXPECT_EQ(chain.reorg_count(), 1U);
    EXPECT_EQ(chain.orphaned_blocks(), 2U);  // a1, a2 abandoned
    EXPECT_TRUE(chain.validate_full_chain());
}

TEST(Chain, TieKeepsIncumbent) {
    ch::Blockchain chain(7);
    const ch::Block a1 = child_of(chain.genesis(), 1);
    ASSERT_EQ(chain.submit(a1), ch::BlockVerdict::kAccepted);
    const ch::Block b1 = child_of(chain.genesis(), 2);  // same height
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kAcceptedSideBranch);
    EXPECT_EQ(chain.tip().header.hash(), a1.header.hash());
}

TEST(Chain, SignatureEnforcement) {
    KeyStore keys(3, 384);
    keys.register_node(1);
    ch::Blockchain chain(7, &keys);
    ch::Block b1 = child_of(chain.tip());
    ch::Transaction tx = ch::make_gradient_tx(ch::TxKind::kLocalGradient, 1,
                                              0, std::vector<float>{1.0F});
    // Unsigned transaction -> rejected.
    b1.transactions.push_back(tx);
    b1.seal_transactions();
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kBadSignature);
    // Signed -> accepted.
    ch::sign_transaction(b1.transactions[0], keys);
    b1.seal_transactions();
    EXPECT_EQ(chain.submit(b1), ch::BlockVerdict::kAccepted);
}

TEST(Chain, LatestGlobalGradientFindsNewest) {
    ch::Blockchain chain(7);
    EXPECT_FALSE(chain.latest_global_gradient().has_value());

    ch::Block b1 = child_of(chain.tip(), 1);
    b1.transactions.push_back(ch::make_gradient_tx(
        ch::TxKind::kGlobalUpdate, 0, 0, std::vector<float>{1.0F}));
    b1.seal_transactions();
    ASSERT_EQ(chain.submit(b1), ch::BlockVerdict::kAccepted);

    ch::Block b2 = child_of(chain.tip(), 2);  // no gradient in this one
    b2.seal_transactions();
    ASSERT_EQ(chain.submit(b2), ch::BlockVerdict::kAccepted);

    ch::Block b3 = child_of(chain.tip(), 3);
    b3.transactions.push_back(ch::make_gradient_tx(
        ch::TxKind::kGlobalUpdate, 0, 2, std::vector<float>{3.0F, 4.0F}));
    b3.seal_transactions();
    ASSERT_EQ(chain.submit(b3), ch::BlockVerdict::kAccepted);

    const auto gradient = chain.latest_global_gradient();
    ASSERT_TRUE(gradient.has_value());
    EXPECT_EQ(*gradient, (std::vector<float>{3.0F, 4.0F}));
}

}  // namespace
