// Randomized property suites: invariants that must hold for *every* input,
// checked across many seeded random instances (parameterized by seed).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "chain/chain.hpp"
#include "cluster/dbscan.hpp"
#include "core/round_engine.hpp"
#include "crypto/bigint.hpp"
#include "fl/aggregation.hpp"
#include "fl/gradient.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using fairbfl::support::Rng;
namespace ch = fairbfl::chain;
namespace cl = fairbfl::cluster;
namespace core = fairbfl::core;
namespace fl = fairbfl::fl;
using fairbfl::crypto::BigUint;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Serialization fuzz: random transactions and blocks must round-trip.

ch::Transaction random_tx(Rng& rng) {
    ch::Transaction tx;
    tx.kind = static_cast<ch::TxKind>(rng.uniform_int(0, 3));
    tx.origin = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
    tx.round = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    tx.payload.resize(static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : tx.payload) b = static_cast<std::uint8_t>(rng() & 0xFF);
    tx.signature.resize(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : tx.signature) b = static_cast<std::uint8_t>(rng() & 0xFF);
    return tx;
}

TEST_P(SeededProperty, TransactionRoundTripAndSizeInvariant) {
    Rng rng(GetParam());
    for (int i = 0; i < 40; ++i) {
        const ch::Transaction tx = random_tx(rng);
        const auto encoded = tx.encode();
        EXPECT_EQ(encoded.size(), tx.size_bytes());
        ch::ByteReader reader(encoded);
        EXPECT_EQ(ch::Transaction::decode(reader), tx);
        EXPECT_TRUE(reader.exhausted());
    }
}

TEST_P(SeededProperty, BlockRoundTripAndMerkleDetectsAnyTamper) {
    Rng rng(GetParam());
    ch::Block block;
    const auto tx_count = static_cast<std::size_t>(rng.uniform_int(1, 12));
    for (std::size_t i = 0; i < tx_count; ++i)
        block.transactions.push_back(random_tx(rng));
    block.header.index = 3;
    block.seal_transactions();

    const auto encoded = block.encode();
    ch::ByteReader reader(encoded);
    EXPECT_EQ(ch::Block::decode(reader), block);

    // Tamper with any single transaction byte: merkle consistency breaks.
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(tx_count) - 1));
    if (!block.transactions[victim].payload.empty()) {
        block.transactions[victim].payload[0] ^= 0x01;
        EXPECT_FALSE(block.merkle_consistent());
    }
}

// ---------------------------------------------------------------------------
// Blockchain fork torture: submit a random block-tree; the best chain must
// be a longest root-to-leaf path and survive full validation.

TEST_P(SeededProperty, RandomForkTreeResolvesToLongestPath) {
    Rng rng(GetParam());
    ch::Blockchain chain(5);
    chain.set_check_pow(false);

    // Grow a random tree: each new block picks a random known parent.
    std::vector<ch::Block> known{chain.genesis()};
    std::size_t deepest = 1;
    for (int i = 0; i < 40; ++i) {
        const auto parent_index = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(known.size()) - 1));
        const ch::Block& parent = known[parent_index];
        ch::Block child;
        child.header.index = parent.header.index + 1;
        child.header.prev_hash = parent.header.hash();
        child.header.timestamp_ms = static_cast<std::uint64_t>(i) + 1;
        child.seal_transactions();
        const auto verdict = chain.submit(child);
        EXPECT_TRUE(verdict == ch::BlockVerdict::kAccepted ||
                    verdict == ch::BlockVerdict::kAcceptedSideBranch ||
                    verdict == ch::BlockVerdict::kAcceptedReorg)
            << ch::to_string(verdict);
        known.push_back(child);
        deepest = std::max(deepest,
                           static_cast<std::size_t>(child.header.index) + 1);
    }
    EXPECT_EQ(chain.height(), deepest);  // longest-chain rule
    EXPECT_EQ(chain.total_blocks_known(), known.size());
    EXPECT_TRUE(chain.validate_full_chain());
    // Parent links along the best chain are intact by construction of
    // validate_full_chain; additionally indices must be 0..height-1.
    for (std::size_t h = 0; h < chain.height(); ++h)
        EXPECT_EQ(chain.at(h).header.index, h);
}

// ---------------------------------------------------------------------------
// BigUint algebra.

TEST_P(SeededProperty, BigUintRingAxioms) {
    Rng rng(GetParam());
    for (int i = 0; i < 15; ++i) {
        const auto bits_a =
            static_cast<std::size_t>(rng.uniform_int(8, 192));
        const auto bits_b =
            static_cast<std::size_t>(rng.uniform_int(8, 192));
        const BigUint a = BigUint::random_bits(bits_a, rng);
        const BigUint b = BigUint::random_bits(bits_b, rng);
        const BigUint c = BigUint::random_bits(32, rng);

        EXPECT_EQ(a + b, b + a);                    // commutativity
        EXPECT_EQ((a + b) - b, a);                  // additive inverse
        EXPECT_EQ(a * b, b * a);                    // commutativity
        EXPECT_EQ(a * (b + c), a * b + a * c);      // distributivity
        const auto [q, r] = (a * b).divmod(b);
        EXPECT_EQ(q, a);                            // exact division
        EXPECT_TRUE(r.is_zero());
    }
}

TEST_P(SeededProperty, ModExpExponentAdditionLaw) {
    Rng rng(GetParam());
    const BigUint modulus = BigUint::random_bits(64, rng) + BigUint(1);
    for (int i = 0; i < 8; ++i) {
        const BigUint base = BigUint::random_bits(32, rng);
        const BigUint x = BigUint::random_bits(16, rng);
        const BigUint y = BigUint::random_bits(16, rng);
        // a^(x+y) == a^x * a^y (mod m)
        const BigUint lhs = BigUint::mod_pow(base, x + y, modulus);
        const BigUint rhs =
            (BigUint::mod_pow(base, x, modulus) *
             BigUint::mod_pow(base, y, modulus)) %
            modulus;
        EXPECT_EQ(lhs, rhs);
    }
}

// ---------------------------------------------------------------------------
// GradientSet (Procedure III) semantics.

fl::GradientUpdate random_update(Rng& rng, std::uint32_t max_client = 20) {
    fl::GradientUpdate u;
    u.client =
        static_cast<fl::NodeId>(rng.uniform_int(0, max_client));
    u.weights = {static_cast<float>(rng.normal()),
                 static_cast<float>(rng.normal())};
    u.num_samples = static_cast<std::size_t>(rng.uniform_int(1, 100));
    return u;
}

TEST_P(SeededProperty, GradientSetMergeIsCommutativeAndIdempotent) {
    Rng rng(GetParam());
    fl::GradientSet a;
    fl::GradientSet b;
    for (int i = 0; i < 15; ++i) (void)a.add(random_update(rng));
    for (int i = 0; i < 15; ++i) (void)b.add(random_update(rng));

    fl::GradientSet ab = a;
    (void)ab.merge(b);
    fl::GradientSet ba = b;
    (void)ba.merge(a);
    ab.canonicalize();
    ba.canonicalize();
    // Same client set either way (payloads may differ for shared clients:
    // first-writer-wins, which is exactly the paper's "append if absent").
    ASSERT_EQ(ab.size(), ba.size());
    for (std::size_t i = 0; i < ab.size(); ++i)
        EXPECT_EQ(ab.updates()[i].client, ba.updates()[i].client);

    // Idempotence: merging again adds nothing.
    EXPECT_EQ(ab.merge(b), 0U);
    EXPECT_EQ(ab.merge(a), 0U);
}

// ---------------------------------------------------------------------------
// Aggregation rules.

TEST_P(SeededProperty, AggregationPermutationInvariance) {
    Rng rng(GetParam());
    std::vector<fl::GradientUpdate> updates;
    std::vector<double> theta;
    for (std::uint32_t i = 0; i < 8; ++i) {
        auto u = random_update(rng);
        u.client = i;
        updates.push_back(std::move(u));
        theta.push_back(rng.uniform(0.1, 1.0));
    }
    const auto mean1 = fl::simple_average(updates);
    const auto fair1 = fl::fair_aggregate(updates, theta);

    // Shuffle both consistently.
    std::vector<std::size_t> order(updates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(std::span<std::size_t>(order));
    std::vector<fl::GradientUpdate> shuffled;
    std::vector<double> shuffled_theta;
    for (const auto i : order) {
        shuffled.push_back(updates[i]);
        shuffled_theta.push_back(theta[i]);
    }
    const auto mean2 = fl::simple_average(shuffled);
    const auto fair2 = fl::fair_aggregate(shuffled, shuffled_theta);
    for (std::size_t d = 0; d < mean1.size(); ++d) {
        EXPECT_NEAR(mean1[d], mean2[d], 1e-5);
        EXPECT_NEAR(fair1[d], fair2[d], 1e-5);
    }
}

TEST_P(SeededProperty, AggregationConvexHullProperty) {
    // Any normalized-weight aggregate lies inside the coordinate-wise
    // min/max envelope of the inputs.
    Rng rng(GetParam());
    std::vector<fl::GradientUpdate> updates;
    std::vector<double> weights;
    for (std::uint32_t i = 0; i < 6; ++i) {
        auto u = random_update(rng);
        u.client = i;
        updates.push_back(std::move(u));
        weights.push_back(rng.uniform(0.01, 2.0));
    }
    const auto out = fl::weighted_aggregate(updates, weights);
    for (std::size_t d = 0; d < out.size(); ++d) {
        float lo = updates[0].weights[d];
        float hi = lo;
        for (const auto& u : updates) {
            lo = std::min(lo, u.weights[d]);
            hi = std::max(hi, u.weights[d]);
        }
        EXPECT_GE(out[d], lo - 1e-4F);
        EXPECT_LE(out[d], hi + 1e-4F);
    }
}

// ---------------------------------------------------------------------------
// DBSCAN structural invariants.

TEST_P(SeededProperty, DbscanClustersContainACorePoint) {
    Rng rng(GetParam());
    std::vector<std::vector<float>> points;
    const auto n = static_cast<std::size_t>(rng.uniform_int(5, 40));
    for (std::size_t i = 0; i < n; ++i) {
        points.push_back({static_cast<float>(rng.normal()),
                          static_cast<float>(rng.normal())});
    }
    const cl::DbscanParams params{.eps = 0.8,
                                  .min_pts = 3,
                                  .metric = cl::Metric::kEuclidean};
    const cl::Dbscan dbscan(params);
    const auto result = dbscan.cluster(points);

    const cl::DistanceMatrix dist(params.metric, points);
    auto neighbour_count = [&](std::size_t i) {
        std::size_t count = 0;
        for (std::size_t j = 0; j < n; ++j)
            if (dist.at(i, j) <= params.eps) ++count;
        return count;
    };

    for (int cluster_id = 0; cluster_id < result.num_clusters; ++cluster_id) {
        const auto members = result.members_of(cluster_id);
        ASSERT_FALSE(members.empty());
        bool has_core = false;
        for (const auto m : members)
            if (neighbour_count(m) >= params.min_pts) has_core = true;
        EXPECT_TRUE(has_core) << "cluster " << cluster_id;
        // Every member is within eps of some member (connectivity witness).
        for (const auto m : members) {
            bool near_member = members.size() == 1;
            for (const auto other : members) {
                if (other != m && dist.at(m, other) <= params.eps)
                    near_member = true;
            }
            EXPECT_TRUE(near_member);
        }
    }

    // Noise points are never cores.
    for (std::size_t i = 0; i < n; ++i) {
        if (result.labels[i] == cl::ClusterResult::kNoise)
            EXPECT_LT(neighbour_count(i), params.min_pts);
    }
}

// ---------------------------------------------------------------------------
// ConvergenceDetector against a straightforward reference implementation.

TEST_P(SeededProperty, ConvergenceMatchesReference) {
    Rng rng(GetParam());
    std::vector<double> series;
    for (int i = 0; i < 60; ++i) {
        // Mixture of jumps and plateaus.
        series.push_back(rng.bernoulli(0.4) ? rng.uniform()
                                            : 0.9 + 0.001 * rng.normal());
    }

    fairbfl::support::ConvergenceDetector detector(0.005, 5);
    std::size_t detected = fairbfl::support::ConvergenceDetector::npos;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (detector.add(series[i]) &&
            detected == fairbfl::support::ConvergenceDetector::npos)
            detected = i;
    }

    // Reference: first index with 5 consecutive |delta| <= 0.005.
    std::size_t reference = fairbfl::support::ConvergenceDetector::npos;
    std::size_t streak = 0;
    for (std::size_t i = 1; i < series.size(); ++i) {
        streak = std::abs(series[i] - series[i - 1]) <= 0.005 ? streak + 1 : 0;
        if (streak >= 5) {
            reference = i;
            break;
        }
    }
    EXPECT_EQ(detected, reference);
}

// ---------------------------------------------------------------------------
// Async round engine: for every random (quorum, deadline, arrival
// schedule) draw, collection triggers with at least quorum_needed
// on-time updates unless the deadline fired or the schedule drained, it
// never waits past a configured deadline, and every delivery is
// accounted for exactly once.

TEST_P(SeededProperty, RoundEngineQuorumDeadlineInvariants) {
    Rng rng(GetParam());
    for (int iter = 0; iter < 25; ++iter) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(0, 20));
        core::RoundConfig config;
        config.quorum_fraction = 0.05 * rng.uniform_int(1, 24);  // 0.05..1.2
        config.deadline_ns =
            rng.bernoulli(0.3)
                ? 0
                : static_cast<core::VirtualTime>(
                      rng.uniform_int(1, 1'000'000));

        std::vector<core::PendingDelivery> deliveries;
        std::vector<core::VirtualTime> arrival_of(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            arrival_of[i] = static_cast<core::VirtualTime>(
                rng.uniform_int(0, 1'200'000));
            deliveries.push_back({i, arrival_of[i], false});
            if (rng.bernoulli(0.2))  // occasional replayed upload
                deliveries.push_back(
                    {i,
                     arrival_of[i] + static_cast<core::VirtualTime>(
                                         rng.uniform_int(0, 500'000)),
                     true});
        }
        const std::size_t total = deliveries.size();

        core::RoundEngine engine(config);
        const auto out = engine.collect(std::move(deliveries));

        EXPECT_EQ(out.quorum_needed, config.quorum_count(n));
        // Conservation: every delivery lands in exactly one bucket.
        EXPECT_EQ(out.on_time.size() + out.late.size() +
                      out.duplicates_dropped,
                  total);
        std::set<std::size_t> ids(out.on_time.begin(), out.on_time.end());
        ids.insert(out.late.begin(), out.late.end());
        EXPECT_EQ(ids.size(), out.on_time.size() + out.late.size());

        // Never waits past a configured deadline.
        if (config.deadline_ns > 0)
            EXPECT_LE(out.trigger_ns, config.deadline_ns);
        // Never aggregates fewer than quorum before the deadline: the
        // only ways to trigger short of quorum are the deadline firing
        // or the whole schedule draining.
        if (out.quorum_met)
            EXPECT_GE(out.on_time.size(), out.quorum_needed);
        else
            EXPECT_TRUE(out.deadline_fired || out.on_time.size() == n);

        // On-time/late split is exactly the trigger-time cut.
        EXPECT_LE(out.first_arrival_ns, out.trigger_ns);
        for (const auto id : out.on_time)
            EXPECT_LE(arrival_of[id], out.trigger_ns);
        for (const auto id : out.late)
            EXPECT_GE(arrival_of[id], out.trigger_ns);
        EXPECT_GE(engine.loop().now(), out.trigger_ns);
    }
}

// The virtual clock never runs backwards, even when callbacks schedule
// events at already-elapsed times (they clamp to "now").

TEST_P(SeededProperty, EventLoopVirtualTimeIsMonotone) {
    Rng rng(GetParam());
    core::EventLoop loop;
    std::vector<core::VirtualTime> observed;
    int spawned = 0;
    std::function<void(core::EventLoop&)> visit =
        [&](core::EventLoop& inner) {
            observed.push_back(inner.now());
            if (spawned < 200 && rng.bernoulli(0.6)) {
                ++spawned;
                // Half of these land in the loop's past on purpose.
                inner.schedule_at(static_cast<core::VirtualTime>(
                                      rng.uniform_int(0, 1'000'000)),
                                  visit);
            }
        };
    for (int i = 0; i < 10; ++i)
        loop.schedule_at(
            static_cast<core::VirtualTime>(rng.uniform_int(0, 1'000'000)),
            visit);
    loop.run_until_idle();

    ASSERT_GE(observed.size(), 10U);
    for (std::size_t i = 1; i < observed.size(); ++i)
        EXPECT_GE(observed[i], observed[i - 1]) << "clock ran backwards";
    EXPECT_EQ(loop.pending(), 0U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
