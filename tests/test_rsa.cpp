// RSA keygen / sign / verify / encrypt, including tamper rejection and a
// parameterized key-size sweep.

#include <gtest/gtest.h>

#include "crypto/rsa.hpp"

namespace {

namespace cr = fairbfl::crypto;
using fairbfl::support::Rng;

std::vector<std::uint8_t> bytes_of(std::string_view s) {
    return {s.begin(), s.end()};
}

TEST(Rsa, SignVerifyRoundTrip) {
    Rng rng(1);
    const auto keys = cr::generate_keypair(512, rng);
    const auto payload = bytes_of("gradient update for round 7");
    const auto signature = cr::sign_payload(keys.priv, payload);
    EXPECT_TRUE(cr::verify_payload(keys.pub, payload, signature));
}

TEST(Rsa, TamperedPayloadRejected) {
    Rng rng(2);
    const auto keys = cr::generate_keypair(512, rng);
    const auto payload = bytes_of("honest gradient");
    const auto signature = cr::sign_payload(keys.priv, payload);
    auto forged = payload;
    forged[0] ^= 1;
    EXPECT_FALSE(cr::verify_payload(keys.pub, forged, signature));
}

TEST(Rsa, TamperedSignatureRejected) {
    Rng rng(3);
    const auto keys = cr::generate_keypair(512, rng);
    const auto payload = bytes_of("honest gradient");
    auto signature = cr::sign_payload(keys.priv, payload);
    signature[signature.size() / 2] ^= 0x40;
    EXPECT_FALSE(cr::verify_payload(keys.pub, payload, signature));
}

TEST(Rsa, WrongKeyRejected) {
    Rng rng(4);
    const auto alice = cr::generate_keypair(512, rng);
    const auto mallory = cr::generate_keypair(512, rng);
    const auto payload = bytes_of("from alice");
    const auto signature = cr::sign_payload(alice.priv, payload);
    EXPECT_FALSE(cr::verify_payload(mallory.pub, payload, signature));
}

TEST(Rsa, WrongLengthSignatureRejected) {
    Rng rng(5);
    const auto keys = cr::generate_keypair(512, rng);
    const auto payload = bytes_of("x");
    auto signature = cr::sign_payload(keys.priv, payload);
    signature.pop_back();
    EXPECT_FALSE(cr::verify_payload(keys.pub, payload, signature));
    signature.push_back(0);
    signature.push_back(0);
    EXPECT_FALSE(cr::verify_payload(keys.pub, payload, signature));
}

TEST(Rsa, SignatureIsDeterministicPerKey) {
    Rng rng(6);
    const auto keys = cr::generate_keypair(512, rng);
    const auto payload = bytes_of("same message");
    EXPECT_EQ(cr::sign_payload(keys.priv, payload),
              cr::sign_payload(keys.priv, payload));
}

TEST(Rsa, EncryptDecryptRoundTrip) {
    Rng rng(7);
    const auto keys = cr::generate_keypair(512, rng);
    const auto message = bytes_of("symmetric session key: 0123456789abcdef");
    const auto ciphertext = cr::encrypt(keys.pub, message);
    EXPECT_EQ(ciphertext.size(), keys.pub.modulus_bytes());
    EXPECT_EQ(cr::decrypt(keys.priv, ciphertext), message);
}

TEST(Rsa, EncryptPreservesLeadingZeroBytes) {
    Rng rng(8);
    const auto keys = cr::generate_keypair(512, rng);
    const std::vector<std::uint8_t> message{0x00, 0x00, 0x01, 0x02};
    EXPECT_EQ(cr::decrypt(keys.priv, cr::encrypt(keys.pub, message)), message);
}

TEST(Rsa, EncryptRejectsOversizedMessage) {
    Rng rng(9);
    const auto keys = cr::generate_keypair(512, rng);
    const std::vector<std::uint8_t> big(keys.pub.modulus_bytes(), 0xAB);
    EXPECT_THROW((void)cr::encrypt(keys.pub, big), std::length_error);
}

TEST(Rsa, KeygenRejectsBadSizes) {
    Rng rng(10);
    EXPECT_THROW((void)cr::generate_keypair(64, rng), std::invalid_argument);
    EXPECT_THROW((void)cr::generate_keypair(513, rng), std::invalid_argument);
}

TEST(Rsa, KeygenIsDeterministicInSeed) {
    Rng a(42);
    Rng b(42);
    const auto ka = cr::generate_keypair(256, a);
    const auto kb = cr::generate_keypair(256, b);
    EXPECT_EQ(ka.pub.n, kb.pub.n);
    EXPECT_EQ(ka.priv.d, kb.priv.d);
}

// Sweep key sizes: modulus width exact, sign/verify works end to end.
class RsaKeySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaKeySizeTest, RoundTripAtSize) {
    const std::size_t bits = GetParam();
    Rng rng(bits);
    const auto keys = cr::generate_keypair(bits, rng);
    EXPECT_EQ(keys.pub.n.bit_length(), bits);
    const auto payload = bytes_of("sized payload");
    const auto signature = cr::sign_payload(keys.priv, payload);
    EXPECT_EQ(signature.size(), (bits + 7) / 8);
    EXPECT_TRUE(cr::verify_payload(keys.pub, payload, signature));
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaKeySizeTest,
                         ::testing::Values(384, 512, 768, 1024));

}  // namespace
