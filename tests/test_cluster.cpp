// Clustering: distances, DBSCAN separation/noise behaviour, k-means, and
// the adaptive-eps heuristic.

#include <gtest/gtest.h>

#include "cluster/dbscan.hpp"
#include "cluster/index.hpp"
#include "cluster/kmeans.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

namespace cl = fairbfl::cluster;
using fairbfl::support::Rng;

/// Two well-separated Gaussian blobs in 2D plus optional far outliers.
std::vector<std::vector<float>> two_blobs(std::size_t per_blob,
                                          std::size_t outliers,
                                          std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<float>> points;
    for (std::size_t i = 0; i < per_blob; ++i) {
        points.push_back({static_cast<float>(1.0 + 0.05 * rng.normal()),
                          static_cast<float>(0.0 + 0.05 * rng.normal())});
    }
    for (std::size_t i = 0; i < per_blob; ++i) {
        points.push_back({static_cast<float>(0.0 + 0.05 * rng.normal()),
                          static_cast<float>(1.0 + 0.05 * rng.normal())});
    }
    for (std::size_t i = 0; i < outliers; ++i) {
        points.push_back({static_cast<float>(-8.0 - rng.uniform()),
                          static_cast<float>(-8.0 - rng.uniform())});
    }
    return points;
}

TEST(Distance, MatrixIsSymmetricZeroDiagonal) {
    const auto points = two_blobs(5, 0, 1);
    const cl::DistanceMatrix m(cl::Metric::kEuclidean, points);
    ASSERT_EQ(m.size(), 10U);
    for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
        for (std::size_t j = 0; j < m.size(); ++j)
            EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
    }
}

TEST(Distance, MetricsDisagreeOnScaledVectors) {
    const std::vector<float> a{1.0F, 0.0F};
    const std::vector<float> b{10.0F, 0.0F};
    EXPECT_NEAR(cl::distance(cl::Metric::kCosine, a, b), 0.0, 1e-9);
    EXPECT_NEAR(cl::distance(cl::Metric::kEuclidean, a, b), 9.0, 1e-9);
}

TEST(Dbscan, SeparatesTwoBlobs) {
    const auto points = two_blobs(20, 0, 2);
    const cl::Dbscan dbscan(
        {.eps = 0.3, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    const auto result = dbscan.cluster(points);
    EXPECT_EQ(result.num_clusters, 2);
    // Points within a blob share a label; across blobs they differ.
    EXPECT_TRUE(result.same_cluster(0, 1));
    EXPECT_TRUE(result.same_cluster(20, 21));
    EXPECT_FALSE(result.same_cluster(0, 20));
}

TEST(Dbscan, FlagsOutliersAsNoise) {
    const auto points = two_blobs(20, 3, 3);
    const cl::Dbscan dbscan(
        {.eps = 0.3, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    const auto result = dbscan.cluster(points);
    for (std::size_t i = 40; i < 43; ++i)
        EXPECT_EQ(result.labels[i], cl::ClusterResult::kNoise) << i;
}

TEST(Dbscan, EverythingNoiseWhenEpsTiny) {
    const auto points = two_blobs(10, 0, 4);
    const cl::Dbscan dbscan(
        {.eps = 1e-9, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    const auto result = dbscan.cluster(points);
    EXPECT_EQ(result.num_clusters, 0);
    for (const int label : result.labels)
        EXPECT_EQ(label, cl::ClusterResult::kNoise);
}

TEST(Dbscan, OneClusterWhenEpsHuge) {
    const auto points = two_blobs(10, 2, 5);
    const cl::Dbscan dbscan(
        {.eps = 100.0, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    const auto result = dbscan.cluster(points);
    EXPECT_EQ(result.num_clusters, 1);
    EXPECT_EQ(result.members_of(0).size(), points.size());
}

TEST(Dbscan, EmptyInput) {
    const cl::Dbscan dbscan;
    const auto result = dbscan.cluster({});
    EXPECT_EQ(result.num_clusters, 0);
    EXPECT_TRUE(result.labels.empty());
}

TEST(Dbscan, CosineMetricGroupsByDirection) {
    // Same direction, very different magnitudes -> one cluster under cosine.
    std::vector<std::vector<float>> points;
    Rng rng(6);
    for (int i = 0; i < 10; ++i) {
        const auto scale = static_cast<float>(1.0 + 10.0 * rng.uniform());
        points.push_back({scale * 1.0F,
                          scale * (0.5F + 0.01F * static_cast<float>(
                                                      rng.normal()))});
    }
    for (int i = 0; i < 10; ++i) {
        const auto scale = static_cast<float>(1.0 + 10.0 * rng.uniform());
        points.push_back({-scale * 1.0F,
                          scale * (0.5F + 0.01F * static_cast<float>(
                                                      rng.normal()))});
    }
    const cl::Dbscan dbscan(
        {.eps = 0.05, .min_pts = 3, .metric = cl::Metric::kCosine});
    const auto result = dbscan.cluster(points);
    EXPECT_EQ(result.num_clusters, 2);
    EXPECT_TRUE(result.same_cluster(0, 5));
    EXPECT_FALSE(result.same_cluster(0, 15));
}

TEST(Dbscan, SuggestEpsSeparatesBlobGapsFromNeighbours) {
    const auto points = two_blobs(20, 0, 7);
    const double eps =
        cl::suggest_eps(points, 3, cl::Metric::kEuclidean);
    // Within-blob spacing ~0.05-0.2; across blobs ~1.4.
    EXPECT_GT(eps, 0.005);
    EXPECT_LT(eps, 1.0);
}

TEST(KMeans, SeparatesTwoBlobsEuclidean) {
    const auto points = two_blobs(20, 0, 8);
    const cl::KMeans kmeans({.k = 2,
                             .max_iterations = 50,
                             .metric = cl::Metric::kEuclidean,
                             .seed = 1});
    const auto result = kmeans.cluster(points);
    EXPECT_EQ(result.num_clusters, 2);
    EXPECT_TRUE(result.same_cluster(0, 1));
    EXPECT_TRUE(result.same_cluster(20, 25));
    EXPECT_FALSE(result.same_cluster(0, 20));
}

TEST(KMeans, NeverProducesNoise) {
    const auto points = two_blobs(15, 5, 9);
    const cl::KMeans kmeans({.k = 3, .metric = cl::Metric::kEuclidean});
    const auto result = kmeans.cluster(points);
    for (const int label : result.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, result.num_clusters);
    }
}

TEST(KMeans, ClampsKToPointCount) {
    const auto points = two_blobs(2, 0, 10);  // 4 points
    const cl::KMeans kmeans({.k = 10, .metric = cl::Metric::kEuclidean});
    const auto result = kmeans.cluster(points);
    EXPECT_LE(result.num_clusters, 4);
}

TEST(KMeans, DeterministicInSeed) {
    const auto points = two_blobs(20, 0, 11);
    const cl::KMeans a({.k = 2, .metric = cl::Metric::kEuclidean, .seed = 5});
    const cl::KMeans b({.k = 2, .metric = cl::Metric::kEuclidean, .seed = 5});
    EXPECT_EQ(a.cluster(points).labels, b.cluster(points).labels);
}

TEST(Distance, ParallelBuildBitIdenticalToSerial) {
    // The matrix fans rows out across the pool; every entry must be
    // identical under any thread count.
    const auto points = two_blobs(25, 3, 12);  // 53 points, 2 dims
    fairbfl::support::ThreadPool serial(1);
    fairbfl::support::ThreadPool parallel(4);
    for (const auto metric : {cl::Metric::kEuclidean, cl::Metric::kCosine}) {
        const cl::DistanceMatrix a(metric, points, serial);
        const cl::DistanceMatrix b(metric, points, parallel);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            for (std::size_t j = 0; j < a.size(); ++j)
                ASSERT_EQ(a.at(i, j), b.at(i, j)) << i << "," << j;
    }
}

TEST(Distance, CosineMatrixCachesNorms) {
    const auto points = two_blobs(4, 0, 13);
    const cl::DistanceMatrix cosine(cl::Metric::kCosine, points);
    EXPECT_EQ(cosine.norms().size(), points.size());
    const cl::DistanceMatrix euclid(cl::Metric::kEuclidean, points);
    EXPECT_TRUE(euclid.norms().empty());
    // Cached-norm entries must match the plain pairwise kernel exactly.
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t j = 0; j < points.size(); ++j)
            if (i != j)
                EXPECT_EQ(cosine.at(i, j),
                          cl::distance(cl::Metric::kCosine, points[i],
                                       points[j]));
}

TEST(Dbscan, PrebuiltIndexMatchesPointsPath) {
    const auto points = two_blobs(20, 3, 14);
    const cl::DbscanParams params{
        .eps = 0.3, .min_pts = 3, .metric = cl::Metric::kEuclidean};
    const cl::Dbscan dbscan(params);
    const cl::ExactIndex index(params.metric, points);
    const auto direct = dbscan.cluster(points);
    const auto reused = dbscan.cluster_with(index, points);
    EXPECT_EQ(direct.labels, reused.labels);
    EXPECT_EQ(direct.num_clusters, reused.num_clusters);
}

// The pre-GradientIndex seam survives as a shim for one release.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Dbscan, DeprecatedMatrixShimStillMatches) {
    const auto points = two_blobs(20, 3, 14);
    const cl::DbscanParams params{
        .eps = 0.3, .min_pts = 3, .metric = cl::Metric::kEuclidean};
    const cl::Dbscan dbscan(params);
    const cl::DistanceMatrix dist(params.metric, points);
    EXPECT_EQ(dbscan.cluster_with(dist, points).labels,
              dbscan.cluster(points).labels);
}
#pragma GCC diagnostic pop

TEST(Dbscan, MismatchedIndexMetricFallsBackToRebuild) {
    const auto points = two_blobs(20, 0, 15);
    const cl::Dbscan dbscan(
        {.eps = 0.3, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    // Wrong-metric index: correctness demands a rebuild, not reuse.
    const cl::ExactIndex cosine(cl::Metric::kCosine, points);
    const auto reused = dbscan.cluster_with(cosine, points);
    EXPECT_EQ(reused.labels, dbscan.cluster(points).labels);
}

TEST(Dbscan, SuggestEpsMatrixAndIndexOverloadsMatchPointsOverload) {
    const auto points = two_blobs(20, 0, 16);
    for (const auto metric : {cl::Metric::kEuclidean, cl::Metric::kCosine}) {
        const cl::DistanceMatrix dist(metric, points);
        const cl::ExactIndex index(metric, points);
        EXPECT_EQ(cl::suggest_eps(points, 3, metric),
                  cl::suggest_eps(dist, 3));
        EXPECT_EQ(cl::suggest_eps(points, 3, metric),
                  cl::suggest_eps(index, 3));
    }
}

TEST(Dbscan, SuggestEpsTooFewPointsReturnsZero) {
    // No k-distance sample exists at n <= min_pts: the heuristic must not
    // invent a radius (the old 0.1 fallback clustered tiny rounds on an
    // arbitrary eps).
    const auto points = two_blobs(1, 1, 19);  // 3 points
    EXPECT_EQ(cl::suggest_eps(points, 3, cl::Metric::kEuclidean), 0.0);
    EXPECT_EQ(cl::suggest_eps({}, 3, cl::Metric::kEuclidean), 0.0);
    const cl::DistanceMatrix dist(cl::Metric::kEuclidean, points);
    EXPECT_EQ(cl::suggest_eps(dist, 3), 0.0);
    const cl::ExactIndex index(cl::Metric::kEuclidean, points);
    EXPECT_EQ(cl::suggest_eps(index, 3), 0.0);
}

TEST(Dbscan, SinglePointIsNoise) {
    const std::vector<std::vector<float>> points{{1.0F, 2.0F}};
    const cl::Dbscan dbscan(
        {.eps = 0.5, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    const auto result = dbscan.cluster(points);
    EXPECT_EQ(result.num_clusters, 0);
    ASSERT_EQ(result.labels.size(), 1U);
    EXPECT_EQ(result.labels[0], cl::ClusterResult::kNoise);
}

TEST(Dbscan, FewerPointsThanMinPtsAllNoise) {
    const auto points = two_blobs(1, 0, 20);  // 2 points < min_pts
    const cl::Dbscan dbscan(
        {.eps = 100.0, .min_pts = 3, .metric = cl::Metric::kEuclidean});
    const auto result = dbscan.cluster(points);
    EXPECT_EQ(result.num_clusters, 0);
    for (const int label : result.labels)
        EXPECT_EQ(label, cl::ClusterResult::kNoise);
}

TEST(KMeans, PrebuiltIndexSeedingSeparatesBlobsDeterministically) {
    // Index seeding may legitimately pick a different (equally valid)
    // seed than the points path in ulp-tight ties (see kmeans.hpp), so
    // assert the partition structure and the path's own determinism
    // rather than exact label equality across paths.
    const auto points = two_blobs(20, 0, 17);
    const cl::KMeans kmeans({.k = 2,
                             .max_iterations = 50,
                             .metric = cl::Metric::kEuclidean,
                             .seed = 5});
    const cl::ExactIndex index(cl::Metric::kEuclidean, points);
    const auto result = kmeans.cluster_with(index, points);
    EXPECT_EQ(result.num_clusters, 2);
    EXPECT_TRUE(result.same_cluster(0, 1));
    EXPECT_TRUE(result.same_cluster(20, 25));
    EXPECT_FALSE(result.same_cluster(0, 20));
    EXPECT_EQ(result.labels, kmeans.cluster_with(index, points).labels);
}

TEST(KMeans, CosineIndexSeedingStillSeparatesDirections) {
    std::vector<std::vector<float>> points;
    Rng rng(18);
    for (int i = 0; i < 10; ++i)
        points.push_back({1.0F + static_cast<float>(0.01 * rng.normal()),
                          0.5F});
    for (int i = 0; i < 10; ++i)
        points.push_back({-1.0F + static_cast<float>(0.01 * rng.normal()),
                          0.5F});
    const cl::KMeans kmeans({.k = 2, .metric = cl::Metric::kCosine,
                             .seed = 3});
    const cl::ExactIndex index(cl::Metric::kCosine, points);
    const auto result = kmeans.cluster_with(index, points);
    EXPECT_EQ(result.num_clusters, 2);
    EXPECT_TRUE(result.same_cluster(0, 5));
    EXPECT_FALSE(result.same_cluster(0, 15));
}

TEST(ClusterResult, MembersOfAndSameCluster) {
    cl::ClusterResult result;
    result.labels = {0, 1, 0, cl::ClusterResult::kNoise, 1};
    result.num_clusters = 2;
    EXPECT_EQ(result.members_of(0), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(result.members_of(1), (std::vector<std::size_t>{1, 4}));
    EXPECT_TRUE(result.same_cluster(1, 4));
    EXPECT_FALSE(result.same_cluster(0, 1));
    // Noise never matches, not even itself.
    EXPECT_FALSE(result.same_cluster(3, 3));
}

}  // namespace
