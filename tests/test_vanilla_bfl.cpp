// Vanilla BFL baseline: gradients on-chain, worker-side aggregation,
// multi-block queuing, and the cost gap FAIR-BFL closes.

#include <gtest/gtest.h>

#include "core/fairbfl.hpp"
#include "core/vanilla_bfl.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"

namespace {

namespace core = fairbfl::core;
namespace ch = fairbfl::chain;
namespace fl = fairbfl::fl;
namespace ml = fairbfl::ml;

struct World {
    ml::Dataset data = ml::make_synthetic_mnist({.samples = 500,
                                                 .feature_dim = 8,
                                                 .num_classes = 4,
                                                 .seed = 101});
    std::unique_ptr<ml::Model> model = ml::make_logistic_regression(8, 4);
    std::vector<ml::DatasetView> shards;
    ml::DatasetView test;

    World() {
        const auto split = ml::train_test_split(data, 0.2, 101);
        test = split.test;
        ml::PartitionParams params;
        params.scheme = ml::PartitionScheme::kIid;
        params.num_clients = 8;
        params.seed = 101;
        shards = ml::partition(split.train, params);
    }
    [[nodiscard]] std::vector<fl::Client> clients() const {
        return fl::make_clients(*model, shards);
    }
};

core::VanillaBflConfig vanilla_config() {
    core::VanillaBflConfig config;
    config.fl.client_ratio = 0.5;
    config.fl.rounds = 8;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.sgd.epochs = 2;
    config.fl.seed = 42;
    config.miners = 2;
    return config;
}

TEST(VanillaBfl, LearnsFromChainDerivedGlobals) {
    World world;
    auto config = vanilla_config();
    config.fl.rounds = 12;
    config.fl.sgd.epochs = 4;
    core::VanillaBfl system(*world.model, world.clients(), world.test,
                            config);
    const auto history = system.run();
    EXPECT_GT(history.back().fl.test_accuracy, 0.6);
    EXPECT_GT(history.back().fl.test_accuracy,
              history.front().fl.test_accuracy);
}

TEST(VanillaBfl, EveryLocalGradientIsOnChain) {
    World world;
    core::VanillaBfl system(*world.model, world.clients(), world.test,
                            vanilla_config());
    std::size_t expected = 0;
    std::size_t recorded = 0;
    for (int r = 0; r < 4; ++r) {
        const auto record = system.run_round();
        expected += record.fl.participants;
        recorded += record.gradient_txs_on_chain;
        EXPECT_EQ(record.gradient_txs_on_chain, record.fl.participants);
    }
    std::size_t on_chain = 0;
    const auto& chain = system.blockchain();
    for (std::size_t h = 1; h < chain.height(); ++h)
        for (const auto& tx : chain.at(h).transactions)
            if (tx.kind == ch::TxKind::kLocalGradient) ++on_chain;
    EXPECT_EQ(on_chain, expected);
    EXPECT_EQ(recorded, expected);
    EXPECT_TRUE(chain.validate_full_chain());
}

TEST(VanillaBfl, WeightsEqualMeanOfOnChainGradients) {
    World world;
    core::VanillaBfl system(*world.model, world.clients(), world.test,
                            vanilla_config());
    (void)system.run_round();

    std::vector<fl::GradientUpdate> from_chain;
    const auto& chain = system.blockchain();
    for (std::size_t h = 1; h < chain.height(); ++h) {
        for (const auto& tx : chain.at(h).transactions) {
            if (tx.kind != ch::TxKind::kLocalGradient || tx.round != 0)
                continue;
            fl::GradientUpdate u;
            u.client = tx.origin;
            u.weights = ch::parse_gradient_tx(tx);
            from_chain.push_back(std::move(u));
        }
    }
    ASSERT_FALSE(from_chain.empty());
    const auto mean = fl::simple_average(from_chain);
    ASSERT_EQ(mean.size(), system.weights().size());
    for (std::size_t i = 0; i < mean.size(); ++i)
        EXPECT_FLOAT_EQ(mean[i], system.weights()[i]);
}

TEST(VanillaBfl, SmallBlocksForceQueuing) {
    World world;
    auto config = vanilla_config();
    config.delay.max_block_bytes = 100;  // < one gradient transaction
    core::VanillaBfl system(*world.model, world.clients(), world.test,
                            config);
    const auto record = system.run_round();
    EXPECT_GE(record.blocks_this_round, record.fl.participants);
}

TEST(VanillaBfl, CostlierThanFairBflSameSetting) {
    // The headline gap: same clients, same rounds, same delay parameters.
    World vanilla_world;
    World fair_world;
    const auto vcfg = vanilla_config();
    core::VanillaBfl vanilla(*vanilla_world.model, vanilla_world.clients(),
                             vanilla_world.test, vcfg);
    core::FairBflConfig fcfg;
    fcfg.fl = vcfg.fl;
    fcfg.miners = vcfg.miners;
    fcfg.delay = vcfg.delay;
    core::FairBfl fair(*fair_world.model, fair_world.clients(),
                       fair_world.test, fcfg);

    double vanilla_delay = 0.0;
    double fair_delay = 0.0;
    for (int r = 0; r < 8; ++r) {
        vanilla_delay += vanilla.run_round().delay.total();
        fair_delay += fair.run_round().delay.total();
    }
    // Idle-mining waste alone guarantees a gap under common random numbers.
    EXPECT_GT(vanilla_delay, fair_delay);
}

TEST(VanillaBfl, NoContributionDefenseAgainstAttack) {
    // Vanilla BFL has no Algorithm 2: attackers skew the global unimpeded,
    // while FAIR-BFL with the discard strategy resists.
    World vanilla_world;
    World fair_world;
    auto vcfg = vanilla_config();
    vcfg.fl.client_ratio = 1.0;
    vcfg.attack.kind = core::AttackKind::kSignFlip;
    vcfg.attack.magnitude = 3.0;
    vcfg.attack.min_attackers = 2;
    vcfg.attack.max_attackers = 2;
    core::VanillaBfl vanilla(*vanilla_world.model, vanilla_world.clients(),
                             vanilla_world.test, vcfg);

    core::FairBflConfig fcfg;
    fcfg.fl = vcfg.fl;
    fcfg.attack = vcfg.attack;
    fcfg.incentive.strategy =
        fairbfl::incentive::LowContributionStrategy::kDiscard;
    core::FairBfl fair(*fair_world.model, fair_world.clients(),
                       fair_world.test, fcfg);

    double vanilla_acc = 0.0;
    double fair_acc = 0.0;
    for (int r = 0; r < 8; ++r) {
        vanilla_acc = vanilla.run_round().fl.test_accuracy;
        fair_acc = fair.run_round().fl.test_accuracy;
    }
    EXPECT_GT(fair_acc, vanilla_acc + 0.1);
}

}  // namespace
