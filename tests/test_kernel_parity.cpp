// Kernel-dispatch parity harness (support/simd.hpp).
//
// The scalar table is *bit-pinned*: its loops must match the strict
// reference accumulation orders that produced every committed fixed-seed
// series, so the first test re-states those loops locally and demands
// exact equality.  The AVX2+FMA table is *tolerance-pinned*: FMA skips
// intermediate roundings and the wide accumulators reassociate the chain,
// so the harness bounds its element-wise divergence from scalar instead
// -- with the analytic error model (double accumulation over float
// products) setting the bound, not a hand-tuned epsilon.  End-to-end, a
// Table-2 attack scenario must produce detection within 2% of the scalar
// run when the simd table serves every kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/experiment.hpp"
#include "core/fairbfl.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace {

namespace simd = fairbfl::support::simd;
using fairbfl::support::Rng;

/// Restores the pinned scalar table on scope exit: dispatch is process
/// state, and every other test in the suite assumes the scalar default.
struct ScopedKernelMode {
    explicit ScopedKernelMode(simd::Mode mode) { simd::set_mode(mode); }
    ~ScopedKernelMode() { simd::set_mode(simd::Mode::kScalar); }
};

std::vector<float> random_vector(std::size_t n, Rng& rng) {
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    return v;
}

/// Strict left-to-right double chain -- the pinned reference for dot.
double reference_dot(const std::vector<float>& x,
                     const std::vector<float>& y) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double reference_squared_distance(const std::vector<float>& x,
                                  const std::vector<float>& y) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

/// Analytic divergence bound for a reassociated double-accumulator
/// reduction over float products: a few n * eps_double of the magnitude
/// sum, padded well clear of the constant factors.
double reduction_tolerance(double magnitude_sum, std::size_t n) {
    return 1e-13 * magnitude_sum * static_cast<double>(n + 16) + 1e-14;
}

const std::size_t kSizes[] = {1, 2, 3, 7, 8, 15, 16, 17, 64, 100, 1000};

TEST(ScalarTable, MatchesPinnedReferenceLoopsBitForBit) {
    const simd::KernelTable& table = simd::detail::scalar_table();
    EXPECT_STREQ(table.name, "scalar");
    Rng rng(21);
    for (const std::size_t n : kSizes) {
        const auto x = random_vector(n, rng);
        const auto y = random_vector(n, rng);
        EXPECT_EQ(table.dot(x.data(), y.data(), n), reference_dot(x, y));
        EXPECT_EQ(table.squared_distance(x.data(), y.data(), n),
                  reference_squared_distance(x, y));
        // axpy is elementwise: any unroll must stay bit-identical.
        std::vector<float> got = y;
        table.axpy(0.37F, x.data(), got.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(got[i], y[i] + 0.37F * x[i]);
        // The fused kernel must equal two separate strict chains.
        double d = 0.0;
        double norm2 = 0.0;
        table.dot_and_norm(x.data(), y.data(), n, &d, &norm2);
        EXPECT_EQ(d, reference_dot(x, y));
        EXPECT_EQ(norm2, reference_dot(x, x));
    }
    // Every gemv row is contractually bit-identical to a lone dot.
    const std::size_t rows = 7;
    const std::size_t cols = 33;
    const auto a = random_vector(rows * cols, rng);
    const auto x = random_vector(cols, rng);
    std::vector<float> out(rows);
    table.gemv(a.data(), rows, cols, x.data(), nullptr, out.data());
    for (std::size_t r = 0; r < rows; ++r) {
        const std::vector<float> row(a.begin() + r * cols,
                                     a.begin() + (r + 1) * cols);
        EXPECT_EQ(out[r], static_cast<float>(reference_dot(row, x))) << r;
    }
}

TEST(Dispatch, ScalarIsTheDefaultAndUnknownNamesAreRejected) {
    simd::set_mode(simd::Mode::kScalar);
    EXPECT_STREQ(simd::active_name(), "scalar");
    EXPECT_FALSE(simd::set_mode_name("avx512"));
    EXPECT_FALSE(simd::set_mode_name(nullptr));
    EXPECT_STREQ(simd::active_name(), "scalar");  // unchanged on rejection
    EXPECT_TRUE(simd::set_mode_name("auto"));
    if (!simd::cpu_supports_avx2_fma() ||
        simd::detail::avx2_table() == nullptr) {
        EXPECT_STREQ(simd::active_name(), "scalar");  // graceful fallback
    }
    simd::set_mode(simd::Mode::kScalar);
}

TEST(KernelParity, Avx2WithinAnalyticToleranceOfScalar) {
    const simd::KernelTable* avx2 = simd::detail::avx2_table();
    if (avx2 == nullptr || !simd::cpu_supports_avx2_fma())
        GTEST_SKIP() << "AVX2+FMA unavailable on this build/CPU";
    const simd::KernelTable& scalar = simd::detail::scalar_table();
    Rng rng(22);
    for (const std::size_t n : kSizes) {
        const auto x = random_vector(n, rng);
        const auto y = random_vector(n, rng);
        std::vector<float> ax(n);
        std::vector<float> ay(n);
        for (std::size_t i = 0; i < n; ++i) {
            ax[i] = std::fabs(x[i]);
            ay[i] = std::fabs(y[i]);
        }
        const double dot_scale = scalar.dot(ax.data(), ay.data(), n);
        EXPECT_NEAR(avx2->dot(x.data(), y.data(), n),
                    scalar.dot(x.data(), y.data(), n),
                    reduction_tolerance(dot_scale, n))
            << "n=" << n;
        EXPECT_NEAR(avx2->squared_distance(x.data(), y.data(), n),
                    scalar.squared_distance(x.data(), y.data(), n),
                    reduction_tolerance(
                        scalar.squared_distance(x.data(), y.data(), n) * 4.0 +
                            1.0,
                        n))
            << "n=" << n;
        // Element-wise: one fused rounding vs two float roundings differ
        // by an ulp of the *operands* -- the result can cancel toward
        // zero, so the bound scales with |y| + |a x|, not with it.
        std::vector<float> got = y;
        std::vector<float> want = y;
        avx2->axpy(1.7F, x.data(), got.data(), n);
        scalar.axpy(1.7F, x.data(), want.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const double operand_mag = std::fabs(static_cast<double>(y[i])) +
                                       std::fabs(1.7 * x[i]);
            EXPECT_NEAR(got[i], want[i], 2.4e-7 * operand_mag + 1e-9)
                << "n=" << n << " i=" << i;
        }
        double avx2_dot = 0.0;
        double avx2_norm = 0.0;
        double scalar_dot = 0.0;
        double scalar_norm = 0.0;
        avx2->dot_and_norm(x.data(), y.data(), n, &avx2_dot, &avx2_norm);
        scalar.dot_and_norm(x.data(), y.data(), n, &scalar_dot, &scalar_norm);
        EXPECT_NEAR(avx2_dot, scalar_dot, reduction_tolerance(dot_scale, n));
        EXPECT_NEAR(avx2_norm, scalar_norm,
                    reduction_tolerance(scalar_norm, n));
    }
    // gemv: per-row divergence bounded like a lone dot.
    const std::size_t rows = 9;
    const std::size_t cols = 129;
    const auto a = random_vector(rows * cols, rng);
    const auto x = random_vector(cols, rng);
    const auto bias = random_vector(rows, rng);
    std::vector<float> got(rows);
    std::vector<float> want(rows);
    avx2->gemv(a.data(), rows, cols, x.data(), bias.data(), got.data());
    scalar.gemv(a.data(), rows, cols, x.data(), bias.data(), want.data());
    for (std::size_t r = 0; r < rows; ++r)
        EXPECT_NEAR(got[r], want[r],
                    1e-4 * std::fabs(static_cast<double>(want[r])) + 1e-5)
            << r;
    // Accumulate kernels: element-wise float FMA against the scalar loop.
    std::vector<float> gt(cols, 0.25F);
    std::vector<float> wt(cols, 0.25F);
    const auto d = random_vector(rows, rng);
    avx2->gemv_transpose_accumulate(a.data(), rows, cols, d.data(), gt.data());
    scalar.gemv_transpose_accumulate(a.data(), rows, cols, d.data(),
                                     wt.data());
    for (std::size_t j = 0; j < cols; ++j)
        EXPECT_NEAR(gt[j], wt[j],
                    1e-5 * std::fabs(static_cast<double>(wt[j])) + 1e-6)
            << j;
    std::vector<float> go(rows * cols, 0.5F);
    std::vector<float> wo(rows * cols, 0.5F);
    avx2->outer_accumulate(d.data(), x.data(), rows, cols, go.data());
    scalar.outer_accumulate(d.data(), x.data(), rows, cols, wo.data());
    for (std::size_t i = 0; i < rows * cols; ++i)
        EXPECT_NEAR(go[i], wo[i],
                    1e-5 * std::fabs(static_cast<double>(wo[i])) + 1e-6)
            << i;
}

// The end-to-end gate: a Table-2 attack scenario served entirely by the
// simd table must detect within 2% of the pinned scalar run.  (The
// incremental index cache is active in both runs -- the contribution
// policy installs it -- so this also covers "simd kernels + incremental
// index enabled" from the acceptance criteria.)
TEST(KernelParity, DetectionWithin2PercentOfScalarOnAttackScenario) {
    if (simd::detail::avx2_table() == nullptr ||
        !simd::cpu_supports_avx2_fma())
        GTEST_SKIP() << "AVX2+FMA unavailable on this build/CPU";

    fairbfl::core::EnvironmentConfig env_config;
    env_config.data.samples = 800;
    env_config.data.seed = 17;
    env_config.partition.scheme =
        fairbfl::ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 40;
    env_config.partition.seed = 17;
    const fairbfl::core::Environment env =
        fairbfl::core::build_environment(env_config);

    auto detection = [&](simd::Mode mode) {
        const ScopedKernelMode scoped(mode);
        fairbfl::core::FairBflConfig config;
        config.fl.client_ratio = 1.0;
        config.fl.rounds = 6;
        config.fl.seed = 17;
        config.attack.kind = fairbfl::core::AttackKind::kSignFlip;
        config.attack.magnitude = 3.0;
        config.attack.min_attackers = 2;
        config.attack.max_attackers = 4;
        // Sketch engaged (41 points > 2k = 32) and maintained across
        // rounds by the policy-installed IndexCache, so the simd leg runs
        // the full "simd kernels + incremental index" configuration.
        config.incentive.index = "random_projection";
        config.incentive.index_params.projection_dims = 16;
        fairbfl::core::FairBfl system(*env.model, env.make_clients(),
                                      env.test, config);
        double rate = 0.0;
        for (std::size_t r = 0; r < config.fl.rounds; ++r)
            rate += system.run_round().detection_rate;
        return rate / static_cast<double>(config.fl.rounds);
    };

    const double scalar_rate = detection(simd::Mode::kScalar);
    EXPECT_GT(scalar_rate, 0.5);  // the defense itself must be working
    EXPECT_NEAR(detection(simd::Mode::kSimd), scalar_rate, 0.02);
}

}  // namespace
