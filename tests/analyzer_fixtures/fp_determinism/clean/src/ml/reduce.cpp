// CLEAN: the same reduction with the product named first -- the
// accumulation is no longer a single contractible expression, and an
// integer MAC stays out of scope entirely.
namespace demo::ml {

double reduce(const double* a, const double* b, unsigned long n) {
    double acc = 0.0;
    for (unsigned long i = 0; i < n; ++i) {
        const double prod = a[i] * b[i];
        acc += prod;
    }
    return acc;
}

// Integer accumulator under a distinct name: fp-ident tracking is
// file-granular, so reusing `acc` here would (correctly) inherit the
// double taint from reduce() above.
long reduce_counts(const long* w, const long* h, unsigned long n) {
    long total = 0;
    for (unsigned long i = 0; i < n; ++i) {
        total += w[i] * h[i];
    }
    return total;
}

}  // namespace demo::ml
