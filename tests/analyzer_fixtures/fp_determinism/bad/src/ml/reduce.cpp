// BAD: an FMA-eligible floating-point multiply-accumulate loop outside
// src/support/simd*/vecmath* -- with contraction on, a compiler may fuse
// `acc += a[i] * b[i]` into one FMA and shift the pinned bits.
namespace demo::ml {

double reduce(const double* a, const double* b, unsigned long n) {
    double acc = 0.0;
    for (unsigned long i = 0; i < n; ++i) {
        acc += a[i] * b[i];
    }
    return acc;
}

}  // namespace demo::ml
