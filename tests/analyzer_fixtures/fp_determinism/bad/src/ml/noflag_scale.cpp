// BAD (flag check): the "noflag" name makes fixture_program() synthesize
// this TU's compile command WITHOUT -ffp-contract=off, which the rule
// must reject even though the code itself is harmless.
namespace demo::ml {

double scale(double x) { return x * 2.0; }

}  // namespace demo::ml
