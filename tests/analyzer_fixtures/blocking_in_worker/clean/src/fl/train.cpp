// CLEAN: the task body only computes, including through a same-file
// helper the walk descends into.
namespace demo::fl {

int square(int v) { return v * v; }

void run_round(support::ThreadPool& pool, int* out) {
    pool.run([&] { *out = square(3); });
}

}  // namespace demo::fl
