// BAD: a ThreadPool task body that sleeps.  A parked worker slot stalls
// every sibling chunk behind it; blocking belongs to the caller or the
// pool's own scheduler.
#include <chrono>
#include <thread>

namespace demo::fl {

void run_round(support::ThreadPool& pool) {
    pool.run([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
}

}  // namespace demo::fl
