// CLEAN: the identical nested acquire, but the fixture hierarchy
// documents mu_a -> mu_b as a sanctioned edge and every lock has an
// entry.
namespace demo::core {

support::Mutex mu_a;
support::Mutex mu_b;

void both() {
    support::MutexLock hold_a(mu_a);
    support::MutexLock hold_b(mu_b);
}

}  // namespace demo::core
