// BAD twice over: mu_undocumented has no lock-order hierarchy entry at
// all, and both() acquires mu_b while holding mu_a -- an edge the
// fixture's documented hierarchy (both leaves) does not sanction.
namespace demo::core {

support::Mutex mu_a;
support::Mutex mu_b;
support::Mutex mu_undocumented;

void both() {
    support::MutexLock hold_a(mu_a);
    support::MutexLock hold_b(mu_b);
}

}  // namespace demo::core
