// BAD: support is the bottom layer and may not include telemetry --
// this upward edge is exactly the simd.cpp dependency the layer map
// rejects.
#include "telemetry/counters.hpp"

namespace demo::support {

void fill(long* dst, long n) {
    for (long i = 0; i < n; ++i) dst[i] = i;
    demo::telemetry::counter_bump(n);
}

}  // namespace demo::support
