#pragma once

namespace demo::telemetry {
void counter_bump(long delta);
}  // namespace demo::telemetry
