// CLEAN: telemetry depending on support points downward, which the
// layer map sanctions.
#include "support/buffer.hpp"

namespace demo::telemetry {

void counter_bump(long delta) {
    long scratch[4];
    demo::support::fill(scratch, delta < 4 ? delta : 4);
}

}  // namespace demo::telemetry
