#pragma once

namespace demo::support {
void fill(long* dst, long n);
}  // namespace demo::support
