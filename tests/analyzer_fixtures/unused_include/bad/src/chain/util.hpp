#pragma once

namespace demo::chain {
int chain_checksum(int seed);
}  // namespace demo::chain
