// BAD: includes util.hpp but never names anything it provides.
#include "chain/util.hpp"

namespace demo::chain {

int block_size(int txs) { return txs * 64; }

}  // namespace demo::chain
