// CLEAN: the include earns its keep -- chain_checksum is used.
#include "chain/util.hpp"

namespace demo::chain {

int block_size(int txs) { return chain_checksum(txs) + txs * 64; }

}  // namespace demo::chain
