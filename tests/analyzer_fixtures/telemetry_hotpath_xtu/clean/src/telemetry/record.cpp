// CLEAN: the same cross-TU shape, but the callee stays alloc-free,
// lock-free, and clock-free.
namespace demo::telemetry {

void counter_add(long value) {
    fold_label(value);
}

}  // namespace demo::telemetry
