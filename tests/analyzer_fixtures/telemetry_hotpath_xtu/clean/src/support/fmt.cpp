namespace demo::support {

long fold_label(long value) {
    return (value >> 8) ^ (value & 0xFF);
}

}  // namespace demo::support
