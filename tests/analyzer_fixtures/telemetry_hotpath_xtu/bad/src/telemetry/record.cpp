// BAD: counter_add is an emission-path root; it calls across the TU
// boundary into support, where the callee allocates.  The single-TU
// telemetry-hotpath rule cannot see this -- the cross-TU walk must.
namespace demo::telemetry {

void counter_add(long value) {
    format_label(value);
}

}  // namespace demo::telemetry
