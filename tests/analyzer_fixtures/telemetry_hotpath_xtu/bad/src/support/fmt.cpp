#include <cstdlib>

namespace demo::support {

char* format_label(long value) {
    char* out = static_cast<char*>(malloc(32));
    out[0] = value != 0 ? '1' : '0';
    return out;
}

}  // namespace demo::support
