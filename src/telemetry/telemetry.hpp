#pragma once
// Structured low-overhead telemetry: the event-log subsystem that replaces
// the ad-hoc core::StageWall wall clocks (the addb2-style design the
// ROADMAP references).
//
// Producers write fixed-size binary records -- span begin/end pairs and
// monotonic counters -- into *per-thread* ring buffers:
//
//   * the hot path (Span construction/destruction, counter_add/counter_max)
//     is lock-free and allocation-free: one 48-byte slot store plus a
//     release store of the ring head, nothing else;
//   * each ring is a single-producer/single-consumer queue.  The owning
//     thread is the producer; every consumer (a buffer-full self-flush, a
//     round-end harvest, a thread-exit retire) drains under the central
//     collector's mutex, so exactly one consumer mutates the tail at a
//     time;
//   * drained records are routed by their session id to the Session that
//     will harvest them, and -- when a trace capture is active -- appended
//     to the capture log.  Records belonging to no open session and no
//     capture are counted and dropped, so ambient instrumentation (systems
//     that never harvest) cannot grow memory without bound.
//
// Consumers:
//
//   * core::FairBfl opens one Session per system instance and harvests it
//     every round; core::stage_wall_from() derives the deprecated
//     StageWall shim (and hence every `seconds.*` key of perf_round.json)
//     from the harvested statistics;
//   * telemetry::capture_begin()/capture_end() snapshot *everything* into
//     a telemetry::Dump -- the binary trace `fairbfl_sim --trace` writes
//     and telemetry/decode.hpp renders as text or JSON.
//
// Context (which session/round/shard a record belongs to) travels through
// a thread-local Context that fan-out sites propagate into pool workers
// with a ContextScope; spans additionally record their parent span id, so
// the decoded log reconstructs the cross-thread span tree.
//
// The subsystem is on by default; FAIRBFL_TELEMETRY=off (or 0/false)
// disables every emit at a single branch, and set_enabled() overrides the
// environment programmatically (bench_telemetry measures both paths).

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fairbfl::telemetry {

/// Interned label id.  Labels name spans and counters; the registry maps
/// them to stable u16 ids so hot-path records carry two bytes, not a
/// string.
using Label = std::uint16_t;

/// Interns `name`, returning its stable id (idempotent; thread-safe).
/// Intern at startup or behind a static local -- never per event.
[[nodiscard]] Label intern(std::string_view name);

/// Name of an interned label ("?" for an id this process never interned).
[[nodiscard]] std::string_view label_name(Label id);

/// Discriminates the fixed-size records.
enum class RecordKind : std::uint8_t {
    kSpanBegin = 1,  ///< value = span id, parent = enclosing span id
    kSpanEnd = 2,    ///< value = span id of the matching begin
    kCounterAdd = 3, ///< value = amount; statistics sum per label
    kCounterMax = 4, ///< value = sample; statistics keep the max per label
};

/// `item` value meaning "no shard/client ordinal attached".
inline constexpr std::uint32_t kNoItem = 0xFFFFFFFFU;

/// One fixed-size binary event record -- the unit the per-thread rings
/// store and the Dump serializes.  48 bytes, trivially copyable; reserved
/// bytes are always zero.
struct Record {
    std::uint64_t time_ns = 0;  ///< steady-clock ns since collector epoch
    std::uint64_t value = 0;    ///< span id / counter amount
    std::uint64_t parent = 0;   ///< SpanBegin: enclosing span id (0 = root)
    std::uint32_t session = 0;  ///< owning Session (0 = ambient, droppable)
    std::uint32_t round = 0;    ///< communication round from the context
    std::uint32_t item = kNoItem;  ///< shard / client ordinal, kNoItem = none
    Label label = 0;            ///< interned label id
    std::uint16_t thread = 0;   ///< writer's collector slot
    RecordKind kind = RecordKind::kSpanBegin;
    std::uint8_t depth = 0;     ///< span nesting depth on the writer thread
    std::uint8_t reserved[6] = {0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(Record) == 48, "records are fixed 48-byte slots");

// --- Global switch ---------------------------------------------------------

/// True when emitting is on.  First query reads FAIRBFL_TELEMETRY
/// ("off"/"0"/"false" disable) and caches the answer.
[[nodiscard]] bool enabled() noexcept;

/// Programmatic override of the environment switch (tests, benches).
void set_enabled(bool on) noexcept;

/// Records dropped because they belonged to no open session and no active
/// capture (diagnostics; monotonic).
[[nodiscard]] std::uint64_t dropped_records() noexcept;

/// Drains every thread buffer into the collector (the round-end flush that
/// Session::harvest and capture_end perform, exposed for tests).
void flush_all();

// --- Context ---------------------------------------------------------------

/// The thread-local tagging state every record inherits: which session and
/// round it belongs to, an optional shard/client ordinal, and the span to
/// parent under when the thread has no open span of its own (the cross-
/// thread link a fan-out site passes to its pool workers).
struct Context {
    std::uint32_t session = 0;
    std::uint32_t round = 0;
    std::uint32_t item = kNoItem;
    std::uint64_t parent = 0;

    /// Copy with the shard/client ordinal replaced (fan-out bodies).
    [[nodiscard]] Context with_item(std::uint32_t ordinal) const noexcept {
        Context ctx = *this;
        ctx.item = ordinal;
        return ctx;
    }
};

/// The calling thread's current context, with `parent` filled from its
/// innermost open span -- capture it *outside* a parallel_for and install
/// it inside the body with a ContextScope so worker-thread records carry
/// the right session/round/parent.
[[nodiscard]] Context current_context() noexcept;

/// RAII: installs `ctx` as the thread's context, restoring the previous
/// one on destruction.  Cheap enough for per-task use in pool workers.
class ContextScope {
public:
    explicit ContextScope(const Context& ctx) noexcept;
    ~ContextScope();
    ContextScope(const ContextScope&) = delete;
    ContextScope& operator=(const ContextScope&) = delete;

private:
    Context saved_;
};

// --- Spans and counters (the hot path) -------------------------------------

/// RAII span: emits kSpanBegin on construction and kSpanEnd on close()/
/// destruction.  Spans must close in LIFO order per thread (scopes).
/// When telemetry is disabled construction and destruction are a single
/// predictable branch each.
class Span {
public:
    explicit Span(Label label) noexcept;
    ~Span() { close(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Emits the end record (idempotent) and returns the measured span
    /// seconds -- the one measurement code can both log and keep.
    double close() noexcept;

    /// Seconds since the begin record, without closing.
    [[nodiscard]] double seconds() const noexcept;

private:
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t prev_open_ = 0;  ///< thread's open span to restore
    std::uint64_t start_ns_ = 0;
    Label label_ = 0;
    bool active_ = false;
};

/// Emits a kCounterAdd record (statistics sum these per label).
void counter_add(Label label, std::uint64_t value) noexcept;

/// Emits a kCounterMax record (statistics keep the per-label max).
void counter_max(Label label, std::uint64_t value) noexcept;

// --- Canonical labels ------------------------------------------------------
// The well-known names the FAIR-BFL pipeline emits.  core/stage_wall.cpp
// and telemetry/decode.cpp map them onto the perf_round.json keys; keep
// the three sites in sync (pinned by tests/test_telemetry.cpp).

namespace labels {
inline Label round_local() {
    static const Label id = intern("round.local");
    return id;
}
inline Label round_cluster() {
    static const Label id = intern("round.cluster");
    return id;
}
inline Label round_aggregate() {
    static const Label id = intern("round.aggregate");
    return id;
}
inline Label round_mine() {
    static const Label id = intern("round.mine");
    return id;
}
inline Label index_build() {
    static const Label id = intern("cluster.index_build");
    return id;
}
inline Label index_bytes() {
    static const Label id = intern("cluster.index_bytes");
    return id;
}
inline Label kernel_dispatch() {
    static const Label id = intern("kernels.dispatch");
    return id;
}
inline Label index_reuse() {
    static const Label id = intern("cluster.index_reuse");
    return id;
}
inline Label shard_pass() {
    static const Label id = intern("cluster.shard_pass");
    return id;
}
inline Label root_pass() {
    static const Label id = intern("cluster.root_pass");
    return id;
}
inline Label identify() {
    static const Label id = intern("cluster.identify");
    return id;
}
inline Label local_client() {
    static const Label id = intern("local.client");
    return id;
}
inline Label delay_local_ns() {
    static const Label id = intern("delay.local_ns");
    return id;
}
inline Label delay_up_ns() {
    static const Label id = intern("delay.up_ns");
    return id;
}
inline Label delay_ex_ns() {
    static const Label id = intern("delay.ex_ns");
    return id;
}
inline Label delay_gl_ns() {
    static const Label id = intern("delay.gl_ns");
    return id;
}
inline Label delay_bl_ns() {
    static const Label id = intern("delay.bl_ns");
    return id;
}
/// One processed virtual-clock event (core/event_loop.hpp).
inline Label engine_event() {
    static const Label id = intern("engine.event");
    return id;
}
/// Virtual timestamp samples (counter_max = the round's virtual makespan).
inline Label engine_virtual_ns() {
    static const Label id = intern("engine.virtual_ns");
    return id;
}
/// Virtual ns the aggregation trigger waited for quorum after the first
/// arrival (perf JSON `seconds.wait_quorum`).
inline Label wait_quorum_ns() {
    static const Label id = intern("round.wait_quorum_ns");
    return id;
}
/// Updates that arrived after the aggregation trigger (perf JSON
/// `late_updates`).
inline Label late_updates() {
    static const Label id = intern("round.late_updates");
    return id;
}
}  // namespace labels

// --- Statistics ------------------------------------------------------------

/// Per-label aggregates of one (session, round) slice of the log.
struct LabelStats {
    double span_seconds = 0.0;      ///< total of matched begin/end pairs
    std::uint64_t spans = 0;        ///< completed spans
    std::uint64_t counter_sum = 0;  ///< sum of kCounterAdd values
    std::uint64_t counter_max = 0;  ///< max of kCounterMax values
    std::uint64_t events = 0;       ///< records of any kind
};

/// Statistics of one harvested round, keyed by label *name* (so consumers
/// survive label-id differences between a live process and a decoded
/// dump).
struct RoundStats {
    std::uint32_t session = 0;
    std::uint32_t round = 0;
    std::uint64_t records = 0;     ///< records matching (session, round)
    std::uint64_t open_spans = 0;  ///< begins without a matching end
    std::map<std::string, LabelStats, std::less<>> labels;

    [[nodiscard]] double seconds_of(std::string_view label) const;
    [[nodiscard]] std::uint64_t sum_of(std::string_view label) const;
    [[nodiscard]] std::uint64_t max_of(std::string_view label) const;
};

/// Computes RoundStats over `records`, keeping only those whose session
/// and round match.  `name_of` resolves label ids (live registry or a
/// Dump's table).  Deterministic: identical record sequences produce
/// bit-identical double sums, which is what lets a decoded dump reproduce
/// the shim StageWall exactly (pinned in tests/test_telemetry.cpp).
[[nodiscard]] RoundStats round_stats(
    std::span<const Record> records,
    std::string_view (*name_of)(Label, const void* arg), const void* arg,
    std::uint32_t session, std::uint32_t round);

/// Convenience overload resolving names from the live registry.
[[nodiscard]] RoundStats round_stats(std::span<const Record> records,
                                     std::uint32_t session,
                                     std::uint32_t round);

// --- Sessions --------------------------------------------------------------

/// One consumer of the log: opens a routing slot in the collector, tags
/// records via Context.session, and harvests its slice once per round.
/// core::FairBfl owns one per system instance, which is what keeps
/// concurrent run_suite systems' events separated.
class Session {
public:
    Session();
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

    /// The context a round-scoped ContextScope should install.
    [[nodiscard]] Context context(std::uint32_t round) const noexcept {
        return Context{.session = id_, .round = round};
    }

    /// Round-end flush: drains every thread buffer, consumes this
    /// session's pending records, and returns their statistics for
    /// `round`.  Call after all of the round's spans have closed (i.e.
    /// after every fan-out joined).
    [[nodiscard]] RoundStats harvest(std::uint32_t round);

private:
    std::uint32_t id_;
};

// --- Trace capture / dump --------------------------------------------------

/// A decoded-or-decodable event log: the label table plus every captured
/// record, with a compact binary serialization (`fairbfl_sim --trace`).
///
/// Layout (native-endian, documented in docs/ARCHITECTURE.md):
///   "FBTL" magic u32 | version u16 (=1) | record size u16 (=48)
///   label count u32 | { id u16, length u16, bytes } per label
///   record count u64 | raw 48-byte records
struct Dump {
    struct LabelEntry {
        Label id = 0;
        std::string name;
    };
    std::vector<LabelEntry> labels;
    std::vector<Record> records;

    [[nodiscard]] std::string_view name_of(Label id) const;
    [[nodiscard]] std::vector<std::byte> encode() const;
    /// Throws std::invalid_argument on a malformed byte stream.
    [[nodiscard]] static Dump decode(std::span<const std::byte> bytes);
    [[nodiscard]] bool save(const std::string& path) const;
    [[nodiscard]] static std::optional<Dump> load(const std::string& path);
};

/// Starts retaining a copy of every drained record (all sessions and the
/// ambient stream) until capture_end().  One capture at a time.
void capture_begin();

/// Flushes all buffers, stops capturing, and returns the captured log
/// with the current label table.  Returns an empty Dump when no capture
/// was active.
[[nodiscard]] Dump capture_end();

[[nodiscard]] bool capture_active() noexcept;

}  // namespace fairbfl::telemetry
