#include "telemetry/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "support/simd.hpp"
#include "support/sync.hpp"

namespace fairbfl::telemetry {

namespace {

using support::CondVar;
using support::Mutex;
using support::MutexLock;

using Clock = std::chrono::steady_clock;

// --- Label registry --------------------------------------------------------
// Interning takes a mutex (startup/first-use only); id -> name lookups copy
// a string_view out of storage that is never freed, so they are safe from
// any thread without the lock once the entry exists.

struct LabelRegistry {
    Mutex mutex;
    std::unordered_map<std::string, Label> ids GUARDED_BY(mutex);
    /// index = id - 1, leaked strings
    std::vector<const std::string*> names GUARDED_BY(mutex);

    Label intern(std::string_view name) EXCLUDES(mutex) {
        MutexLock lock(mutex);
        const auto it = ids.find(std::string(name));
        if (it != ids.end()) return it->second;
        if (names.size() >= 0xFFFEU)
            throw std::length_error("telemetry: label table full");
        auto* stored = new std::string(name);  // leaked: ids must stay valid
        const Label id = static_cast<Label>(names.size() + 1);
        names.push_back(stored);
        ids.emplace(*stored, id);
        return id;
    }

    std::string_view name(Label id) EXCLUDES(mutex) {
        MutexLock lock(mutex);
        if (id == 0 || id > names.size()) return "?";
        return *names[id - 1];
    }
};

LabelRegistry& label_registry() {
    static LabelRegistry* registry = new LabelRegistry;  // leaked: no
    return *registry;  // shutdown-order hazard for late thread exits
}

// --- Per-thread ring buffer ------------------------------------------------

/// The one lock of the collector protocol, at namespace scope so both the
/// Collector's fields and ThreadBuffer::drain_locked's REQUIRES contract
/// can name the same capability.  Never taken on the record hot path --
/// put() touches it only through the buffer-full self-flush.
Mutex g_collector_mutex;

class Collector;

/// SPSC ring: the owning thread produces (put), consumers drain under the
/// collector mutex.  Capacity is a power of two; head/tail are monotonic
/// u64 positions, masked on access.
class ThreadBuffer {
public:
    static constexpr std::size_t kCapacity = 4096;  // 192 KiB per thread
    static_assert((kCapacity & (kCapacity - 1)) == 0);

    explicit ThreadBuffer(std::uint16_t slot) noexcept : slot_(slot) {}

    [[nodiscard]] std::uint16_t slot() const noexcept { return slot_; }

    /// Next span id: unique per process without a shared atomic --
    /// (slot << 40) | per-thread sequence.  Never returns 0.
    [[nodiscard]] std::uint64_t next_span_id() noexcept {
        return (static_cast<std::uint64_t>(slot_) << 40) | ++span_seq_;
    }

    /// Hot path: one slot store + one release store.  Self-flushes through
    /// the collector only when the ring is full (the buffer-full flush of
    /// the protocol).
    void put(const Record& record) noexcept;

    /// Consumer side: routes the drained range straight into the
    /// collector (no intermediate copies).  The REQUIRES contract is the
    /// ring's consumer invariant -- `tail_` is advanced only under the
    /// collector mutex, so concurrent drains (harvest vs. a buffer-full
    /// self-flush vs. TLS-exit retire) serialize.
    void drain_locked(Collector& collector) REQUIRES(g_collector_mutex);

private:
    Record ring_[kCapacity];
    std::atomic<std::uint64_t> head_{0};  ///< owner writes (release)
    std::atomic<std::uint64_t> tail_{0};  ///< consumers write under the lock
    std::uint64_t span_seq_ = 0;
    std::uint16_t slot_;
};

// --- Collector -------------------------------------------------------------

class Collector {
public:
    Collector() : epoch_(Clock::now()) {}

    static Collector& instance() {
        static Collector* collector = new Collector;  // leaked: thread-exit
        return *collector;  // retires must outlive static destruction
    }

    [[nodiscard]] std::uint64_t now_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - epoch_)
                .count());
    }

    ThreadBuffer* adopt() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        buffers_.push_back(
            std::make_unique<ThreadBuffer>(next_slot_++));
        return buffers_.back().get();
    }

    void retire(ThreadBuffer* buffer) EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        buffer->drain_locked(*this);
        for (std::size_t i = 0; i < buffers_.size(); ++i) {
            if (buffers_[i].get() == buffer) {
                buffers_.erase(buffers_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
    }

    void drain_one(ThreadBuffer* buffer) EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        buffer->drain_locked(*this);
    }

    void drain_all() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        drain_all_locked();
    }

    std::uint32_t open_session() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        const std::uint32_t id = next_session_++;
        sessions_.emplace(id, std::vector<Record>{});
        return id;
    }

    void close_session(std::uint32_t id) EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        sessions_.erase(id);
    }

    /// drain_all + move the session's pending records out.
    std::vector<Record> harvest_session(std::uint32_t id)
        EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        drain_all_locked();
        const auto it = sessions_.find(id);
        if (it == sessions_.end()) return {};
        std::vector<Record> taken = std::move(it->second);
        it->second.clear();
        return taken;
    }

    void capture_begin() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        // Flush stale records first: the capture holds only records
        // emitted after this call.
        drain_all_locked();
        capturing_ = true;
        capture_.clear();
    }

    std::vector<Record> capture_end() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        drain_all_locked();
        capturing_ = false;
        return std::move(capture_);
    }

    [[nodiscard]] bool capture_active() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        return capturing_;
    }

    [[nodiscard]] std::uint64_t dropped() EXCLUDES(g_collector_mutex) {
        MutexLock lock(g_collector_mutex);
        return dropped_;
    }

    /// Routing, under the mutex: capture first (preserves global order),
    /// then the owning session's pending list; otherwise count and drop.
    /// Public only for ThreadBuffer::drain_locked (same TU); the REQUIRES
    /// contract keeps outside callers honest.
    void route(const Record& record) REQUIRES(g_collector_mutex) {
        if (capturing_) capture_.push_back(record);
        if (record.session != 0) {
            const auto it = sessions_.find(record.session);
            if (it != sessions_.end()) {
                it->second.push_back(record);
                return;
            }
        }
        if (!capturing_) ++dropped_;
    }

private:
    void drain_all_locked() REQUIRES(g_collector_mutex) {
        for (auto& buffer : buffers_) buffer->drain_locked(*this);
    }

    std::vector<std::unique_ptr<ThreadBuffer>> buffers_
        GUARDED_BY(g_collector_mutex);
    std::unordered_map<std::uint32_t, std::vector<Record>> sessions_
        GUARDED_BY(g_collector_mutex);
    std::vector<Record> capture_ GUARDED_BY(g_collector_mutex);
    bool capturing_ GUARDED_BY(g_collector_mutex) = false;
    std::uint64_t dropped_ GUARDED_BY(g_collector_mutex) = 0;
    std::uint32_t next_session_ GUARDED_BY(g_collector_mutex) = 1;
    std::uint16_t next_slot_ GUARDED_BY(g_collector_mutex) = 1;
    Clock::time_point epoch_;  ///< immutable after construction
};

void ThreadBuffer::drain_locked(Collector& collector) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; tail != head; ++tail)
        collector.route(ring_[tail & (kCapacity - 1)]);
    tail_.store(head, std::memory_order_release);
}

void ThreadBuffer::put(const Record& record) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == kCapacity) {
        // Ring full: the documented buffer-full flush.  The owner drains
        // its own ring through the collector (the one place the writer
        // thread ever takes a lock), then continues.
        Collector::instance().drain_one(this);
    }
    ring_[head & (kCapacity - 1)] = record;
    head_.store(head + 1, std::memory_order_release);
}

// --- Thread-local state ----------------------------------------------------

struct TlsState {
    ThreadBuffer* buffer = nullptr;
    Context context;
    std::uint64_t open_span = 0;  ///< innermost open span on this thread
    std::uint8_t depth = 0;

    ~TlsState() {
        if (buffer != nullptr) Collector::instance().retire(buffer);
    }
};

thread_local TlsState tls;

ThreadBuffer& local_buffer() {
    if (tls.buffer == nullptr) tls.buffer = Collector::instance().adopt();
    return *tls.buffer;
}

// --- Enabled switch --------------------------------------------------------

std::atomic<int> g_enabled{-1};  // -1: consult the environment on first use

bool read_env_enabled() noexcept {
    const char* env = std::getenv("FAIRBFL_TELEMETRY");
    if (env == nullptr) return true;
    const std::string_view value(env);
    return !(value == "off" || value == "0" || value == "false");
}

}  // namespace

bool enabled() noexcept {
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        // Resolve the -1 sentinel with a CAS instead of a blind store:
        // under the old double-checked read, a thread still inside this
        // slow path could overwrite a concurrent set_enabled() with the
        // stale environment value.  Losing the race now means someone
        // else (env read or set_enabled) already published a decision,
        // and that decision wins.
        const int desired = read_env_enabled() ? 1 : 0;
        if (!g_enabled.compare_exchange_strong(state, desired,
                                               std::memory_order_relaxed))
            return state != 0;
        state = desired;
    }
    return state != 0;
}

void set_enabled(bool on) noexcept {
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t dropped_records() noexcept {
    return Collector::instance().dropped();
}

void flush_all() { Collector::instance().drain_all(); }

Label intern(std::string_view name) {
    return label_registry().intern(name);
}

std::string_view label_name(Label id) { return label_registry().name(id); }

// --- Context ---------------------------------------------------------------

Context current_context() noexcept {
    Context ctx = tls.context;
    if (tls.open_span != 0) ctx.parent = tls.open_span;
    return ctx;
}

ContextScope::ContextScope(const Context& ctx) noexcept
    : saved_(tls.context) {
    tls.context = ctx;
}

ContextScope::~ContextScope() { tls.context = saved_; }

// --- Spans and counters ----------------------------------------------------

namespace {

Record make_record(RecordKind kind, Label label, std::uint64_t time_ns,
                   std::uint64_t value, std::uint64_t parent,
                   std::uint8_t depth, std::uint16_t thread) noexcept {
    Record record;
    record.time_ns = time_ns;
    record.value = value;
    record.parent = parent;
    record.session = tls.context.session;
    record.round = tls.context.round;
    record.item = tls.context.item;
    record.label = label;
    record.thread = thread;
    record.kind = kind;
    record.depth = depth;
    return record;
}

}  // namespace

Span::Span(Label label) noexcept {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    label_ = label;
    id_ = buffer.next_span_id();
    parent_ = tls.open_span != 0 ? tls.open_span : tls.context.parent;
    prev_open_ = tls.open_span;
    start_ns_ = Collector::instance().now_ns();
    buffer.put(make_record(RecordKind::kSpanBegin, label, start_ns_, id_,
                           parent_, tls.depth, buffer.slot()));
    tls.open_span = id_;
    if (tls.depth < 0xFF) ++tls.depth;
    active_ = true;
}

double Span::close() noexcept {
    if (!active_) return 0.0;
    active_ = false;
    ThreadBuffer& buffer = local_buffer();
    const std::uint64_t end_ns = Collector::instance().now_ns();
    if (tls.depth > 0) --tls.depth;
    buffer.put(make_record(RecordKind::kSpanEnd, label_, end_ns, id_,
                           parent_, tls.depth, buffer.slot()));
    tls.open_span = prev_open_;
    return static_cast<double>(end_ns - start_ns_) * 1e-9;
}

double Span::seconds() const noexcept {
    if (id_ == 0) return 0.0;
    return static_cast<double>(Collector::instance().now_ns() - start_ns_) *
           1e-9;
}

void counter_add(Label label, std::uint64_t value) noexcept {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    buffer.put(make_record(RecordKind::kCounterAdd, label,
                           Collector::instance().now_ns(), value,
                           tls.open_span, tls.depth, buffer.slot()));
}

void counter_max(Label label, std::uint64_t value) noexcept {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    buffer.put(make_record(RecordKind::kCounterMax, label,
                           Collector::instance().now_ns(), value,
                           tls.open_span, tls.depth, buffer.slot()));
}

namespace {

// Kernel-dispatch breadcrumb (moved here from simd.cpp in PR 9: support
// may not depend on telemetry, so the dependency now points this way).
// publish() replays the current table at registration, so the counter is
// emitted whichever TU wins static init.
[[maybe_unused]] const bool g_kernel_dispatch_observer = [] {
    support::simd::set_dispatch_observer(
        [](const char* table_name) noexcept {
            counter_max(labels::kernel_dispatch(),
                        std::strcmp(table_name, "scalar") == 0 ? 0 : 1);
        });
    return true;
}();

}  // namespace

// --- Statistics ------------------------------------------------------------

double RoundStats::seconds_of(std::string_view label) const {
    const auto it = labels.find(label);
    return it == labels.end() ? 0.0 : it->second.span_seconds;
}

std::uint64_t RoundStats::sum_of(std::string_view label) const {
    const auto it = labels.find(label);
    return it == labels.end() ? 0 : it->second.counter_sum;
}

std::uint64_t RoundStats::max_of(std::string_view label) const {
    const auto it = labels.find(label);
    return it == labels.end() ? 0 : it->second.counter_max;
}

RoundStats round_stats(std::span<const Record> records,
                       std::string_view (*name_of)(Label, const void* arg),
                       const void* arg, std::uint32_t session,
                       std::uint32_t round) {
    RoundStats stats;
    stats.session = session;
    stats.round = round;
    // Open spans: begin time by span id, consumed by the matching end.
    std::unordered_map<std::uint64_t, std::uint64_t> begins;
    for (const Record& record : records) {
        if (record.session != session || record.round != round) continue;
        ++stats.records;
        LabelStats& label =
            stats.labels[std::string(name_of(record.label, arg))];
        ++label.events;
        switch (record.kind) {
            case RecordKind::kSpanBegin:
                begins.emplace(record.value, record.time_ns);
                break;
            case RecordKind::kSpanEnd: {
                const auto it = begins.find(record.value);
                if (it == begins.end()) break;  // begin predates this slice
                // Named duration so the accumulation is not an
                // FMA-eligible expression (fp-determinism).
                const double span_s =
                    static_cast<double>(record.time_ns - it->second) * 1e-9;
                label.span_seconds += span_s;
                ++label.spans;
                begins.erase(it);
                break;
            }
            case RecordKind::kCounterAdd:
                label.counter_sum += record.value;
                break;
            case RecordKind::kCounterMax:
                label.counter_max =
                    std::max(label.counter_max, record.value);
                break;
        }
    }
    stats.open_spans = begins.size();
    return stats;
}

RoundStats round_stats(std::span<const Record> records, std::uint32_t session,
                       std::uint32_t round) {
    return round_stats(
        records,
        [](Label id, const void*) { return label_name(id); }, nullptr,
        session, round);
}

// --- Sessions --------------------------------------------------------------

Session::Session() : id_(Collector::instance().open_session()) {}

Session::~Session() { Collector::instance().close_session(id_); }

RoundStats Session::harvest(std::uint32_t round) {
    const std::vector<Record> records =
        Collector::instance().harvest_session(id_);
    return round_stats(records, id_, round);
}

// --- Dump ------------------------------------------------------------------

namespace {

constexpr std::uint32_t kDumpMagic = 0x4C544246U;  // "FBTL" little-endian
constexpr std::uint16_t kDumpVersion = 1;

// resize+memcpy rather than insert(end, first, last): same bytes, and it
// sidesteps a gcc-12 -Wstringop-overflow false positive on the iterator
// form that would trip FAIRBFL_WERROR builds.
template <typename T>
void append_pod(std::vector<std::byte>& out, const T& value) {
    const std::size_t offset = out.size();
    out.resize(offset + sizeof(T));
    std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::byte> bytes, std::size_t& offset) {
    if (offset + sizeof(T) > bytes.size())
        throw std::invalid_argument("telemetry dump: truncated stream");
    T value;
    std::memcpy(&value, bytes.data() + offset, sizeof(T));
    offset += sizeof(T);
    return value;
}

}  // namespace

std::string_view Dump::name_of(Label id) const {
    for (const LabelEntry& entry : labels)
        if (entry.id == id) return entry.name;
    return "?";
}

std::vector<std::byte> Dump::encode() const {
    std::vector<std::byte> out;
    out.reserve(24 + labels.size() * 24 + records.size() * sizeof(Record));
    append_pod(out, kDumpMagic);
    append_pod(out, kDumpVersion);
    append_pod(out, static_cast<std::uint16_t>(sizeof(Record)));
    append_pod(out, static_cast<std::uint32_t>(labels.size()));
    for (const LabelEntry& entry : labels) {
        append_pod(out, entry.id);
        append_pod(out, static_cast<std::uint16_t>(entry.name.size()));
        const auto* bytes =
            reinterpret_cast<const std::byte*>(entry.name.data());
        out.insert(out.end(), bytes, bytes + entry.name.size());
    }
    append_pod(out, static_cast<std::uint64_t>(records.size()));
    const auto* bytes = reinterpret_cast<const std::byte*>(records.data());
    out.insert(out.end(), bytes, bytes + records.size() * sizeof(Record));
    return out;
}

Dump Dump::decode(std::span<const std::byte> bytes) {
    std::size_t offset = 0;
    if (read_pod<std::uint32_t>(bytes, offset) != kDumpMagic)
        throw std::invalid_argument("telemetry dump: bad magic");
    if (read_pod<std::uint16_t>(bytes, offset) != kDumpVersion)
        throw std::invalid_argument("telemetry dump: unknown version");
    if (read_pod<std::uint16_t>(bytes, offset) != sizeof(Record))
        throw std::invalid_argument("telemetry dump: record size mismatch");
    Dump dump;
    const std::uint32_t label_count = read_pod<std::uint32_t>(bytes, offset);
    dump.labels.reserve(label_count);
    for (std::uint32_t i = 0; i < label_count; ++i) {
        LabelEntry entry;
        entry.id = read_pod<Label>(bytes, offset);
        const std::uint16_t length = read_pod<std::uint16_t>(bytes, offset);
        if (offset + length > bytes.size())
            throw std::invalid_argument("telemetry dump: truncated label");
        entry.name.assign(
            reinterpret_cast<const char*>(bytes.data() + offset), length);
        offset += length;
        dump.labels.push_back(std::move(entry));
    }
    const std::uint64_t record_count = read_pod<std::uint64_t>(bytes, offset);
    if (offset + record_count * sizeof(Record) > bytes.size())
        throw std::invalid_argument("telemetry dump: truncated records");
    dump.records.resize(record_count);
    std::memcpy(dump.records.data(), bytes.data() + offset,
                record_count * sizeof(Record));
    return dump;
}

bool Dump::save(const std::string& path) const {
    std::ofstream file(path, std::ios::binary);
    if (!file) return false;
    const std::vector<std::byte> bytes = encode();
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    return file.good();
}

std::optional<Dump> Dump::load(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) return std::nullopt;
    std::vector<char> raw((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());
    try {
        return Dump::decode(std::as_bytes(std::span<const char>(raw)));
    } catch (const std::invalid_argument&) {
        return std::nullopt;
    }
}

void capture_begin() { Collector::instance().capture_begin(); }

Dump capture_end() {
    Dump dump;
    dump.records = Collector::instance().capture_end();
    // Snapshot the live label table so the dump decodes standalone.
    LabelRegistry& registry = label_registry();
    MutexLock lock(registry.mutex);
    dump.labels.reserve(registry.names.size());
    for (std::size_t i = 0; i < registry.names.size(); ++i) {
        dump.labels.push_back(
            {static_cast<Label>(i + 1), *registry.names[i]});
    }
    return dump;
}

bool capture_active() noexcept {
    return Collector::instance().capture_active();
}

}  // namespace fairbfl::telemetry
