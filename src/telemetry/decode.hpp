#pragma once
// Renderers for telemetry::Dump: the human-readable text listing and the
// JSON export shaped like bench_perf_round's perf_round.json (per-round
// `seconds.*` keys derived from the event log -- the same derivation
// core::stage_wall_from performs on a live harvest).
//
// Consumed by `fairbfl_sim --trace-format=text|json` and the telemetry
// tests; kept out of telemetry.hpp so hot-path includes stay lean.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace fairbfl::telemetry {

/// Unique (session, round) pairs present in the dump, in first-appearance
/// order -- the slices to_json() summarizes.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> rounds_of(
    const Dump& dump);

/// RoundStats of one (session, round) slice, resolving label names from
/// the dump's own table (a decoded file needs no live registry).
[[nodiscard]] RoundStats dump_round_stats(const Dump& dump,
                                          std::uint32_t session,
                                          std::uint32_t round);

/// Human-readable listing: label table, then one line per record with the
/// span tree indented by nesting depth.
[[nodiscard]] std::string to_text(const Dump& dump);

/// JSON export: `schema_version`, record/label counts, and one entry per
/// (session, round) with the perf_round.json stage keys (`seconds.local`,
/// `seconds.cluster`, `seconds.index_build`, `seconds.shard_cluster`,
/// `seconds.root_cluster`, `seconds.aggregate`, `seconds.mine`,
/// `seconds.total`, `index_peak_bytes`) derived from the log, plus the raw
/// per-label statistics.
[[nodiscard]] std::string to_json(const Dump& dump);

}  // namespace fairbfl::telemetry
