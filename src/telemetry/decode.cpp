#include "telemetry/decode.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <string_view>

namespace fairbfl::telemetry {

namespace {

std::string_view dump_name(Label id, const void* arg) {
    return static_cast<const Dump*>(arg)->name_of(id);
}

const char* kind_name(RecordKind kind) {
    switch (kind) {
        case RecordKind::kSpanBegin: return "begin";
        case RecordKind::kSpanEnd: return "end";
        case RecordKind::kCounterAdd: return "add";
        case RecordKind::kCounterMax: return "max";
    }
    return "?";
}

void append_format(std::string& out, const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    out += buf;
}

/// JSON string escaping for label names (labels are identifiers in
/// practice, but a dump is external input once loaded from disk).
std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint32_t>> rounds_of(
    const Dump& dump) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> rounds;
    for (const Record& record : dump.records) {
        const std::pair<std::uint32_t, std::uint32_t> key{record.session,
                                                          record.round};
        bool seen = false;
        for (const auto& existing : rounds)
            if (existing == key) { seen = true; break; }
        if (!seen) rounds.push_back(key);
    }
    return rounds;
}

RoundStats dump_round_stats(const Dump& dump, std::uint32_t session,
                            std::uint32_t round) {
    return round_stats(dump.records, &dump_name, &dump, session, round);
}

std::string to_text(const Dump& dump) {
    std::string out;
    append_format(out, "telemetry dump: %zu records, %zu labels\n",
                  dump.records.size(), dump.labels.size());
    for (const Dump::LabelEntry& entry : dump.labels)
        append_format(out, "  label %u = %s\n", unsigned(entry.id),
                      entry.name.c_str());
    for (const Record& record : dump.records) {
        append_format(out, "%12.6fs s%u r%u t%u ",
                      static_cast<double>(record.time_ns) * 1e-9,
                      record.session, record.round, unsigned(record.thread));
        for (std::uint8_t d = 0; d < record.depth; ++d) out += "  ";
        const std::string_view name = dump.name_of(record.label);
        switch (record.kind) {
            case RecordKind::kSpanBegin:
                append_format(out, "[%.*s id=%" PRIu64 " parent=%" PRIu64,
                              int(name.size()), name.data(), record.value,
                              record.parent);
                break;
            case RecordKind::kSpanEnd:
                append_format(out, "]%.*s id=%" PRIu64, int(name.size()),
                              name.data(), record.value);
                break;
            case RecordKind::kCounterAdd:
            case RecordKind::kCounterMax:
                append_format(out, "%s %.*s %" PRIu64, kind_name(record.kind),
                              int(name.size()), name.data(), record.value);
                break;
        }
        if (record.item != kNoItem)
            append_format(out, " item=%u", record.item);
        out += "\n";
    }
    return out;
}

std::string to_json(const Dump& dump) {
    std::string out;
    out += "{\n  \"trace\": \"fairbfl_telemetry\",\n";
    append_format(out, "  \"schema_version\": %d,\n", 2);
    append_format(out, "  \"records\": %zu,\n  \"labels\": %zu,\n",
                  dump.records.size(), dump.labels.size());
    out += "  \"rounds\": [\n";
    const auto rounds = rounds_of(dump);
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        const RoundStats stats =
            dump_round_stats(dump, rounds[i].first, rounds[i].second);
        // The same stage derivation core::stage_wall_from applies to a
        // live harvest -- keep the two sites in sync (pinned in
        // tests/test_telemetry.cpp).
        const double local = stats.seconds_of("round.local");
        const double cluster = stats.seconds_of("round.cluster");
        const double aggregate = stats.seconds_of("round.aggregate");
        const double mine = stats.seconds_of("round.mine");
        append_format(out,
                      "    {\"session\": %u, \"round\": %u,\n"
                      "     \"seconds\": {\"local\": %.6f, "
                      "\"cluster\": %.6f, \"index_build\": %.6f, "
                      "\"shard_cluster\": %.6f, \"root_cluster\": %.6f, "
                      "\"aggregate\": %.6f, \"mine\": %.6f, "
                      "\"wait_quorum\": %.6f, "
                      "\"total\": %.6f},\n"
                      "     \"index_peak_bytes\": %" PRIu64 ",\n"
                      "     \"late_updates\": %" PRIu64 ",\n"
                      "     \"events\": %" PRIu64 ", \"stats\": {",
                      stats.session, stats.round, local, cluster,
                      stats.seconds_of("cluster.index_build"),
                      stats.seconds_of("cluster.shard_pass"),
                      stats.seconds_of("cluster.root_pass"), aggregate, mine,
                      static_cast<double>(
                          stats.sum_of("round.wait_quorum_ns")) *
                          1e-9,
                      local + cluster + aggregate + mine,
                      stats.max_of("cluster.index_bytes"),
                      stats.sum_of("round.late_updates"), stats.records);
        bool first = true;
        for (const auto& [name, label] : stats.labels) {
            append_format(out,
                          "%s\n      \"%s\": {\"seconds\": %.6f, "
                          "\"spans\": %" PRIu64 ", \"sum\": %" PRIu64
                          ", \"max\": %" PRIu64 ", \"events\": %" PRIu64 "}",
                          first ? "" : ",", json_escape(name).c_str(),
                          label.span_seconds, label.spans, label.counter_sum,
                          label.counter_max, label.events);
            first = false;
        }
        out += first ? "}}" : "\n     }}";
        out += i + 1 < rounds.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

}  // namespace fairbfl::telemetry
