#include "chain/storage.hpp"

#include <fstream>

namespace fairbfl::chain {

namespace {
constexpr std::uint32_t kMagic = 0xFA1BB7C1;
constexpr std::uint32_t kVersion = 1;
}  // namespace

Bytes export_chain(const Blockchain& chain) {
    ByteWriter writer;
    writer.u32(kMagic);
    writer.u32(kVersion);
    writer.u32(static_cast<std::uint32_t>(chain.height()));
    for (std::size_t h = 0; h < chain.height(); ++h)
        writer.raw(chain.at(h).encode());
    return writer.take();
}

std::vector<Block> parse_chain(std::span<const std::uint8_t> data) {
    ByteReader reader(data);
    if (reader.u32() != kMagic)
        throw std::runtime_error("parse_chain: bad magic");
    if (reader.u32() != kVersion)
        throw std::runtime_error("parse_chain: unsupported version");
    const std::uint32_t count = reader.u32();
    std::vector<Block> blocks;
    blocks.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        blocks.push_back(Block::decode(reader));
    if (!reader.exhausted())
        throw std::runtime_error("parse_chain: trailing bytes");
    return blocks;
}

std::optional<Blockchain> import_chain(std::span<const std::uint8_t> data,
                                       std::uint64_t chain_id,
                                       const crypto::KeyStore* keys,
                                       bool check_pow) {
    std::vector<Block> blocks;
    try {
        blocks = parse_chain(data);
    } catch (const std::exception&) {
        return std::nullopt;
    }
    if (blocks.empty()) return std::nullopt;

    Blockchain chain(chain_id, keys);
    chain.set_check_pow(check_pow);
    // The exported genesis must equal the deterministic genesis for the id.
    if (!(blocks.front() == chain.genesis())) return std::nullopt;
    for (std::size_t i = 1; i < blocks.size(); ++i) {
        const BlockVerdict verdict = chain.submit(blocks[i]);
        if (verdict != BlockVerdict::kAccepted) return std::nullopt;
    }
    return chain;
}

bool save_chain(const Blockchain& chain, const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    const Bytes bytes = export_chain(chain);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

std::optional<Blockchain> load_chain(const std::string& path,
                                     std::uint64_t chain_id,
                                     const crypto::KeyStore* keys,
                                     bool check_pow) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return std::nullopt;
    Bytes bytes((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    return import_chain(bytes, chain_id, keys, check_pow);
}

}  // namespace fairbfl::chain
