#include "chain/consensus.hpp"

#include <limits>
#include <set>
#include <string>

namespace fairbfl::chain {

ConsensusSim::ConsensusSim(std::size_t miners, std::uint64_t chain_id,
                           NetworkModel network, std::uint64_t seed)
    : network_(network), rng_(support::Rng::fork(seed, /*stream=*/0xC0)) {
    replicas_.reserve(miners);
    for (std::size_t i = 0; i < miners; ++i) replicas_.emplace_back(chain_id);
    for (auto& replica : replicas_) replica.set_check_pow(false);
}

BlockVerdict ConsensusSim::broadcast(std::size_t origin, const Block& block,
                                     double now) {
    const BlockVerdict verdict = replicas_.at(origin).submit(block);
    for (std::size_t peer = 0; peer < replicas_.size(); ++peer) {
        if (peer == origin) continue;
        Delivery delivery;
        delivery.due =
            now + network_.miner_link_seconds(block.size_bytes(), rng_);
        delivery.sequence = sequence_++;
        delivery.target = peer;
        delivery.block = block;
        queue_.emplace(std::make_pair(delivery.due, delivery.sequence),
                       std::move(delivery));
    }
    return verdict;
}

void ConsensusSim::advance_to(double time) {
    while (!queue_.empty() && queue_.begin()->first.first <= time) {
        const Delivery delivery = std::move(queue_.begin()->second);
        queue_.erase(queue_.begin());
        // Replicas may reject duplicates or out-of-order parents; rejection
        // is part of the protocol, not an error.
        (void)replicas_.at(delivery.target).submit(delivery.block);
    }
}

void ConsensusSim::drain() {
    advance_to(std::numeric_limits<double>::infinity());
}

bool ConsensusSim::consistent() const { return distinct_tips() == 1; }

std::size_t ConsensusSim::distinct_tips() const {
    std::set<std::string> tips;
    for (const auto& replica : replicas_)
        tips.insert(crypto::to_hex(replica.tip().header.hash()));
    return tips.size();
}

Block ConsensusSim::make_child_block(std::size_t miner,
                                     std::vector<Transaction> txs,
                                     std::uint64_t timestamp_ms,
                                     std::uint64_t difficulty) const {
    const Block& tip = replicas_.at(miner).tip();
    Block block;
    block.header.index = tip.header.index + 1;
    block.header.prev_hash = tip.header.hash();
    block.header.timestamp_ms = timestamp_ms;
    block.header.difficulty = difficulty;
    block.transactions = std::move(txs);
    block.seal_transactions();
    return block;
}

}  // namespace fairbfl::chain
