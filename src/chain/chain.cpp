#include "chain/chain.hpp"

#include <algorithm>

#include "chain/pow.hpp"

namespace fairbfl::chain {

std::string to_string(BlockVerdict verdict) {
    switch (verdict) {
        case BlockVerdict::kAccepted: return "accepted";
        case BlockVerdict::kAcceptedSideBranch: return "accepted-side-branch";
        case BlockVerdict::kAcceptedReorg: return "accepted-reorg";
        case BlockVerdict::kBadParent: return "bad-parent";
        case BlockVerdict::kBadIndex: return "bad-index";
        case BlockVerdict::kBadPow: return "bad-pow";
        case BlockVerdict::kBadMerkle: return "bad-merkle";
        case BlockVerdict::kBadSignature: return "bad-signature";
        case BlockVerdict::kDuplicate: return "duplicate";
    }
    return "unknown";
}

Blockchain::Blockchain(std::uint64_t chain_id, const crypto::KeyStore* keys)
    : keys_(keys) {
    Block genesis = make_genesis(chain_id);
    const std::string key = crypto::to_hex(genesis.header.hash());
    blocks_by_hash_.emplace(key, StoredBlock{genesis, 1});
    best_chain_.push_back(std::move(genesis));
}

BlockVerdict Blockchain::validate_against_parent(
    const Block& block, const StoredBlock& parent) const {
    if (block.header.index != parent.block.header.index + 1)
        return BlockVerdict::kBadIndex;
    if (check_pow_ && !meets_target(block.header.hash(), block.header.difficulty))
        return BlockVerdict::kBadPow;
    if (!block.merkle_consistent()) return BlockVerdict::kBadMerkle;
    if (keys_ != nullptr) {
        for (const auto& tx : block.transactions) {
            if (!verify_transaction(tx, *keys_))
                return BlockVerdict::kBadSignature;
        }
    }
    return BlockVerdict::kAccepted;
}

BlockVerdict Blockchain::submit(const Block& block) {
    const std::string hash_key = crypto::to_hex(block.header.hash());
    if (blocks_by_hash_.contains(hash_key)) return BlockVerdict::kDuplicate;

    const std::string parent_key = crypto::to_hex(block.header.prev_hash);
    const auto parent_it = blocks_by_hash_.find(parent_key);
    if (parent_it == blocks_by_hash_.end()) return BlockVerdict::kBadParent;

    const BlockVerdict verdict =
        validate_against_parent(block, parent_it->second);
    if (verdict != BlockVerdict::kAccepted) return verdict;

    const std::size_t branch_length = parent_it->second.branch_length + 1;
    blocks_by_hash_.emplace(hash_key, StoredBlock{block, branch_length});

    const bool extends_tip =
        block.header.prev_hash == best_chain_.back().header.hash();
    if (extends_tip) {
        best_chain_.push_back(block);
        return BlockVerdict::kAccepted;
    }
    if (branch_length > best_chain_.size()) {
        rebuild_best_chain(block.header.hash());
        ++reorgs_;
        return BlockVerdict::kAcceptedReorg;
    }
    return BlockVerdict::kAcceptedSideBranch;
}

void Blockchain::rebuild_best_chain(const crypto::Digest& new_tip_hash) {
    std::vector<Block> chain;
    crypto::Digest cursor = new_tip_hash;
    for (;;) {
        const auto it = blocks_by_hash_.find(crypto::to_hex(cursor));
        if (it == blocks_by_hash_.end()) break;  // reached above genesis
        chain.push_back(it->second.block);
        if (it->second.block.header.index == 0) break;
        cursor = it->second.block.header.prev_hash;
    }
    std::reverse(chain.begin(), chain.end());
    best_chain_ = std::move(chain);
}

const Block& Blockchain::at(std::size_t index) const {
    return best_chain_.at(index);
}

std::optional<std::vector<float>> Blockchain::latest_global_gradient() const {
    for (std::size_t i = best_chain_.size(); i-- > 0;) {
        for (const auto& tx : best_chain_[i].transactions) {
            if (tx.kind == TxKind::kGlobalUpdate) return parse_gradient_tx(tx);
        }
    }
    return std::nullopt;
}

std::size_t Blockchain::orphaned_blocks() const noexcept {
    return blocks_by_hash_.size() - best_chain_.size();
}

bool Blockchain::validate_full_chain() const {
    for (std::size_t i = 1; i < best_chain_.size(); ++i) {
        const Block& block = best_chain_[i];
        const Block& parent = best_chain_[i - 1];
        if (block.header.prev_hash != parent.header.hash()) return false;
        if (block.header.index != parent.header.index + 1) return false;
        if (!block.merkle_consistent()) return false;
        if (check_pow_ &&
            !meets_target(block.header.hash(), block.header.difficulty))
            return false;
    }
    return true;
}

}  // namespace fairbfl::chain
