#include "chain/merkle.hpp"

#include <stdexcept>

namespace fairbfl::chain {

namespace {

crypto::Digest hash_pair(const crypto::Digest& left,
                         const crypto::Digest& right) {
    crypto::Sha256 hasher;
    hasher.update(left);
    hasher.update(right);
    return hasher.finish();
}

}  // namespace

crypto::Digest merkle_root(const std::vector<crypto::Digest>& leaves) {
    if (leaves.empty()) return crypto::Sha256::hash(std::string_view{});
    std::vector<crypto::Digest> level = leaves;
    while (level.size() > 1) {
        if (level.size() % 2 != 0) level.push_back(level.back());
        std::vector<crypto::Digest> next;
        next.reserve(level.size() / 2);
        for (std::size_t i = 0; i < level.size(); i += 2)
            next.push_back(hash_pair(level[i], level[i + 1]));
        level = std::move(next);
    }
    return level[0];
}

MerkleProof merkle_proof(const std::vector<crypto::Digest>& leaves,
                         std::size_t index) {
    if (index >= leaves.size())
        throw std::out_of_range("merkle_proof: leaf index out of range");
    MerkleProof proof;
    std::vector<crypto::Digest> level = leaves;
    while (level.size() > 1) {
        if (level.size() % 2 != 0) level.push_back(level.back());
        const std::size_t sibling =
            index % 2 == 0 ? index + 1 : index - 1;
        proof.push_back(MerkleStep{level[sibling], sibling < index});
        std::vector<crypto::Digest> next;
        next.reserve(level.size() / 2);
        for (std::size_t i = 0; i < level.size(); i += 2)
            next.push_back(hash_pair(level[i], level[i + 1]));
        level = std::move(next);
        index /= 2;
    }
    return proof;
}

crypto::Digest merkle_apply(const crypto::Digest& leaf,
                            const MerkleProof& proof) {
    crypto::Digest acc = leaf;
    for (const MerkleStep& step : proof) {
        acc = step.sibling_on_left ? hash_pair(step.sibling, acc)
                                   : hash_pair(acc, step.sibling);
    }
    return acc;
}

}  // namespace fairbfl::chain
