#pragma once
// On-chain transaction types.
//
// Vanilla BFL records *every* local gradient as a transaction; FAIR-BFL
// (Assumption 2) records only the round's global gradient plus the reward
// list.  Both behaviours are expressible with the same Transaction type so
// the two frameworks are directly comparable.

#include <cstdint>
#include <string>
#include <vector>

#include "chain/bytes.hpp"
#include "crypto/keystore.hpp"
#include "crypto/sha256.hpp"

namespace fairbfl::chain {

using crypto::NodeId;

enum class TxKind : std::uint8_t {
    kLocalGradient = 0,  ///< vanilla BFL: one client's local gradient
    kGlobalUpdate = 1,   ///< FAIR-BFL: the round's aggregated global gradient
    kReward = 2,         ///< FAIR-BFL: <client, reward> pair (Algorithm 2)
    kPayload = 3,        ///< pure-blockchain mode: opaque application bytes
};

/// A transaction: typed payload + origin + signature.  The signature covers
/// the canonical encoding of (kind, origin, round, payload) -- see
/// signing_bytes().
struct Transaction {
    TxKind kind = TxKind::kPayload;
    NodeId origin = 0;        ///< authoring node (client or miner)
    std::uint64_t round = 0;  ///< communication round the tx belongs to
    Bytes payload;            ///< kind-specific body
    Bytes signature;          ///< RSA signature by `origin` (may be empty)

    /// Bytes covered by the signature (everything except the signature).
    [[nodiscard]] Bytes signing_bytes() const;
    /// Full canonical encoding (including signature).
    [[nodiscard]] Bytes encode() const;
    [[nodiscard]] static Transaction decode(ByteReader& reader);

    /// Transaction id: SHA-256 over the full encoding.
    [[nodiscard]] crypto::Digest id() const;
    /// Serialized size in bytes (drives block-capacity queuing).
    [[nodiscard]] std::size_t size_bytes() const;

    [[nodiscard]] bool operator==(const Transaction& rhs) const = default;
};

/// Builds a reward transaction carrying <client, amount> (amount in
/// fixed-point milli-units so the encoding stays integral).
[[nodiscard]] Transaction make_reward_tx(NodeId miner, std::uint64_t round,
                                         NodeId client, double amount);

/// Parses the reward payload back into (client, amount).
struct RewardInfo {
    NodeId client = 0;
    double amount = 0.0;
};
[[nodiscard]] RewardInfo parse_reward_tx(const Transaction& tx);

/// Builds a gradient-carrying transaction (local or global).  The gradient
/// is stored as a raw f32 vector.
[[nodiscard]] Transaction make_gradient_tx(TxKind kind, NodeId origin,
                                           std::uint64_t round,
                                           std::span<const float> gradient);

/// Extracts the gradient from a gradient-carrying transaction.
[[nodiscard]] std::vector<float> parse_gradient_tx(const Transaction& tx);

/// Signs `tx` in place with origin's key from the keystore.
void sign_transaction(Transaction& tx, const crypto::KeyStore& keys);

/// Verifies the signature against origin's public key (true when the
/// keystore has crypto disabled).
[[nodiscard]] bool verify_transaction(const Transaction& tx,
                                      const crypto::KeyStore& keys);

}  // namespace fairbfl::chain
