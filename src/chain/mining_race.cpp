#include "chain/mining_race.hpp"

#include <algorithm>
#include <limits>

namespace fairbfl::chain {

MiningRace::MiningRace(std::vector<MinerSpec> miners, NetworkModel network,
                       std::uint64_t difficulty) noexcept
    : miners_(std::move(miners)),
      network_(network),
      difficulty_(difficulty == 0 ? 1 : difficulty) {}

RaceOutcome MiningRace::run(std::size_t block_bytes, bool allow_forks,
                            support::Rng& rng) const {
    RaceOutcome outcome;
    if (miners_.empty()) return outcome;

    // Draw each miner's solve time; track winner and the full sorted set of
    // solves for fork detection.
    std::vector<double> solves;
    solves.reserve(miners_.size());
    double best = std::numeric_limits<double>::infinity();
    for (const MinerSpec& miner : miners_) {
        const double t =
            sample_mining_seconds(miner.hashes_per_second, difficulty_, rng);
        solves.push_back(t);
        if (t < best) {
            best = t;
            outcome.winner = miner.id;
        }
    }
    outcome.solve_seconds = best;
    outcome.propagation_seconds = network_.block_propagation_seconds(
        miners_.size(), block_bytes, rng);

    if (allow_forks && miners_.size() > 1) {
        // Any other solve landing before the winner's block has propagated
        // produces a competing block (the miner had not heard "stop").
        std::size_t competing = 0;
        const double window = best + outcome.propagation_seconds;
        for (const double t : solves) {
            if (t > best && t <= window) ++competing;
        }
        if (competing > 0) {
            outcome.forked = true;
            outcome.fork_width = competing + 1;
            // Merging costs roughly one extra block interval per extra
            // branch: the network must mine on top of one side to orphan
            // the others, and the contention repeats for wide forks.
            double merge = 0.0;
            for (std::size_t branch = 0; branch < competing; ++branch) {
                // Expected next-solve time of the whole fleet.
                double fleet_rate = 0.0;
                for (const MinerSpec& miner : miners_)
                    fleet_rate += miner.hashes_per_second /
                                  static_cast<double>(difficulty_);
                merge += rng.exponential(fleet_rate) +
                         network_.block_propagation_seconds(miners_.size(),
                                                            block_bytes, rng);
            }
            outcome.fork_merge_seconds = merge;
        }
    }
    return outcome;
}

std::vector<MinerSpec> uniform_miners(std::size_t count,
                                      double hashes_per_second) {
    std::vector<MinerSpec> miners;
    miners.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        miners.push_back(MinerSpec{static_cast<NodeId>(i),
                                   hashes_per_second});
    return miners;
}

}  // namespace fairbfl::chain
