#include "chain/mempool.hpp"

namespace fairbfl::chain {

void Mempool::add(Transaction tx) {
    pending_bytes_ += tx.size_bytes();
    queue_.push_back(std::move(tx));
}

void Mempool::add_all(std::vector<Transaction> txs) {
    for (auto& tx : txs) add(std::move(tx));
}

std::vector<Transaction> Mempool::pack_block() {
    std::vector<Transaction> packed;
    std::size_t used = 0;
    while (!queue_.empty()) {
        const std::size_t tx_bytes = queue_.front().size_bytes();
        if (!packed.empty() && used + tx_bytes > max_block_bytes_) break;
        used += tx_bytes;
        pending_bytes_ -= tx_bytes;
        packed.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (used >= max_block_bytes_) break;
    }
    return packed;
}

std::size_t Mempool::blocks_to_drain() const {
    if (queue_.empty()) return 0;
    // Simulate the FIFO packer without consuming the queue.
    std::size_t blocks = 1;
    std::size_t used = 0;
    bool block_has_tx = false;
    for (const auto& tx : queue_) {
        const std::size_t tx_bytes = tx.size_bytes();
        if (block_has_tx && used + tx_bytes > max_block_bytes_) {
            ++blocks;
            used = 0;
            block_has_tx = false;
        }
        used += tx_bytes;
        block_has_tx = true;
    }
    return blocks;
}

void Mempool::clear() noexcept {
    queue_.clear();
    pending_bytes_ = 0;
}

}  // namespace fairbfl::chain
