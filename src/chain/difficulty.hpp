#pragma once
// Difficulty retargeting.
//
// The delay model assumes the network keeps a constant mean block interval
// as the fleet grows (DESIGN.md); this module is the mechanism that does
// it: a windowed retargeter in the style of Bitcoin's 2016-block rule,
// clamped per adjustment to avoid oscillation.  FAIR-BFL deployments
// retarget between communication rounds so the mining competition neither
// stalls the round (too hard) nor trivializes consensus (too easy).

#include <cstdint>
#include <vector>

namespace fairbfl::chain {

struct RetargetParams {
    double target_interval_s = 3.0;  ///< desired mean solve time
    std::size_t window = 8;          ///< blocks averaged per adjustment
    double max_step = 4.0;           ///< clamp factor per retarget (>1)
    std::uint64_t min_difficulty = 1;
    std::uint64_t max_difficulty = ~0ULL >> 8;  ///< headroom vs. kTarget1
};

class DifficultyRetargeter {
public:
    explicit DifficultyRetargeter(std::uint64_t initial_difficulty,
                                  RetargetParams params = {});

    /// Records one observed block interval; every `window` observations the
    /// difficulty adjusts by clamp(observed_mean / target, 1/max_step,
    /// max_step).
    void observe_interval(double seconds);

    [[nodiscard]] std::uint64_t difficulty() const noexcept {
        return difficulty_;
    }
    [[nodiscard]] std::size_t retarget_count() const noexcept {
        return retargets_;
    }
    [[nodiscard]] const RetargetParams& params() const noexcept {
        return params_;
    }

private:
    RetargetParams params_;
    std::uint64_t difficulty_;
    std::vector<double> pending_;
    std::size_t retargets_ = 0;
};

}  // namespace fairbfl::chain
