#include "chain/block.hpp"

namespace fairbfl::chain {

Bytes BlockHeader::encode() const {
    ByteWriter writer;
    writer.u64(index);
    writer.raw(prev_hash);
    writer.raw(merkle_root);
    writer.u64(timestamp_ms);
    writer.u64(difficulty);
    writer.u64(nonce);
    return writer.take();
}

BlockHeader BlockHeader::decode(ByteReader& reader) {
    BlockHeader header;
    header.index = reader.u64();
    const Bytes prev = reader.raw(32);
    std::copy(prev.begin(), prev.end(), header.prev_hash.begin());
    const Bytes root = reader.raw(32);
    std::copy(root.begin(), root.end(), header.merkle_root.begin());
    header.timestamp_ms = reader.u64();
    header.difficulty = reader.u64();
    header.nonce = reader.u64();
    return header;
}

crypto::Digest BlockHeader::hash() const {
    return crypto::Sha256::hash(encode());
}

void Block::seal_transactions() {
    std::vector<crypto::Digest> leaves;
    leaves.reserve(transactions.size());
    for (const auto& tx : transactions) leaves.push_back(tx.id());
    header.merkle_root = merkle_root(leaves);
}

bool Block::merkle_consistent() const {
    std::vector<crypto::Digest> leaves;
    leaves.reserve(transactions.size());
    for (const auto& tx : transactions) leaves.push_back(tx.id());
    return header.merkle_root == merkle_root(leaves);
}

Bytes Block::encode() const {
    ByteWriter writer;
    writer.raw(header.encode());
    writer.u32(static_cast<std::uint32_t>(transactions.size()));
    for (const auto& tx : transactions) writer.raw(tx.encode());
    return writer.take();
}

Block Block::decode(ByteReader& reader) {
    Block block;
    block.header = BlockHeader::decode(reader);
    const std::uint32_t count = reader.u32();
    block.transactions.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        block.transactions.push_back(Transaction::decode(reader));
    return block;
}

std::size_t Block::size_bytes() const {
    std::size_t size = 8 + 32 + 32 + 8 + 8 + 8 + 4;  // header + tx count
    for (const auto& tx : transactions) size += tx.size_bytes();
    return size;
}

Block make_genesis(std::uint64_t chain_id) {
    Block genesis;
    genesis.header.index = 0;
    genesis.header.timestamp_ms = 0;
    genesis.header.difficulty = 1;
    genesis.header.nonce = chain_id;
    genesis.seal_transactions();
    return genesis;
}

}  // namespace fairbfl::chain
