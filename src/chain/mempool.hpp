#pragma once
// FIFO transaction pool with a byte-capacity block packer.
//
// This is where the vanilla-BFL scalability problem of §5.2.3 lives: when a
// round's transactions exceed the block size, the surplus queues for later
// blocks, and the round cannot finish until every gradient is on-chain.

#include <cstddef>
#include <deque>
#include <vector>

#include "chain/transaction.hpp"

namespace fairbfl::chain {

class Mempool {
public:
    /// `max_block_bytes` caps the transaction bytes a single block may pack.
    explicit Mempool(std::size_t max_block_bytes) noexcept
        : max_block_bytes_(max_block_bytes) {}

    void add(Transaction tx);
    void add_all(std::vector<Transaction> txs);

    /// Pops transactions FIFO until the byte budget is exhausted.  A single
    /// transaction larger than the budget is still packed alone (progress
    /// guarantee).
    [[nodiscard]] std::vector<Transaction> pack_block();

    /// Blocks needed to drain the current backlog at the configured size.
    [[nodiscard]] std::size_t blocks_to_drain() const;

    [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
    [[nodiscard]] std::size_t pending_bytes() const noexcept {
        return pending_bytes_;
    }
    [[nodiscard]] std::size_t max_block_bytes() const noexcept {
        return max_block_bytes_;
    }

    void clear() noexcept;

private:
    std::size_t max_block_bytes_;
    std::deque<Transaction> queue_;
    std::size_t pending_bytes_ = 0;
};

}  // namespace fairbfl::chain
