#pragma once
// The mining competition (Procedure V) as a stochastic race.
//
// Every miner draws an exponential solve time; the minimum wins.  For the
// vanilla blockchain baseline, near-simultaneous solves (within a block's
// propagation window) fork the chain: both blocks circulate until the next
// block orphans one side, which costs an extra merge delay and may discard
// transactions -- the behaviour behind the paper's Figure 6b.  FAIR-BFL's
// tight coupling keeps exactly one competition per round and accepts the
// first solve atomically, so its race never forks.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chain/network.hpp"
#include "chain/pow.hpp"
#include "support/rng.hpp"

namespace fairbfl::chain {

struct MinerSpec {
    NodeId id = 0;
    double hashes_per_second = 1.0e6;
};

struct RaceOutcome {
    NodeId winner = 0;
    double solve_seconds = 0.0;        ///< winner's solve time
    double propagation_seconds = 0.0;  ///< winner's block reaching all peers
    bool forked = false;               ///< >=2 solves within the propagation window
    std::size_t fork_width = 1;        ///< number of competing blocks
    double fork_merge_seconds = 0.0;   ///< extra delay to orphan the losers
    /// Total wall time this competition contributed to the round.
    [[nodiscard]] double total_seconds() const noexcept {
        return solve_seconds + propagation_seconds + fork_merge_seconds;
    }
};

class MiningRace {
public:
    MiningRace(std::vector<MinerSpec> miners, NetworkModel network,
               std::uint64_t difficulty) noexcept;

    /// Runs one competition.  `block_bytes` drives propagation time;
    /// `allow_forks` distinguishes vanilla blockchain (true) from
    /// FAIR-BFL's tightly coupled race (false).
    [[nodiscard]] RaceOutcome run(std::size_t block_bytes, bool allow_forks,
                                  support::Rng& rng) const;

    [[nodiscard]] std::uint64_t difficulty() const noexcept {
        return difficulty_;
    }
    [[nodiscard]] std::size_t miner_count() const noexcept {
        return miners_.size();
    }

private:
    std::vector<MinerSpec> miners_;
    NetworkModel network_;
    std::uint64_t difficulty_;
};

/// Uniform fleet helper: `count` miners with identical hash rate.
[[nodiscard]] std::vector<MinerSpec> uniform_miners(std::size_t count,
                                                    double hashes_per_second);

}  // namespace fairbfl::chain
