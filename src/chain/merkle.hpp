#pragma once
// Merkle tree over transaction ids (Bitcoin-style: odd layers duplicate the
// last node).  Blocks commit to their transaction set via the root, and
// light verification of a single transaction uses an audit path.

#include <vector>

#include "crypto/sha256.hpp"

namespace fairbfl::chain {

/// Root over the given leaf digests.  An empty set hashes to the digest of
/// the empty string (a fixed sentinel).
[[nodiscard]] crypto::Digest merkle_root(
    const std::vector<crypto::Digest>& leaves);

/// One step of an audit path.
struct MerkleStep {
    crypto::Digest sibling;
    bool sibling_on_left = false;
};
using MerkleProof = std::vector<MerkleStep>;

/// Audit path for leaf `index`; index must be < leaves.size().
[[nodiscard]] MerkleProof merkle_proof(const std::vector<crypto::Digest>& leaves,
                                       std::size_t index);

/// Recomputes the root from a leaf and its audit path.
[[nodiscard]] crypto::Digest merkle_apply(const crypto::Digest& leaf,
                                          const MerkleProof& proof);

}  // namespace fairbfl::chain
