#include "chain/bytes.hpp"

namespace fairbfl::chain {

void ByteWriter::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
        out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
}

void ByteWriter::f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
}

void ByteWriter::str(std::string_view text) {
    u32(static_cast<std::uint32_t>(text.size()));
    out_.insert(out_.end(), text.begin(), text.end());
}

void ByteWriter::f32_vector(std::span<const float> values) {
    u32(static_cast<std::uint32_t>(values.size()));
    for (const float v : values) f32(v);
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
}

void ByteReader::need(std::size_t n) const {
    if (cursor_ + n > data_.size())
        throw std::out_of_range("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
    need(1);
    return data_[cursor_++];
}

std::uint32_t ByteReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[cursor_++]) << (8 * i);
    return v;
}

std::uint64_t ByteReader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[cursor_++]) << (8 * i);
    return v;
}

float ByteReader::f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

double ByteReader::f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

Bytes ByteReader::blob() {
    const std::uint32_t n = u32();
    return raw(n);
}

std::string ByteReader::str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + cursor_), n);
    cursor_ += n;
    return s;
}

std::vector<float> ByteReader::f32_vector() {
    const std::uint32_t n = u32();
    std::vector<float> values;
    values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) values.push_back(f32());
    return values;
}

Bytes ByteReader::raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(cursor_),
              data_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
    cursor_ += n;
    return out;
}

}  // namespace fairbfl::chain
