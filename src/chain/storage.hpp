#pragma once
// Chain persistence: canonical serialization of a whole chain, plus
// file-backed save/load with full re-validation on import.
//
// This is the auditability path: an adopter (or regulator) can export the
// ledger, ship it elsewhere, and re-verify every header link, Merkle root,
// PoW target, and transaction signature offline.

#include <optional>
#include <string>
#include <vector>

#include "chain/chain.hpp"

namespace fairbfl::chain {

/// Serializes the best chain (genesis first).
[[nodiscard]] Bytes export_chain(const Blockchain& chain);

/// Parses an exported chain back into its block sequence.  Throws
/// std::out_of_range / std::runtime_error on malformed input.
[[nodiscard]] std::vector<Block> parse_chain(std::span<const std::uint8_t> data);

/// Rebuilds a Blockchain by re-submitting every parsed block in order,
/// re-running full validation (PoW checking per `check_pow`; signature
/// checking when `keys` given).  Returns std::nullopt when any block fails
/// validation or the genesis does not match `chain_id`.
[[nodiscard]] std::optional<Blockchain> import_chain(
    std::span<const std::uint8_t> data, std::uint64_t chain_id,
    const crypto::KeyStore* keys = nullptr, bool check_pow = false);

/// Convenience file wrappers.  save returns false on I/O failure; load
/// returns std::nullopt on I/O failure or validation failure.
bool save_chain(const Blockchain& chain, const std::string& path);
[[nodiscard]] std::optional<Blockchain> load_chain(
    const std::string& path, std::uint64_t chain_id,
    const crypto::KeyStore* keys = nullptr, bool check_pow = false);

}  // namespace fairbfl::chain
