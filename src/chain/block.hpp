#pragma once
// Blocks and block headers.
//
// The PoW puzzle (paper Eq. 4) is: SHA256(header-with-nonce) < Target,
// where Target = Target_1 / difficulty and Target_1 is the maximum target.
// Header hashing covers (index, prev_hash, merkle_root, timestamp_ms,
// difficulty, nonce), so the nonce search re-hashes only the 80-ish header
// bytes, exactly like a real chain.

#include <cstdint>
#include <vector>

#include "chain/merkle.hpp"
#include "chain/transaction.hpp"
#include "crypto/sha256.hpp"

namespace fairbfl::chain {

struct BlockHeader {
    std::uint64_t index = 0;          ///< height of this block
    crypto::Digest prev_hash{};       ///< hash of the parent header
    crypto::Digest merkle_root{};     ///< commitment to the transactions
    std::uint64_t timestamp_ms = 0;   ///< simulated wall-clock of creation
    std::uint64_t difficulty = 1;     ///< Target = Target_1 / difficulty
    std::uint64_t nonce = 0;

    [[nodiscard]] Bytes encode() const;
    [[nodiscard]] static BlockHeader decode(ByteReader& reader);
    /// SHA-256 over the canonical header encoding.
    [[nodiscard]] crypto::Digest hash() const;

    [[nodiscard]] bool operator==(const BlockHeader& rhs) const = default;
};

struct Block {
    BlockHeader header;
    std::vector<Transaction> transactions;

    /// Recomputes header.merkle_root from the transaction set.
    void seal_transactions();
    /// True when header.merkle_root matches the transactions.
    [[nodiscard]] bool merkle_consistent() const;

    [[nodiscard]] Bytes encode() const;
    [[nodiscard]] static Block decode(ByteReader& reader);
    /// Serialized size (drives propagation delay and block-size limits).
    [[nodiscard]] std::size_t size_bytes() const;

    [[nodiscard]] bool operator==(const Block& rhs) const = default;
};

/// The genesis block for a given chain id (deterministic, difficulty 1,
/// no transactions, zero parent).
[[nodiscard]] Block make_genesis(std::uint64_t chain_id);

}  // namespace fairbfl::chain
