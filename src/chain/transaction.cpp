#include "chain/transaction.hpp"

#include <cmath>

namespace fairbfl::chain {

Bytes Transaction::signing_bytes() const {
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(kind));
    writer.u32(origin);
    writer.u64(round);
    writer.blob(payload);
    return writer.take();
}

Bytes Transaction::encode() const {
    ByteWriter writer;
    writer.u8(static_cast<std::uint8_t>(kind));
    writer.u32(origin);
    writer.u64(round);
    writer.blob(payload);
    writer.blob(signature);
    return writer.take();
}

Transaction Transaction::decode(ByteReader& reader) {
    Transaction tx;
    tx.kind = static_cast<TxKind>(reader.u8());
    tx.origin = reader.u32();
    tx.round = reader.u64();
    tx.payload = reader.blob();
    tx.signature = reader.blob();
    return tx;
}

crypto::Digest Transaction::id() const { return crypto::Sha256::hash(encode()); }

std::size_t Transaction::size_bytes() const {
    // kind + origin + round + two u32 length prefixes + bodies.
    return 1 + 4 + 8 + 4 + payload.size() + 4 + signature.size();
}

Transaction make_reward_tx(NodeId miner, std::uint64_t round, NodeId client,
                           double amount) {
    Transaction tx;
    tx.kind = TxKind::kReward;
    tx.origin = miner;
    tx.round = round;
    ByteWriter body;
    body.u32(client);
    body.u64(static_cast<std::uint64_t>(std::llround(amount * 1000.0)));
    tx.payload = body.take();
    return tx;
}

RewardInfo parse_reward_tx(const Transaction& tx) {
    if (tx.kind != TxKind::kReward)
        throw std::invalid_argument("parse_reward_tx: not a reward tx");
    ByteReader reader(tx.payload);
    RewardInfo info;
    info.client = reader.u32();
    info.amount = static_cast<double>(reader.u64()) / 1000.0;
    return info;
}

Transaction make_gradient_tx(TxKind kind, NodeId origin, std::uint64_t round,
                             std::span<const float> gradient) {
    if (kind != TxKind::kLocalGradient && kind != TxKind::kGlobalUpdate)
        throw std::invalid_argument("make_gradient_tx: wrong kind");
    Transaction tx;
    tx.kind = kind;
    tx.origin = origin;
    tx.round = round;
    ByteWriter body;
    body.f32_vector(gradient);
    tx.payload = body.take();
    return tx;
}

std::vector<float> parse_gradient_tx(const Transaction& tx) {
    if (tx.kind != TxKind::kLocalGradient && tx.kind != TxKind::kGlobalUpdate)
        throw std::invalid_argument("parse_gradient_tx: not a gradient tx");
    ByteReader reader(tx.payload);
    return reader.f32_vector();
}

void sign_transaction(Transaction& tx, const crypto::KeyStore& keys) {
    tx.signature = keys.sign(tx.origin, tx.signing_bytes());
}

bool verify_transaction(const Transaction& tx, const crypto::KeyStore& keys) {
    return keys.verify(tx.origin, tx.signing_bytes(), tx.signature);
}

}  // namespace fairbfl::chain
