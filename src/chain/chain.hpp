#pragma once
// The ledger: an append-only chain of validated blocks with side-branch
// tracking and longest-chain reorganization.
//
// FAIR-BFL's tight coupling (Assumptions 1 and 2) guarantees one block per
// round and no forks, so its chain only ever appends.  The vanilla
// blockchain baseline *does* fork; the side-branch machinery here is what
// lets the baseline pay the fork-merge cost the paper describes (§5.2.4).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "crypto/keystore.hpp"

namespace fairbfl::chain {

/// Why a block was rejected.
enum class BlockVerdict {
    kAccepted,
    kAcceptedSideBranch,   ///< valid but not extending the best tip
    kAcceptedReorg,        ///< valid, triggered a longest-chain reorg
    kBadParent,            ///< parent unknown
    kBadIndex,             ///< height does not follow the parent
    kBadPow,               ///< header hash misses the target
    kBadMerkle,            ///< merkle root mismatch
    kBadSignature,         ///< a transaction signature failed verification
    kDuplicate,            ///< block already known
};

[[nodiscard]] std::string to_string(BlockVerdict verdict);

/// Validated blockchain.  Not thread-safe; each simulated miner owns a copy
/// (consensus is modelled at the simulation layer).
class Blockchain {
public:
    /// Starts from the deterministic genesis for `chain_id`.  When a
    /// keystore is supplied, every submitted block's transactions must
    /// carry valid signatures.
    explicit Blockchain(std::uint64_t chain_id = 0,
                        const crypto::KeyStore* keys = nullptr);

    /// Validates and stores a block.  Accepts side branches and reorganizes
    /// to the heaviest (longest; ties keep the incumbent) branch.
    BlockVerdict submit(const Block& block);

    /// Whether PoW is checked on submit (disable for tightly-coupled
    /// simulations that model mining time stochastically).
    void set_check_pow(bool check) noexcept { check_pow_ = check; }

    [[nodiscard]] const Block& genesis() const { return at(0); }
    [[nodiscard]] const Block& tip() const { return best_chain_.back(); }
    /// Number of blocks on the best chain (genesis included).
    [[nodiscard]] std::size_t height() const noexcept {
        return best_chain_.size();
    }
    /// Block at height `index` on the best chain.
    [[nodiscard]] const Block& at(std::size_t index) const;

    /// Latest block carrying a kGlobalUpdate transaction, if any --
    /// Procedure I reads the global gradient from here.
    [[nodiscard]] std::optional<std::vector<float>> latest_global_gradient() const;

    /// Total blocks known including side branches.
    [[nodiscard]] std::size_t total_blocks_known() const noexcept {
        return blocks_by_hash_.size();
    }
    /// Number of reorganizations performed (fork-merge events).
    [[nodiscard]] std::size_t reorg_count() const noexcept { return reorgs_; }
    /// Blocks currently sitting on abandoned branches.
    [[nodiscard]] std::size_t orphaned_blocks() const noexcept;

    /// Full-chain re-validation (tests and auditing).
    [[nodiscard]] bool validate_full_chain() const;

private:
    struct StoredBlock {
        Block block;
        std::size_t branch_length;  ///< blocks from genesis to here inclusive
    };

    [[nodiscard]] BlockVerdict validate_against_parent(
        const Block& block, const StoredBlock& parent) const;
    void rebuild_best_chain(const crypto::Digest& new_tip_hash);

    std::map<std::string, StoredBlock> blocks_by_hash_;  // key: hex digest
    std::vector<Block> best_chain_;
    const crypto::KeyStore* keys_;
    bool check_pow_ = true;
    std::size_t reorgs_ = 0;
};

}  // namespace fairbfl::chain
