#pragma once
// Canonical little-endian binary serialization used by every on-chain
// structure.  Hashes and signatures are computed over these encodings, so
// the encoding must be deterministic and self-delimiting.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fairbfl::chain {

using Bytes = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian integers and length-prefixed blobs.
class ByteWriter {
public:
    void u8(std::uint8_t v) { out_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f32(float v);
    void f64(double v);
    /// Length-prefixed (u32) blob.
    void blob(std::span<const std::uint8_t> data);
    /// Length-prefixed (u32) UTF-8 string.
    void str(std::string_view text);
    /// Length-prefixed (u32) float vector.
    void f32_vector(std::span<const float> values);
    /// Raw bytes, no length prefix (for fixed-size fields like digests).
    void raw(std::span<const std::uint8_t> data);

    [[nodiscard]] const Bytes& bytes() const noexcept { return out_; }
    [[nodiscard]] Bytes take() noexcept { return std::move(out_); }
    [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

private:
    Bytes out_;
};

/// Mirror-image reader; throws std::out_of_range on truncated input.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] float f32();
    [[nodiscard]] double f64();
    [[nodiscard]] Bytes blob();
    [[nodiscard]] std::string str();
    [[nodiscard]] std::vector<float> f32_vector();
    /// Reads exactly n raw bytes.
    [[nodiscard]] Bytes raw(std::size_t n);

    [[nodiscard]] bool exhausted() const noexcept {
        return cursor_ == data_.size();
    }
    [[nodiscard]] std::size_t remaining() const noexcept {
        return data_.size() - cursor_;
    }

private:
    void need(std::size_t n) const;
    std::span<const std::uint8_t> data_;
    std::size_t cursor_ = 0;
};

}  // namespace fairbfl::chain
