#pragma once
// Proof-of-work: the hash puzzle of paper Eq. 4,
//     H(nonce + Block) < Target = Target_1 / difficulty.
//
// Two forms coexist:
//  * `mine` / `meets_target` run the *actual* SHA-256 nonce search (used by
//    tests, examples, and the micro benches);
//  * `sample_mining_seconds` draws a simulated solve time from the
//    exponential race distribution (used by the delay model, where running
//    real hashes for 100 rounds x many miners would dominate runtime
//    without changing any reported comparison).

#include <cstdint>
#include <optional>

#include "chain/block.hpp"
#include "support/rng.hpp"

namespace fairbfl::chain {

/// The maximum target (difficulty 1): 2^64 - 1 compared against the first
/// 8 bytes of the digest.  Difficulty d shrinks the target d-fold, so a
/// random hash succeeds with probability ~ 1/d per attempt.
inline constexpr std::uint64_t kTarget1 = ~0ULL;

/// Target for a difficulty (difficulty 0 is clamped to 1).
[[nodiscard]] std::uint64_t target_for_difficulty(std::uint64_t difficulty) noexcept;

/// Whether a header hash satisfies its difficulty's target.
[[nodiscard]] bool meets_target(const crypto::Digest& hash,
                                std::uint64_t difficulty) noexcept;

/// Result of a real nonce search.
struct MineResult {
    std::uint64_t nonce = 0;
    crypto::Digest hash{};
    std::uint64_t attempts = 0;
};

/// Searches nonces starting from `start_nonce` until the target is met or
/// `max_attempts` hashes were tried.  Returns nullopt on exhaustion.
[[nodiscard]] std::optional<MineResult> mine(BlockHeader header,
                                             std::uint64_t max_attempts,
                                             std::uint64_t start_nonce = 0);

/// Simulated solve time: a miner hashing at `hashes_per_second` against
/// `difficulty` solves after Exp(rate) seconds with
/// rate = hashes_per_second / difficulty.
[[nodiscard]] double sample_mining_seconds(double hashes_per_second,
                                           std::uint64_t difficulty,
                                           support::Rng& rng);

}  // namespace fairbfl::chain
