#include "chain/network.hpp"

#include <algorithm>
#include <cmath>

namespace fairbfl::chain {

double NetworkModel::link_seconds(double base_latency, double bandwidth,
                                  double jitter_sigma,
                                  std::size_t payload_bytes,
                                  support::Rng& rng) const {
    const double transfer =
        static_cast<double>(payload_bytes) / std::max(bandwidth, 1.0);
    // Lognormal jitter with unit median: exp(sigma * N(0,1)).
    const double jitter = std::exp(jitter_sigma * rng.normal());
    return (base_latency + transfer) * jitter;
}

double NetworkModel::client_upload_seconds(std::size_t payload_bytes,
                                           support::Rng& rng) const {
    double seconds =
        link_seconds(params_.client_base_latency_s, params_.client_bandwidth_Bps,
                     params_.client_jitter_sigma, payload_bytes, rng);
    if (rng.bernoulli(params_.disturbance_prob))
        seconds *= params_.disturbance_penalty;
    return seconds;
}

double NetworkModel::miner_link_seconds(std::size_t payload_bytes,
                                        support::Rng& rng) const {
    return link_seconds(params_.miner_base_latency_s,
                        params_.miner_bandwidth_Bps, params_.miner_jitter_sigma,
                        payload_bytes, rng);
}

double NetworkModel::exchange_seconds(std::size_t miners,
                                      std::size_t bytes_per_miner,
                                      support::Rng& rng) const {
    if (miners <= 1) return 0.0;
    // Each of the m miners broadcasts its set; the phase ends when the
    // slowest of the m broadcasts lands everywhere.  Per-broadcast time is
    // one link transfer (links run in parallel); the max over miners gives
    // the O(m)-flavoured growth the paper describes for T_ex.
    double slowest = 0.0;
    for (std::size_t i = 0; i < miners; ++i) {
        slowest = std::max(slowest, miner_link_seconds(bytes_per_miner, rng));
    }
    return slowest;
}

double NetworkModel::block_propagation_seconds(std::size_t miners,
                                               std::size_t block_bytes,
                                               support::Rng& rng) const {
    if (miners <= 1) return 0.0;
    // Sequential relay: transfer + validate at every hop.
    const double validation = params_.relay_validation_s_per_byte *
                              static_cast<double>(block_bytes);
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < miners; ++i) {
        total += miner_link_seconds(block_bytes, rng) + validation;
    }
    return total;
}

}  // namespace fairbfl::chain
