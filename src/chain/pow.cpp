#include "chain/pow.hpp"

namespace fairbfl::chain {

std::uint64_t target_for_difficulty(std::uint64_t difficulty) noexcept {
    if (difficulty <= 1) return kTarget1;
    return kTarget1 / difficulty;
}

bool meets_target(const crypto::Digest& hash,
                  std::uint64_t difficulty) noexcept {
    return crypto::leading64(hash) < target_for_difficulty(difficulty);
}

std::optional<MineResult> mine(BlockHeader header, std::uint64_t max_attempts,
                               std::uint64_t start_nonce) {
    header.nonce = start_nonce;
    for (std::uint64_t attempt = 0; attempt < max_attempts; ++attempt) {
        const crypto::Digest digest = header.hash();
        if (meets_target(digest, header.difficulty))
            return MineResult{header.nonce, digest, attempt + 1};
        ++header.nonce;
    }
    return std::nullopt;
}

double sample_mining_seconds(double hashes_per_second,
                             std::uint64_t difficulty, support::Rng& rng) {
    const double rate =
        hashes_per_second / static_cast<double>(difficulty == 0 ? 1 : difficulty);
    return rng.exponential(rate);
}

}  // namespace fairbfl::chain
