#pragma once
// Multi-replica consensus simulation.
//
// Every simulated miner holds its own Blockchain replica; freshly mined
// blocks are gossiped with per-link delivery delays, so replicas diverge
// temporarily (competing tips) and reconcile through longest-chain
// validation -- the consensus dynamics behind Procedure V and the fork
// statistics of Figure 6b, at the data-structure level rather than the
// delay-model level.
//
// The simulation is event-driven over simulated time: `broadcast` enqueues
// deliveries, `advance_to` applies everything due.  All replicas accept a
// block only through Blockchain::submit, so every consistency property is
// enforced by real validation.

#include <cstdint>
#include <map>
#include <vector>

#include "chain/chain.hpp"
#include "chain/network.hpp"
#include "support/rng.hpp"

namespace fairbfl::chain {

class ConsensusSim {
public:
    /// `miners` replicas over the same genesis.  Delivery delays come from
    /// `network` using `rng` (caller-owned stream).
    ConsensusSim(std::size_t miners, std::uint64_t chain_id,
                 NetworkModel network, std::uint64_t seed);

    /// Miner `origin` mines `block` at simulated time `now` (seconds): the
    /// block applies to the origin's replica immediately and is scheduled
    /// for delivery to every peer.  Returns the origin's verdict.
    BlockVerdict broadcast(std::size_t origin, const Block& block, double now);

    /// Delivers every in-flight block due by `time` (in delivery order).
    void advance_to(double time);
    /// Delivers everything still in flight.
    void drain();

    [[nodiscard]] std::size_t miner_count() const noexcept {
        return replicas_.size();
    }
    [[nodiscard]] const Blockchain& replica(std::size_t miner) const {
        return replicas_.at(miner);
    }
    /// True when every replica agrees on the same best tip.
    [[nodiscard]] bool consistent() const;
    /// Number of distinct best tips across replicas.
    [[nodiscard]] std::size_t distinct_tips() const;
    /// In-flight deliveries not yet applied.
    [[nodiscard]] std::size_t in_flight() const noexcept {
        return queue_.size();
    }

    /// Helper for building on a replica's current tip.
    [[nodiscard]] Block make_child_block(std::size_t miner,
                                         std::vector<Transaction> txs,
                                         std::uint64_t timestamp_ms,
                                         std::uint64_t difficulty = 1) const;

private:
    struct Delivery {
        double due = 0.0;
        std::uint64_t sequence = 0;  ///< FIFO tie-break for equal due times
        std::size_t target = 0;
        Block block;
    };

    std::vector<Blockchain> replicas_;
    NetworkModel network_;
    support::Rng rng_;
    std::multimap<std::pair<double, std::uint64_t>, Delivery> queue_;
    std::uint64_t sequence_ = 0;
};

}  // namespace fairbfl::chain
