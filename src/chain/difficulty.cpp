#include "chain/difficulty.hpp"

#include <algorithm>
#include <cmath>

namespace fairbfl::chain {

DifficultyRetargeter::DifficultyRetargeter(std::uint64_t initial_difficulty,
                                           RetargetParams params)
    : params_(params),
      difficulty_(std::clamp(initial_difficulty, params.min_difficulty,
                             params.max_difficulty)) {
    pending_.reserve(params_.window);
}

void DifficultyRetargeter::observe_interval(double seconds) {
    pending_.push_back(std::max(seconds, 0.0));
    if (pending_.size() < params_.window) return;

    double mean = 0.0;
    for (const double s : pending_) mean += s;
    mean /= static_cast<double>(pending_.size());
    pending_.clear();
    ++retargets_;

    // Blocks came too fast -> raise difficulty proportionally (and vice
    // versa), clamped to one max_step per adjustment.
    double factor = params_.target_interval_s <= 0.0
                        ? 1.0
                        : params_.target_interval_s / std::max(mean, 1e-9);
    factor = std::clamp(factor, 1.0 / params_.max_step, params_.max_step);

    const double adjusted =
        std::floor(static_cast<double>(difficulty_) * factor);
    if (adjusted >= static_cast<double>(params_.max_difficulty)) {
        difficulty_ = params_.max_difficulty;
    } else if (adjusted <= static_cast<double>(params_.min_difficulty)) {
        difficulty_ = params_.min_difficulty;
    } else {
        difficulty_ = static_cast<std::uint64_t>(adjusted);
    }
}

}  // namespace fairbfl::chain
