#pragma once
// Simulated network: the delay substrate behind T_up (client->miner upload),
// T_ex (miner gradient exchange) and block propagation.
//
// The paper's §4.2 notes clients sit "at the edge of the network" with
// channel quality that is "difficult to guarantee"; we model an edge link
// as base latency + payload/bandwidth + lognormal jitter, and miner-to-miner
// links as fast datacenter links.  All parameters are adopter-tunable.

#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"

namespace fairbfl::chain {

struct NetworkParams {
    // Client (edge) uplink.
    double client_base_latency_s = 0.05;   ///< RTT floor per upload
    double client_bandwidth_Bps = 2.0e6;   ///< ~16 Mbit/s edge uplink
    double client_jitter_sigma = 0.35;     ///< lognormal sigma on latency

    // Miner-to-miner (well-provisioned) links.
    double miner_base_latency_s = 0.01;
    double miner_bandwidth_Bps = 50.0e6;
    double miner_jitter_sigma = 0.10;

    /// Probability an edge upload experiences a disturbance (retransmit),
    /// multiplying its latency by `disturbance_penalty`.
    double disturbance_prob = 0.02;
    double disturbance_penalty = 4.0;

    /// Per-byte block-validation cost paid at every gossip hop (each miner
    /// verifies a block before relaying it).  Dominates propagation for
    /// full blocks; negligible for FAIR-BFL's single-gradient blocks.
    double relay_validation_s_per_byte = 3e-6;
};

/// Stateless sampler: all state lives in the caller-provided Rng so network
/// draws stay on deterministic per-entity streams.
class NetworkModel {
public:
    explicit NetworkModel(NetworkParams params = {}) noexcept
        : params_(params) {}

    [[nodiscard]] const NetworkParams& params() const noexcept {
        return params_;
    }

    /// Seconds for one client to upload `payload_bytes` to its miner.
    [[nodiscard]] double client_upload_seconds(std::size_t payload_bytes,
                                               support::Rng& rng) const;

    /// Seconds for one miner-to-miner transfer of `payload_bytes`.
    [[nodiscard]] double miner_link_seconds(std::size_t payload_bytes,
                                            support::Rng& rng) const;

    /// Seconds for all-to-all gradient-set exchange among `miners` nodes,
    /// payload `bytes_per_miner` each: every miner broadcasts once and the
    /// phase completes when the slowest link finishes (paper: T_ex, O(m)).
    [[nodiscard]] double exchange_seconds(std::size_t miners,
                                          std::size_t bytes_per_miner,
                                          support::Rng& rng) const;

    /// Seconds for a freshly mined block of `block_bytes` to reach all
    /// `miners` peers.  Modelled as a relay chain: each of the m-1 hops
    /// transfers the block and validates it before forwarding, so
    /// propagation grows with both the miner count and the block size --
    /// the fork window behind the paper's Figure 6b.
    [[nodiscard]] double block_propagation_seconds(std::size_t miners,
                                                   std::size_t block_bytes,
                                                   support::Rng& rng) const;

private:
    [[nodiscard]] double link_seconds(double base_latency, double bandwidth,
                                      double jitter_sigma,
                                      std::size_t payload_bytes,
                                      support::Rng& rng) const;

    NetworkParams params_;
};

}  // namespace fairbfl::chain
