#pragma once
// The unified orchestration API: every workload -- FedAvg, FedProx, the
// FAIR-BFL variants, vanilla BFL, and the pure-blockchain baseline -- is a
// `System` behind one round protocol, created from a string-keyed
// `SystemRegistry` by a declarative `SystemSpec`.
//
//     Environment env = build_environment(env_config);
//     SystemRun fair = run_system(env, fairbfl_spec(config, "FAIR"));
//     std::vector<SystemRun> all = run_suite(env, specs);  // concurrent
//
// New scenarios register a factory instead of editing the round loop or
// the bench binaries:
//
//     SystemRegistry::global().add("my_system",
//         [](const Environment& env, const SystemSpec& spec) { ...; });
//
// The built-in factories reproduce the legacy run_fedavg / run_fedprox /
// run_fairbfl / run_blockchain free functions bit-for-bit on the same
// seed; those functions survive as deprecated shims over this API for one
// release (see core/experiment.hpp).

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/blockchain_baseline.hpp"
#include "core/experiment.hpp"
#include "core/fairbfl.hpp"
#include "core/vanilla_bfl.hpp"
#include "fl/fedprox.hpp"
#include "support/parallel.hpp"
#include "support/sync.hpp"

namespace fairbfl::core {

/// Declarative description of one run: which registered system, under
/// which label, with which per-family configuration.  Each built-in
/// factory reads exactly the fields its legacy entry point took; the
/// unused families stay at their defaults.
struct SystemSpec {
    std::string system = "fairbfl";  ///< registry key
    std::string label;               ///< run name; empty = factory default
    /// Round-count override; 0 = the family config's own round count.
    std::size_t rounds = 0;

    fl::FlConfig fl;                     ///< "fedavg"
    fl::FedProxConfig fedprox;           ///< "fedprox"
    FairBflConfig fair;                  ///< "fairbfl" / "pure_fl" / ...
    VanillaBflConfig vanilla;            ///< "vanilla_bfl"
    BlockchainBaselineConfig blockchain; ///< "blockchain"
    DelayParams delay;                   ///< delay model for fedavg/fedprox
};

// Convenience constructors, one per built-in system.  Each takes the
// family configuration its factory reads, the run name (empty = the
// factory's default), and -- for the chainless systems -- the shared
// delay model.

/// Spec for classic FedAvg under the shared delay model.
/// \param config FL hyperparameters (rounds, ratio, SGD, seed).
/// \param delay  delay-model calibration for the simulated T components.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec fedavg_spec(const fl::FlConfig& config,
                                     const DelayParams& delay,
                                     std::string label = "");
/// Spec for FedProx (proximal FedAvg with stragglers).
/// \param config FedProx configuration (base FL + mu + drop rate).
/// \param delay  delay-model calibration for the simulated T components.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec fedprox_spec(const fl::FedProxConfig& config,
                                      const DelayParams& delay,
                                      std::string label = "");
/// Spec for the full FAIR-BFL round (Algorithms 1 + 2).
/// \param config the complete FAIR-BFL configuration.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec fairbfl_spec(const FairBflConfig& config,
                                      std::string label = "");
/// FAIR-BFL degraded to pure FL (Procedures III and V off -- Figure 3).
/// \param config the complete FAIR-BFL configuration.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec pure_fl_spec(const FairBflConfig& config,
                                      std::string label = "");
/// FAIR-BFL with the discarding strategy (§5.3).
/// \param config the complete FAIR-BFL configuration.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec fairbfl_discard_spec(const FairBflConfig& config,
                                              std::string label = "");
/// Spec for vanilla (non-fair, forking) BFL.
/// \param config the vanilla-BFL configuration.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec vanilla_bfl_spec(const VanillaBflConfig& config,
                                          std::string label = "");
/// Spec for the pure-blockchain baseline (no learning).
/// \param config the baseline's workload configuration.
/// \param label  run name; empty = the factory default.
[[nodiscard]] SystemSpec blockchain_spec(
    const BlockchainBaselineConfig& config, std::string label = "");

/// One system under the shared round protocol: call run_round() once per
/// communication round, then finalize() for the aggregated SystemRun.
/// finalize() is const and may be called at any point (and repeatedly);
/// it summarizes the rounds executed so far.
class System {
public:
    virtual ~System() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    /// The round count the spec's configuration asks for.
    [[nodiscard]] virtual std::size_t default_rounds() const noexcept = 0;

    /// Executes one communication round and returns its series point.
    virtual SeriesPoint run_round() = 0;

    /// Aggregates everything run so far into a SystemRun (§5.2 metrics).
    [[nodiscard]] virtual SystemRun finalize() const = 0;

    /// The ledger this system maintains; null for chainless systems
    /// (FedAvg, FedProx, pure FL).
    [[nodiscard]] virtual const chain::Blockchain* blockchain()
        const noexcept {
        return nullptr;
    }

    /// The reward ledger, when the system pays contributions (FAIR-BFL
    /// family only).
    [[nodiscard]] virtual const incentive::RewardLedger* reward_ledger()
        const noexcept {
        return nullptr;
    }
};

/// String-keyed factory table.  `global()` comes pre-loaded with the
/// built-ins ("fedavg", "fedprox", "fairbfl", "fairbfl_discard",
/// "pure_fl", "vanilla_bfl", "blockchain"); registrations are additive and
/// thread-safe, so a bench or adopter can plug a scenario in at startup.
class SystemRegistry {
public:
    using Factory = std::function<std::unique_ptr<System>(
        const Environment&, const SystemSpec&)>;

    /// Registers a factory.  Throws std::invalid_argument when `name` is
    /// already taken, unless `replace` is set.
    /// \param name    registry key the factory will answer to.
    /// \param factory builds the system from an environment and a spec.
    /// \param replace overwrite an existing registration instead of
    ///                throwing.
    void add(std::string name, Factory factory, bool replace = false)
        EXCLUDES(mutex_);

    /// True when a factory is registered under `name`.
    /// \param name registry key to look up.
    [[nodiscard]] bool contains(std::string_view name) const
        EXCLUDES(mutex_);
    /// Registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const EXCLUDES(mutex_);

    /// Builds the system `spec.system` names.  Throws std::out_of_range
    /// listing the known names when it is not registered.
    /// \param env  the shared world (dataset, partition, model).
    /// \param spec which system to build, with its configuration.
    [[nodiscard]] std::unique_ptr<System> make(const Environment& env,
                                               const SystemSpec& spec) const
        EXCLUDES(mutex_);

    /// The process-wide registry, built-ins pre-registered.
    static SystemRegistry& global();

private:
    mutable support::Mutex mutex_;
    std::map<std::string, Factory, std::less<>> factories_
        GUARDED_BY(mutex_);
};

/// Builds the spec's system, runs its rounds, and returns the finalized
/// SystemRun -- the single entry point every bench and example goes
/// through.
/// \param env      the shared world (dataset, partition, model).
/// \param spec     which system to run, with its configuration.
/// \param registry factory table to resolve `spec.system` in.
[[nodiscard]] SystemRun run_system(
    const Environment& env, const SystemSpec& spec,
    const SystemRegistry& registry = SystemRegistry::global());

/// Runs every spec against the shared environment, concurrently on the
/// given pool, and returns the SystemRuns in spec order.  Deterministic:
/// each system draws only from its own (seed, stream, round) Rng forks, so
/// results are identical to running the specs serially.  The first
/// exception (in spec order) is rethrown after all workers finish.
/// \param env      the shared world every spec runs against.
/// \param specs    the sweep, one spec per run.
/// \param pool     carries the per-spec fan-out; results are identical
///                 for any pool size.
/// \param registry factory table to resolve each spec's system in.
[[nodiscard]] std::vector<SystemRun> run_suite(
    const Environment& env, std::span<const SystemSpec> specs,
    support::ThreadPool& pool = support::ThreadPool::global(),
    const SystemRegistry& registry = SystemRegistry::global());

}  // namespace fairbfl::core
