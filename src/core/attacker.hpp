#pragma once
// Malicious-client models (paper §5.4): attackers "modify the actual local
// gradients to skew the global model".
//
// Three forgery modes are provided; kSignFlip (gradient-ascent style) is
// the default used for Table 2.  Which clients attack in a round is drawn
// from a dedicated stream so attack placement is reproducible and
// independent of training noise.

#include <cstdint>
#include <span>
#include <vector>

#include "fl/gradient.hpp"
#include "support/rng.hpp"

namespace fairbfl::core {

enum class AttackKind : std::uint8_t {
    kNone = 0,
    kSignFlip = 1,   ///< w <- global - scale * (w - global): inverted update
    kGaussian = 2,   ///< w <- w + sigma * N(0, I): random poison
    kScale = 3,      ///< w <- global + scale * (w - global): boosted update
};

struct AttackConfig {
    AttackKind kind = AttackKind::kNone;
    double magnitude = 3.0;        ///< scale / sigma depending on kind
    std::size_t min_attackers = 1; ///< per round, inclusive
    std::size_t max_attackers = 3; ///< per round, inclusive
};

/// Per-round attack outcome.
struct AttackReport {
    std::vector<fl::NodeId> attacker_clients;  ///< sorted ids (Table 2 col 3)
    std::vector<std::size_t> attacker_indices; ///< indices into the update set
};

/// Selects attackers among `updates` and forges their weight vectors in
/// place.  `reference_global` is the round's starting global weights (the
/// anchor the forgeries are built from).  No-op for AttackKind::kNone.
[[nodiscard]] AttackReport apply_attack(
    std::span<fl::GradientUpdate> updates,
    std::span<const float> reference_global, const AttackConfig& config,
    std::uint64_t round, std::uint64_t root_seed);

/// Detection rate of one round: |attackers ∩ flagged| / |attackers|
/// (1.0 when there were no attackers).
[[nodiscard]] double detection_rate(
    const std::vector<fl::NodeId>& attackers,
    const std::vector<fl::NodeId>& flagged);

}  // namespace fairbfl::core
