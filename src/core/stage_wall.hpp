#pragma once
// Deprecated StageWall shim over the telemetry event log.
//
// StageWall used to be the primary instrument: every producer wrote its
// wall clocks directly into these fields.  The telemetry subsystem
// (src/telemetry/telemetry.hpp) replaced that -- producers now emit spans
// and counters, and FairBfl derives this struct from the harvested
// statistics via stage_wall_from() so existing consumers (SeriesPoint,
// bench_perf_round, the sharding tests) keep working for one release.
// New code should consume telemetry::RoundStats (or a decoded dump)
// directly; this struct will be removed once no consumer is left.

#include <cstddef>

#include "telemetry/telemetry.hpp"

namespace fairbfl::core {

/// *Measured* wall-clock seconds of one round's pipeline stages on the
/// host -- the perf counterpart of the *simulated* RoundDelay
/// (core/delay_model.hpp).  bench_perf_round sums these per sweep point to
/// track the real cost of each stage across PRs.  Stages a system does not
/// execute stay zero.
///
/// Deprecated: a fixed struct of per-stage clocks cannot describe
/// overlapping stages.  Populated from the telemetry log by
/// stage_wall_from(); do not write the fields directly.
struct [[deprecated(
    "consume telemetry::RoundStats (or a decoded dump) directly; "
    "StageWall is a one-release compatibility shim")]] StageWall {
    double local = 0.0;      ///< Procedure I: local learning
    double cluster = 0.0;    ///< Algorithm 2: index + clustering + theta
    double aggregate = 0.0;  ///< provisional combine + reward settlement
    double mine = 0.0;       ///< Procedure V: consensus + chain submit
    /// Sub-component of `cluster`: building the round's GradientIndex
    /// (dense matrix / projection sketches / pivot signatures).  Already
    /// counted inside `cluster`, so total() must not add it again.
    /// Hierarchical rounds sum every pass's build.
    double index_build = 0.0;
    /// Shard-tree sub-components of `cluster` (ContributionConfig::
    /// sharding, shards > 1; zero on flat rounds).  `cluster_shards` sums
    /// the S shard-level passes' seconds -- on multi-core it exceeds the
    /// stage wall exactly when the fan-out overlaps -- and `cluster_root`
    /// is the root pass over the shard summaries.  Like index_build, both
    /// are already inside `cluster`; total() must not add them again.
    double cluster_shards = 0.0;
    double cluster_root = 0.0;
    /// Peak GradientIndex storage of any single Algorithm-2 pass this
    /// round, in bytes -- the memory counterpart riding along the perf
    /// record (perf JSON `index_peak_bytes`; not a time, not in total()).
    std::size_t index_peak_bytes = 0;
    /// *Virtual* seconds the round engine's trigger spent waiting for
    /// quorum after the first arrival (perf JSON `seconds.wait_quorum`).
    /// Simulated time, not host time: never added into total().
    double wait_quorum = 0.0;
    /// Updates that arrived after the round's aggregation trigger (perf
    /// JSON `late_updates`; zero for the degenerate lockstep config).
    std::size_t late_updates = 0;

    [[nodiscard]] double total() const noexcept {
        return local + cluster + aggregate + mine;
    }
};

/// Derives the shim from one round's harvested statistics.  The label ->
/// field mapping must match telemetry::to_json's stage derivation (pinned
/// in tests/test_telemetry.cpp):
///   local           <- span "round.local"
///   cluster         <- span "round.cluster"
///   aggregate       <- span "round.aggregate"
///   mine            <- span "round.mine"
///   index_build     <- span "cluster.index_build"
///   cluster_shards  <- span "cluster.shard_pass"
///   cluster_root    <- span "cluster.root_pass"
///   index_peak_bytes<- max counter "cluster.index_bytes"
///   wait_quorum     <- sum counter "round.wait_quorum_ns" (virtual ns)
///   late_updates    <- sum counter "round.late_updates"
// The factory is part of the shim: it must keep naming the deprecated
// type without tripping -Werror=deprecated-declarations.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
[[nodiscard]] StageWall stage_wall_from(const telemetry::RoundStats& stats);
#pragma GCC diagnostic pop

}  // namespace fairbfl::core
