#pragma once
// Pure-blockchain baseline: FAIR-BFL with Procedures I and IV removed
// (Figure 3's purple rectangle).  Workers submit opaque payload
// transactions; miners compete asynchronously with forks, empty-block
// waste, and block-size-limited queuing.  This is the "Blockchain" curve
// of Figures 4a, 6a and 6b.

#include <cstdint>
#include <memory>
#include <vector>

#include "chain/chain.hpp"
#include "chain/mempool.hpp"
#include "core/delay_model.hpp"
#include "core/strategies.hpp"
#include "crypto/keystore.hpp"

namespace fairbfl::core {

struct BlockchainBaselineConfig {
    std::size_t workers = 100;          ///< n transaction-producing nodes
    std::size_t miners = 2;             ///< m
    std::size_t tx_payload_bytes = 1000;///< per-worker transaction size
    std::size_t rounds = 100;
    DelayParams delay;
    std::size_t key_bits = 0;           ///< 0 disables RSA signing
    std::uint64_t seed = 42;
    std::uint64_t chain_id = 0xB10C;
};

struct BlockchainRoundRecord {
    std::uint64_t round = 0;
    RoundDelay delay;               ///< only t_up and t_bl are non-zero
    std::size_t transactions = 0;
    std::size_t blocks_mined = 0;
    std::size_t forks = 0;
    double fork_merge_seconds = 0.0;
    std::size_t mempool_backlog = 0; ///< txs still queued after the round
};

class BlockchainBaseline {
public:
    explicit BlockchainBaseline(BlockchainBaselineConfig config);

    /// One "round": every worker submits one transaction; miners mine until
    /// the backlog drains (the queuing cost of §5.2.3).
    BlockchainRoundRecord run_round();
    std::vector<BlockchainRoundRecord> run(std::size_t rounds = 0);

    [[nodiscard]] const chain::Blockchain& blockchain() const noexcept {
        return chain_;
    }
    [[nodiscard]] const BlockchainBaselineConfig& config() const noexcept {
        return config_;
    }

private:
    BlockchainBaselineConfig config_;
    /// Vanilla discipline: concurrent mining, forks and idle waste priced.
    std::shared_ptr<const ConsensusEngine> consensus_;
    crypto::KeyStore keys_;
    chain::Blockchain chain_;
    chain::Mempool mempool_;
    std::uint64_t round_ = 0;
};

}  // namespace fairbfl::core
