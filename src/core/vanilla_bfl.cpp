#include "core/vanilla_bfl.hpp"

#include <algorithm>

#include "fl/sampling.hpp"

namespace fairbfl::core {

VanillaBfl::VanillaBfl(const ml::Model& model, std::vector<fl::Client> clients,
                       ml::DatasetView test_set, VanillaBflConfig config)
    : model_(&model),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      trainer_(fl::LocalTrainer::Options{
          .batched = config.fl.batched_training}),
      consensus_(make_consensus("async_pow")),
      keys_(config.fl.seed, config.key_bits),
      chain_(config.chain_id, config.key_bits != 0 ? &keys_ : nullptr),
      mempool_(config.delay.max_block_bytes),
      weights_(model.param_count(), 0.0F) {
    chain_.set_check_pow(false);
    for (const auto& client : clients_) keys_.register_node(client.id());
    auto rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x1417);
    model_->init_params(weights_, rng);
}

std::size_t VanillaBfl::batch_steps_of(std::size_t client_id) const {
    const std::size_t samples = clients_[client_id].num_samples();
    const std::size_t batch =
        std::max<std::size_t>(config_.fl.sgd.batch_size, 1);
    return config_.fl.sgd.epochs * ((samples + batch - 1) / batch);
}

std::vector<float> VanillaBfl::compute_global_from_chain(
    std::uint64_t round, std::size_t* txs_found) const {
    std::vector<fl::GradientUpdate> from_chain;
    for (std::size_t h = 1; h < chain_.height(); ++h) {
        for (const auto& tx : chain_.at(h).transactions) {
            if (tx.kind != chain::TxKind::kLocalGradient) continue;
            if (tx.round != round) continue;
            fl::GradientUpdate update;
            update.client = tx.origin;
            update.round = round;
            update.weights = chain::parse_gradient_tx(tx);
            from_chain.push_back(std::move(update));
        }
    }
    if (txs_found != nullptr) *txs_found = from_chain.size();
    if (from_chain.empty()) return weights_;
    return fl::simple_average(from_chain);
}

VanillaRoundRecord VanillaBfl::run_round() {
    const std::uint64_t round = round_++;
    VanillaRoundRecord record;
    record.fl.round = round;

    auto up_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x755, round);
    auto bl_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x7B1, round);
    const DelayModel delays(config_.delay);

    // Clients read the latest global state from the chain and train.
    const auto selected = fl::sample_clients(
        clients_.size(), config_.fl.client_ratio, round, config_.fl.seed);
    record.fl.selected = selected.size();
    auto updates = trainer_.run(clients_, selected, weights_,
                                config_.fl.sgd, round, config_.fl.seed);
    std::vector<std::size_t> steps;
    steps.reserve(selected.size());
    for (const std::size_t id : selected) steps.push_back(batch_steps_of(id));
    record.delay.t_local = delays.t_local(selected, steps, config_.fl.seed);

    const AttackReport attack = apply_attack(updates, weights_, config_.attack,
                                             round, config_.fl.seed);
    record.attacker_clients = attack.attacker_clients;

    // Every local gradient becomes a mempool transaction.
    const std::size_t payload =
        updates.empty() ? 0 : updates[0].payload_bytes();
    for (const auto& update : updates) {
        chain::Transaction tx = chain::make_gradient_tx(
            chain::TxKind::kLocalGradient, update.client, round,
            update.weights);
        chain::sign_transaction(tx, keys_);
        mempool_.add(std::move(tx));
        record.fl.participant_ids.push_back(update.client);
    }
    record.fl.participants = updates.size();
    record.delay.t_up =
        delays.t_up(updates.size(), payload, up_rng) +
        config_.delay.seconds_per_tx_validation *
            static_cast<double>(updates.size());

    // Miners race asynchronously until the round's backlog is on-chain.
    const std::size_t blocks = mempool_.blocks_to_drain();
    record.blocks_this_round = blocks;
    const MiningOutcome mined =
        consensus_->mine(delays, config_.miners, blocks,
                         config_.delay.max_block_bytes, bl_rng);
    record.delay.t_bl = mined.seconds;
    record.forks_this_round = mined.forks;
    for (std::size_t b = 0; b < blocks; ++b) {
        chain::Block block;
        block.header.index = chain_.tip().header.index + 1;
        block.header.prev_hash = chain_.tip().header.hash();
        block.header.difficulty = config_.delay.difficulty;
        block.header.timestamp_ms = round * 1000 + b;
        block.transactions = mempool_.pack_block();
        block.seal_transactions();
        (void)chain_.submit(block);
    }

    // Workers read the chain and compute the global update themselves
    // (simple average -- vanilla BFL has no contribution weighting).
    weights_ = compute_global_from_chain(round,
                                         &record.gradient_txs_on_chain);
    record.delay.t_gl =
        delays.t_gl(record.gradient_txs_on_chain, /*clustered_points=*/0);

    record.fl.test_accuracy = model_->accuracy(weights_, test_set_);
    double loss_sum = 0.0;
    for (const auto& u : updates) loss_sum += u.local_loss;
    record.fl.mean_local_loss =
        updates.empty() ? 0.0
                        : loss_sum / static_cast<double>(updates.size());
    return record;
}

std::vector<VanillaRoundRecord> VanillaBfl::run(std::size_t rounds) {
    if (rounds == 0) rounds = config_.fl.rounds;
    std::vector<VanillaRoundRecord> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r) history.push_back(run_round());
    return history;
}

}  // namespace fairbfl::core
