#include "core/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace fairbfl::core {

namespace {

/// The delay components are *simulated* seconds; telemetry records carry
/// integer values, so they ride along as nanosecond counters
/// (delay.*_ns).  Negative/NaN guards are unnecessary: every component is
/// a sum/max of non-negative draws.
std::uint64_t sim_ns(double seconds) noexcept {
    return static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

DelayModel::DelayModel(DelayParams params) noexcept
    : params_(params), network_(params.network) {}

double DelayModel::hetero_factor(std::size_t client_id,
                                 std::uint64_t seed) const {
    // Fixed per client for the whole run: a slow device is always slow.
    auto rng = support::Rng::fork(seed, 0x48E7 + client_id);
    return std::exp(params_.compute_hetero_sigma * rng.normal());
}

double DelayModel::t_local_client(std::size_t client_id,
                                  std::size_t batch_steps,
                                  std::uint64_t seed) const {
    return params_.seconds_per_batch * static_cast<double>(batch_steps) *
           hetero_factor(client_id, seed);
}

double DelayModel::t_local(std::span<const std::size_t> client_ids,
                           std::span<const std::size_t> batch_steps,
                           std::uint64_t seed) const {
    double slowest = 0.0;
    for (std::size_t i = 0; i < client_ids.size(); ++i) {
        slowest = std::max(slowest,
                           t_local_client(client_ids[i], batch_steps[i], seed));
    }
    telemetry::counter_add(telemetry::labels::delay_local_ns(),
                           sim_ns(slowest));
    return slowest;
}

std::vector<double> DelayModel::t_up_each(std::size_t clients,
                                          std::size_t payload_bytes,
                                          support::Rng& rng) const {
    std::vector<double> seconds;
    seconds.reserve(clients);
    double slowest = 0.0;
    for (std::size_t i = 0; i < clients; ++i) {
        seconds.push_back(network_.client_upload_seconds(payload_bytes, rng));
        slowest = std::max(slowest, seconds.back());
    }
    telemetry::counter_add(telemetry::labels::delay_up_ns(),
                           sim_ns(slowest));
    return seconds;
}

double DelayModel::t_up(std::size_t clients, std::size_t payload_bytes,
                        support::Rng& rng) const {
    double slowest = 0.0;
    for (const double draw : t_up_each(clients, payload_bytes, rng))
        slowest = std::max(slowest, draw);
    return slowest;
}

double DelayModel::t_ex(std::size_t miners, std::size_t set_bytes,
                        support::Rng& rng) const {
    const double seconds = network_.exchange_seconds(miners, set_bytes, rng);
    telemetry::counter_add(telemetry::labels::delay_ex_ns(),
                           sim_ns(seconds));
    return seconds;
}

double DelayModel::t_gl(std::size_t updates,
                        std::size_t clustered_points) const noexcept {
    const double seconds = params_.seconds_per_aggregated_update *
                               static_cast<double>(updates) +
                           params_.seconds_per_clustered_pair *
                               static_cast<double>(clustered_points *
                                                   clustered_points);
    telemetry::counter_add(telemetry::labels::delay_gl_ns(),
                           sim_ns(seconds));
    return seconds;
}

double DelayModel::t_bl_fair(std::size_t miners, std::size_t block_bytes,
                             support::Rng& rng) const {
    miners = std::max<std::size_t>(miners, 1);
    // Difficulty retargeting: per-miner rate scales as 1/m so the fleet's
    // block interval stays at difficulty / hashes_per_second.
    const chain::MiningRace race(
        chain::uniform_miners(miners, params_.miner_hashes_per_second /
                                          static_cast<double>(miners)),
        network_, params_.difficulty);
    const double seconds =
        race.run(block_bytes, /*allow_forks=*/false, rng).total_seconds();
    telemetry::counter_add(telemetry::labels::delay_bl_ns(),
                           sim_ns(seconds));
    return seconds;
}

double DelayModel::t_bl_vanilla(std::size_t miners, std::size_t blocks,
                                std::size_t block_bytes, support::Rng& rng,
                                std::size_t* forks_out,
                                double* merge_seconds_out) const {
    miners = std::max<std::size_t>(miners, 1);
    const chain::MiningRace race(
        chain::uniform_miners(miners, params_.miner_hashes_per_second /
                                          static_cast<double>(miners)),
        network_, params_.difficulty);
    double total = 0.0;
    std::size_t forks = 0;
    double merge_seconds = 0.0;
    for (std::size_t b = 0; b < blocks; ++b) {
        const chain::RaceOutcome outcome =
            race.run(block_bytes, /*allow_forks=*/true, rng);
        total += outcome.total_seconds();
        if (outcome.forked) {
            ++forks;
            merge_seconds += outcome.fork_merge_seconds;
        }
        // Asynchronous mining wastes part of a block interval on empty
        // blocks (miners keep hashing while FL is still computing).
        // Named product so the accumulation is not an FMA-eligible
        // expression (fp-determinism): same multiply, same add, but no
        // single expression a contracting compiler could fuse.
        const double idle_seconds =
            params_.idle_mining_fraction * outcome.solve_seconds;
        total += idle_seconds;
    }
    if (forks_out != nullptr) *forks_out = forks;
    if (merge_seconds_out != nullptr) *merge_seconds_out = merge_seconds;
    telemetry::counter_add(telemetry::labels::delay_bl_ns(), sim_ns(total));
    return total;
}

}  // namespace fairbfl::core
