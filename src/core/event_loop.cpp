#include "core/event_loop.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace fairbfl::core {

EventLoop::EventId EventLoop::schedule_at(VirtualTime when, Callback fn) {
    // Monotone clock: an event scheduled "in the past" (e.g. a retry
    // computed from a stale timestamp) fires immediately-next instead of
    // rewinding time.
    when = std::max(when, now_);
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{when, seq, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_;
    return EventId{seq};
}

EventLoop::EventId EventLoop::schedule_after(VirtualTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::cancel(EventId id) {
    if (id.seq == 0 || id.seq >= next_seq_) return false;
    if (!cancelled_.insert(id.seq).second) return false;
    if (live_ == 0) {
        // Nothing pending: the event must have fired already.
        cancelled_.erase(id.seq);
        return false;
    }
    const bool pending = std::any_of(
        heap_.begin(), heap_.end(),
        [&](const Entry& e) { return e.seq == id.seq; });
    if (!pending) {
        cancelled_.erase(id.seq);
        return false;
    }
    --live_;
    return true;
}

std::optional<EventLoop::Entry> EventLoop::pop_live() {
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        Entry entry = std::move(heap_.back());
        heap_.pop_back();
        if (cancelled_.erase(entry.seq) > 0) continue;  // lazily dropped
        --live_;
        return entry;
    }
    return std::nullopt;
}

bool EventLoop::step() {
    auto entry = pop_live();
    if (!entry) return false;
    now_ = std::max(now_, entry->when);
    ++processed_;
    {
        const telemetry::Span span(telemetry::labels::engine_event());
        telemetry::counter_max(telemetry::labels::engine_virtual_ns(), now_);
        entry->fn(*this);
    }
    return true;
}

std::size_t EventLoop::run_until_idle() {
    std::size_t fired = 0;
    while (step()) ++fired;
    return fired;
}

std::size_t EventLoop::run_until(VirtualTime deadline) {
    std::size_t fired = 0;
    while (true) {
        const auto next = next_time();
        if (!next || *next > deadline) break;
        if (step()) ++fired;
    }
    now_ = std::max(now_, deadline);
    return fired;
}

std::optional<VirtualTime> EventLoop::next_time() const {
    // The heap front is the earliest entry, but it may be a lazily
    // cancelled one; scan for the earliest live entry instead (cancel is
    // rare, and the queue is per-round small).
    std::optional<VirtualTime> best;
    for (const auto& entry : heap_) {
        if (cancelled_.contains(entry.seq)) continue;
        const VirtualTime when = std::max(entry.when, now_);
        if (!best || when < *best) best = when;
    }
    return best;
}

}  // namespace fairbfl::core
