#pragma once
// Deterministic discrete-event loop on a virtual clock.
//
// The round engine (core/round_engine.hpp) turns client uploads, the
// aggregation deadline, and async mining solves into events scheduled on
// this loop.  The clock is *virtual* -- nanoseconds of simulated time from
// the paper's delay decomposition T(n, m), not host time -- and the queue
// is a priority queue keyed on (time, sequence): two events at the same
// virtual instant fire in the order they were scheduled.  Because both
// keys are assigned by deterministic code on the driving thread (real
// compute runs *before* the loop, fanned out through the thread pool),
// the processed-event sequence is a pure function of the schedule, so any
// async round -- including injected faults -- replays identically under
// any worker-thread count.
//
// Determinism contract (pinned by tests/test_round_engine.cpp and the
// engine properties in tests/test_properties.cpp):
//   * events fire in strict (time, sequence) order;
//   * now() is monotone: scheduling at a past instant clamps to now();
//   * callbacks run on the thread that called run_*(), never on a pool
//     worker, and may schedule or cancel further events.
//
// Telemetry: every processed event emits an "engine.event" span and a
// counter_max "engine.virtual_ns" sample of its virtual timestamp, so a
// harvested round exposes both the event count and the round's virtual
// makespan next to the host-time stage spans.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

namespace fairbfl::core {

/// Simulated nanoseconds since the start of the current round.
using VirtualTime = std::uint64_t;

class EventLoop {
public:
    using Callback = std::function<void(EventLoop&)>;

    /// Handle for cancel(); sequence numbers are unique per loop instance.
    struct EventId {
        std::uint64_t seq = 0;
    };

    EventLoop() = default;
    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;
    EventLoop(EventLoop&&) = default;
    EventLoop& operator=(EventLoop&&) = default;

    /// Current virtual time: the timestamp of the last processed event (or
    /// the deadline run_until() advanced to).  Starts at 0 each round.
    [[nodiscard]] VirtualTime now() const noexcept { return now_; }

    /// Schedules `fn` at absolute virtual time `when`; a past instant is
    /// clamped to now() so the clock stays monotone.
    EventId schedule_at(VirtualTime when, Callback fn);

    /// Schedules `fn` at now() + `delay`.
    EventId schedule_after(VirtualTime delay, Callback fn);

    /// Cancels a pending event.  Returns false when the event already
    /// fired, was cancelled, or never existed.  O(1); the entry is
    /// dropped lazily when it reaches the head of the queue.
    bool cancel(EventId id);

    /// Processes events until the queue is empty; returns how many fired.
    std::size_t run_until_idle();

    /// Processes every event with time <= `deadline`, then advances now()
    /// to `deadline` (even if no event fired).  Returns how many fired.
    std::size_t run_until(VirtualTime deadline);

    /// Processes the single earliest pending event; false when idle.
    bool step();

    /// Virtual timestamp of the earliest pending event, if any.
    [[nodiscard]] std::optional<VirtualTime> next_time() const;

    [[nodiscard]] std::size_t pending() const noexcept { return live_; }
    [[nodiscard]] std::uint64_t processed() const noexcept {
        return processed_;
    }

private:
    struct Entry {
        VirtualTime when = 0;
        std::uint64_t seq = 0;
        Callback fn;
    };

    /// Min-heap order on (when, seq): std::push_heap keeps the *greatest*
    /// element at the front, so the comparator inverts.
    static bool later(const Entry& a, const Entry& b) noexcept {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }

    /// Pops the earliest non-cancelled entry; nullopt when none remain.
    std::optional<Entry> pop_live();

    std::vector<Entry> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    VirtualTime now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t processed_ = 0;
    std::size_t live_ = 0;  ///< pending() excluding lazily-cancelled entries
};

}  // namespace fairbfl::core
