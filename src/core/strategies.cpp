#include "core/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "incentive/hierarchical.hpp"

namespace fairbfl::core {

namespace {

void check_updates(std::span<const fl::GradientUpdate> updates) {
    if (updates.empty())
        throw std::invalid_argument("aggregate: empty update set");
    const std::size_t width = updates[0].weights.size();
    for (const auto& u : updates) {
        if (u.weights.size() != width)
            throw std::invalid_argument("aggregate: ragged update widths");
    }
}

// --- Aggregators -----------------------------------------------------------

class SimpleAverageAggregator final : public Aggregator {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "simple";
    }
    [[nodiscard]] std::vector<float> aggregate(
        std::span<const fl::GradientUpdate> updates) const override {
        return fl::simple_average(updates);
    }
};

class SampleWeightedAggregator final : public Aggregator {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "sample_weighted";
    }
    [[nodiscard]] std::vector<float> aggregate(
        std::span<const fl::GradientUpdate> updates) const override {
        return fl::sample_weighted_average(updates);
    }
};

class FairAggregator final : public Aggregator {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "fair";
    }
    /// Without scores Eq. 1 degenerates to uniform weights (line 24).
    [[nodiscard]] std::vector<float> aggregate(
        std::span<const fl::GradientUpdate> updates) const override {
        return fl::simple_average(updates);
    }
    [[nodiscard]] std::vector<float> aggregate_weighted(
        std::span<const fl::GradientUpdate> updates,
        std::span<const double> theta) const override {
        return fl::fair_aggregate(updates, theta);
    }
};

/// Per-coordinate trimmed mean: sort the K client values of each
/// coordinate, drop the ceil(trim * K) smallest and largest, average the
/// rest.  A classic Byzantine-robust rule (Yin et al., ICML'18): forged
/// updates of extreme magnitude land in the trimmed tails and never touch
/// the global model, whatever their direction.
class TrimmedMeanAggregator final : public Aggregator {
public:
    explicit TrimmedMeanAggregator(double trim_fraction)
        : trim_fraction_(trim_fraction) {
        if (trim_fraction < 0.0 || trim_fraction >= 0.5)
            throw std::invalid_argument(
                "trimmed_mean: trim fraction must be in [0, 0.5)");
    }

    [[nodiscard]] std::string_view name() const noexcept override {
        return "trimmed_mean";
    }

    [[nodiscard]] std::vector<float> aggregate(
        std::span<const fl::GradientUpdate> updates) const override {
        check_updates(updates);
        const std::size_t k = updates.size();
        std::size_t trim = static_cast<std::size_t>(
            std::ceil(trim_fraction_ * static_cast<double>(k)));
        // Always keep at least one value per coordinate.
        if (2 * trim >= k) trim = (k - 1) / 2;
        const std::size_t kept = k - 2 * trim;

        std::vector<float> out(updates[0].weights.size());
        std::vector<float> column(k);
        for (std::size_t d = 0; d < out.size(); ++d) {
            for (std::size_t i = 0; i < k; ++i)
                column[i] = updates[i].weights[d];
            std::sort(column.begin(), column.end());
            double sum = 0.0;
            for (std::size_t i = trim; i < k - trim; ++i) sum += column[i];
            out[d] = static_cast<float>(sum / static_cast<double>(kept));
        }
        return out;
    }

private:
    double trim_fraction_;
};

/// Coordinate-wise median: the trim -> 1/2 limit of the trimmed mean and
/// the strongest per-coordinate breakdown point.
class CoordinateMedianAggregator final : public Aggregator {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "median";
    }

    [[nodiscard]] std::vector<float> aggregate(
        std::span<const fl::GradientUpdate> updates) const override {
        check_updates(updates);
        const std::size_t k = updates.size();
        std::vector<float> out(updates[0].weights.size());
        std::vector<float> column(k);
        for (std::size_t d = 0; d < out.size(); ++d) {
            for (std::size_t i = 0; i < k; ++i)
                column[i] = updates[i].weights[d];
            const auto mid = column.begin() + static_cast<std::ptrdiff_t>(k / 2);
            std::nth_element(column.begin(), mid, column.end());
            if (k % 2 == 1) {
                out[d] = *mid;
            } else {
                const float upper = *mid;
                const float lower =
                    *std::max_element(column.begin(), mid);
                out[d] = (lower + upper) / 2.0F;
            }
        }
        return out;
    }
};

// --- Consensus engines -----------------------------------------------------

/// Assumption 1: every block is one synchronized competition; the fastest
/// miner wins, everyone extends the same tip, forks cannot happen.
class SynchronizedPow final : public ConsensusEngine {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "sync_pow";
    }
    [[nodiscard]] MiningOutcome mine(const DelayModel& delays,
                                     std::size_t miners, std::size_t blocks,
                                     std::size_t block_bytes,
                                     support::Rng& rng) const override {
        MiningOutcome outcome;
        for (std::size_t b = 0; b < blocks; ++b)
            outcome.seconds += delays.t_bl_fair(miners, block_bytes, rng);
        return outcome;
    }
};

/// No Assumption 1: miners race concurrently, forks and idle-block waste
/// are priced in (vanilla BFL / the async-mining ablation).
class AsyncPow final : public ConsensusEngine {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "async_pow";
    }
    [[nodiscard]] MiningOutcome mine(const DelayModel& delays,
                                     std::size_t miners, std::size_t blocks,
                                     std::size_t block_bytes,
                                     support::Rng& rng) const override {
        MiningOutcome outcome;
        outcome.seconds =
            delays.t_bl_vanilla(miners, blocks, block_bytes, rng,
                                &outcome.forks, &outcome.fork_merge_seconds);
        return outcome;
    }
};

// --- Incentive policies ----------------------------------------------------

/// Shard-tree Algorithm 2 (incentive/hierarchical.hpp): S independent
/// shard-level passes plus a root pass over the survivor summaries.  The
/// returned report is flat-compatible and carries the root-level
/// settlement, which the default (Eq. 1) reward path returns directly.
/// An explicitly configured Aggregator still governs the combine instead
/// (see RewardPolicy::settle): a robust rule like trimmed_mean must not
/// be bypassed by the tree, so it runs flat over the hierarchical
/// survivors while detection and rewards keep the hierarchical labels.
class ShardTreeContribution final : public ContributionPolicy {
public:
    explicit ShardTreeContribution(incentive::ContributionConfig config)
        : config_(std::move(config)),
          name_("shard_tree(" + config_.clustering + "/" + config_.index +
                "/x" + std::to_string(config_.sharding.shards) + ")") {
        // One cache per system: the tree's root and shard passes each use
        // their own slot in it (incentive/hierarchical.cpp).
        if (config_.index_cache == nullptr)
            config_.index_cache = std::make_shared<cluster::IndexCache>();
    }

    [[nodiscard]] std::string_view name() const noexcept override {
        return name_;
    }

    [[nodiscard]] incentive::ContributionReport identify(
        std::span<const fl::GradientUpdate> updates,
        std::span<const float> provisional_global,
        std::span<const float> reference) const override {
        return incentive::identify_contributions_hierarchical(
                   updates, provisional_global, config_, reference)
            .report;
    }

private:
    incentive::ContributionConfig config_;
    std::string name_;
};

class ClusteredContribution final : public ContributionPolicy {
public:
    explicit ClusteredContribution(incentive::ContributionConfig config)
        : config_(std::move(config)),
          name_("clustered(" + config_.clustering + "/" + config_.index +
                ")") {
        // Installs the cross-round index cache; updatable backends then
        // maintain their index incrementally between this system's rounds.
        if (config_.index_cache == nullptr)
            config_.index_cache = std::make_shared<cluster::IndexCache>();
    }

    [[nodiscard]] std::string_view name() const noexcept override {
        return name_;
    }

    [[nodiscard]] incentive::ContributionReport identify(
        std::span<const fl::GradientUpdate> updates,
        std::span<const float> provisional_global,
        std::span<const float> reference) const override {
        return incentive::identify_contributions(updates, provisional_global,
                                                 config_, reference);
    }

private:
    incentive::ContributionConfig config_;
    std::string name_;
};

class StrategyRewardPolicy final : public RewardPolicy {
public:
    explicit StrategyRewardPolicy(incentive::LowContributionStrategy strategy)
        : strategy_(strategy) {}

    [[nodiscard]] std::string_view name() const noexcept override {
        return strategy_ == incentive::LowContributionStrategy::kDiscard
                   ? "discard"
                   : "keep_all";
    }

    [[nodiscard]] std::vector<float> settle(
        std::span<const fl::GradientUpdate> updates,
        const incentive::ContributionReport& report,
        const Aggregator* aggregator) const override {
        if (aggregator == nullptr)
            return incentive::apply_strategy(updates, report, strategy_);
        // Same survivor selection and degenerate-theta fallback as
        // apply_strategy, with the configured rule doing the combine.
        const incentive::SurvivorSelection selection =
            incentive::select_survivors(updates, report, strategy_);
        if (selection.degenerate())
            return aggregator->aggregate(selection.updates);
        return aggregator->aggregate_weighted(selection.updates,
                                              selection.theta);
    }

    [[nodiscard]] bool benches_low_contributors() const noexcept override {
        return strategy_ == incentive::LowContributionStrategy::kDiscard;
    }

private:
    incentive::LowContributionStrategy strategy_;
};

/// Single source of truth for the registered rules: make_aggregator and
/// aggregator_names both read this table, so a new rule cannot appear in
/// one and be missing from the other.
struct AggregatorEntry {
    std::string_view name;
    std::shared_ptr<const Aggregator> (*make)(double trim_fraction);
};

constexpr AggregatorEntry kAggregators[] = {
    {"simple",
     [](double) -> std::shared_ptr<const Aggregator> {
         return std::make_shared<SimpleAverageAggregator>();
     }},
    {"sample_weighted",
     [](double) -> std::shared_ptr<const Aggregator> {
         return std::make_shared<SampleWeightedAggregator>();
     }},
    {"fair",
     [](double) -> std::shared_ptr<const Aggregator> {
         return std::make_shared<FairAggregator>();
     }},
    {"trimmed_mean",
     [](double trim) -> std::shared_ptr<const Aggregator> {
         return std::make_shared<TrimmedMeanAggregator>(trim);
     }},
    {"median",
     [](double) -> std::shared_ptr<const Aggregator> {
         return std::make_shared<CoordinateMedianAggregator>();
     }},
};

}  // namespace

std::shared_ptr<const Aggregator> make_aggregator(std::string_view name,
                                                  double trim_fraction) {
    for (const auto& entry : kAggregators) {
        if (entry.name == name) return entry.make(trim_fraction);
    }
    throw std::invalid_argument("unknown aggregator '" + std::string(name) +
                                "' (known: " +
                                detail::join_names(aggregator_names()) + ")");
}

std::vector<std::string_view> aggregator_names() {
    std::vector<std::string_view> names;
    names.reserve(std::size(kAggregators));
    for (const auto& entry : kAggregators) names.push_back(entry.name);
    return names;
}

std::shared_ptr<const ConsensusEngine> make_consensus(std::string_view name) {
    struct ConsensusEntry {
        std::string_view name;
        std::shared_ptr<const ConsensusEngine> (*make)();
    };
    static constexpr ConsensusEntry kEngines[] = {
        {"sync_pow",
         []() -> std::shared_ptr<const ConsensusEngine> {
             return std::make_shared<SynchronizedPow>();
         }},
        {"async_pow",
         []() -> std::shared_ptr<const ConsensusEngine> {
             return std::make_shared<AsyncPow>();
         }},
    };
    for (const auto& entry : kEngines) {
        if (entry.name == name) return entry.make();
    }
    std::vector<std::string_view> known;
    for (const auto& entry : kEngines) known.push_back(entry.name);
    throw std::invalid_argument("unknown consensus engine '" +
                                std::string(name) +
                                "' (known: " + detail::join_names(known) +
                                ")");
}

std::shared_ptr<const ContributionPolicy> make_contribution_policy(
    const incentive::ContributionConfig& config) {
    if (config.sharding.shards > 1)
        return std::make_shared<ShardTreeContribution>(config);
    return std::make_shared<ClusteredContribution>(config);
}

std::shared_ptr<const RewardPolicy> make_reward_policy(
    incentive::LowContributionStrategy strategy) {
    return std::make_shared<StrategyRewardPolicy>(strategy);
}

}  // namespace fairbfl::core
