#pragma once
// Experiment harness: builds the evaluation environment (dataset ->
// partition -> model -> clients) and runs each system under the unified
// metric protocol of §5.2:
//   * average delay   = (1/r) sum d_i over communication rounds,
//   * average accuracy= (1/r) sum acc_i,
//   * convergence     = accuracy change within 0.5% for 5 consecutive
//                       rounds.
// Every bench binary is a thin parameter sweep over these helpers.

#include <memory>
#include <string>
#include <vector>

#include "core/blockchain_baseline.hpp"
#include "core/fairbfl.hpp"
#include "fl/fedprox.hpp"
#include "ml/partition.hpp"
#include "ml/synthetic_mnist.hpp"
#include "support/stats.hpp"

namespace fairbfl::core {

enum class ModelKind : std::uint8_t { kLogistic = 0, kMlp = 1 };

struct EnvironmentConfig {
    ml::SyntheticMnistParams data;
    ml::PartitionParams partition;
    ModelKind model = ModelKind::kLogistic;
    std::size_t mlp_hidden = 32;
    double test_fraction = 0.15;
    /// Low-quality clients (paper §5.3): this fraction of clients get
    /// `label_noise_prob` of their training labels *systematically*
    /// remapped by a fixed per-client class permutation (a consistently
    /// wrong annotator).  Systematic mislabelling produces confident,
    /// full-magnitude, wrong-direction gradients -- the "noise from
    /// low-quality data" the discarding strategy is supposed to filter out.
    /// (Uniformly random flips would largely cancel within a shard and
    /// yield small, undetectable gradients instead.)
    double noisy_client_fraction = 0.0;
    double label_noise_prob = 0.6;
    /// When both paths are non-empty and the files exist, real MNIST IDX
    /// data replaces the synthetic dataset.
    std::string mnist_images;
    std::string mnist_labels;
};

/// The built world.  Dataset lives behind a unique_ptr so the views (which
/// hold a Dataset*) survive moves of the Environment.
struct Environment {
    std::unique_ptr<ml::Dataset> dataset;
    std::unique_ptr<ml::Model> model;
    std::vector<ml::DatasetView> shards;  ///< one per client
    ml::DatasetView train;
    ml::DatasetView test;
    /// Clients whose labels were noised (empty unless configured).
    std::vector<std::size_t> noisy_clients;

    [[nodiscard]] std::vector<fl::Client> make_clients() const {
        return fl::make_clients(*model, shards);
    }
};

[[nodiscard]] Environment build_environment(const EnvironmentConfig& config);

/// One round of any system, on the common axes the figures use.
struct SeriesPoint {
    std::uint64_t round = 0;
    double delay_seconds = 0.0;    ///< d_i
    double elapsed_seconds = 0.0;  ///< cumulative sum of d_i
    double accuracy = 0.0;         ///< acc_i (0 for pure blockchain)
    /// Measured host wall time per stage (bench_perf_round) -- the
    /// deprecated StageWall shim, derived per round from the telemetry
    /// event log by core::stage_wall_from.  Zero for systems that do not
    /// report it and when FAIRBFL_TELEMETRY is off.  The member rides out
    /// the shim's final release, so it suppresses the deprecation it
    /// would otherwise emit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    StageWall wall;
#pragma GCC diagnostic pop
};

struct SystemRun {
    std::string name;
    std::vector<SeriesPoint> series;
    double average_delay = 0.0;
    double average_accuracy = 0.0;
    double final_accuracy = 0.0;
    std::size_t converged_round = support::ConvergenceDetector::npos;
    double converged_elapsed_seconds = 0.0;

    /// Computes the aggregate fields from `series`.  Idempotent (every
    /// aggregate is recomputed from scratch) and safe on an empty series,
    /// so callers like run_suite can invoke it defensively.
    void finalize();
};

// --- Deprecated entry points -----------------------------------------------
// These free functions predate the SystemRegistry (core/system.hpp) and
// survive as thin shims over run_system for one release.  New code should
// build a SystemSpec ("fedavg", "fedprox", "fairbfl", "blockchain", ...)
// and call run_system / run_suite instead.

/// FedAvg under the shared delay model (delay = T_local + T_up + T_gl).
[[nodiscard, deprecated("use run_system(env, fedavg_spec(config, delay))")]]
SystemRun run_fedavg(const Environment& env, const fl::FlConfig& config,
                     const DelayParams& delay);

/// FedProx under the shared delay model.
[[nodiscard, deprecated("use run_system(env, fedprox_spec(config, delay))")]]
SystemRun run_fedprox(const Environment& env,
                      const fl::FedProxConfig& config,
                      const DelayParams& delay);

/// FAIR-BFL (delays come from the orchestrator's own records).  `label`
/// distinguishes variants ("FAIR", "FAIR-Discard", ablations).
[[nodiscard, deprecated("use run_system(env, fairbfl_spec(config, label))")]]
SystemRun run_fairbfl(const Environment& env, const FairBflConfig& config,
                      const std::string& label = "FAIR");

/// Pure blockchain (no accuracy series).
[[nodiscard, deprecated("use run_system(env, blockchain_spec(config))")]]
SystemRun run_blockchain(const BlockchainBaselineConfig& config);

/// Delay of one FL round under the shared model (exposed for tests).
[[nodiscard]] double fl_round_delay(const DelayModel& delays,
                                    const Environment& env,
                                    const std::vector<std::size_t>& participants,
                                    const ml::SgdParams& sgd,
                                    std::uint64_t round, std::uint64_t seed);

}  // namespace fairbfl::core
