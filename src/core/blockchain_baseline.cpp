#include "core/blockchain_baseline.hpp"

#include <algorithm>

namespace fairbfl::core {

BlockchainBaseline::BlockchainBaseline(BlockchainBaselineConfig config)
    : config_(config),
      consensus_(make_consensus("async_pow")),
      keys_(config.seed, config.key_bits),
      chain_(config.chain_id, config.key_bits != 0 ? &keys_ : nullptr),
      mempool_(config.delay.max_block_bytes) {
    chain_.set_check_pow(false);
    for (std::size_t w = 0; w < config_.workers; ++w)
        keys_.register_node(static_cast<crypto::NodeId>(w));
}

BlockchainRoundRecord BlockchainBaseline::run_round() {
    const std::uint64_t round = round_++;
    BlockchainRoundRecord record;
    record.round = round;

    // Separate per-component streams (common random numbers across
    // configurations; see fairbfl.cpp).
    auto up_rng = support::Rng::fork(config_.seed, /*stream=*/0x755, round);
    auto bl_rng = support::Rng::fork(config_.seed, /*stream=*/0x7B1, round);
    const DelayModel delays(config_.delay);

    // Every worker submits one application transaction.
    std::vector<std::uint8_t> payload(config_.tx_payload_bytes, 0);
    for (std::size_t w = 0; w < config_.workers; ++w) {
        // Cheap per-worker/round variation so tx ids differ.
        payload[0] = static_cast<std::uint8_t>(w);
        payload[1] = static_cast<std::uint8_t>(round);
        chain::Transaction tx;
        tx.kind = chain::TxKind::kPayload;
        tx.origin = static_cast<crypto::NodeId>(w);
        tx.round = round;
        tx.payload = payload;
        chain::sign_transaction(tx, keys_);
        mempool_.add(std::move(tx));
    }
    record.transactions = config_.workers;
    record.delay.t_up =
        delays.t_up(config_.workers, config_.tx_payload_bytes, up_rng);

    // Every miner validates every incoming transaction (serial CPU cost on
    // the critical path; grows linearly with n -- the mild slope of the
    // sub-capacity region in Figure 6a).
    record.delay.t_up +=
        config_.delay.seconds_per_tx_validation *
        static_cast<double>(config_.workers);

    // Mine until this round's backlog is drained (queuing: more blocks when
    // transactions exceed the block size).
    const std::size_t blocks = mempool_.blocks_to_drain();
    record.blocks_mined = blocks;
    const MiningOutcome mined =
        consensus_->mine(delays, config_.miners, blocks,
                         config_.delay.max_block_bytes, bl_rng);
    record.delay.t_bl = mined.seconds;
    record.forks = mined.forks;
    record.fork_merge_seconds = mined.fork_merge_seconds;

    // Commit the blocks to the actual ledger.
    for (std::size_t b = 0; b < blocks; ++b) {
        chain::Block block;
        block.header.index = chain_.tip().header.index + 1;
        block.header.prev_hash = chain_.tip().header.hash();
        block.header.difficulty = config_.delay.difficulty;
        block.header.timestamp_ms = round * 1000 + b;
        block.transactions = mempool_.pack_block();
        block.seal_transactions();
        (void)chain_.submit(block);
    }
    record.mempool_backlog = mempool_.size();
    return record;
}

std::vector<BlockchainRoundRecord> BlockchainBaseline::run(std::size_t rounds) {
    if (rounds == 0) rounds = config_.rounds;
    std::vector<BlockchainRoundRecord> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r) history.push_back(run_round());
    return history;
}

}  // namespace fairbfl::core
