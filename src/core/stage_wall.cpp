#include "core/stage_wall.hpp"

namespace fairbfl::core {

// The definition of the shim factory necessarily names the deprecated
// type; keep it warning-clean under -Werror=deprecated-declarations.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

StageWall stage_wall_from(const telemetry::RoundStats& stats) {
    StageWall wall;
    wall.local = stats.seconds_of("round.local");
    wall.cluster = stats.seconds_of("round.cluster");
    wall.aggregate = stats.seconds_of("round.aggregate");
    wall.mine = stats.seconds_of("round.mine");
    wall.index_build = stats.seconds_of("cluster.index_build");
    wall.cluster_shards = stats.seconds_of("cluster.shard_pass");
    wall.cluster_root = stats.seconds_of("cluster.root_pass");
    wall.index_peak_bytes =
        static_cast<std::size_t>(stats.max_of("cluster.index_bytes"));
    wall.wait_quorum =
        static_cast<double>(stats.sum_of("round.wait_quorum_ns")) * 1e-9;
    wall.late_updates =
        static_cast<std::size_t>(stats.sum_of("round.late_updates"));
    return wall;
}

#pragma GCC diagnostic pop

}  // namespace fairbfl::core
