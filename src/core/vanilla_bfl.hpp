#pragma once
// Vanilla BFL: the design the paper improves upon (§2, §3.1), implemented
// faithfully at the data-structure level:
//
//  * every client's local gradient becomes an on-chain transaction
//    (no Assumption 2 -- block capacity forces multi-block rounds);
//  * miners mine asynchronously (no Assumption 1 -- forking and
//    empty-block waste are possible, priced by the delay model);
//  * there is no miner-side aggregation: each worker reads the round's
//    local-gradient transactions back *from the chain* and computes the
//    global update itself ("workers read the block's information to
//    calculate the global updates themselves");
//  * rewards go to winning miners (per-block), not to contributors --
//    exactly the incentive mismatch FAIR-BFL's Algorithm 2 fixes.
//
// The FairBfl ablation flags (async_mining, record_local_gradients)
// emulate vanilla costs inside the FAIR pipeline; this class is the
// stand-alone protocol, useful as an end-to-end baseline and as a
// cross-check that the ablation prices the same behaviour.

#include <memory>
#include <vector>

#include "chain/chain.hpp"
#include "chain/mempool.hpp"
#include "core/attacker.hpp"
#include "core/delay_model.hpp"
#include "core/strategies.hpp"
#include "fl/fedavg.hpp"
#include "fl/local_trainer.hpp"

namespace fairbfl::core {

struct VanillaBflConfig {
    fl::FlConfig fl;
    std::size_t miners = 2;
    AttackConfig attack;
    DelayParams delay;
    std::size_t key_bits = 0;
    std::uint64_t chain_id = 0x7A2B;
};

struct VanillaRoundRecord {
    fl::RoundRecord fl;
    RoundDelay delay;
    std::size_t blocks_this_round = 0;
    std::size_t forks_this_round = 0;
    std::size_t gradient_txs_on_chain = 0;  ///< this round's recorded txs
    std::vector<fl::NodeId> attacker_clients;
};

class VanillaBfl {
public:
    VanillaBfl(const ml::Model& model, std::vector<fl::Client> clients,
               ml::DatasetView test_set, VanillaBflConfig config);

    VanillaRoundRecord run_round();
    std::vector<VanillaRoundRecord> run(std::size_t rounds = 0);

    [[nodiscard]] std::span<const float> weights() const noexcept {
        return weights_;
    }
    [[nodiscard]] const chain::Blockchain& blockchain() const noexcept {
        return chain_;
    }
    [[nodiscard]] const VanillaBflConfig& config() const noexcept {
        return config_;
    }

private:
    /// Reads this round's local gradients back from the chain and averages
    /// them -- the worker-side global computation of vanilla BFL.
    [[nodiscard]] std::vector<float> compute_global_from_chain(
        std::uint64_t round, std::size_t* txs_found) const;

    [[nodiscard]] std::size_t batch_steps_of(std::size_t client_id) const;

    const ml::Model* model_;
    std::vector<fl::Client> clients_;
    ml::DatasetView test_set_;
    VanillaBflConfig config_;
    /// Procedure-I engine (per-client pack/workspace caches).
    fl::LocalTrainer trainer_;
    /// Always the forking discipline: vanilla BFL has no Assumption 1.
    std::shared_ptr<const ConsensusEngine> consensus_;
    crypto::KeyStore keys_;
    chain::Blockchain chain_;
    chain::Mempool mempool_;
    std::vector<float> weights_;
    std::uint64_t round_ = 0;
};

}  // namespace fairbfl::core
