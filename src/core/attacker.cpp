#include "core/attacker.hpp"

#include <algorithm>

namespace fairbfl::core {

AttackReport apply_attack(std::span<fl::GradientUpdate> updates,
                          std::span<const float> reference_global,
                          const AttackConfig& config, std::uint64_t round,
                          std::uint64_t root_seed) {
    AttackReport report;
    if (config.kind == AttackKind::kNone || updates.empty()) return report;

    auto rng = support::Rng::fork(root_seed, /*stream=*/0xA77ACC, round);
    const std::size_t lo = std::min(config.min_attackers, updates.size());
    const std::size_t hi = std::min(config.max_attackers, updates.size());
    const auto count = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(std::max(lo, hi))));
    report.attacker_indices = rng.sample_indices(updates.size(), count);
    std::sort(report.attacker_indices.begin(), report.attacker_indices.end());

    for (const std::size_t idx : report.attacker_indices) {
        auto& weights = updates[idx].weights;
        report.attacker_clients.push_back(updates[idx].client);
        switch (config.kind) {
            case AttackKind::kSignFlip:
                // Invert the local progress: move *away* from where honest
                // training went, scaled up.
                for (std::size_t i = 0; i < weights.size(); ++i) {
                    const float delta = weights[i] - reference_global[i];
                    weights[i] = reference_global[i] -
                                 static_cast<float>(config.magnitude) * delta;
                }
                break;
            case AttackKind::kGaussian:
                for (auto& w : weights)
                    w += static_cast<float>(config.magnitude * rng.normal());
                break;
            case AttackKind::kScale:
                for (std::size_t i = 0; i < weights.size(); ++i) {
                    const float delta = weights[i] - reference_global[i];
                    weights[i] = reference_global[i] +
                                 static_cast<float>(config.magnitude) * delta;
                }
                break;
            case AttackKind::kNone:
                break;
        }
    }
    std::sort(report.attacker_clients.begin(), report.attacker_clients.end());
    return report;
}

double detection_rate(const std::vector<fl::NodeId>& attackers,
                      const std::vector<fl::NodeId>& flagged) {
    if (attackers.empty()) return 1.0;
    std::size_t caught = 0;
    for (const auto id : attackers) {
        if (std::find(flagged.begin(), flagged.end(), id) != flagged.end())
            ++caught;
    }
    return static_cast<double>(caught) / static_cast<double>(attackers.size());
}

}  // namespace fairbfl::core
