#pragma once
// The paper's delay decomposition (§4.6):
//     T(n, m) = T_local + T_up + T_ex + T_gl + T_bl.
//
// All components are *simulated* seconds drawn from calibrated stochastic
// models (the paper's own evaluation is a simulation; see DESIGN.md §2 for
// the substitution note).  Magnitudes are calibrated so that the paper's
// default setting (n=100, m=2, lambda such that ~10 clients train per
// round) lands in the 4-16 s/round range of Figures 4a/6/7a.

#include <cstddef>
#include <span>
#include <vector>

#include "chain/mining_race.hpp"
#include "chain/network.hpp"
#include "core/stage_wall.hpp"  // deprecated StageWall shim (moved out)
#include "support/rng.hpp"

namespace fairbfl::core {

struct DelayParams {
    // --- T_local: client compute.  One mini-batch gradient step costs
    // seconds_per_batch, scaled by a per-client lognormal heterogeneity
    // factor exp(sigma * N(0,1)) (slow phones vs fast ones).  Calibrated so
    // the paper's default setting (10 trainers/round, E=5, B=10, ~25-sample
    // shards) gives FedAvg ~6 s/round -- the Figure 4a axis.
    double seconds_per_batch = 0.25;
    double compute_hetero_sigma = 0.30;

    // --- T_gl: global update + Algorithm 2.  Aggregation is linear in the
    // number of updates; clustering is quadratic (pairwise distances).
    double seconds_per_aggregated_update = 2e-3;
    double seconds_per_clustered_pair = 2e-4;

    // --- T_bl: mining.  The network retargets difficulty to the fleet (as
    // real chains do), so the *fleet's* mean solve time is
    // difficulty / hashes_per_second regardless of the miner count; extra
    // miners change fork behaviour, not throughput.
    double miner_hashes_per_second = 1.0e6;
    std::uint64_t difficulty = 3'000'000;  ///< ~3 s mean block interval

    // --- vanilla blockchain extras.
    std::size_t max_block_bytes = 100'000;  ///< block size limit
    /// Per-transaction validation cost paid by every miner on receipt.
    double seconds_per_tx_validation = 0.02;
    /// Fraction of a block interval wasted on average by asynchronous
    /// mining (empty blocks mined before transactions arrive).
    double idle_mining_fraction = 0.35;

    chain::NetworkParams network;
};

/// One round's delay breakdown (components the system does not execute are
/// zero, which is exactly the flexibility statement of Figure 3).
struct RoundDelay {
    double t_local = 0.0;
    double t_up = 0.0;
    double t_ex = 0.0;
    double t_gl = 0.0;
    double t_bl = 0.0;

    [[nodiscard]] double total() const noexcept {
        return t_local + t_up + t_ex + t_gl + t_bl;
    }
};

class DelayModel {
public:
    explicit DelayModel(DelayParams params = {}) noexcept;

    [[nodiscard]] const DelayParams& params() const noexcept {
        return params_;
    }
    [[nodiscard]] const chain::NetworkModel& network() const noexcept {
        return network_;
    }

    /// T_local: max over the selected clients of their local training time
    /// (clients train in parallel; the round waits for the slowest --
    /// Assumption 1).  `batch_steps[i]` = E * ceil(|D_i|/B) for client i;
    /// `client_ids[i]` picks the client's fixed heterogeneity factor.
    [[nodiscard]] double t_local(std::span<const std::size_t> client_ids,
                                 std::span<const std::size_t> batch_steps,
                                 std::uint64_t seed) const;

    /// One client's slice of T_local -- the per-client term t_local()
    /// maxes over.  Pure (no telemetry): the round engine samples it per
    /// client to schedule arrivals on the virtual clock, while t_local()
    /// still reports (and counts) the round's max.
    [[nodiscard]] double t_local_client(std::size_t client_id,
                                        std::size_t batch_steps,
                                        std::uint64_t seed) const;

    /// T_up: max over clients of the upload of `payload_bytes` each
    /// (uploads are parallel; round waits for the slowest).
    [[nodiscard]] double t_up(std::size_t clients, std::size_t payload_bytes,
                              support::Rng& rng) const;

    /// Per-client upload seconds: the individual draws t_up() maxes over,
    /// in the same stream order (one draw per client).  Emits the same
    /// delay.up_ns counter (of the max) that t_up() would -- call one or
    /// the other per round, not both.
    [[nodiscard]] std::vector<double> t_up_each(std::size_t clients,
                                                std::size_t payload_bytes,
                                                support::Rng& rng) const;

    /// T_ex: all-to-all gradient-set exchange among m miners.
    [[nodiscard]] double t_ex(std::size_t miners, std::size_t set_bytes,
                              support::Rng& rng) const;

    /// T_gl: aggregation of `updates` vectors + clustering of
    /// `clustered_points` (0 = clustering skipped).
    [[nodiscard]] double t_gl(std::size_t updates,
                              std::size_t clustered_points) const noexcept;

    /// T_bl: one tightly-coupled mining competition (no forks) for a block
    /// of `block_bytes` among `miners` miners.
    [[nodiscard]] double t_bl_fair(std::size_t miners, std::size_t block_bytes,
                                   support::Rng& rng) const;

    /// Vanilla blockchain: mining `blocks` sequential blocks with forking
    /// allowed, plus idle-mining waste.  Returns total seconds and fork
    /// statistics via out-params (pass nullptr to ignore).
    [[nodiscard]] double t_bl_vanilla(std::size_t miners, std::size_t blocks,
                                      std::size_t block_bytes,
                                      support::Rng& rng,
                                      std::size_t* forks_out = nullptr,
                                      double* merge_seconds_out = nullptr) const;

private:
    /// Deterministic per-client compute heterogeneity in [~0.5, ~2].
    [[nodiscard]] double hetero_factor(std::size_t client_id,
                                       std::uint64_t seed) const;

    DelayParams params_;
    chain::NetworkModel network_;
};

}  // namespace fairbfl::core
