#pragma once
// Async, straggler-tolerant round state machine on the virtual clock.
//
// The lockstep round loop waited for every selected client; this engine
// makes the round a discrete-event simulation instead.  Each deliverable
// client update becomes a PendingDelivery -- its virtual arrival time is
// the client's own slice of the paper's T(n, m) decomposition
// (t_local(i) + t_up(i), times any injected straggler factor) -- and
// aggregation fires on **quorum-or-deadline**:
//
//   quorum   -- ceil(quorum_fraction x deliverable) distinct updates have
//               arrived;
//   deadline -- RoundConfig::deadline_ns of virtual time elapsed;
//   drained  -- everything deliverable arrived but quorum is unreachable
//               (dropouts) and no deadline is set: aggregate what exists.
//
// Arrivals after the trigger are *late*; FairBfl either carries them into
// the next round (LatePolicy::kNextRound, via the engine's carryover
// store) or re-settles the round retroactively (kRetroactive).  Replayed
// deliveries of an already-collected update are deduplicated and counted.
//
// The degenerate configuration -- quorum_fraction >= 1 and no deadline --
// triggers exactly when the last delivery arrives, which is the lockstep
// semantics; FairBfl keeps its RNG-stream draw order identical in that
// case, so the engine reproduces the pre-engine fixed-seed series
// bit-for-bit (pinned in tests/test_round_engine.cpp).
//
// Real compute (LocalTrainer work items) is *posted to the thread pool
// before the loop runs* and only completes, logically, via the arrival
// events: the physics is deterministic per item, and every timing /
// membership decision happens in (time, sequence) event order on the
// driving thread.  That split is what makes any schedule -- including
// injected faults -- replay identically under any thread count.
//
// Async mining races collection as a first-class event source: when the
// config is engaged and the consensus engine is "async_pow", a solve
// event chain fires on the same clock, minting one empty block per solve
// that lands before the round's content is ready.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/event_loop.hpp"
#include "fl/gradient.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace fairbfl::core {

/// What happens to a gradient that arrives after the aggregation trigger.
enum class LatePolicy : std::uint8_t {
    kNextRound = 0,    ///< joins the next round's gradient set
    kRetroactive = 1,  ///< this round's settlement is re-run over it
};

/// "next_round" / "retroactive"; nullopt for an unknown name.
[[nodiscard]] std::optional<LatePolicy> parse_late_policy(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view late_policy_name(LatePolicy policy) noexcept;

/// The quorum-or-deadline contract of one round.
struct RoundConfig {
    /// Fraction of deliverable updates that triggers aggregation;
    /// >= 1.0 waits for everyone (the lockstep semantics).
    double quorum_fraction = 1.0;
    /// Virtual-time budget per round; 0 = no deadline.
    std::uint64_t deadline_ns = 0;
    LatePolicy late_policy = LatePolicy::kNextRound;

    /// False for the degenerate full-participation/no-deadline setting
    /// that must reproduce the lockstep series bit-for-bit.
    [[nodiscard]] bool engaged() const noexcept {
        return quorum_fraction < 1.0 || deadline_ns > 0;
    }

    /// ceil(quorum_fraction x expected), clamped to [1, expected]
    /// (0 when nothing is deliverable).
    [[nodiscard]] std::size_t quorum_count(
        std::size_t expected) const noexcept;
};

/// One scheduled delivery of a client update.
struct PendingDelivery {
    std::size_t update_index = 0;  ///< into the round's update vector
    VirtualTime arrival = 0;       ///< virtual ns after round start
    /// Replayed copy (fault injection): never counts toward quorum or
    /// the deliverable total, deduplicated on arrival.
    bool duplicate = false;
};

/// Parameters of the async-mining event source (see race description in
/// the header comment).  Only consulted when RoundConfig::engaged().
struct MiningRaceSpec {
    /// Mean empty-block solve interval in seconds
    /// (difficulty / fleet hash rate).
    double mean_solve_seconds = 0.0;
    /// Interval stream; separate from the mining-outcome stream so the
    /// race never perturbs the pinned t_bl draws.
    support::Rng* rng = nullptr;
};

/// How one round's collection resolved.
struct CollectOutcome {
    std::vector<std::size_t> on_time;  ///< update indices, arrival order
    std::vector<std::size_t> late;     ///< update indices, arrival order
    VirtualTime trigger_ns = 0;        ///< when aggregation fired
    VirtualTime first_arrival_ns = 0;  ///< 0 when nothing arrived on time
    bool quorum_met = false;
    bool deadline_fired = false;
    std::size_t quorum_needed = 0;
    std::size_t duplicates_dropped = 0;
    std::size_t empty_blocks = 0;  ///< async-race solves before trigger

    /// Virtual seconds aggregation spent waiting for quorum after the
    /// first on-time arrival (the perf JSON `seconds.wait_quorum` key).
    [[nodiscard]] double wait_quorum_seconds() const noexcept {
        return static_cast<double>(trigger_ns - first_arrival_ns) * 1e-9;
    }
};

class RoundEngine {
public:
    explicit RoundEngine(RoundConfig config = {}) noexcept
        : config_(config) {}

    [[nodiscard]] const RoundConfig& config() const noexcept {
        return config_;
    }
    /// The current round's loop (reset by collect); exposed for tests.
    [[nodiscard]] const EventLoop& loop() const noexcept { return loop_; }

    /// Builds the round's delivery schedule once the physics is done
    /// (FairBfl forges, signs, and prices the uploads here).
    using PrepareFn = std::function<std::vector<PendingDelivery>()>;

    /// Runs one round's collection state machine.
    ///
    /// Phase 1 (physics): `work(i)` performs work-item i's real compute
    /// (one LocalTrainer client) for i in [0, work_items), fanned out
    /// over `pool` (null = the global pool) under a "round.local" span;
    /// pass work_items == 0 to skip (engine unit tests).  Phase 2:
    /// `prepare()` runs on the driving thread and returns the delivery
    /// schedule.  Phase 3: the event loop fires arrivals, the deadline,
    /// and the optional mining race in (time, sequence) order.  Emits the
    /// round's "round.wait_quorum_ns" / "round.late_updates" counters.
    CollectOutcome collect(std::size_t work_items,
                           const std::function<void(std::size_t)>& work,
                           const PrepareFn& prepare,
                           support::ThreadPool* pool = nullptr,
                           const MiningRaceSpec* race = nullptr);

    /// Schedule-only convenience (no physics phase): collects a fixed
    /// delivery list.
    CollectOutcome collect(std::vector<PendingDelivery> deliveries,
                           const MiningRaceSpec* race = nullptr);

    /// Stores this round's late updates for the next round (kNextRound).
    void carry(std::vector<fl::GradientUpdate> late_updates);
    /// Claims (and clears) the carryover store.
    [[nodiscard]] std::vector<fl::GradientUpdate> take_carryovers();
    [[nodiscard]] std::size_t carryover_count() const noexcept {
        return carryovers_.size();
    }

private:
    RoundConfig config_;
    EventLoop loop_;
    std::vector<fl::GradientUpdate> carryovers_;
};

}  // namespace fairbfl::core
