#pragma once
// FAIR-BFL: the paper's Algorithm 1 -- five tightly coupled procedures per
// communication round:
//
//   I.   Local Learning and Update         (clients, parallel)
//   II.  Uploading the gradient for mining (clients -> random miner, RSA)
//   III. Exchanging Gradients              (miners all-to-all)
//   IV.  Computing Global Updates          (simple avg -> Algorithm 2 ->
//                                           fair aggregation, Eq. 1)
//   V.   Block Mining and Consensus        (PoW race, one block per round)
//
// Flexibility by design (Figure 3): stages III and V can be switched off,
// degrading FAIR-BFL to pure FL; the pure-blockchain degradation (drop I
// and IV) lives in blockchain_baseline.hpp.  Two ablation switches undo
// the paper's Assumptions for comparison: `async_mining` (violates
// Assumption 1 -> forking + empty-block waste) and
// `record_local_gradients` (violates Assumption 2 -> every local gradient
// becomes a block transaction, re-introducing block-size queuing).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "core/attacker.hpp"
#include "core/delay_model.hpp"
#include "core/round_engine.hpp"
#include "core/strategies.hpp"
#include "fl/fedavg.hpp"
#include "fl/local_trainer.hpp"
#include "incentive/contribution.hpp"
#include "incentive/reward.hpp"
#include "support/fault_plan.hpp"
#include "telemetry/telemetry.hpp"

namespace fairbfl::core {

struct FairBflConfig {
    fl::FlConfig fl;        ///< lambda, rounds, SGD params, seed
    std::size_t miners = 2; ///< m
    incentive::ContributionConfig incentive;
    /// Algorithm 2 on/off (off = plain simple-average BFL rounds).
    bool enable_incentive = true;
    AttackConfig attack;
    DelayParams delay;
    /// RSA key size for transaction signing; 0 disables cryptography
    /// (recommended for large sweeps -- the protocol path is identical).
    std::size_t key_bits = 0;
    /// Hybrid-encrypt each local gradient to its miner before upload
    /// (paper §4.2: "local gradients can be encrypted using RSA to ensure
    /// data privacy").  Requires key_bits > 0.  Inflates the upload payload
    /// by the key-wrap + tag overhead, which the delay model charges.
    bool encrypt_gradients = false;
    /// Stage toggles (Figure 3).  Disabling exchange+mining degrades to
    /// pure FL while keeping the same code path.
    bool stage_exchange = true;  ///< Procedure III
    bool stage_mining = true;    ///< Procedure V
    /// Ablations (see header comment).
    bool async_mining = false;           ///< violate Assumption 1
    bool record_local_gradients = false; ///< violate Assumption 2
    std::uint64_t chain_id = 0x7A1B;

    // --- Strategy overrides (core/strategies.hpp).  Null / empty fields
    // fall back to the paper's defaults, so a default-constructed config
    // reproduces Algorithm 1 exactly; setting one swaps that stage without
    // touching the round loop.
    /// Combine rule.  Null = the paper's combines exactly: "simple" for
    /// the provisional update (line 24) and Eq. 1 for the settlement.
    /// When set, the rule shapes the provisional *and* (via its weighted
    /// form) the incentive settlement, so robust rules ("trimmed_mean",
    /// "median") defend whether Algorithm 2 is on or off.
    std::shared_ptr<const Aggregator> aggregator;
    /// Consensus engine name ("sync_pow" / "async_pow").  Empty = derived
    /// from the legacy `async_mining` bool.
    std::string consensus;
    /// Algorithm 2 replacement.  Null = clustering per `incentive`.
    std::shared_ptr<const ContributionPolicy> contribution;
    /// Low-contribution handling.  Null = from `incentive.strategy`.
    std::shared_ptr<const RewardPolicy> reward;

    // --- Async round engine (core/round_engine.hpp).
    /// Quorum-or-deadline collection contract.  The default (full
    /// participation, no deadline) reproduces the lockstep series
    /// bit-for-bit; engaging either knob makes the round partial-
    /// participation with late-gradient handling per `round.late_policy`.
    RoundConfig round;
    /// Optional fault-injection plan (dropout / straggler / duplicate /
    /// churn) applied to the round's deliveries.  Null = no faults.
    std::shared_ptr<const support::FaultPlan> fault_plan;
    /// Pool carrying the round's training fan-out; null = the process
    /// global pool.  Results are identical for any pool size.
    support::ThreadPool* pool = nullptr;
};

/// Everything that happened in one FAIR-BFL communication round.
struct BflRoundRecord {
    fl::RoundRecord fl;                      ///< accuracy / loss / counts
    RoundDelay delay;                        ///< paper's T components
    /// Measured host wall time, derived from the round's telemetry
    /// harvest via core::stage_wall_from (zeros when FAIRBFL_TELEMETRY is
    /// off).  Deprecated shim -- new consumers should harvest the
    /// telemetry session directly.  The member rides out the shim's final
    /// release, so it suppresses the deprecation it would otherwise emit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    StageWall wall;
#pragma GCC diagnostic pop
    std::vector<fl::NodeId> attacker_clients;
    std::vector<fl::NodeId> low_contribution_clients;  ///< Table 2 "Drop Index"
    double detection_rate = 1.0;             ///< Table 2 row metric
    double round_reward_total = 0.0;
    std::size_t chain_height = 0;            ///< after this round
    std::size_t blocks_this_round = 0;
    std::size_t forks_this_round = 0;        ///< ablation runs only

    // --- Async round engine outcome (core/round_engine.hpp).
    std::size_t on_time_updates = 0;  ///< aggregated at the trigger
    std::size_t late_updates = 0;     ///< arrived after the trigger
    std::size_t carried_in_updates = 0;  ///< prior rounds' late joiners
    std::size_t duplicate_updates_dropped = 0;  ///< replays deduplicated
    std::size_t empty_blocks_this_round = 0;  ///< async-race idle solves
    std::size_t quorum_needed = 0;
    bool deadline_fired = false;
    /// Virtual seconds the trigger waited for quorum after the first
    /// arrival.
    double wait_quorum_seconds = 0.0;
};

class FairBfl {
public:
    FairBfl(const ml::Model& model, std::vector<fl::Client> clients,
            ml::DatasetView test_set, FairBflConfig config);

    BflRoundRecord run_round();
    std::vector<BflRoundRecord> run(std::size_t rounds = 0);

    [[nodiscard]] std::span<const float> weights() const noexcept {
        return weights_;
    }
    [[nodiscard]] const chain::Blockchain& blockchain() const noexcept {
        return chain_;
    }
    [[nodiscard]] const incentive::RewardLedger& ledger() const noexcept {
        return ledger_;
    }
    [[nodiscard]] const FairBflConfig& config() const noexcept {
        return config_;
    }
    [[nodiscard]] std::uint64_t current_round() const noexcept {
        return round_;
    }
    [[nodiscard]] const std::vector<fl::Client>& clients() const noexcept {
        return clients_;
    }
    /// The system's telemetry session (one per instance; its id tags every
    /// record this system emits).  Exposed so tests and tools can harvest
    /// or cross-check against a captured dump.
    [[nodiscard]] const telemetry::Session& telemetry_session()
        const noexcept {
        return telemetry_;
    }

private:
    /// E * ceil(|D_i| / B) batch steps for the delay model.
    [[nodiscard]] std::size_t batch_steps_of(std::size_t client_id) const;

    /// The five procedures of one round, executed under the round's
    /// telemetry context; run_round() wraps it and derives record.wall
    /// from the harvest.
    void round_body(std::uint64_t round, BflRoundRecord& record);

    const ml::Model* model_;
    std::vector<fl::Client> clients_;
    ml::DatasetView test_set_;
    FairBflConfig config_;
    /// Procedure-I engine (per-client pack/workspace caches; engine choice
    /// comes from config.fl.batched_training).
    fl::LocalTrainer trainer_;
    /// Resolved strategy objects (config overrides or defaults).
    std::shared_ptr<const Aggregator> aggregator_;
    std::shared_ptr<const ConsensusEngine> consensus_;
    std::shared_ptr<const ContributionPolicy> contribution_;
    std::shared_ptr<const RewardPolicy> reward_;
    crypto::KeyStore keys_;
    chain::Blockchain chain_;
    incentive::RewardLedger ledger_;
    /// Quorum-or-deadline collection state machine + carryover store.
    RoundEngine engine_;
    /// Event-log session: all of this system's spans/counters route here,
    /// harvested once per round (keeps concurrent run_suite systems'
    /// events separated).
    telemetry::Session telemetry_;
    std::vector<float> weights_;
    std::uint64_t round_ = 0;
    /// Clients flagged low-contribution last round; under the discard
    /// strategy they sit out the next round (the paper's "client selection"
    /// reading of the discarding strategy).
    std::vector<std::size_t> benched_clients_;
};

}  // namespace fairbfl::core
