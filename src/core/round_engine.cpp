#include "core/round_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace fairbfl::core {

namespace {

/// Same seconds -> virtual-ns quantization the delay model's telemetry
/// counters use.
VirtualTime sim_ns(double seconds) noexcept {
    return static_cast<VirtualTime>(seconds * 1e9);
}

/// Backstop for the empty-block chain: far beyond any configured race
/// (a round is a handful of block intervals), it only exists so a
/// degenerate spec (tiny mean, huge deadline) cannot spin the loop.
constexpr std::size_t kMaxEmptyBlocks = 100'000;

}  // namespace

std::optional<LatePolicy> parse_late_policy(std::string_view name) noexcept {
    if (name == "next_round") return LatePolicy::kNextRound;
    if (name == "retroactive") return LatePolicy::kRetroactive;
    return std::nullopt;
}

std::string_view late_policy_name(LatePolicy policy) noexcept {
    return policy == LatePolicy::kRetroactive ? "retroactive" : "next_round";
}

std::size_t RoundConfig::quorum_count(std::size_t expected) const noexcept {
    if (expected == 0) return 0;
    if (quorum_fraction >= 1.0) return expected;
    const double want =
        std::ceil(quorum_fraction * static_cast<double>(expected));
    auto count = want > 0.0 ? static_cast<std::size_t>(want) : 0;
    return std::clamp<std::size_t>(count, 1, expected);
}

CollectOutcome RoundEngine::collect(
    std::size_t work_items, const std::function<void(std::size_t)>& work,
    const PrepareFn& prepare, support::ThreadPool* pool,
    const MiningRaceSpec* race) {
    loop_ = EventLoop{};
    CollectOutcome out;

    // --- Phase 1: physics.  The work items run *now*, in parallel, on
    // the pool; each item's result only becomes visible to the round via
    // its arrival event below.  Per-item determinism (every client draws
    // from its own Rng fork) is what lets real compute overlap freely
    // while the virtual schedule stays thread-count independent.
    if (work_items > 0 && work) {
        const telemetry::Span span(telemetry::labels::round_local());
        const telemetry::Context ctx = telemetry::current_context();
        support::parallel_for(
            0, work_items,
            [&](std::size_t item) {
                const telemetry::ContextScope scope(ctx);
                work(item);
            },
            pool != nullptr ? *pool : support::ThreadPool::global());
    }

    // --- Phase 2: the delivery schedule (forging, signing, upload
    // pricing -- all sequential, on the driving thread).
    std::vector<PendingDelivery> deliveries;
    if (prepare) deliveries = prepare();

    std::size_t deliverable = 0;
    std::size_t max_index = 0;
    for (const auto& d : deliveries) {
        if (!d.duplicate) ++deliverable;
        max_index = std::max(max_index, d.update_index);
    }
    out.quorum_needed = config_.quorum_count(deliverable);

    // --- Phase 3: the event loop.  Collection state lives on this frame;
    // callbacks only run inside run_until_idle() below.
    std::vector<bool> seen(deliveries.empty() ? 0 : max_index + 1, false);
    std::size_t remaining = deliveries.size();
    bool triggered = false;

    const auto fire_trigger = [&](bool via_deadline) {
        if (triggered) return;
        triggered = true;
        out.trigger_ns = loop_.now();
        out.deadline_fired = via_deadline;
        out.quorum_met = out.quorum_needed > 0 &&
                         out.on_time.size() >= out.quorum_needed;
    };

    for (const auto& d : deliveries) {
        loop_.schedule_at(d.arrival, [&, d](EventLoop& loop) {
            --remaining;
            if (seen[d.update_index]) {
                ++out.duplicates_dropped;
                return;
            }
            seen[d.update_index] = true;
            if (!triggered) {
                if (out.on_time.empty()) out.first_arrival_ns = loop.now();
                out.on_time.push_back(d.update_index);
                if (out.quorum_needed > 0 &&
                    out.on_time.size() >= out.quorum_needed)
                    fire_trigger(false);
            } else {
                out.late.push_back(d.update_index);
            }
        });
    }

    // Deliveries are scheduled before the deadline, so an update landing
    // at exactly deadline_ns still counts as on time (lower sequence
    // wins the tie).
    if (config_.deadline_ns > 0) {
        loop_.schedule_at(config_.deadline_ns,
                          [&](EventLoop&) { fire_trigger(true); });
    }

    // The async-mining race: one solve event per empty block, re-armed
    // until the round triggers (the next solve then seals real content)
    // or nothing is left in flight.
    std::function<void(EventLoop&)> solve;
    if (race != nullptr && race->rng != nullptr &&
        race->mean_solve_seconds > 0.0 && config_.engaged()) {
        const auto next_interval = [race]() {
            return sim_ns(race->rng->exponential(
                1.0 / race->mean_solve_seconds));
        };
        solve = [&, next_interval](EventLoop& loop) {
            if (triggered || remaining == 0) return;
            ++out.empty_blocks;
            if (out.empty_blocks >= kMaxEmptyBlocks) return;
            loop.schedule_after(next_interval(), solve);
        };
        loop_.schedule_after(next_interval(), solve);
    }

    loop_.run_until_idle();
    // Drained without quorum or deadline: everything deliverable arrived
    // (dropouts made quorum unreachable, or nothing was deliverable);
    // aggregate what exists rather than blocking forever.
    if (!triggered) fire_trigger(false);

    telemetry::counter_add(telemetry::labels::wait_quorum_ns(),
                           out.trigger_ns - out.first_arrival_ns);
    telemetry::counter_add(telemetry::labels::late_updates(),
                           out.late.size());
    return out;
}

CollectOutcome RoundEngine::collect(std::vector<PendingDelivery> deliveries,
                                    const MiningRaceSpec* race) {
    return collect(
        0, {}, [&deliveries]() { return std::move(deliveries); }, nullptr,
        race);
}

void RoundEngine::carry(std::vector<fl::GradientUpdate> late_updates) {
    for (auto& update : late_updates)
        carryovers_.push_back(std::move(update));
}

std::vector<fl::GradientUpdate> RoundEngine::take_carryovers() {
    return std::exchange(carryovers_, {});
}

}  // namespace fairbfl::core
