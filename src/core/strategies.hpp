#pragma once
// Pluggable strategy interfaces for the orchestration layer.
//
// The paper's flexibility claim (Figure 3, §4.6) is that FAIR-BFL is a
// pipeline of swappable stages: how gradients are combined (Algorithm 1
// line 24 / Eq. 1), how blocks are mined (Assumption 1 on or off), and how
// contributions are scored and rewarded (Algorithm 2 + the two
// low-contribution strategies).  These interfaces make each stage an
// object, so a new aggregation rule, consensus discipline, or incentive
// scheme drops into FairBfl -- and into the SystemRegistry of
// core/system.hpp -- without editing the round loop.
//
// Every built-in implementation wraps the corresponding free function and
// consumes randomness in exactly the same order, so swapping a bool-driven
// configuration for its strategy object reproduces the legacy series
// bit-for-bit.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/delay_model.hpp"
#include "fl/aggregation.hpp"
#include "incentive/contribution.hpp"
#include "support/cli.hpp"

namespace fairbfl::core {

// ---------------------------------------------------------------------------
// Aggregation (Algorithm 1 line 24 / Eq. 1).

/// Combines one round's gradient updates into the next global weight
/// vector.  Implementations must be stateless and thread-safe: one
/// instance may serve many concurrent systems in a run_suite sweep.
class Aggregator {
public:
    virtual ~Aggregator() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// Unweighted combine (the paper's line-24 provisional update).
    [[nodiscard]] virtual std::vector<float> aggregate(
        std::span<const fl::GradientUpdate> updates) const = 0;

    /// Score-weighted combine (Eq. 1; `theta` holds one contribution score
    /// per update).  Rules without a weighted form ignore the scores.
    [[nodiscard]] virtual std::vector<float> aggregate_weighted(
        std::span<const fl::GradientUpdate> updates,
        std::span<const double> theta) const {
        (void)theta;
        return aggregate(updates);
    }
};

/// Registered rules: "simple" (line 24), "sample_weighted" (classic
/// FedAvg), "fair" (Eq. 1 when given scores), "trimmed_mean" (per
/// coordinate, drop the ceil(trim * K) smallest and largest values, average
/// the rest -- robust to forged magnitudes), and "median" (coordinate-wise
/// median, trimmed mean's limit).  Throws std::invalid_argument for an
/// unknown name.  `trim_fraction` only affects "trimmed_mean".
[[nodiscard]] std::shared_ptr<const Aggregator> make_aggregator(
    std::string_view name, double trim_fraction = 0.1);

/// Names accepted by make_aggregator, for error messages and CLIs.
[[nodiscard]] std::vector<std::string_view> aggregator_names();

// ---------------------------------------------------------------------------
// Consensus (Procedure V).

/// What one round of mining produced, in simulated seconds.
struct MiningOutcome {
    double seconds = 0.0;
    std::size_t forks = 0;
    double fork_merge_seconds = 0.0;
};

/// Prices one round's block production.  `blocks` sequential blocks of
/// `block_bytes` each are mined by `miners`.  Implementations must draw
/// from `rng` exactly as their legacy code path did (common-random-numbers
/// discipline across configurations).
class ConsensusEngine {
public:
    virtual ~ConsensusEngine() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    [[nodiscard]] virtual MiningOutcome mine(const DelayModel& delays,
                                             std::size_t miners,
                                             std::size_t blocks,
                                             std::size_t block_bytes,
                                             support::Rng& rng) const = 0;
};

/// Registered engines: "sync_pow" (Assumption 1: one tightly-coupled race
/// per block, no forks) and "async_pow" (the ablation/vanilla discipline:
/// concurrent mining with forking and idle-block waste).  Throws
/// std::invalid_argument for an unknown name.
[[nodiscard]] std::shared_ptr<const ConsensusEngine> make_consensus(
    std::string_view name);

// ---------------------------------------------------------------------------
// Incentive (Algorithm 2 + the low-contribution strategies).

/// Scores one round's updates against the provisional global update.
class ContributionPolicy {
public:
    virtual ~ContributionPolicy() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// `reference` is the previous round's global weights (may be empty);
    /// see incentive::identify_contributions for why deltas matter.
    [[nodiscard]] virtual incentive::ContributionReport identify(
        std::span<const fl::GradientUpdate> updates,
        std::span<const float> provisional_global,
        std::span<const float> reference) const = 0;
};

/// Algorithm 2: clustering (DBSCAN or k-means per `config`) + cosine
/// scores.  With `config.sharding.shards > 1` the returned policy is the
/// hierarchical shard tree (incentive/hierarchical.hpp): per-shard passes
/// plus a root pass, reported flat-compatibly with the settlement
/// precomputed.
[[nodiscard]] std::shared_ptr<const ContributionPolicy>
make_contribution_policy(const incentive::ContributionConfig& config);

/// Decides what a contribution report is worth: the final aggregation of
/// the round and whether flagged clients sit out the next one.
class RewardPolicy {
public:
    virtual ~RewardPolicy() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// Applies the strategy to pick the surviving updates, then combines
    /// them: with `aggregator == nullptr` via Eq. 1 exactly
    /// (incentive::apply_strategy -- which returns a shard tree's
    /// precomputed root settlement when the report carries one); with an
    /// explicit aggregator via its score-weighted form, so a robust rule
    /// governs the final global update too -- including under sharding,
    /// where it intentionally overrides the tree's Eq. 1 settlement and
    /// combines the hierarchical survivors flat.
    [[nodiscard]] virtual std::vector<float> settle(
        std::span<const fl::GradientUpdate> updates,
        const incentive::ContributionReport& report,
        const Aggregator* aggregator = nullptr) const = 0;

    /// True when low-contribution clients are benched for the next round
    /// (the paper's discarding strategy read as client selection).
    [[nodiscard]] virtual bool benches_low_contributors() const noexcept = 0;
};

/// "keep_all" or "discard", matching incentive::LowContributionStrategy.
[[nodiscard]] std::shared_ptr<const RewardPolicy> make_reward_policy(
    incentive::LowContributionStrategy strategy);

namespace detail {
/// Comma-joins a name list for "(known: ...)" error messages -- shared by
/// the aggregator/consensus factories and the SystemRegistry.  The one
/// implementation lives in support/cli.hpp (the cluster registries use it
/// too); this alias keeps the historic core::detail spelling working.
using support::join_names;
}  // namespace detail

}  // namespace fairbfl::core
