#include "core/experiment.hpp"

#include <algorithm>
#include <stdexcept>

namespace fairbfl::core {

Environment build_environment(const EnvironmentConfig& config) {
    Environment env;

    std::optional<ml::Dataset> real;
    if (!config.mnist_images.empty() && !config.mnist_labels.empty()) {
        real = ml::load_mnist_idx(config.mnist_images, config.mnist_labels,
                                  config.data.samples);
    }
    env.dataset = std::make_unique<ml::Dataset>(
        real.has_value() ? std::move(*real)
                         : ml::make_synthetic_mnist(config.data));

    const auto split = ml::train_test_split(*env.dataset,
                                            config.test_fraction,
                                            config.data.seed);
    env.train = split.train;
    env.test = split.test;
    env.shards = ml::partition(env.train, config.partition);

    if (config.noisy_client_fraction > 0.0) {
        auto rng = support::Rng::fork(config.data.seed, /*stream=*/0xBAD);
        const auto count = static_cast<std::size_t>(
            config.noisy_client_fraction *
            static_cast<double>(env.shards.size()));
        env.noisy_clients = rng.sample_indices(env.shards.size(), count);
        std::sort(env.noisy_clients.begin(), env.noisy_clients.end());
        const auto classes =
            static_cast<std::int64_t>(env.dataset->num_classes());
        for (const std::size_t client : env.noisy_clients) {
            // Fixed per-client label shift: a consistently wrong annotator.
            const auto offset = rng.uniform_int(1, classes - 1);
            const auto& shard = env.shards[client];
            for (const std::size_t row : shard.indices()) {
                if (!rng.bernoulli(config.label_noise_prob)) continue;
                env.dataset->set_label(
                    row, static_cast<std::int32_t>(
                             (env.dataset->label_of(row) + offset) % classes));
            }
        }
    }

    switch (config.model) {
        case ModelKind::kLogistic:
            env.model = ml::make_logistic_regression(
                env.dataset->feature_dim(), env.dataset->num_classes());
            break;
        case ModelKind::kMlp:
            env.model = ml::make_mlp(env.dataset->feature_dim(),
                                     config.mlp_hidden,
                                     env.dataset->num_classes());
            break;
    }
    return env;
}

void SystemRun::finalize() {
    support::RunningStats delay_stats;
    support::RunningStats accuracy_stats;
    support::ConvergenceDetector convergence;
    double elapsed = 0.0;
    for (auto& point : series) {
        elapsed += point.delay_seconds;
        point.elapsed_seconds = elapsed;
        delay_stats.add(point.delay_seconds);
        accuracy_stats.add(point.accuracy);
        if (!convergence.converged() && convergence.add(point.accuracy))
            converged_elapsed_seconds = elapsed;
    }
    average_delay = delay_stats.mean();
    average_accuracy = accuracy_stats.mean();
    final_accuracy = series.empty() ? 0.0 : series.back().accuracy;
    converged_round = convergence.converged_at();
}

double fl_round_delay(const DelayModel& delays, const Environment& env,
                      const std::vector<std::size_t>& participants,
                      const ml::SgdParams& sgd, std::uint64_t round,
                      std::uint64_t seed) {
    std::vector<std::size_t> steps;
    steps.reserve(participants.size());
    const std::size_t batch = std::max<std::size_t>(sgd.batch_size, 1);
    for (const std::size_t id : participants) {
        const std::size_t samples = env.shards[id].size();
        steps.push_back(sgd.epochs * ((samples + batch - 1) / batch));
    }
    auto rng = support::Rng::fork(seed, /*stream=*/0xFAFA, round);
    const std::size_t payload =
        env.model->param_count() * sizeof(float) + 24;
    double delay = delays.t_local(participants, steps, seed);
    delay += delays.t_up(participants.size(), payload, rng);
    delay += delays.t_gl(participants.size(), /*clustered_points=*/0);
    return delay;
}

SystemRun run_fedavg(const Environment& env, const fl::FlConfig& config,
                     const DelayParams& delay) {
    SystemRun run;
    run.name = "FedAvg";
    const DelayModel delays(delay);
    fl::FedAvg trainer(*env.model, env.make_clients(), env.test, config);
    run.series.reserve(config.rounds);
    for (std::size_t r = 0; r < config.rounds; ++r) {
        const fl::RoundRecord record = trainer.run_round();
        SeriesPoint point;
        point.round = record.round;
        point.accuracy = record.test_accuracy;
        point.delay_seconds =
            fl_round_delay(delays, env, record.participant_ids, config.sgd,
                           record.round, config.seed);
        run.series.push_back(point);
    }
    run.finalize();
    return run;
}

SystemRun run_fedprox(const Environment& env, const fl::FedProxConfig& config,
                      const DelayParams& delay) {
    SystemRun run;
    run.name = "FedProx";
    const DelayModel delays(delay);
    fl::FedProx trainer(*env.model, env.make_clients(), env.test, config);
    run.series.reserve(config.base.rounds);
    for (std::size_t r = 0; r < config.base.rounds; ++r) {
        const fl::RoundRecord record = trainer.run_round();
        SeriesPoint point;
        point.round = record.round;
        point.accuracy = record.test_accuracy;
        point.delay_seconds =
            fl_round_delay(delays, env, record.participant_ids,
                           config.base.sgd, record.round, config.base.seed);
        run.series.push_back(point);
    }
    run.finalize();
    return run;
}

SystemRun run_fairbfl(const Environment& env, const FairBflConfig& config,
                      const std::string& label) {
    SystemRun run;
    run.name = label;
    FairBfl system(*env.model, env.make_clients(), env.test, config);
    run.series.reserve(config.fl.rounds);
    for (std::size_t r = 0; r < config.fl.rounds; ++r) {
        const BflRoundRecord record = system.run_round();
        SeriesPoint point;
        point.round = record.fl.round;
        point.accuracy = record.fl.test_accuracy;
        point.delay_seconds = record.delay.total();
        run.series.push_back(point);
    }
    run.finalize();
    return run;
}

SystemRun run_blockchain(const BlockchainBaselineConfig& config) {
    SystemRun run;
    run.name = "Blockchain";
    BlockchainBaseline system(config);
    run.series.reserve(config.rounds);
    for (std::size_t r = 0; r < config.rounds; ++r) {
        const BlockchainRoundRecord record = system.run_round();
        SeriesPoint point;
        point.round = record.round;
        point.accuracy = 0.0;  // a pure ledger learns nothing
        point.delay_seconds = record.delay.total();
        run.series.push_back(point);
    }
    run.finalize();
    return run;
}

}  // namespace fairbfl::core
