#include "core/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/system.hpp"
#include "ml/idx_loader.hpp"

namespace fairbfl::core {

Environment build_environment(const EnvironmentConfig& config) {
    Environment env;

    std::optional<ml::Dataset> real;
    if (!config.mnist_images.empty() && !config.mnist_labels.empty()) {
        real = ml::load_mnist_idx(config.mnist_images, config.mnist_labels,
                                  config.data.samples);
    }
    env.dataset = std::make_unique<ml::Dataset>(
        real.has_value() ? std::move(*real)
                         : ml::make_synthetic_mnist(config.data));

    const auto split = ml::train_test_split(*env.dataset,
                                            config.test_fraction,
                                            config.data.seed);
    env.train = split.train;
    env.test = split.test;
    env.shards = ml::partition(env.train, config.partition);

    if (config.noisy_client_fraction > 0.0) {
        auto rng = support::Rng::fork(config.data.seed, /*stream=*/0xBAD);
        const auto count = static_cast<std::size_t>(
            config.noisy_client_fraction *
            static_cast<double>(env.shards.size()));
        env.noisy_clients = rng.sample_indices(env.shards.size(), count);
        std::sort(env.noisy_clients.begin(), env.noisy_clients.end());
        const auto classes =
            static_cast<std::int64_t>(env.dataset->num_classes());
        for (const std::size_t client : env.noisy_clients) {
            // Fixed per-client label shift: a consistently wrong annotator.
            const auto offset = rng.uniform_int(1, classes - 1);
            const auto& shard = env.shards[client];
            for (const std::size_t row : shard.indices()) {
                if (!rng.bernoulli(config.label_noise_prob)) continue;
                env.dataset->set_label(
                    row, static_cast<std::int32_t>(
                             (env.dataset->label_of(row) + offset) % classes));
            }
        }
    }

    switch (config.model) {
        case ModelKind::kLogistic:
            env.model = ml::make_logistic_regression(
                env.dataset->feature_dim(), env.dataset->num_classes());
            break;
        case ModelKind::kMlp:
            env.model = ml::make_mlp(env.dataset->feature_dim(),
                                     config.mlp_hidden,
                                     env.dataset->num_classes());
            break;
    }
    return env;
}

void SystemRun::finalize() {
    // Reset every aggregate first: repeated calls must not leak state from
    // a previous (possibly longer) series, and an empty series must leave
    // well-defined zeros instead of dividing by a zero round count.
    average_delay = 0.0;
    average_accuracy = 0.0;
    final_accuracy = 0.0;
    converged_round = support::ConvergenceDetector::npos;
    converged_elapsed_seconds = 0.0;
    if (series.empty()) return;

    support::RunningStats delay_stats;
    support::RunningStats accuracy_stats;
    support::ConvergenceDetector convergence;
    double elapsed = 0.0;
    for (auto& point : series) {
        elapsed += point.delay_seconds;
        point.elapsed_seconds = elapsed;
        delay_stats.add(point.delay_seconds);
        accuracy_stats.add(point.accuracy);
        if (!convergence.converged() && convergence.add(point.accuracy))
            converged_elapsed_seconds = elapsed;
    }
    average_delay = delay_stats.mean();
    average_accuracy = accuracy_stats.mean();
    final_accuracy = series.back().accuracy;
    converged_round = convergence.converged_at();
}

double fl_round_delay(const DelayModel& delays, const Environment& env,
                      const std::vector<std::size_t>& participants,
                      const ml::SgdParams& sgd, std::uint64_t round,
                      std::uint64_t seed) {
    std::vector<std::size_t> steps;
    steps.reserve(participants.size());
    const std::size_t batch = std::max<std::size_t>(sgd.batch_size, 1);
    for (const std::size_t id : participants) {
        const std::size_t samples = env.shards[id].size();
        steps.push_back(sgd.epochs * ((samples + batch - 1) / batch));
    }
    auto rng = support::Rng::fork(seed, /*stream=*/0xFAFA, round);
    const std::size_t payload =
        env.model->param_count() * sizeof(float) + 24;
    double delay = delays.t_local(participants, steps, seed);
    delay += delays.t_up(participants.size(), payload, rng);
    delay += delays.t_gl(participants.size(), /*clustered_points=*/0);
    return delay;
}

// The deprecated free functions are shims over the registry API; the round
// loops they used to hold live in core/system.cpp's built-in factories,
// which reproduce them bit-for-bit.

SystemRun run_fedavg(const Environment& env, const fl::FlConfig& config,
                     const DelayParams& delay) {
    return run_system(env, fedavg_spec(config, delay));
}

SystemRun run_fedprox(const Environment& env, const fl::FedProxConfig& config,
                      const DelayParams& delay) {
    return run_system(env, fedprox_spec(config, delay));
}

SystemRun run_fairbfl(const Environment& env, const FairBflConfig& config,
                      const std::string& label) {
    return run_system(env, fairbfl_spec(config, label));
}

SystemRun run_blockchain(const BlockchainBaselineConfig& config) {
    Environment none;  // the pure ledger never touches the environment
    return run_system(none, blockchain_spec(config));
}

}  // namespace fairbfl::core
