#include "core/fairbfl.hpp"

#include <algorithm>
#include <cmath>

#include "chain/mempool.hpp"
#include "crypto/hybrid.hpp"
#include "fl/sampling.hpp"
#include "support/logging.hpp"

namespace fairbfl::core {

FairBfl::FairBfl(const ml::Model& model, std::vector<fl::Client> clients,
                 ml::DatasetView test_set, FairBflConfig config)
    : model_(&model),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      trainer_(fl::LocalTrainer::Options{
          .batched = config.fl.batched_training}),
      aggregator_(config.aggregator ? config.aggregator
                                    : make_aggregator("simple")),
      consensus_(make_consensus(
          !config.consensus.empty()
              ? std::string_view(config.consensus)
              : (config.async_mining ? std::string_view("async_pow")
                                     : std::string_view("sync_pow")))),
      contribution_(config.contribution
                        ? config.contribution
                        : make_contribution_policy(config.incentive)),
      reward_(config.reward ? config.reward
                            : make_reward_policy(config.incentive.strategy)),
      keys_(config.fl.seed, config.key_bits),
      chain_(config.chain_id, config.key_bits != 0 ? &keys_ : nullptr),
      weights_(model.param_count(), 0.0F) {
    // The tightly coupled design models mining time stochastically; the
    // chain stores protocol-valid blocks without re-running the hash race.
    chain_.set_check_pow(false);
    for (const auto& client : clients_) keys_.register_node(client.id());
    // Miners get ids above the client range.  At least one miner id is
    // always registered: the mining stage signs the winner's block with
    // proxy id clients_.size(), and the upload stage addresses a proxy
    // miner, even when config.miners == 0.
    for (std::size_t k = 0; k < std::max<std::size_t>(config_.miners, 1); ++k)
        keys_.register_node(static_cast<crypto::NodeId>(clients_.size() + k));

    auto rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x1417);
    model_->init_params(weights_, rng);
}

std::size_t FairBfl::batch_steps_of(std::size_t client_id) const {
    const std::size_t samples = clients_[client_id].num_samples();
    const std::size_t batch = std::max<std::size_t>(config_.fl.sgd.batch_size, 1);
    return config_.fl.sgd.epochs * ((samples + batch - 1) / batch);
}

BflRoundRecord FairBfl::run_round() {
    const std::uint64_t round = round_++;
    BflRoundRecord record;
    record.fl.round = round;
    {
        // Every span/counter of the round -- including those emitted from
        // pool workers that inherit this context at their fan-out sites --
        // is tagged with this system's session and the round number.
        const telemetry::ContextScope scope(
            telemetry_.context(static_cast<std::uint32_t>(round)));
        round_body(round, record);
    }
    // All spans are closed (fan-outs joined inside round_body), so the
    // harvest sees the complete round; the StageWall shim -- and through
    // it every perf_round.json `seconds.*` key -- is derived from the
    // event log rather than written by stopwatches.
    record.wall =
        stage_wall_from(telemetry_.harvest(static_cast<std::uint32_t>(round)));
    return record;
}

void FairBfl::round_body(std::uint64_t round, BflRoundRecord& record) {
    // Common-random-numbers discipline: every delay component draws from
    // its own (seed, round)-keyed stream, so two configurations of the
    // same experiment (e.g. FAIR vs FAIR-Discard) see identical network
    // and mining luck and differ only through real workload changes.
    auto assoc_rng =
        support::Rng::fork(config_.fl.seed, /*stream=*/0xA550C, round);
    auto up_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x755, round);
    auto ex_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x7E8, round);
    auto bl_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x7B1, round);

    // --- Client selection (Algorithm 1 line 3), minus last round's bench.
    auto selected = fl::sample_clients(clients_.size(), config_.fl.client_ratio,
                                       round, config_.fl.seed);
    selected = fl::exclude_clients(std::move(selected), benched_clients_);
    benched_clients_.clear();
    record.fl.selected = selected.size();

    // --- Procedure I: local learning (parallel across clients).
    std::vector<fl::GradientUpdate> updates;
    {
        const telemetry::Span span(telemetry::labels::round_local());
        updates = trainer_.run(clients_, selected, weights_, config_.fl.sgd,
                               round, config_.fl.seed);
    }
    std::vector<std::size_t> steps;
    steps.reserve(selected.size());
    for (const std::size_t id : selected) steps.push_back(batch_steps_of(id));
    record.delay.t_local = DelayModel(config_.delay)
                               .t_local(selected, steps, config_.fl.seed);

    // --- Adversary: forge some updates before they leave the clients.
    const AttackReport attack = apply_attack(updates, weights_, config_.attack,
                                             round, config_.fl.seed);
    record.attacker_clients = attack.attacker_clients;

    const DelayModel delays(config_.delay);
    const std::size_t payload =
        updates.empty() ? 0 : updates[0].payload_bytes();

    // --- Procedure II: sign and upload to a uniformly random miner,
    // optionally under hybrid encryption to that miner.
    const bool encrypting =
        config_.encrypt_gradients && keys_.crypto_enabled();
    std::size_t wire_payload = payload;
    std::vector<chain::Transaction> gradient_txs;
    gradient_txs.reserve(updates.size());
    std::vector<fl::GradientSet> miner_sets(std::max<std::size_t>(
        config_.miners, 1));
    for (const auto& update : updates) {
        chain::Transaction tx = chain::make_gradient_tx(
            chain::TxKind::kLocalGradient, update.client, round,
            update.weights);
        chain::sign_transaction(tx, keys_);
        // Miner association: uniform random (paper §4.2).
        const auto miner = static_cast<std::size_t>(assoc_rng.uniform_int(
            0, static_cast<std::int64_t>(miner_sets.size()) - 1));
        if (!chain::verify_transaction(tx, keys_)) {
            FAIRBFL_LOG_WARN("round %llu: dropping update with bad signature "
                             "from client %u",
                             static_cast<unsigned long long>(round),
                             update.client);
            continue;
        }
        if (encrypting) {
            // Encrypt the signed transaction to the associated miner; the
            // miner decrypts before treating it as a gradient.  An
            // undecryptable or tampered upload is dropped, like a bad
            // signature.
            const auto miner_node =
                static_cast<crypto::NodeId>(clients_.size() + miner);
            auto enc_rng = support::Rng::fork(
                config_.fl.seed, 0xE2C00000ULL + update.client, round);
            const crypto::HybridCiphertext ciphertext = crypto::hybrid_encrypt(
                keys_.public_key(miner_node), tx.encode(), enc_rng);
            wire_payload = std::max(wire_payload, ciphertext.total_bytes());
            try {
                const auto decrypted = crypto::hybrid_decrypt(
                    keys_.private_key(miner_node), ciphertext);
                chain::ByteReader reader(decrypted);
                const chain::Transaction received =
                    chain::Transaction::decode(reader);
                if (!(received == tx)) continue;
            } catch (const std::exception&) {
                FAIRBFL_LOG_WARN(
                    "round %llu: dropping undecryptable upload from %u",
                    static_cast<unsigned long long>(round), update.client);
                continue;
            }
        }
        miner_sets[miner].add(update);
        gradient_txs.push_back(std::move(tx));
    }
    record.delay.t_up = delays.t_up(updates.size(), wire_payload, up_rng);

    // --- Procedure III: miners exchange gradient sets until identical.
    fl::GradientSet full_set;
    for (const auto& set : miner_sets) full_set.merge(set);
    full_set.canonicalize();
    if (config_.stage_exchange && config_.miners > 1) {
        const std::size_t set_bytes = payload * full_set.size();
        record.delay.t_ex = delays.t_ex(config_.miners, set_bytes, ex_rng);
    }

    const auto& final_updates = full_set.updates();
    record.fl.participants = final_updates.size();
    for (const auto& u : final_updates)
        record.fl.participant_ids.push_back(u.client);
    if (final_updates.empty()) {
        // Nothing arrived (all clients benched/dropped): keep weights.
        record.fl.test_accuracy = model_->accuracy(weights_, test_set_);
        record.chain_height = chain_.height();
        return;
    }

    // --- Procedure IV: provisional combine (line 24), Algorithm 2
    // (line 26), reward settlement (line 27 / Eq. 1) -- each stage behind
    // its strategy object.
    std::vector<float> provisional;
    {
        const telemetry::Span span(telemetry::labels::round_aggregate());
        provisional = aggregator_->aggregate(final_updates);
    }
    std::size_t clustered_points = 0;
    if (config_.enable_incentive) {
        // Cluster on effective gradients: weights_ still holds w_r here.
        // The index-build / shard-pass / root-pass sub-spans and the
        // index-bytes counter are emitted inside identify's callees
        // (cluster::IndexRegistry::build, incentive/hierarchical.cpp).
        incentive::ContributionReport report;
        {
            const telemetry::Span span(telemetry::labels::round_cluster());
            report =
                contribution_->identify(final_updates, provisional, weights_);
        }
        clustered_points = final_updates.size() + 1;
        // An explicitly configured aggregator governs the settlement
        // combine as well; the default keeps Eq. 1 exactly.
        {
            const telemetry::Span span(telemetry::labels::round_aggregate());
            weights_ = reward_->settle(
                final_updates, report,
                config_.aggregator ? aggregator_.get() : nullptr);
        }
        ledger_.record(round, report);
        record.round_reward_total = report.total_reward();
        record.low_contribution_clients = report.low_clients();
        record.detection_rate =
            detection_rate(record.attacker_clients,
                           record.low_contribution_clients);
        if (reward_->benches_low_contributors()) {
            for (const auto client : record.low_contribution_clients)
                benched_clients_.push_back(client);
        }
    } else {
        weights_ = provisional;
        record.detection_rate = record.attacker_clients.empty() ? 1.0 : 0.0;
    }
    record.delay.t_gl = delays.t_gl(final_updates.size(), clustered_points);

    // --- Procedure V: the winner packs the block; consensus accepts it.
    if (config_.stage_mining) {
        const telemetry::Span span(telemetry::labels::round_mine());
        chain::Block block;
        block.header.index = chain_.tip().header.index + 1;
        block.header.prev_hash = chain_.tip().header.hash();
        block.header.difficulty = config_.delay.difficulty;
        block.header.timestamp_ms = round * 1000;

        const auto miner_id =
            static_cast<crypto::NodeId>(clients_.size());  // winner proxy id
        chain::Transaction global_tx = chain::make_gradient_tx(
            chain::TxKind::kGlobalUpdate, miner_id, round, weights_);
        chain::sign_transaction(global_tx, keys_);
        block.transactions.push_back(std::move(global_tx));
        for (const auto& entry : ledger_.history()) {
            if (entry.round != round) continue;
            chain::Transaction reward_tx = chain::make_reward_tx(
                miner_id, round, entry.client, entry.amount);
            chain::sign_transaction(reward_tx, keys_);
            block.transactions.push_back(std::move(reward_tx));
        }
        if (config_.record_local_gradients) {
            // Assumption 2 ablation: local gradients go on-chain too.
            for (auto& tx : gradient_txs)
                block.transactions.push_back(std::move(tx));
        }
        block.seal_transactions();

        const std::size_t block_bytes = block.size_bytes();
        if (config_.record_local_gradients) {
            // Over-capacity content splits across multiple sequential
            // blocks (queuing), and asynchronous mining may fork.
            chain::Mempool pool(config_.delay.max_block_bytes);
            pool.add_all(block.transactions);
            record.blocks_this_round = pool.blocks_to_drain();
        } else {
            record.blocks_this_round = 1;
        }

        const MiningOutcome mined = consensus_->mine(
            delays, config_.miners, record.blocks_this_round,
            std::min(block_bytes, config_.delay.max_block_bytes), bl_rng);
        record.delay.t_bl = mined.seconds;
        record.forks_this_round = mined.forks;

        const chain::BlockVerdict verdict = chain_.submit(block);
        if (verdict != chain::BlockVerdict::kAccepted) {
            FAIRBFL_LOG_ERROR("round %llu: block rejected (%s)",
                              static_cast<unsigned long long>(round),
                              chain::to_string(verdict).c_str());
        }
    }
    record.chain_height = chain_.height();

    // --- Metrics.
    record.fl.test_accuracy = model_->accuracy(weights_, test_set_);
    double loss_sum = 0.0;
    for (const auto& u : final_updates) loss_sum += u.local_loss;
    record.fl.mean_local_loss =
        loss_sum / static_cast<double>(final_updates.size());
}

std::vector<BflRoundRecord> FairBfl::run(std::size_t rounds) {
    if (rounds == 0) rounds = config_.fl.rounds;
    std::vector<BflRoundRecord> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r) history.push_back(run_round());
    return history;
}

}  // namespace fairbfl::core
