#include "core/fairbfl.hpp"

#include <algorithm>
#include <cmath>

#include "chain/mempool.hpp"
#include "crypto/hybrid.hpp"
#include "fl/sampling.hpp"
#include "support/logging.hpp"

namespace fairbfl::core {

namespace {

/// Seconds -> virtual-clock ns (the round engine's time unit).
VirtualTime sim_ns(double seconds) noexcept {
    return static_cast<VirtualTime>(seconds * 1e9);
}

}  // namespace

FairBfl::FairBfl(const ml::Model& model, std::vector<fl::Client> clients,
                 ml::DatasetView test_set, FairBflConfig config)
    : model_(&model),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      trainer_(fl::LocalTrainer::Options{
          .batched = config.fl.batched_training, .pool = config.pool}),
      aggregator_(config.aggregator ? config.aggregator
                                    : make_aggregator("simple")),
      consensus_(make_consensus(
          !config.consensus.empty()
              ? std::string_view(config.consensus)
              : (config.async_mining ? std::string_view("async_pow")
                                     : std::string_view("sync_pow")))),
      contribution_(config.contribution
                        ? config.contribution
                        : make_contribution_policy(config.incentive)),
      reward_(config.reward ? config.reward
                            : make_reward_policy(config.incentive.strategy)),
      keys_(config.fl.seed, config.key_bits),
      chain_(config.chain_id, config.key_bits != 0 ? &keys_ : nullptr),
      engine_(config.round),
      weights_(model.param_count(), 0.0F) {
    // The tightly coupled design models mining time stochastically; the
    // chain stores protocol-valid blocks without re-running the hash race.
    chain_.set_check_pow(false);
    for (const auto& client : clients_) keys_.register_node(client.id());
    // Miners get ids above the client range.  At least one miner id is
    // always registered: the mining stage signs the winner's block with
    // proxy id clients_.size(), and the upload stage addresses a proxy
    // miner, even when config.miners == 0.
    for (std::size_t k = 0; k < std::max<std::size_t>(config_.miners, 1); ++k)
        keys_.register_node(static_cast<crypto::NodeId>(clients_.size() + k));

    auto rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x1417);
    model_->init_params(weights_, rng);
}

std::size_t FairBfl::batch_steps_of(std::size_t client_id) const {
    const std::size_t samples = clients_[client_id].num_samples();
    const std::size_t batch = std::max<std::size_t>(config_.fl.sgd.batch_size, 1);
    return config_.fl.sgd.epochs * ((samples + batch - 1) / batch);
}

BflRoundRecord FairBfl::run_round() {
    const std::uint64_t round = round_++;
    BflRoundRecord record;
    record.fl.round = round;
    {
        // Every span/counter of the round -- including those emitted from
        // pool workers that inherit this context at their fan-out sites --
        // is tagged with this system's session and the round number.
        const telemetry::ContextScope scope(
            telemetry_.context(static_cast<std::uint32_t>(round)));
        round_body(round, record);
    }
    // All spans are closed (fan-outs joined inside round_body), so the
    // harvest sees the complete round; the StageWall shim -- and through
    // it every perf_round.json `seconds.*` key -- is derived from the
    // event log rather than written by stopwatches.
    record.wall =
        stage_wall_from(telemetry_.harvest(static_cast<std::uint32_t>(round)));
    return record;
}

void FairBfl::round_body(std::uint64_t round, BflRoundRecord& record) {
    // Common-random-numbers discipline: every delay component draws from
    // its own (seed, round)-keyed stream, so two configurations of the
    // same experiment (e.g. FAIR vs FAIR-Discard) see identical network
    // and mining luck and differ only through real workload changes.
    auto assoc_rng =
        support::Rng::fork(config_.fl.seed, /*stream=*/0xA550C, round);
    auto up_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x755, round);
    auto ex_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x7E8, round);
    auto bl_rng = support::Rng::fork(config_.fl.seed, /*stream=*/0x7B1, round);
    // Empty-solve intervals for the engaged async-mining race; a separate
    // stream keeps the race from perturbing the pinned t_bl draws.
    auto race_rng =
        support::Rng::fork(config_.fl.seed, /*stream=*/0xECE, round);

    // --- Client selection (Algorithm 1 line 3), minus last round's bench.
    auto selected = fl::sample_clients(clients_.size(), config_.fl.client_ratio,
                                       round, config_.fl.seed);
    selected = fl::exclude_clients(std::move(selected), benched_clients_);
    benched_clients_.clear();
    record.fl.selected = selected.size();

    const DelayModel delays(config_.delay);
    std::vector<std::size_t> steps;
    steps.reserve(selected.size());
    for (const std::size_t id : selected) steps.push_back(batch_steps_of(id));
    // Per-client compute times, needed up front: each client's arrival
    // event fires at its *own* t_local + t_up slice, not the round max.
    std::vector<double> local_seconds;
    local_seconds.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i)
        local_seconds.push_back(
            delays.t_local_client(selected[i], steps[i], config_.fl.seed));

    // Retroactive settlement re-clusters against w_r, which the on-time
    // pass overwrites below; keep a copy only when it can be needed.
    std::vector<float> round_start_weights;
    if (config_.round.engaged() &&
        config_.round.late_policy == LatePolicy::kRetroactive)
        round_start_weights = weights_;

    // --- Procedures I + II as engine phases: local learning runs eagerly
    // in parallel (the physics), then the driving thread forges / signs /
    // prices the uploads and turns each deliverable update into an
    // arrival event on the virtual clock.
    std::vector<fl::GradientUpdate> updates(selected.size());
    trainer_.ensure_capacity(clients_.size());
    const auto work = [&](std::size_t slot) {
        const std::size_t id = selected[slot];
        const telemetry::ContextScope scope(
            telemetry::current_context().with_item(
                static_cast<std::uint32_t>(id)));
        updates[slot] = trainer_.train_one(clients_, id, weights_,
                                           config_.fl.sgd, round,
                                           config_.fl.seed);
    };

    const bool encrypting =
        config_.encrypt_gradients && keys_.crypto_enabled();
    std::size_t payload = 0;
    std::vector<chain::Transaction> gradient_txs;
    const auto prepare = [&]() {
        record.delay.t_local =
            delays.t_local(selected, steps, config_.fl.seed);

        // --- Adversary: forge some updates before they leave the clients.
        const AttackReport attack = apply_attack(
            updates, weights_, config_.attack, round, config_.fl.seed);
        record.attacker_clients = attack.attacker_clients;

        payload = updates.empty() ? 0 : updates[0].payload_bytes();
        std::size_t wire_payload = payload;

        // --- Procedure II: sign and upload to a uniformly random miner,
        // optionally under hybrid encryption to that miner.  Draw order
        // (association before the signature check, one upload draw per
        // update after the loop) matches the lockstep series exactly.
        gradient_txs.reserve(updates.size());
        const std::size_t miner_count =
            std::max<std::size_t>(config_.miners, 1);
        std::vector<bool> deliverable(updates.size(), false);
        for (std::size_t i = 0; i < updates.size(); ++i) {
            const auto& update = updates[i];
            chain::Transaction tx = chain::make_gradient_tx(
                chain::TxKind::kLocalGradient, update.client, round,
                update.weights);
            chain::sign_transaction(tx, keys_);
            // Miner association: uniform random (paper §4.2).
            const auto miner = static_cast<std::size_t>(assoc_rng.uniform_int(
                0, static_cast<std::int64_t>(miner_count) - 1));
            if (!chain::verify_transaction(tx, keys_)) {
                FAIRBFL_LOG_WARN(
                    "round %llu: dropping update with bad signature "
                    "from client %u",
                    static_cast<unsigned long long>(round), update.client);
                continue;
            }
            if (encrypting) {
                // Encrypt the signed transaction to the associated miner;
                // the miner decrypts before treating it as a gradient.  An
                // undecryptable or tampered upload is dropped, like a bad
                // signature.
                const auto miner_node =
                    static_cast<crypto::NodeId>(clients_.size() + miner);
                auto enc_rng = support::Rng::fork(
                    config_.fl.seed, 0xE2C00000ULL + update.client, round);
                const crypto::HybridCiphertext ciphertext =
                    crypto::hybrid_encrypt(keys_.public_key(miner_node),
                                           tx.encode(), enc_rng);
                wire_payload =
                    std::max(wire_payload, ciphertext.total_bytes());
                try {
                    const auto decrypted = crypto::hybrid_decrypt(
                        keys_.private_key(miner_node), ciphertext);
                    chain::ByteReader reader(decrypted);
                    const chain::Transaction received =
                        chain::Transaction::decode(reader);
                    if (!(received == tx)) continue;
                } catch (const std::exception&) {
                    FAIRBFL_LOG_WARN(
                        "round %llu: dropping undecryptable upload from %u",
                        static_cast<unsigned long long>(round),
                        update.client);
                    continue;
                }
            }
            deliverable[i] = true;
            gradient_txs.push_back(std::move(tx));
        }
        const std::vector<double> up_seconds =
            delays.t_up_each(updates.size(), wire_payload, up_rng);
        double slowest_up = 0.0;
        for (const double s : up_seconds)
            slowest_up = std::max(slowest_up, s);
        record.delay.t_up = slowest_up;

        // --- The delivery schedule, fault plan applied.
        const support::FaultPlan* faults = config_.fault_plan.get();
        std::vector<PendingDelivery> deliveries;
        deliveries.reserve(updates.size());
        for (std::size_t i = 0; i < updates.size(); ++i) {
            if (!deliverable[i]) continue;
            const fl::NodeId client = updates[i].client;
            if (faults != nullptr && faults->dropped(round, client))
                continue;
            const double factor =
                faults != nullptr ? faults->delay_factor(round, client)
                                  : 1.0;
            const double seconds =
                (local_seconds[i] + up_seconds[i]) * factor;
            deliveries.push_back({i, sim_ns(seconds), false});
            const std::size_t copies =
                faults != nullptr ? faults->duplicates(round, client) : 0;
            for (std::size_t c = 0; c < copies; ++c) {
                // Each replay trails the original by one more upload
                // interval -- deterministic, no fresh randomness.
                const double replay =
                    seconds + static_cast<double>(c + 1) * up_seconds[i];
                deliveries.push_back({i, sim_ns(replay), true});
            }
        }
        return deliveries;
    };

    // Async mining races collection when the engine is engaged: empty
    // blocks are minted while the round's content is still in flight.
    MiningRaceSpec race;
    const MiningRaceSpec* race_ptr = nullptr;
    if (config_.stage_mining && config_.round.engaged() &&
        consensus_->name() == "async_pow") {
        race.mean_solve_seconds =
            static_cast<double>(config_.delay.difficulty) /
            config_.delay.miner_hashes_per_second;
        race.rng = &race_rng;
        race_ptr = &race;
    }

    const CollectOutcome outcome = engine_.collect(
        selected.size(), work, prepare, config_.pool, race_ptr);
    record.on_time_updates = outcome.on_time.size();
    record.late_updates = outcome.late.size();
    record.duplicate_updates_dropped = outcome.duplicates_dropped;
    record.quorum_needed = outcome.quorum_needed;
    record.deadline_fired = outcome.deadline_fired;
    record.wait_quorum_seconds = outcome.wait_quorum_seconds();
    record.empty_blocks_this_round = outcome.empty_blocks;

    // --- Procedure III: miners exchange gradient sets until identical.
    // Membership is whatever actually arrived on time, plus prior rounds'
    // late joiners (GradientSet::add keeps the first copy per client, so
    // a fresh update beats a stale carryover).
    fl::GradientSet full_set;
    for (const std::size_t idx : outcome.on_time) full_set.add(updates[idx]);
    for (auto& carried : engine_.take_carryovers())
        if (full_set.add(std::move(carried))) ++record.carried_in_updates;
    full_set.canonicalize();
    if (config_.stage_exchange && config_.miners > 1) {
        const std::size_t set_bytes = payload * full_set.size();
        record.delay.t_ex = delays.t_ex(config_.miners, set_bytes, ex_rng);
    }

    const auto& final_updates = full_set.updates();
    record.fl.participants = final_updates.size();
    for (const auto& u : final_updates)
        record.fl.participant_ids.push_back(u.client);
    if (final_updates.empty()) {
        // Nothing arrived on time (all clients benched / dropped): keep
        // the weights; late stragglers still join the next round.
        if (!outcome.late.empty()) {
            std::vector<fl::GradientUpdate> late;
            late.reserve(outcome.late.size());
            for (const std::size_t idx : outcome.late)
                late.push_back(std::move(updates[idx]));
            engine_.carry(std::move(late));
        }
        record.fl.test_accuracy = model_->accuracy(weights_, test_set_);
        record.chain_height = chain_.height();
        return;
    }

    // --- Procedure IV: provisional combine (line 24), Algorithm 2
    // (line 26), reward settlement (line 27 / Eq. 1) -- each stage behind
    // its strategy object.
    std::vector<float> provisional;
    {
        const telemetry::Span span(telemetry::labels::round_aggregate());
        provisional = aggregator_->aggregate(final_updates);
    }
    std::size_t clustered_points = 0;
    if (config_.enable_incentive) {
        // Cluster on effective gradients: weights_ still holds w_r here.
        // The index-build / shard-pass / root-pass sub-spans and the
        // index-bytes counter are emitted inside identify's callees
        // (cluster::IndexRegistry::build, incentive/hierarchical.cpp).
        incentive::ContributionReport report;
        {
            const telemetry::Span span(telemetry::labels::round_cluster());
            report =
                contribution_->identify(final_updates, provisional, weights_);
        }
        clustered_points = final_updates.size() + 1;
        // An explicitly configured aggregator governs the settlement
        // combine as well; the default keeps Eq. 1 exactly.
        {
            const telemetry::Span span(telemetry::labels::round_aggregate());
            weights_ = reward_->settle(
                final_updates, report,
                config_.aggregator ? aggregator_.get() : nullptr);
        }
        ledger_.record(round, report);
        record.round_reward_total = report.total_reward();
        record.low_contribution_clients = report.low_clients();
        record.detection_rate =
            detection_rate(record.attacker_clients,
                           record.low_contribution_clients);
        if (reward_->benches_low_contributors()) {
            for (const auto client : record.low_contribution_clients)
                benched_clients_.push_back(client);
        }
    } else {
        weights_ = provisional;
        record.detection_rate = record.attacker_clients.empty() ? 1.0 : 0.0;
    }
    record.delay.t_gl = delays.t_gl(final_updates.size(), clustered_points);

    // --- Procedure V: the winner packs the block; consensus accepts it.
    if (config_.stage_mining) {
        const telemetry::Span span(telemetry::labels::round_mine());
        chain::Block block;
        block.header.index = chain_.tip().header.index + 1;
        block.header.prev_hash = chain_.tip().header.hash();
        block.header.difficulty = config_.delay.difficulty;
        block.header.timestamp_ms = round * 1000;

        const auto miner_id =
            static_cast<crypto::NodeId>(clients_.size());  // winner proxy id
        chain::Transaction global_tx = chain::make_gradient_tx(
            chain::TxKind::kGlobalUpdate, miner_id, round, weights_);
        chain::sign_transaction(global_tx, keys_);
        block.transactions.push_back(std::move(global_tx));
        for (const auto& entry : ledger_.history()) {
            if (entry.round != round) continue;
            chain::Transaction reward_tx = chain::make_reward_tx(
                miner_id, round, entry.client, entry.amount);
            chain::sign_transaction(reward_tx, keys_);
            block.transactions.push_back(std::move(reward_tx));
        }
        if (config_.record_local_gradients) {
            // Assumption 2 ablation: local gradients go on-chain too.
            for (auto& tx : gradient_txs)
                block.transactions.push_back(std::move(tx));
        }
        block.seal_transactions();

        const std::size_t block_bytes = block.size_bytes();
        if (config_.record_local_gradients) {
            // Over-capacity content splits across multiple sequential
            // blocks (queuing), and asynchronous mining may fork.
            chain::Mempool pool(config_.delay.max_block_bytes);
            pool.add_all(block.transactions);
            record.blocks_this_round = pool.blocks_to_drain();
        } else {
            record.blocks_this_round = 1;
        }

        const MiningOutcome mined = consensus_->mine(
            delays, config_.miners, record.blocks_this_round,
            std::min(block_bytes, config_.delay.max_block_bytes), bl_rng);
        record.delay.t_bl = mined.seconds;
        record.forks_this_round = mined.forks;

        const chain::BlockVerdict verdict = chain_.submit(block);
        if (verdict != chain::BlockVerdict::kAccepted) {
            FAIRBFL_LOG_ERROR("round %llu: block rejected (%s)",
                              static_cast<unsigned long long>(round),
                              chain::to_string(verdict).c_str());
        }
    }
    record.chain_height = chain_.height();

    // --- Late gradients (engaged configs only; the degenerate config has
    // none by construction).
    bool resettled = false;
    fl::GradientSet settled_set;
    if (!outcome.late.empty() &&
        config_.round.late_policy == LatePolicy::kRetroactive) {
        // Retroactive settlement: re-run Procedure IV over on-time + late
        // and amend the ledger in place, preserving per-round budget
        // conservation.  The on-time block already sealed this round's
        // chain entry; the amended rewards are the ledger's (off-chain
        // settlement) view.
        settled_set = full_set;
        for (const std::size_t idx : outcome.late)
            settled_set.add(updates[idx]);
        settled_set.canonicalize();
        const auto& all_updates = settled_set.updates();
        std::vector<float> provisional_all;
        {
            const telemetry::Span span(telemetry::labels::round_aggregate());
            provisional_all = aggregator_->aggregate(all_updates);
        }
        if (config_.enable_incentive) {
            incentive::ContributionReport report;
            {
                const telemetry::Span span(
                    telemetry::labels::round_cluster());
                report = contribution_->identify(all_updates, provisional_all,
                                                 round_start_weights);
            }
            {
                const telemetry::Span span(
                    telemetry::labels::round_aggregate());
                weights_ = reward_->settle(
                    all_updates, report,
                    config_.aggregator ? aggregator_.get() : nullptr);
            }
            ledger_.amend_round(round, report);
            record.round_reward_total = report.total_reward();
            record.low_contribution_clients = report.low_clients();
            record.detection_rate = detection_rate(
                record.attacker_clients, record.low_contribution_clients);
            if (reward_->benches_low_contributors()) {
                benched_clients_.clear();
                for (const auto client : record.low_contribution_clients)
                    benched_clients_.push_back(client);
            }
        } else {
            weights_ = provisional_all;
        }
        record.fl.participants = all_updates.size();
        record.fl.participant_ids.clear();
        for (const auto& u : all_updates)
            record.fl.participant_ids.push_back(u.client);
        resettled = true;
    } else if (!outcome.late.empty()) {
        std::vector<fl::GradientUpdate> late;
        late.reserve(outcome.late.size());
        for (const std::size_t idx : outcome.late)
            late.push_back(std::move(updates[idx]));
        engine_.carry(std::move(late));
    }

    // --- Metrics (over the set that actually shaped weights_).
    record.fl.test_accuracy = model_->accuracy(weights_, test_set_);
    const auto& metric_updates =
        resettled ? settled_set.updates() : final_updates;
    double loss_sum = 0.0;
    for (const auto& u : metric_updates) loss_sum += u.local_loss;
    record.fl.mean_local_loss =
        loss_sum / static_cast<double>(metric_updates.size());
}

std::vector<BflRoundRecord> FairBfl::run(std::size_t rounds) {
    if (rounds == 0) rounds = config_.fl.rounds;
    std::vector<BflRoundRecord> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r) history.push_back(run_round());
    return history;
}

}  // namespace fairbfl::core
