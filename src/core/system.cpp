#include "core/system.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

namespace fairbfl::core {

namespace {

/// Shared bookkeeping: accumulates the series under the run's name so
/// concrete systems only implement one round (`step`).
class RecordedSystem : public System {
public:
    RecordedSystem(std::string name, std::size_t default_rounds)
        : default_rounds_(default_rounds) {
        run_.name = std::move(name);
    }

    [[nodiscard]] std::string_view name() const noexcept override {
        return run_.name;
    }
    [[nodiscard]] std::size_t default_rounds() const noexcept override {
        return default_rounds_;
    }

    SeriesPoint run_round() override {
        const SeriesPoint point = step();
        run_.series.push_back(point);
        return point;
    }

    [[nodiscard]] SystemRun finalize() const override {
        SystemRun out = run_;
        out.finalize();
        return out;
    }

protected:
    virtual SeriesPoint step() = 0;

private:
    SystemRun run_;
    std::size_t default_rounds_;
};

/// FedAvg under the shared delay model (delay = T_local + T_up + T_gl).
class FedAvgSystem final : public RecordedSystem {
public:
    FedAvgSystem(const Environment& env, const fl::FlConfig& config,
                 const DelayParams& delay, std::string name)
        : RecordedSystem(std::move(name), config.rounds),
          env_(&env),
          config_(config),
          delays_(delay),
          trainer_(*env.model, env.make_clients(), env.test, config) {}

    SeriesPoint step() override {
        const fl::RoundRecord record = trainer_.run_round();
        SeriesPoint point;
        point.round = record.round;
        point.accuracy = record.test_accuracy;
        point.delay_seconds =
            fl_round_delay(delays_, *env_, record.participant_ids,
                           config_.sgd, record.round, config_.seed);
        return point;
    }

private:
    const Environment* env_;
    fl::FlConfig config_;
    DelayModel delays_;
    fl::FedAvg trainer_;
};

class FedProxSystem final : public RecordedSystem {
public:
    FedProxSystem(const Environment& env, const fl::FedProxConfig& config,
                  const DelayParams& delay, std::string name)
        : RecordedSystem(std::move(name), config.base.rounds),
          env_(&env),
          config_(config),
          delays_(delay),
          trainer_(*env.model, env.make_clients(), env.test, config) {}

    SeriesPoint step() override {
        const fl::RoundRecord record = trainer_.run_round();
        SeriesPoint point;
        point.round = record.round;
        point.accuracy = record.test_accuracy;
        point.delay_seconds =
            fl_round_delay(delays_, *env_, record.participant_ids,
                           config_.base.sgd, record.round, config_.base.seed);
        return point;
    }

private:
    const Environment* env_;
    fl::FedProxConfig config_;
    DelayModel delays_;
    fl::FedProx trainer_;
};

/// FAIR-BFL and its degraded / ablated variants (delays come from the
/// orchestrator's own records).
class FairBflSystem final : public RecordedSystem {
public:
    FairBflSystem(const Environment& env, const FairBflConfig& config,
                  std::string name)
        : RecordedSystem(std::move(name), config.fl.rounds),
          system_(*env.model, env.make_clients(), env.test, config) {}

    SeriesPoint step() override {
        const BflRoundRecord record = system_.run_round();
        SeriesPoint point;
        point.round = record.fl.round;
        point.accuracy = record.fl.test_accuracy;
        point.delay_seconds = record.delay.total();
        point.wall = record.wall;
        return point;
    }

    [[nodiscard]] const chain::Blockchain* blockchain()
        const noexcept override {
        return &system_.blockchain();
    }
    [[nodiscard]] const incentive::RewardLedger* reward_ledger()
        const noexcept override {
        return &system_.ledger();
    }

private:
    FairBfl system_;
};

class VanillaBflSystem final : public RecordedSystem {
public:
    VanillaBflSystem(const Environment& env, const VanillaBflConfig& config,
                     std::string name)
        : RecordedSystem(std::move(name), config.fl.rounds),
          system_(*env.model, env.make_clients(), env.test, config) {}

    SeriesPoint step() override {
        const VanillaRoundRecord record = system_.run_round();
        SeriesPoint point;
        point.round = record.fl.round;
        point.accuracy = record.fl.test_accuracy;
        point.delay_seconds = record.delay.total();
        return point;
    }

    [[nodiscard]] const chain::Blockchain* blockchain()
        const noexcept override {
        return &system_.blockchain();
    }

private:
    VanillaBfl system_;
};

/// Pure blockchain: a ledger learns nothing, so accuracy stays 0.
class BlockchainSystem final : public RecordedSystem {
public:
    BlockchainSystem(const BlockchainBaselineConfig& config, std::string name)
        : RecordedSystem(std::move(name), config.rounds), system_(config) {}

    SeriesPoint step() override {
        const BlockchainRoundRecord record = system_.run_round();
        SeriesPoint point;
        point.round = record.round;
        point.accuracy = 0.0;
        point.delay_seconds = record.delay.total();
        return point;
    }

    [[nodiscard]] const chain::Blockchain* blockchain()
        const noexcept override {
        return &system_.blockchain();
    }

private:
    BlockchainBaseline system_;
};

std::string label_or(const SystemSpec& spec, const char* fallback) {
    return spec.label.empty() ? fallback : spec.label;
}

void register_builtins(SystemRegistry& registry) {
    registry.add("fedavg", [](const Environment& env, const SystemSpec& spec) {
        return std::make_unique<FedAvgSystem>(env, spec.fl, spec.delay,
                                              label_or(spec, "FedAvg"));
    });
    registry.add("fedprox",
                 [](const Environment& env, const SystemSpec& spec) {
                     return std::make_unique<FedProxSystem>(
                         env, spec.fedprox, spec.delay,
                         label_or(spec, "FedProx"));
                 });
    registry.add("fairbfl",
                 [](const Environment& env, const SystemSpec& spec) {
                     return std::make_unique<FairBflSystem>(
                         env, spec.fair, label_or(spec, "FAIR"));
                 });
    registry.add("fairbfl_discard",
                 [](const Environment& env, const SystemSpec& spec) {
                     FairBflConfig config = spec.fair;
                     // An explicit reward override wins, like every other
                     // strategy field; only the derived default changes.
                     config.incentive.strategy =
                         incentive::LowContributionStrategy::kDiscard;
                     return std::make_unique<FairBflSystem>(
                         env, config, label_or(spec, "FAIR-Discard"));
                 });
    registry.add("pure_fl",
                 [](const Environment& env, const SystemSpec& spec) {
                     FairBflConfig config = spec.fair;
                     config.stage_exchange = false;  // Procedure III off
                     config.stage_mining = false;    // Procedure V off
                     return std::make_unique<FairBflSystem>(
                         env, config, label_or(spec, "pure-FL"));
                 });
    registry.add("vanilla_bfl",
                 [](const Environment& env, const SystemSpec& spec) {
                     return std::make_unique<VanillaBflSystem>(
                         env, spec.vanilla, label_or(spec, "vanilla-BFL"));
                 });
    registry.add("blockchain",
                 [](const Environment&, const SystemSpec& spec) {
                     return std::make_unique<BlockchainSystem>(
                         spec.blockchain, label_or(spec, "Blockchain"));
                 });
}

}  // namespace

SystemSpec fedavg_spec(const fl::FlConfig& config, const DelayParams& delay,
                       std::string label) {
    SystemSpec spec;
    spec.system = "fedavg";
    spec.label = std::move(label);
    spec.fl = config;
    spec.delay = delay;
    return spec;
}

SystemSpec fedprox_spec(const fl::FedProxConfig& config,
                        const DelayParams& delay, std::string label) {
    SystemSpec spec;
    spec.system = "fedprox";
    spec.label = std::move(label);
    spec.fedprox = config;
    spec.delay = delay;
    return spec;
}

SystemSpec fairbfl_spec(const FairBflConfig& config, std::string label) {
    SystemSpec spec;
    spec.system = "fairbfl";
    spec.label = std::move(label);
    spec.fair = config;
    return spec;
}

SystemSpec pure_fl_spec(const FairBflConfig& config, std::string label) {
    SystemSpec spec = fairbfl_spec(config, std::move(label));
    spec.system = "pure_fl";
    return spec;
}

SystemSpec fairbfl_discard_spec(const FairBflConfig& config,
                                std::string label) {
    SystemSpec spec = fairbfl_spec(config, std::move(label));
    spec.system = "fairbfl_discard";
    return spec;
}

SystemSpec vanilla_bfl_spec(const VanillaBflConfig& config,
                            std::string label) {
    SystemSpec spec;
    spec.system = "vanilla_bfl";
    spec.label = std::move(label);
    spec.vanilla = config;
    return spec;
}

SystemSpec blockchain_spec(const BlockchainBaselineConfig& config,
                           std::string label) {
    SystemSpec spec;
    spec.system = "blockchain";
    spec.label = std::move(label);
    spec.blockchain = config;
    return spec;
}

void SystemRegistry::add(std::string name, Factory factory, bool replace) {
    support::MutexLock lock(mutex_);
    if (!replace && factories_.contains(name)) {
        throw std::invalid_argument("system '" + name +
                                    "' is already registered");
    }
    factories_[std::move(name)] = std::move(factory);
}

bool SystemRegistry::contains(std::string_view name) const {
    support::MutexLock lock(mutex_);
    return factories_.find(name) != factories_.end();
}

std::vector<std::string> SystemRegistry::names() const {
    support::MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, _] : factories_) out.push_back(name);
    return out;
}

std::unique_ptr<System> SystemRegistry::make(const Environment& env,
                                             const SystemSpec& spec) const {
    Factory factory;
    {
        support::MutexLock lock(mutex_);
        const auto it = factories_.find(spec.system);
        if (it == factories_.end()) {
            std::vector<std::string_view> known;
            for (const auto& [name, _] : factories_) known.push_back(name);
            throw std::out_of_range("unknown system '" + spec.system +
                                    "' (known: " + detail::join_names(known) +
                                    ")");
        }
        factory = it->second;
    }
    return factory(env, spec);
}

SystemRegistry& SystemRegistry::global() {
    static SystemRegistry* registry = [] {
        auto* r = new SystemRegistry;
        register_builtins(*r);
        return r;
    }();
    return *registry;
}

SystemRun run_system(const Environment& env, const SystemSpec& spec,
                     const SystemRegistry& registry) {
    const std::unique_ptr<System> system = registry.make(env, spec);
    const std::size_t rounds =
        spec.rounds != 0 ? spec.rounds : system->default_rounds();
    for (std::size_t r = 0; r < rounds; ++r) (void)system->run_round();
    SystemRun run = system->finalize();
    // Defensive normalization applied by *both* entry points (so run_suite
    // and run_system stay interchangeable): SystemRun::finalize() is
    // idempotent, and re-running it keeps custom System implementations
    // honest about the §5.2 aggregate protocol.
    run.finalize();
    return run;
}

std::vector<SystemRun> run_suite(const Environment& env,
                                 std::span<const SystemSpec> specs,
                                 support::ThreadPool& pool,
                                 const SystemRegistry& registry) {
    std::vector<SystemRun> results(specs.size());
    // A degenerate suite gains nothing from forking: run it serially.  A
    // real suite forks one task per worker; each system's inner
    // parallel_for then fans out across whichever workers are idle (the
    // work-stealing scheduler composes under nesting -- see
    // ThreadPool::run), so suite- and client-level parallelism share the
    // same pool.
    if (specs.size() <= 1 || pool.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = run_system(env, specs[i], registry);
        return results;
    }

    std::vector<std::exception_ptr> errors(specs.size());
    std::atomic<std::size_t> next{0};
    pool.run([&](unsigned) {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= specs.size()) return;
            try {
                results[i] = run_system(env, specs[i], registry);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    });
    for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }
    return results;
}

}  // namespace fairbfl::core
