#pragma once
// In-memory dense dataset: row-major float features + integer labels.
//
// A Dataset owns storage; a DatasetView is a cheap index-based subset used
// for client shards and mini-batches (FL never copies sample data between
// "devices" -- each client's shard is a view into the one simulation-wide
// dataset, mirroring the paper's D_i ~ D allocation).

#include <cstdint>
#include <span>
#include <vector>

namespace fairbfl::ml {

class Dataset {
public:
    Dataset() = default;
    Dataset(std::size_t feature_dim, std::size_t num_classes)
        : feature_dim_(feature_dim), num_classes_(num_classes) {}

    /// Appends one sample; features.size() must equal feature_dim().
    void add(std::span<const float> features, std::int32_t label);
    void reserve(std::size_t samples);

    [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
    [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
    [[nodiscard]] std::size_t feature_dim() const noexcept {
        return feature_dim_;
    }
    [[nodiscard]] std::size_t num_classes() const noexcept {
        return num_classes_;
    }

    [[nodiscard]] std::span<const float> features_of(std::size_t i) const;
    [[nodiscard]] std::int32_t label_of(std::size_t i) const {
        return labels_[i];
    }

    /// Overwrites a label (used to inject low-quality clients: the paper's
    /// §5.3 "noise from low-quality data").  Label must be in range.
    void set_label(std::size_t i, std::int32_t label);

private:
    std::size_t feature_dim_ = 0;
    std::size_t num_classes_ = 0;
    std::vector<float> features_;  // row-major, size() * feature_dim_
    std::vector<std::int32_t> labels_;
};

/// An index-subset of a Dataset.  Indices are stored by value so views can
/// be shuffled / re-batched without touching the parent.
class DatasetView {
public:
    DatasetView() = default;
    DatasetView(const Dataset& parent, std::vector<std::size_t> indices)
        : parent_(&parent), indices_(std::move(indices)) {}

    /// The full dataset as a view.
    [[nodiscard]] static DatasetView all(const Dataset& parent);

    [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
    [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }
    [[nodiscard]] const Dataset& parent() const { return *parent_; }

    [[nodiscard]] std::span<const float> features_of(std::size_t i) const {
        return parent_->features_of(indices_[i]);
    }
    [[nodiscard]] std::int32_t label_of(std::size_t i) const {
        return parent_->label_of(indices_[i]);
    }
    [[nodiscard]] const std::vector<std::size_t>& indices() const noexcept {
        return indices_;
    }

    /// Splits into consecutive batches of `batch_size` (last may be short).
    /// Mirrors Algorithm 1 line 8: "split D_i into batches of size B".
    [[nodiscard]] std::vector<DatasetView> batches(std::size_t batch_size) const;

    /// A view of the first `count` samples (clamped).
    [[nodiscard]] DatasetView take(std::size_t count) const;

private:
    const Dataset* parent_ = nullptr;
    std::vector<std::size_t> indices_;
};

/// Deterministic train/test split: `test_fraction` of samples (shuffled by
/// `seed`) go to the second view.
struct TrainTestSplit {
    DatasetView train;
    DatasetView test;
};
[[nodiscard]] TrainTestSplit train_test_split(const Dataset& dataset,
                                              double test_fraction,
                                              std::uint64_t seed);

}  // namespace fairbfl::ml
