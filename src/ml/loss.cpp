#include "ml/loss.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace fairbfl::ml {

void softmax_inplace(std::span<float> logits) noexcept {
    float max_logit = logits[0];
    for (const float v : logits) max_logit = std::max(max_logit, v);
    double sum = 0.0;
    for (auto& v : logits) {
        v = std::exp(v - max_logit);
        sum += static_cast<double>(v);
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (auto& v : logits) v *= inv;
}

double cross_entropy(std::span<const float> probs,
                     std::int32_t label) noexcept {
    const double p =
        std::max(static_cast<double>(probs[static_cast<std::size_t>(label)]),
                 1e-12);
    return -std::log(p);
}

double softmax_xent_backward(std::span<const float> logits, std::int32_t label,
                             std::span<float> dlogits) noexcept {
    float max_logit = logits[0];
    for (const float v : logits) max_logit = std::max(max_logit, v);
    double sum = 0.0;
    for (std::size_t c = 0; c < logits.size(); ++c) {
        const float e = std::exp(logits[c] - max_logit);
        dlogits[c] = e;
        sum += static_cast<double>(e);
    }
    const auto inv = static_cast<float>(1.0 / sum);
    double loss = 0.0;
    for (std::size_t c = 0; c < dlogits.size(); ++c) {
        dlogits[c] *= inv;
        if (c == static_cast<std::size_t>(label)) {
            loss = -std::log(
                std::max(static_cast<double>(dlogits[c]), 1e-12));
            dlogits[c] -= 1.0F;
        }
    }
    return loss;
}

}  // namespace fairbfl::ml
