#include "ml/synthetic_mnist.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace fairbfl::ml {

Dataset make_synthetic_mnist(const SyntheticMnistParams& params) {
    Dataset dataset(params.feature_dim, params.num_classes);
    dataset.reserve(params.samples);

    auto proto_rng = support::Rng::fork(params.seed, /*stream=*/0xC1A55);
    // Class prototypes in [0,1]^d, pushed apart by class_separation.
    std::vector<std::vector<float>> prototypes(params.num_classes);
    std::vector<std::vector<float>> aniso(params.num_classes);
    for (std::size_t c = 0; c < params.num_classes; ++c) {
        prototypes[c].resize(params.feature_dim);
        aniso[c].resize(params.feature_dim);
        for (std::size_t d = 0; d < params.feature_dim; ++d) {
            prototypes[c][d] = static_cast<float>(
                0.5 + 0.5 * params.class_separation * proto_rng.normal() * 0.5);
            // Per-class, per-pixel noise multiplier in [0.5, 1.5]: classes
            // differ in which "strokes" vary, like real digits do.
            aniso[c][d] = static_cast<float>(proto_rng.uniform(0.5, 1.5));
        }
    }

    auto sample_rng = support::Rng::fork(params.seed, /*stream=*/0xDA7A);
    std::vector<float> sample(params.feature_dim);
    for (std::size_t i = 0; i < params.samples; ++i) {
        const auto label = static_cast<std::int32_t>(
            sample_rng.uniform_int(0,
                                   static_cast<std::int64_t>(params.num_classes) - 1));
        const auto c = static_cast<std::size_t>(label);
        for (std::size_t d = 0; d < params.feature_dim; ++d) {
            const double noise =
                params.noise_sigma * static_cast<double>(aniso[c][d]) *
                sample_rng.normal();
            sample[d] = std::clamp(prototypes[c][d] + static_cast<float>(noise),
                                   0.0F, 1.0F) *
                        static_cast<float>(params.feature_scale);
        }
        dataset.add(sample, label);
    }
    return dataset;
}

}  // namespace fairbfl::ml
