#include "ml/optimizer.hpp"

#include <algorithm>
#include <numeric>

#include "support/vecmath.hpp"

namespace fairbfl::ml {

namespace {

/// Shared epilogue of one mini-batch step: proximal pull + SGD update.
inline void apply_step(std::span<float> params, std::span<float> grad,
                       const SgdParams& sgd, std::span<const float> anchor,
                       float eta) {
    if (sgd.prox_mu > 0.0 && !anchor.empty()) {
        // grad += mu_prox (w - anchor), fused to one pass.
        support::add_scaled_diff(static_cast<float>(sgd.prox_mu), params,
                                 anchor, grad);
    }
    support::axpy(-eta, grad, params);
}

}  // namespace

SgdResult sgd_train(const Model& model, std::span<float> params,
                    const DatasetView& shard, const SgdParams& sgd,
                    support::Rng& rng, std::span<const float> anchor) {
    TrainWorkspace ws;
    return sgd_train(model, params, shard, sgd, rng, ws, anchor);
}

SgdResult sgd_train(const Model& model, std::span<float> params,
                    const DatasetView& shard, const SgdParams& sgd,
                    support::Rng& rng, TrainWorkspace& ws,
                    std::span<const float> anchor) {
    SgdResult result;
    if (shard.empty()) return result;

    ws.order = shard.indices();
    const auto grad = TrainWorkspace::ensure(ws.grad, model.param_count());
    const auto eta = static_cast<float>(sgd.learning_rate);

    for (std::size_t epoch = 0; epoch < sgd.epochs; ++epoch) {
        if (sgd.shuffle_each_epoch)
            rng.shuffle(std::span<std::size_t>(ws.order));
        DatasetView epoch_view(shard.parent(), ws.order);
        double epoch_loss = 0.0;
        std::size_t batches_seen = 0;
        for (const DatasetView& batch : epoch_view.batches(sgd.batch_size)) {
            support::fill(grad, 0.0F);
            epoch_loss += model.loss_and_gradient(params, batch, ws, grad);
            apply_step(params, grad, sgd, anchor, eta);
            ++result.steps_taken;
            ++batches_seen;
        }
        if (batches_seen > 0)
            result.final_loss = epoch_loss / static_cast<double>(batches_seen);
    }
    return result;
}

SgdResult sgd_train(const Model& model, std::span<float> params,
                    const PackedBatch& shard, const SgdParams& sgd,
                    support::Rng& rng, TrainWorkspace& ws,
                    std::span<const float> anchor) {
    SgdResult result;
    if (shard.empty()) return result;

    // Positions into the pack; the same shuffle draws permute them exactly
    // as the reference path permutes parent indices.
    ws.order.resize(shard.size());
    std::iota(ws.order.begin(), ws.order.end(), std::size_t{0});
    const auto grad = TrainWorkspace::ensure(ws.grad, model.param_count());
    const auto eta = static_cast<float>(sgd.learning_rate);
    const std::size_t batch_size = std::max<std::size_t>(sgd.batch_size, 1);

    for (std::size_t epoch = 0; epoch < sgd.epochs; ++epoch) {
        if (sgd.shuffle_each_epoch)
            rng.shuffle(std::span<std::size_t>(ws.order));
        // Only the last epoch's mean loss survives into SgdResult, so
        // earlier epochs may skip loss-only arithmetic entirely.
        const bool last_epoch = epoch + 1 == sgd.epochs;
        ws.want_loss = last_epoch;
        double epoch_loss = 0.0;
        std::size_t batches_seen = 0;
        for (std::size_t start = 0; start < shard.size();
             start += batch_size) {
            const std::size_t len =
                std::min(batch_size, shard.size() - start);
            const std::span<const std::size_t> rows(ws.order.data() + start,
                                                    len);
            support::fill(grad, 0.0F);
            const double batch_loss =
                model.loss_and_gradient_batch(params, shard, rows, ws, grad);
            if (last_epoch) epoch_loss += batch_loss;
            apply_step(params, grad, sgd, anchor, eta);
            ++result.steps_taken;
            ++batches_seen;
        }
        if (last_epoch && batches_seen > 0)
            result.final_loss = epoch_loss / static_cast<double>(batches_seen);
    }
    ws.want_loss = true;
    return result;
}

double DecreasingStepSchedule::gamma() const noexcept {
    return std::max(8.0 * L / mu, static_cast<double>(E));
}

double DecreasingStepSchedule::rate_at(std::size_t round) const noexcept {
    return 2.0 / (mu * (gamma() + static_cast<double>(round)));
}

}  // namespace fairbfl::ml
