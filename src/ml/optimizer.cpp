#include "ml/optimizer.hpp"

#include <algorithm>
#include <vector>

#include "support/vecmath.hpp"

namespace fairbfl::ml {

SgdResult sgd_train(const Model& model, std::span<float> params,
                    const DatasetView& shard, const SgdParams& sgd,
                    support::Rng& rng, std::span<const float> anchor) {
    SgdResult result;
    if (shard.empty()) return result;

    std::vector<std::size_t> order = shard.indices();
    std::vector<float> grad(model.param_count());
    const auto eta = static_cast<float>(sgd.learning_rate);

    for (std::size_t epoch = 0; epoch < sgd.epochs; ++epoch) {
        if (sgd.shuffle_each_epoch)
            rng.shuffle(std::span<std::size_t>(order));
        DatasetView epoch_view(shard.parent(), order);
        double epoch_loss = 0.0;
        std::size_t batches_seen = 0;
        for (const DatasetView& batch : epoch_view.batches(sgd.batch_size)) {
            support::fill(grad, 0.0F);
            epoch_loss += model.loss_and_gradient(params, batch, grad);
            if (sgd.prox_mu > 0.0 && !anchor.empty()) {
                // grad += mu_prox (w - anchor)
                const auto mu = static_cast<float>(sgd.prox_mu);
                for (std::size_t i = 0; i < grad.size(); ++i)
                    grad[i] += mu * (params[i] - anchor[i]);
            }
            support::axpy(-eta, grad, params);
            ++result.steps_taken;
            ++batches_seen;
        }
        if (batches_seen > 0)
            result.final_loss = epoch_loss / static_cast<double>(batches_seen);
    }
    return result;
}

double DecreasingStepSchedule::gamma() const noexcept {
    return std::max(8.0 * L / mu, static_cast<double>(E));
}

double DecreasingStepSchedule::rate_at(std::size_t round) const noexcept {
    return 2.0 / (mu * (gamma() + static_cast<double>(round)));
}

}  // namespace fairbfl::ml
