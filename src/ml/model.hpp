#pragma once
// Stateless model interface.
//
// Parameters live *outside* the model in a flat float vector -- exactly the
// object that travels through the BFL pipeline as "the gradient w" (the
// paper, like FedAvg, exchanges updated weight vectors).  A single Model
// instance is therefore safely shared by all simulated clients; each client
// only owns its parameter vector.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hpp"
#include "ml/train_workspace.hpp"
#include "support/rng.hpp"

namespace fairbfl::ml {

class Model {
public:
    virtual ~Model() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::size_t param_count() const = 0;

    /// Writes an initial parameter vector (deterministic given rng).
    virtual void init_params(std::span<float> params,
                             support::Rng& rng) const = 0;

    /// Mean loss over `batch` and *accumulated* gradient d(mean loss)/d(params)
    /// added into `grad` (callers zero it first).  Sizes must equal
    /// param_count().
    virtual double loss_and_gradient(std::span<const float> params,
                                     const DatasetView& batch,
                                     std::span<float> grad) const = 0;

    /// Workspace-reusing variant of loss_and_gradient: identical math and
    /// accumulation order, but per-call scratch (logits, activations)
    /// comes from `ws` instead of fresh heap allocations.  The base
    /// implementation forwards to the allocating overload so external
    /// models keep working; the built-in models override it.
    virtual double loss_and_gradient(std::span<const float> params,
                                     const DatasetView& batch,
                                     TrainWorkspace& ws,
                                     std::span<float> grad) const;

    /// Batched kernel: mean loss and accumulated gradient over the samples
    /// at packed positions `rows` of `data` (in that order), using `ws`
    /// for scratch.  Contract: bit-identical to calling the per-sample
    /// loss_and_gradient on the same samples in the same order -- batched
    /// implementations must preserve per-sample accumulation order inside
    /// their kernels (see support::gemv / outer_accumulate).  The base
    /// implementation gathers the rows back into a DatasetView and runs
    /// the reference path; built-in models override with blocked kernels.
    virtual double loss_and_gradient_batch(std::span<const float> params,
                                           const PackedBatch& data,
                                           std::span<const std::size_t> rows,
                                           TrainWorkspace& ws,
                                           std::span<float> grad) const;

    /// Mean loss only (no gradient).
    [[nodiscard]] virtual double loss(std::span<const float> params,
                                      const DatasetView& batch) const = 0;

    /// argmax-class prediction for one sample.
    [[nodiscard]] virtual std::int32_t predict(
        std::span<const float> params, std::span<const float> features) const = 0;

    /// Fraction of `view` classified correctly.
    [[nodiscard]] double accuracy(std::span<const float> params,
                                  const DatasetView& view) const;
};

/// Multinomial logistic regression: W (classes x dim) + b (classes).
/// Convex -- this is the model under which Theorem 3.1's strong-convexity
/// assumptions actually hold (with L2 regularization).
[[nodiscard]] std::unique_ptr<Model> make_logistic_regression(
    std::size_t feature_dim, std::size_t num_classes, double l2 = 1e-4);

/// One-hidden-layer ReLU MLP: W1 (hidden x dim) + b1 + W2 (classes x hidden)
/// + b2.  Non-convex; used to show FAIR-BFL's dynamics beyond the theory.
[[nodiscard]] std::unique_ptr<Model> make_mlp(std::size_t feature_dim,
                                              std::size_t hidden,
                                              std::size_t num_classes,
                                              double l2 = 1e-4);

}  // namespace fairbfl::ml
