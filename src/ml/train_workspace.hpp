#pragma once
// The zero-steady-state-allocation seam of the local-learning engine.
//
// A PackedBatch gathers a client shard's samples -- scattered rows of the
// simulation-wide Dataset -- into one contiguous row-major feature matrix,
// once per shard (not per epoch, not per mini-batch).  Mini-batch SGD then
// addresses samples by *position* into the pack, so the hot kernels stream
// sequential memory instead of chasing shard indices across a dataset that
// may be far larger than cache.
//
// A TrainWorkspace owns every piece of scratch the training loop needs
// (sample order, gradient accumulator, logits, activations), so repeated
// sgd_train calls -- one per client per round, for thousands of rounds --
// allocate nothing after the first.  Workspaces are not thread-safe; the
// engine keeps one per client.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace fairbfl::ml {

/// A shard gathered into contiguous row-major storage.  Keeps the parent
/// pointer and original indices so per-sample fallbacks (and cache
/// validation) can reconstruct the exact DatasetView it was packed from.
class PackedBatch {
public:
    PackedBatch() = default;

    /// Gathers `view`'s feature rows and labels.  Reuses storage on
    /// repacking.
    void pack(const DatasetView& view);

    /// True when this pack was built from exactly `view` (same parent,
    /// same indices in the same order) -- the cache-hit test.
    [[nodiscard]] bool packed_from(const DatasetView& view) const noexcept;

    [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
    [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
    [[nodiscard]] std::size_t feature_dim() const noexcept { return dim_; }

    /// Contiguous features of the sample at packed position `i`.
    [[nodiscard]] std::span<const float> row(std::size_t i) const noexcept {
        return {features_.data() + i * dim_, dim_};
    }
    [[nodiscard]] std::int32_t label(std::size_t i) const noexcept {
        return labels_[i];
    }

    /// The dataset this pack was gathered from (null before pack()).
    [[nodiscard]] const Dataset* parent() const noexcept { return parent_; }
    /// Parent-dataset indices, in packed position order.
    [[nodiscard]] const std::vector<std::size_t>& indices() const noexcept {
        return indices_;
    }

private:
    const Dataset* parent_ = nullptr;
    std::vector<std::size_t> indices_;
    std::size_t dim_ = 0;
    std::vector<float> features_;  ///< size() * dim_, row-major
    std::vector<std::int32_t> labels_;
};

/// Reusable training scratch.  Fields are grouped by owner: the SGD driver
/// uses `order` and `grad`; models use the remaining buffers from inside
/// loss_and_gradient calls (and must not touch the driver's fields).
/// Models size what they need via ensure(); ensure only grows, so the
/// steady state is allocation-free.
struct TrainWorkspace {
    // --- SGD driver scratch (ml::sgd_train).
    std::vector<std::size_t> order;  ///< per-epoch sample order
    std::vector<float> grad;         ///< param-sized gradient accumulator

    /// Batched-path hint: when false, the model may skip arithmetic that
    /// only feeds the *returned loss value* (e.g. the L2 term's full-width
    /// dot) -- the return value is then unspecified.  Gradients are never
    /// affected.  The batched SGD driver clears this for non-final epochs,
    /// whose epoch loss is discarded; the reference path always wants the
    /// loss.
    bool want_loss = true;

    // --- Model scratch (linear + MLP kernels).
    std::vector<float> logits;    ///< batch x classes
    std::vector<float> dlogits;   ///< classes (one sample at a time)
    std::vector<float> hidden;    ///< hidden activations (MLP)
    std::vector<float> pre;       ///< pre-activations (MLP)
    std::vector<float> dh;        ///< hidden-layer gradient (MLP)

    /// Grows `buffer` to at least `n` elements and returns the first `n`
    /// as a span.  Never shrinks, so capacity stabilizes after one round.
    static std::span<float> ensure(std::vector<float>& buffer, std::size_t n) {
        if (buffer.size() < n) buffer.resize(n);
        return {buffer.data(), n};
    }
};

}  // namespace fairbfl::ml
