// One-hidden-layer ReLU MLP.
//
// Parameter layout:
//   [ W1 row-major (hidden x dim) | b1 (hidden) |
//     W2 row-major (classes x hidden) | b2 (classes) ].

#include <cmath>
#include <vector>

#include "ml/loss.hpp"
#include "ml/model.hpp"
#include "support/vecmath.hpp"

namespace fairbfl::ml {

namespace {

class Mlp final : public Model {
public:
    Mlp(std::size_t feature_dim, std::size_t hidden, std::size_t num_classes,
        double l2)
        : dim_(feature_dim), hidden_(hidden), classes_(num_classes), l2_(l2) {}

    [[nodiscard]] std::string name() const override { return "mlp"; }

    [[nodiscard]] std::size_t param_count() const override {
        return hidden_ * dim_ + hidden_ + classes_ * hidden_ + classes_;
    }

    void init_params(std::span<float> params,
                     support::Rng& rng) const override {
        // He initialization for the ReLU layer, Xavier-ish for the head.
        const double s1 = std::sqrt(2.0 / static_cast<double>(dim_));
        const double s2 = std::sqrt(1.0 / static_cast<double>(hidden_));
        std::size_t i = 0;
        for (; i < hidden_ * dim_; ++i)
            params[i] = static_cast<float>(s1 * rng.normal());
        for (; i < hidden_ * dim_ + hidden_; ++i) params[i] = 0.0F;
        for (; i < hidden_ * dim_ + hidden_ + classes_ * hidden_; ++i)
            params[i] = static_cast<float>(s2 * rng.normal());
        for (; i < param_count(); ++i) params[i] = 0.0F;
    }

    double loss_and_gradient(std::span<const float> params,
                             const DatasetView& batch,
                             std::span<float> grad) const override {
        TrainWorkspace ws;
        return loss_and_gradient(params, batch, ws, grad);
    }

    /// Reference per-sample path, scratch from the workspace.  This is the
    /// oracle the batched kernel is pinned against.
    double loss_and_gradient(std::span<const float> params,
                             const DatasetView& batch, TrainWorkspace& ws,
                             std::span<float> grad) const override {
        if (batch.empty()) return 0.0;
        const Layout p(*this, params);
        const LayoutMut g(*this, grad);

        const auto h = TrainWorkspace::ensure(ws.hidden, hidden_);
        const auto pre = TrainWorkspace::ensure(ws.pre, hidden_);
        const auto logits = TrainWorkspace::ensure(ws.logits, classes_);
        const auto dlogits = TrainWorkspace::ensure(ws.dlogits, classes_);
        const auto dh = TrainWorkspace::ensure(ws.dh, hidden_);
        const float inv_n = 1.0F / static_cast<float>(batch.size());

        double loss_sum = 0.0;
        for (std::size_t s = 0; s < batch.size(); ++s) {
            const auto x = batch.features_of(s);
            // Forward.
            for (std::size_t j = 0; j < hidden_; ++j) {
                pre[j] = p.b1[j] + static_cast<float>(support::dot(
                                       p.w1.subspan(j * dim_, dim_), x));
                h[j] = pre[j] > 0.0F ? pre[j] : 0.0F;
            }
            for (std::size_t c = 0; c < classes_; ++c) {
                logits[c] = p.b2[c] +
                            static_cast<float>(support::dot(
                                p.w2.subspan(c * hidden_, hidden_), h));
            }
            loss_sum += softmax_xent_backward(logits, batch.label_of(s),
                                              dlogits);
            // Backward: head.
            for (std::size_t c = 0; c < classes_; ++c) {
                const float gl = dlogits[c] * inv_n;
                support::axpy(gl, h, g.w2.subspan(c * hidden_, hidden_));
                g.b2[c] += gl;
            }
            // dh = W2^T dlogits, masked by ReLU.
            for (std::size_t j = 0; j < hidden_; ++j) {
                float acc = 0.0F;
                for (std::size_t c = 0; c < classes_; ++c)
                    acc += dlogits[c] * p.w2[c * hidden_ + j];
                dh[j] = pre[j] > 0.0F ? acc : 0.0F;
            }
            // Input layer.
            for (std::size_t j = 0; j < hidden_; ++j) {
                const float gj = dh[j] * inv_n;
                if (gj != 0.0F)
                    support::axpy(gj, x, g.w1.subspan(j * dim_, dim_));
                g.b1[j] += gj;
            }
        }
        double loss = loss_sum / static_cast<double>(batch.size());
        loss += apply_l2(params, grad);
        return loss;
    }

    /// Batched path: both forward layers run as blocked gemv kernels and
    /// dh = W2ᵀ·dlogits as the transposed-accumulate kernel, over packed
    /// rows.  Accumulation order per parameter matches the reference loop,
    /// so results are bit-identical.
    double loss_and_gradient_batch(std::span<const float> params,
                                   const PackedBatch& data,
                                   std::span<const std::size_t> rows,
                                   TrainWorkspace& ws,
                                   std::span<float> grad) const override {
        if (rows.empty()) return 0.0;
        const Layout p(*this, params);
        const LayoutMut g(*this, grad);

        const auto h = TrainWorkspace::ensure(ws.hidden, hidden_);
        const auto pre = TrainWorkspace::ensure(ws.pre, hidden_);
        const auto logits = TrainWorkspace::ensure(ws.logits, classes_);
        const auto dlogits = TrainWorkspace::ensure(ws.dlogits, classes_);
        const auto dh = TrainWorkspace::ensure(ws.dh, hidden_);
        const float inv_n = 1.0F / static_cast<float>(rows.size());

        double loss_sum = 0.0;
        for (const std::size_t r : rows) {
            const auto x = data.row(r);
            // Forward: blocked W1·x and W2·h.
            support::gemv(p.w1, hidden_, dim_, x, p.b1, pre);
            for (std::size_t j = 0; j < hidden_; ++j)
                h[j] = pre[j] > 0.0F ? pre[j] : 0.0F;
            support::gemv(p.w2, classes_, hidden_, h, p.b2, logits);
            loss_sum += softmax_xent_backward(logits, data.label(r), dlogits);
            // Backward: head.
            for (std::size_t c = 0; c < classes_; ++c) {
                const float gl = dlogits[c] * inv_n;
                support::axpy(gl, h, g.w2.subspan(c * hidden_, hidden_));
                g.b2[c] += gl;
            }
            // dh = W2^T dlogits, masked by ReLU.
            support::fill(dh, 0.0F);
            support::gemv_transpose_accumulate(p.w2, classes_, hidden_,
                                               dlogits, dh);
            for (std::size_t j = 0; j < hidden_; ++j)
                if (pre[j] <= 0.0F) dh[j] = 0.0F;
            // Input layer.
            for (std::size_t j = 0; j < hidden_; ++j) {
                const float gj = dh[j] * inv_n;
                if (gj != 0.0F)
                    support::axpy(gj, x, g.w1.subspan(j * dim_, dim_));
                g.b1[j] += gj;
            }
        }
        // The L2 *gradient* is always applied; the loss-only dots are
        // skipped when the caller discards the value (ws.want_loss).
        support::axpy(static_cast<float>(l2_), p.w1, g.w1);
        support::axpy(static_cast<float>(l2_), p.w2, g.w2);
        double loss = loss_sum / static_cast<double>(rows.size());
        if (ws.want_loss) loss += l2_term(params);
        return loss;
    }

    [[nodiscard]] double loss(std::span<const float> params,
                              const DatasetView& batch) const override {
        if (batch.empty()) return 0.0;
        std::vector<float> logits(classes_);
        double loss_sum = 0.0;
        for (std::size_t s = 0; s < batch.size(); ++s) {
            forward_logits(params, batch.features_of(s), logits);
            softmax_inplace(logits);
            loss_sum += cross_entropy(logits, batch.label_of(s));
        }
        double loss = loss_sum / static_cast<double>(batch.size());
        loss += l2_term(params);
        return loss;
    }

    [[nodiscard]] std::int32_t predict(
        std::span<const float> params,
        std::span<const float> features) const override {
        std::vector<float> logits(classes_);
        forward_logits(params, features, logits);
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes_; ++c)
            if (logits[c] > logits[best]) best = c;
        return static_cast<std::int32_t>(best);
    }

private:
    struct Layout {
        Layout(const Mlp& m, std::span<const float> p)
            : w1(p.subspan(0, m.hidden_ * m.dim_)),
              b1(p.subspan(m.hidden_ * m.dim_, m.hidden_)),
              w2(p.subspan(m.hidden_ * m.dim_ + m.hidden_,
                           m.classes_ * m.hidden_)),
              b2(p.subspan(m.hidden_ * m.dim_ + m.hidden_ +
                               m.classes_ * m.hidden_,
                           m.classes_)) {}
        std::span<const float> w1, b1, w2, b2;
    };
    struct LayoutMut {
        LayoutMut(const Mlp& m, std::span<float> p)
            : w1(p.subspan(0, m.hidden_ * m.dim_)),
              b1(p.subspan(m.hidden_ * m.dim_, m.hidden_)),
              w2(p.subspan(m.hidden_ * m.dim_ + m.hidden_,
                           m.classes_ * m.hidden_)),
              b2(p.subspan(m.hidden_ * m.dim_ + m.hidden_ +
                               m.classes_ * m.hidden_,
                           m.classes_)) {}
        std::span<float> w1, b1, w2, b2;
    };

    void forward_logits(std::span<const float> params,
                        std::span<const float> x,
                        std::span<float> logits) const {
        const Layout p(*this, params);
        std::vector<float> h(hidden_);
        for (std::size_t j = 0; j < hidden_; ++j) {
            const float pre =
                p.b1[j] + static_cast<float>(
                              support::dot(p.w1.subspan(j * dim_, dim_), x));
            h[j] = pre > 0.0F ? pre : 0.0F;
        }
        for (std::size_t c = 0; c < classes_; ++c) {
            logits[c] = p.b2[c] + static_cast<float>(support::dot(
                                      p.w2.subspan(c * hidden_, hidden_), h));
        }
    }

    double apply_l2(std::span<const float> params, std::span<float> grad) const {
        // Regularize weight matrices only (not biases).
        const Layout p(*this, params);
        const LayoutMut g(*this, grad);
        support::axpy(static_cast<float>(l2_), p.w1, g.w1);
        support::axpy(static_cast<float>(l2_), p.w2, g.w2);
        return l2_term(params);
    }

    [[nodiscard]] double l2_term(std::span<const float> params) const {
        const Layout p(*this, params);
        return 0.5 * l2_ *
               (support::dot(p.w1, p.w1) + support::dot(p.w2, p.w2));
    }

    std::size_t dim_;
    std::size_t hidden_;
    std::size_t classes_;
    double l2_;
};

}  // namespace

std::unique_ptr<Model> make_mlp(std::size_t feature_dim, std::size_t hidden,
                                std::size_t num_classes, double l2) {
    return std::make_unique<Mlp>(feature_dim, hidden, num_classes, l2);
}

}  // namespace fairbfl::ml
