#pragma once
// Loader for the MNIST IDX file format (http://yann.lecun.com/exdb/mnist/).
//
// When the real MNIST files are present (e.g. train-images-idx3-ubyte +
// train-labels-idx1-ubyte), experiments can run on them instead of the
// synthetic substitute: `load_mnist_idx` returns the paired dataset with
// pixels scaled to [0, 1].

#include <optional>
#include <string>

#include "ml/dataset.hpp"

namespace fairbfl::ml {

/// Parses an IDX image file + label file pair.  Throws std::runtime_error
/// on malformed content; returns std::nullopt when either file is absent.
[[nodiscard]] std::optional<Dataset> load_mnist_idx(
    const std::string& images_path, const std::string& labels_path,
    std::size_t max_samples = 0 /* 0 = all */);

}  // namespace fairbfl::ml
