#include "ml/train_workspace.hpp"

#include <algorithm>
#include <cstring>

namespace fairbfl::ml {

void PackedBatch::pack(const DatasetView& view) {
    parent_ = &view.parent();
    dim_ = parent_->feature_dim();
    indices_ = view.indices();
    features_.resize(view.size() * dim_);
    labels_.resize(view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
        const auto src = view.features_of(i);
        std::memcpy(features_.data() + i * dim_, src.data(),
                    dim_ * sizeof(float));
        labels_[i] = view.label_of(i);
    }
}

bool PackedBatch::packed_from(const DatasetView& view) const noexcept {
    return parent_ == &view.parent() && indices_ == view.indices();
}

}  // namespace fairbfl::ml
