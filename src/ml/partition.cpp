#include "ml/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "support/rng.hpp"

namespace fairbfl::ml {

namespace {

std::vector<DatasetView> partition_iid(const DatasetView& view,
                                       const PartitionParams& params,
                                       support::Rng& rng) {
    std::vector<std::size_t> order = view.indices();
    rng.shuffle(std::span<std::size_t>(order));
    std::vector<DatasetView> shards;
    shards.reserve(params.num_clients);
    const std::size_t base = order.size() / params.num_clients;
    const std::size_t extra = order.size() % params.num_clients;
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < params.num_clients; ++c) {
        const std::size_t count = base + (c < extra ? 1 : 0);
        std::vector<std::size_t> shard(
            order.begin() + static_cast<std::ptrdiff_t>(cursor),
            order.begin() + static_cast<std::ptrdiff_t>(cursor + count));
        cursor += count;
        shards.emplace_back(view.parent(), std::move(shard));
    }
    return shards;
}

std::vector<DatasetView> partition_label_shards(const DatasetView& view,
                                                const PartitionParams& params,
                                                support::Rng& rng) {
    // Sort sample indices by label (stable on index for determinism).
    std::vector<std::size_t> order = view.indices();
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const auto la = view.parent().label_of(a);
        const auto lb = view.parent().label_of(b);
        return la != lb ? la < lb : a < b;
    });

    const std::size_t total_shards =
        params.num_clients * params.shards_per_client;
    if (total_shards == 0)
        throw std::invalid_argument("partition: zero shards requested");

    // Cut the sorted order into contiguous label shards.
    std::vector<std::pair<std::size_t, std::size_t>> shard_ranges;
    shard_ranges.reserve(total_shards);
    const std::size_t base = order.size() / total_shards;
    const std::size_t extra = order.size() % total_shards;
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < total_shards; ++s) {
        const std::size_t count = base + (s < extra ? 1 : 0);
        shard_ranges.emplace_back(cursor, cursor + count);
        cursor += count;
    }

    // Deal shards to clients at random.
    std::vector<std::size_t> shard_order(total_shards);
    std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
    rng.shuffle(std::span<std::size_t>(shard_order));

    std::vector<DatasetView> shards;
    shards.reserve(params.num_clients);
    for (std::size_t c = 0; c < params.num_clients; ++c) {
        std::vector<std::size_t> indices;
        for (std::size_t k = 0; k < params.shards_per_client; ++k) {
            const auto [lo, hi] =
                shard_ranges[shard_order[c * params.shards_per_client + k]];
            indices.insert(indices.end(),
                           order.begin() + static_cast<std::ptrdiff_t>(lo),
                           order.begin() + static_cast<std::ptrdiff_t>(hi));
        }
        shards.emplace_back(view.parent(), std::move(indices));
    }
    return shards;
}

std::vector<DatasetView> partition_dirichlet(const DatasetView& view,
                                             const PartitionParams& params,
                                             support::Rng& rng) {
    const std::size_t num_classes = view.parent().num_classes();
    // Bucket sample indices per class.
    std::vector<std::vector<std::size_t>> by_class(num_classes);
    for (std::size_t i = 0; i < view.size(); ++i) {
        by_class[static_cast<std::size_t>(view.label_of(i))].push_back(
            view.indices()[i]);
    }
    for (auto& bucket : by_class)
        rng.shuffle(std::span<std::size_t>(bucket));

    // Per class: draw client proportions ~ Dir(alpha) via normalized
    // Gamma(alpha, 1) samples (Marsaglia-Tsang squeeze for alpha < 1 uses
    // the boost identity Gamma(a) = Gamma(a+1) * U^(1/a)).
    const auto gamma_sample = [&rng](double alpha) {
        double boost = 1.0;
        double a = alpha;
        if (a < 1.0) {
            boost = std::pow(rng.uniform(), 1.0 / a);
            a += 1.0;
        }
        const double d = a - 1.0 / 3.0;
        const double c = 1.0 / std::sqrt(9.0 * d);
        for (;;) {
            double x = 0.0;
            double v = 0.0;
            do {
                x = rng.normal();
                v = 1.0 + c * x;
            } while (v <= 0.0);
            v = v * v * v;
            const double u = rng.uniform();
            if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
            if (u > 0.0 &&
                std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
                return boost * d * v;
        }
    };

    std::vector<std::vector<std::size_t>> client_indices(params.num_clients);
    for (std::size_t c = 0; c < num_classes; ++c) {
        std::vector<double> weights(params.num_clients);
        double sum = 0.0;
        for (auto& w : weights) {
            w = gamma_sample(params.dirichlet_alpha);
            sum += w;
        }
        // Convert proportions to counts (largest-remainder rounding).
        const std::size_t n = by_class[c].size();
        std::vector<std::size_t> counts(params.num_clients, 0);
        std::size_t assigned = 0;
        for (std::size_t k = 0; k < params.num_clients; ++k) {
            counts[k] = static_cast<std::size_t>(
                static_cast<double>(n) * weights[k] / sum);
            assigned += counts[k];
        }
        std::size_t k = 0;
        while (assigned < n) {  // distribute the remainder round-robin
            counts[k % params.num_clients] += 1;
            ++assigned;
            ++k;
        }
        std::size_t cursor = 0;
        for (std::size_t client = 0; client < params.num_clients; ++client) {
            for (std::size_t j = 0; j < counts[client]; ++j)
                client_indices[client].push_back(by_class[c][cursor++]);
        }
    }

    std::vector<DatasetView> shards;
    shards.reserve(params.num_clients);
    for (auto& indices : client_indices)
        shards.emplace_back(view.parent(), std::move(indices));
    return shards;
}

}  // namespace

std::vector<DatasetView> partition(const DatasetView& view,
                                   const PartitionParams& params) {
    if (params.num_clients == 0)
        throw std::invalid_argument("partition: zero clients");
    auto rng = support::Rng::fork(params.seed, /*stream=*/0x9A47);
    switch (params.scheme) {
        case PartitionScheme::kIid:
            return partition_iid(view, params, rng);
        case PartitionScheme::kLabelShards:
            return partition_label_shards(view, params, rng);
        case PartitionScheme::kDirichlet:
            return partition_dirichlet(view, params, rng);
    }
    throw std::invalid_argument("partition: unknown scheme");
}

double label_skew(const std::vector<DatasetView>& shards,
                  std::size_t num_classes) {
    if (shards.empty()) return 0.0;
    // Global histogram.
    std::vector<double> global_hist(num_classes, 0.0);
    double total = 0.0;
    for (const auto& shard : shards) {
        for (std::size_t i = 0; i < shard.size(); ++i) {
            global_hist[static_cast<std::size_t>(shard.label_of(i))] += 1.0;
            total += 1.0;
        }
    }
    if (total == 0.0) return 0.0;
    for (auto& h : global_hist) h /= total;

    double skew_sum = 0.0;
    std::size_t counted = 0;
    for (const auto& shard : shards) {
        if (shard.empty()) continue;
        std::vector<double> hist(num_classes, 0.0);
        for (std::size_t i = 0; i < shard.size(); ++i)
            hist[static_cast<std::size_t>(shard.label_of(i))] += 1.0;
        double tv = 0.0;
        for (std::size_t c = 0; c < num_classes; ++c) {
            tv += std::abs(hist[c] / static_cast<double>(shard.size()) -
                           global_hist[c]);
        }
        // Bit-identical to the former `skew_sum += 0.5 * tv`: scaling by
        // a power of two is exact, so halving once outside the sum
        // commutes with every rounding step -- and the accumulation stops
        // being an FMA-eligible expression (fp-determinism).
        skew_sum += tv;
        ++counted;
    }
    return counted == 0 ? 0.0
                        : 0.5 * skew_sum / static_cast<double>(counted);
}

}  // namespace fairbfl::ml
