#pragma once
// Softmax cross-entropy: the loss l(w; b) of Algorithm 1 / Eq. 3.

#include <cstdint>
#include <span>

namespace fairbfl::ml {

/// In-place numerically-stable softmax over `logits`.
void softmax_inplace(std::span<float> logits) noexcept;

/// Cross-entropy -log(p[label]) given *probabilities* (post-softmax).
[[nodiscard]] double cross_entropy(std::span<const float> probs,
                                   std::int32_t label) noexcept;

/// Fused softmax + cross-entropy + gradient-of-logits:
/// writes (softmax(logits) - onehot(label)) into `dlogits` and returns the
/// loss.  `logits` and `dlogits` may alias.
[[nodiscard]] double softmax_xent_backward(std::span<const float> logits,
                                           std::int32_t label,
                                           std::span<float> dlogits) noexcept;

}  // namespace fairbfl::ml
