#include "ml/dataset.hpp"

#include <cassert>
#include <stdexcept>

#include "support/rng.hpp"

namespace fairbfl::ml {

void Dataset::add(std::span<const float> features, std::int32_t label) {
    if (features.size() != feature_dim_)
        throw std::invalid_argument("Dataset::add: feature width mismatch");
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes_)
        throw std::invalid_argument("Dataset::add: label out of range");
    features_.insert(features_.end(), features.begin(), features.end());
    labels_.push_back(label);
}

void Dataset::reserve(std::size_t samples) {
    features_.reserve(samples * feature_dim_);
    labels_.reserve(samples);
}

void Dataset::set_label(std::size_t i, std::int32_t label) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes_)
        throw std::invalid_argument("Dataset::set_label: label out of range");
    labels_.at(i) = label;
}

std::span<const float> Dataset::features_of(std::size_t i) const {
    assert(i < size());
    return std::span<const float>(features_.data() + i * feature_dim_,
                                  feature_dim_);
}

DatasetView DatasetView::all(const Dataset& parent) {
    std::vector<std::size_t> indices(parent.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    return DatasetView(parent, std::move(indices));
}

std::vector<DatasetView> DatasetView::batches(std::size_t batch_size) const {
    if (batch_size == 0) batch_size = 1;
    std::vector<DatasetView> out;
    out.reserve((size() + batch_size - 1) / batch_size);
    for (std::size_t start = 0; start < size(); start += batch_size) {
        const std::size_t stop = std::min(start + batch_size, size());
        std::vector<std::size_t> batch(
            indices_.begin() + static_cast<std::ptrdiff_t>(start),
            indices_.begin() + static_cast<std::ptrdiff_t>(stop));
        out.emplace_back(*parent_, std::move(batch));
    }
    return out;
}

DatasetView DatasetView::take(std::size_t count) const {
    count = std::min(count, size());
    return DatasetView(
        *parent_, std::vector<std::size_t>(
                      indices_.begin(),
                      indices_.begin() + static_cast<std::ptrdiff_t>(count)));
}

TrainTestSplit train_test_split(const Dataset& dataset, double test_fraction,
                                std::uint64_t seed) {
    std::vector<std::size_t> indices(dataset.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    auto rng = support::Rng::fork(seed, /*stream=*/0x5EED);
    rng.shuffle(std::span<std::size_t>(indices));
    const auto test_count = static_cast<std::size_t>(
        test_fraction * static_cast<double>(dataset.size()));
    std::vector<std::size_t> test(indices.begin(),
                                  indices.begin() +
                                      static_cast<std::ptrdiff_t>(test_count));
    std::vector<std::size_t> train(
        indices.begin() + static_cast<std::ptrdiff_t>(test_count),
        indices.end());
    return TrainTestSplit{DatasetView(dataset, std::move(train)),
                          DatasetView(dataset, std::move(test))};
}

}  // namespace fairbfl::ml
