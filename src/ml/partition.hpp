#pragma once
// Federated data partitioners: how the global dataset D becomes the client
// shards D_i (Algorithm 1 line 5: "allocate D_i ~ D to C_i").
//
// Three schemes:
//  * IID          -- shuffle, equal slices.
//  * LabelShards  -- McMahan-style pathological non-IID: sort by label, cut
//                    into shards, give each client `shards_per_client`
//                    (default 2).  This is the paper's default ("we assign
//                    data to clients following the non-IID dynamics").
//  * Dirichlet    -- per-client class mixture ~ Dir(alpha); the standard
//                    tunable-skew benchmark (extension beyond the paper).

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"

namespace fairbfl::ml {

enum class PartitionScheme : std::uint8_t {
    kIid = 0,
    kLabelShards = 1,
    kDirichlet = 2,
};

struct PartitionParams {
    PartitionScheme scheme = PartitionScheme::kLabelShards;
    std::size_t num_clients = 100;
    std::size_t shards_per_client = 2;  ///< LabelShards only
    double dirichlet_alpha = 0.5;       ///< Dirichlet only
    std::uint64_t seed = 42;
};

/// Splits `view` into one DatasetView per client.  Every sample of `view`
/// is assigned to exactly one client; client shard sizes are as equal as
/// the scheme permits.
[[nodiscard]] std::vector<DatasetView> partition(const DatasetView& view,
                                                 const PartitionParams& params);

/// Label-distribution skew diagnostic: mean over clients of the total
/// variation distance between the client's label histogram and the global
/// histogram (0 = perfectly IID, -> 1 = disjoint labels).
[[nodiscard]] double label_skew(const std::vector<DatasetView>& shards,
                                std::size_t num_classes);

}  // namespace fairbfl::ml
