// Multinomial logistic regression (softmax regression).
//
// Parameter layout: [ W row-major (classes x dim) | b (classes) ].

#include <cmath>
#include <vector>

#include "ml/loss.hpp"
#include "ml/model.hpp"
#include "support/vecmath.hpp"

namespace fairbfl::ml {

namespace {

class LogisticRegression final : public Model {
public:
    LogisticRegression(std::size_t feature_dim, std::size_t num_classes,
                       double l2)
        : dim_(feature_dim), classes_(num_classes), l2_(l2) {}

    [[nodiscard]] std::string name() const override {
        return "logistic_regression";
    }

    [[nodiscard]] std::size_t param_count() const override {
        return classes_ * dim_ + classes_;
    }

    void init_params(std::span<float> params,
                     support::Rng& rng) const override {
        // Small Gaussian init; zero biases.
        const double scale = 0.01;
        for (std::size_t i = 0; i < classes_ * dim_; ++i)
            params[i] = static_cast<float>(scale * rng.normal());
        for (std::size_t c = 0; c < classes_; ++c)
            params[classes_ * dim_ + c] = 0.0F;
    }

    double loss_and_gradient(std::span<const float> params,
                             const DatasetView& batch,
                             std::span<float> grad) const override {
        TrainWorkspace ws;
        return loss_and_gradient(params, batch, ws, grad);
    }

    /// Reference per-sample path, scratch from the workspace.  This is the
    /// oracle the batched kernel is pinned against.
    double loss_and_gradient(std::span<const float> params,
                             const DatasetView& batch, TrainWorkspace& ws,
                             std::span<float> grad) const override {
        if (batch.empty()) return 0.0;
        const auto logits = TrainWorkspace::ensure(ws.logits, classes_);
        const auto dlogits = TrainWorkspace::ensure(ws.dlogits, classes_);
        const float inv_n = 1.0F / static_cast<float>(batch.size());
        double loss_sum = 0.0;
        for (std::size_t s = 0; s < batch.size(); ++s) {
            const auto x = batch.features_of(s);
            forward(params, x, logits);
            loss_sum += softmax_xent_backward(logits, batch.label_of(s),
                                              dlogits);
            // dW[c] += dlogit[c] * x ; db[c] += dlogit[c]
            for (std::size_t c = 0; c < classes_; ++c) {
                const float g = dlogits[c] * inv_n;
                support::axpy(g, x, grad.subspan(c * dim_, dim_));
                grad[classes_ * dim_ + c] += g;
            }
        }
        double loss = loss_sum / static_cast<double>(batch.size());
        loss += apply_l2(params, grad);
        return loss;
    }

    /// Batched path: blocked X·Wᵀ forward (support::gemv) and dlogitsᵀ·X
    /// outer-accumulate backward over packed rows.  Per-sample accumulation
    /// order matches the reference loop, so results are bit-identical.
    double loss_and_gradient_batch(std::span<const float> params,
                                   const PackedBatch& data,
                                   std::span<const std::size_t> rows,
                                   TrainWorkspace& ws,
                                   std::span<float> grad) const override {
        if (rows.empty()) return 0.0;
        const auto logits = TrainWorkspace::ensure(ws.logits, classes_);
        const auto dlogits = TrainWorkspace::ensure(ws.dlogits, classes_);
        const auto w = params.first(classes_ * dim_);
        const auto bias = params.subspan(classes_ * dim_, classes_);
        const auto grad_w = grad.first(classes_ * dim_);
        const float inv_n = 1.0F / static_cast<float>(rows.size());
        double loss_sum = 0.0;
        for (const std::size_t r : rows) {
            const auto x = data.row(r);
            support::gemv(w, classes_, dim_, x, bias, logits);
            loss_sum += softmax_xent_backward(logits, data.label(r), dlogits);
            for (std::size_t c = 0; c < classes_; ++c) dlogits[c] *= inv_n;
            support::outer_accumulate(dlogits, x, classes_, dim_, grad_w);
            for (std::size_t c = 0; c < classes_; ++c)
                grad[classes_ * dim_ + c] += dlogits[c];
        }
        // The L2 *gradient* is always applied; its full-width loss dot is
        // skipped when the caller discards the value (ws.want_loss).
        support::axpy(static_cast<float>(l2_), w, grad_w);
        double loss = loss_sum / static_cast<double>(rows.size());
        if (ws.want_loss) loss += 0.5 * l2_ * support::dot(w, w);
        return loss;
    }

    [[nodiscard]] double loss(std::span<const float> params,
                              const DatasetView& batch) const override {
        if (batch.empty()) return 0.0;
        std::vector<float> logits(classes_);
        double loss_sum = 0.0;
        for (std::size_t s = 0; s < batch.size(); ++s) {
            forward(params, batch.features_of(s), logits);
            softmax_inplace(logits);
            loss_sum += cross_entropy(logits, batch.label_of(s));
        }
        double loss = loss_sum / static_cast<double>(batch.size());
        // L2 term (weights only).
        const auto w = params.first(classes_ * dim_);
        loss += 0.5 * l2_ * support::dot(w, w);
        return loss;
    }

    [[nodiscard]] std::int32_t predict(
        std::span<const float> params,
        std::span<const float> features) const override {
        std::vector<float> logits(classes_);
        forward(params, features, logits);
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes_; ++c)
            if (logits[c] > logits[best]) best = c;
        return static_cast<std::int32_t>(best);
    }

private:
    void forward(std::span<const float> params, std::span<const float> x,
                 std::span<float> logits) const {
        for (std::size_t c = 0; c < classes_; ++c) {
            logits[c] =
                params[classes_ * dim_ + c] +
                static_cast<float>(support::dot(params.subspan(c * dim_, dim_), x));
        }
    }

    /// Adds the L2 gradient (weights only) and returns the L2 loss term.
    double apply_l2(std::span<const float> params, std::span<float> grad) const {
        const auto w = params.first(classes_ * dim_);
        auto gw = grad.first(classes_ * dim_);
        support::axpy(static_cast<float>(l2_), w, gw);
        return 0.5 * l2_ * support::dot(w, w);
    }

    std::size_t dim_;
    std::size_t classes_;
    double l2_;
};

}  // namespace

std::unique_ptr<Model> make_logistic_regression(std::size_t feature_dim,
                                                std::size_t num_classes,
                                                double l2) {
    return std::make_unique<LogisticRegression>(feature_dim, num_classes, l2);
}

}  // namespace fairbfl::ml
