#include "ml/metrics.hpp"

namespace fairbfl::ml {

double ConfusionMatrix::accuracy() const {
    std::size_t correct = 0;
    std::size_t total = 0;
    for (std::size_t a = 0; a < num_classes; ++a) {
        for (std::size_t p = 0; p < num_classes; ++p) {
            total += at(a, p);
            if (a == p) correct += at(a, p);
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(total);
}

double ConfusionMatrix::recall(std::size_t cls) const {
    std::size_t support = 0;
    for (std::size_t p = 0; p < num_classes; ++p) support += at(cls, p);
    return support == 0 ? 0.0
                        : static_cast<double>(at(cls, cls)) /
                              static_cast<double>(support);
}

double ConfusionMatrix::macro_recall() const {
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t c = 0; c < num_classes; ++c) {
        std::size_t support = 0;
        for (std::size_t p = 0; p < num_classes; ++p) support += at(c, p);
        if (support == 0) continue;
        sum += recall(c);
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

ConfusionMatrix confusion_matrix(const Model& model,
                                 std::span<const float> params,
                                 const DatasetView& view) {
    ConfusionMatrix cm;
    cm.num_classes = view.parent().num_classes();
    cm.counts.assign(cm.num_classes * cm.num_classes, 0);
    for (std::size_t i = 0; i < view.size(); ++i) {
        const auto actual = static_cast<std::size_t>(view.label_of(i));
        const auto predicted = static_cast<std::size_t>(
            model.predict(params, view.features_of(i)));
        ++cm.counts[actual * cm.num_classes + predicted];
    }
    return cm;
}

}  // namespace fairbfl::ml
