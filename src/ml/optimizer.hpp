#pragma once
// Local solvers: plain SGD (Eq. 3) and FedProx's proximal SGD.
//
// Also provides the decreasing step-size schedule eta_r = 2 / (mu (gamma+r))
// used by Theorem 3.1's convergence proof, so tests can validate the bound
// under the exact schedule it assumes.

#include <cstdint>
#include <span>

#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "support/rng.hpp"

namespace fairbfl::ml {

struct SgdParams {
    double learning_rate = 0.01;  ///< eta
    std::size_t epochs = 5;       ///< E
    std::size_t batch_size = 10;  ///< B
    bool shuffle_each_epoch = true;
    /// FedProx proximal coefficient mu_prox (0 disables the proximal term).
    double prox_mu = 0.0;
};

struct SgdResult {
    double final_loss = 0.0;       ///< mean loss of the last epoch
    std::size_t steps_taken = 0;   ///< number of mini-batch updates
};

/// Runs E epochs of mini-batch SGD on `params` over `shard`
/// (Algorithm 1 lines 8-11).  When sgd.prox_mu > 0 the update includes the
/// FedProx proximal pull toward `anchor` (the round's global weights):
///     w <- w - eta (grad + mu_prox (w - anchor)).
/// `anchor` must alias nothing and equal param_count in size (ignored when
/// prox_mu == 0; may be empty in that case).
SgdResult sgd_train(const Model& model, std::span<float> params,
                    const DatasetView& shard, const SgdParams& sgd,
                    support::Rng& rng,
                    std::span<const float> anchor = {});

/// Workspace-reusing reference path: identical math and rng consumption,
/// but `order` / `grad` / model scratch come from `ws` instead of per-call
/// allocations.  (The parameterless overload above wraps this with a
/// transient workspace.)
SgdResult sgd_train(const Model& model, std::span<float> params,
                    const DatasetView& shard, const SgdParams& sgd,
                    support::Rng& rng, TrainWorkspace& ws,
                    std::span<const float> anchor = {});

/// Batched engine: the same SGD over a shard gathered once into a
/// PackedBatch, driving Model::loss_and_gradient_batch.  Epoch shuffles
/// permute packed *positions* with the same Fisher-Yates draws the
/// reference path applies to parent indices, and mini-batches are the same
/// consecutive slices, so the visited sample sequence -- and therefore
/// every weight update -- is bit-identical to the reference overloads.
SgdResult sgd_train(const Model& model, std::span<float> params,
                    const PackedBatch& shard, const SgdParams& sgd,
                    support::Rng& rng, TrainWorkspace& ws,
                    std::span<const float> anchor = {});

/// Theorem 3.1 schedule: eta_r = 2 / (mu (gamma + r)), gamma = max(8 L/mu, E).
struct DecreasingStepSchedule {
    double mu = 1.0;     ///< strong-convexity constant
    double L = 4.0;      ///< smoothness constant
    std::size_t E = 5;   ///< local epochs

    [[nodiscard]] double gamma() const noexcept;
    [[nodiscard]] double rate_at(std::size_t round) const noexcept;
};

}  // namespace fairbfl::ml
