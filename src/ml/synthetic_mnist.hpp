#pragma once
// Synthetic MNIST-like dataset (the documented substitution for the real
// MNIST files, which are not available offline -- see DESIGN.md §2).
//
// Each of the 10 classes gets a random prototype vector ("mean image");
// samples are prototype + Gaussian pixel noise, clipped to [0, 1], with a
// per-class anisotropy so classes are not perfectly spherical.  Every
// learning-dynamics property the paper's experiments rely on -- non-IID
// label skew, gradient cluster geometry, convergence shape -- depends only
// on this class structure, not on actual digit strokes.

#include <cstdint>

#include "ml/dataset.hpp"

namespace fairbfl::ml {

struct SyntheticMnistParams {
    std::size_t samples = 6000;      ///< total samples
    std::size_t feature_dim = 64;    ///< "pixels" per image (8x8 default)
    std::size_t num_classes = 10;
    double class_separation = 1.0;   ///< prototype scale (higher = easier)
    double noise_sigma = 0.35;       ///< pixel noise around the prototype
    /// Multiplies every pixel after clamping.  Scaling features by c scales
    /// the logistic smoothness constant by ~c^2 without changing class
    /// separability -- the knob that places a given learning-rate sweep
    /// relative to the SGD stability threshold.
    double feature_scale = 1.0;
    std::uint64_t seed = 42;
};

/// Generates the dataset; deterministic in `params.seed`.
[[nodiscard]] Dataset make_synthetic_mnist(const SyntheticMnistParams& params);

}  // namespace fairbfl::ml
