#include "ml/idx_loader.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace fairbfl::ml {

namespace {

std::uint32_t read_be32(std::istream& in) {
    std::uint8_t bytes[4];
    in.read(reinterpret_cast<char*>(bytes), 4);
    if (!in) throw std::runtime_error("IDX: truncated header");
    return (static_cast<std::uint32_t>(bytes[0]) << 24) |
           (static_cast<std::uint32_t>(bytes[1]) << 16) |
           (static_cast<std::uint32_t>(bytes[2]) << 8) |
           static_cast<std::uint32_t>(bytes[3]);
}

}  // namespace

std::optional<Dataset> load_mnist_idx(const std::string& images_path,
                                      const std::string& labels_path,
                                      std::size_t max_samples) {
    std::ifstream images(images_path, std::ios::binary);
    std::ifstream labels(labels_path, std::ios::binary);
    if (!images.is_open() || !labels.is_open()) return std::nullopt;

    // Image header: magic 0x00000803, count, rows, cols.
    if (read_be32(images) != 0x00000803)
        throw std::runtime_error("IDX: bad image magic");
    const std::uint32_t image_count = read_be32(images);
    const std::uint32_t rows = read_be32(images);
    const std::uint32_t cols = read_be32(images);

    // Label header: magic 0x00000801, count.
    if (read_be32(labels) != 0x00000801)
        throw std::runtime_error("IDX: bad label magic");
    const std::uint32_t label_count = read_be32(labels);
    if (image_count != label_count)
        throw std::runtime_error("IDX: image/label count mismatch");

    std::size_t count = image_count;
    if (max_samples != 0) count = std::min<std::size_t>(count, max_samples);

    const std::size_t dim = static_cast<std::size_t>(rows) * cols;
    Dataset dataset(dim, 10);
    dataset.reserve(count);

    std::vector<std::uint8_t> pixel_row(dim);
    std::vector<float> sample(dim);
    for (std::size_t i = 0; i < count; ++i) {
        images.read(reinterpret_cast<char*>(pixel_row.data()),
                    static_cast<std::streamsize>(dim));
        char label_byte = 0;
        labels.read(&label_byte, 1);
        if (!images || !labels)
            throw std::runtime_error("IDX: truncated sample data");
        for (std::size_t d = 0; d < dim; ++d)
            sample[d] = static_cast<float>(pixel_row[d]) / 255.0F;
        const auto label = static_cast<std::int32_t>(
            static_cast<std::uint8_t>(label_byte));
        if (label > 9) throw std::runtime_error("IDX: label out of range");
        dataset.add(sample, label);
    }
    return dataset;
}

}  // namespace fairbfl::ml
