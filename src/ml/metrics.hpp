#pragma once
// Evaluation metrics beyond plain accuracy: per-class recall and the
// confusion matrix, used by examples and tests to sanity-check training.

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace fairbfl::ml {

/// Row-major confusion matrix: entry [actual][predicted].
struct ConfusionMatrix {
    std::size_t num_classes = 0;
    std::vector<std::size_t> counts;  // num_classes^2

    [[nodiscard]] std::size_t at(std::size_t actual,
                                 std::size_t predicted) const {
        return counts[actual * num_classes + predicted];
    }
    [[nodiscard]] double accuracy() const;
    /// Recall of one class (0 when the class has no samples).
    [[nodiscard]] double recall(std::size_t cls) const;
    /// Macro-averaged recall over classes with support.
    [[nodiscard]] double macro_recall() const;
};

[[nodiscard]] ConfusionMatrix confusion_matrix(const Model& model,
                                               std::span<const float> params,
                                               const DatasetView& view);

}  // namespace fairbfl::ml
