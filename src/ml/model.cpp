#include "ml/model.hpp"

#include <vector>

namespace fairbfl::ml {

double Model::loss_and_gradient(std::span<const float> params,
                                const DatasetView& batch, TrainWorkspace&,
                                std::span<float> grad) const {
    return loss_and_gradient(params, batch, grad);
}

double Model::loss_and_gradient_batch(std::span<const float> params,
                                      const PackedBatch& data,
                                      std::span<const std::size_t> rows,
                                      TrainWorkspace& ws,
                                      std::span<float> grad) const {
    // Reference fallback: reconstruct the mini-batch as a DatasetView over
    // the pack's parent.  Allocates per call -- models that care override.
    std::vector<std::size_t> parent_indices;
    parent_indices.reserve(rows.size());
    for (const std::size_t r : rows)
        parent_indices.push_back(data.indices()[r]);
    const DatasetView batch(*data.parent(), std::move(parent_indices));
    return loss_and_gradient(params, batch, ws, grad);
}

double Model::accuracy(std::span<const float> params,
                       const DatasetView& view) const {
    if (view.empty()) return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
        if (predict(params, view.features_of(i)) == view.label_of(i))
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(view.size());
}

}  // namespace fairbfl::ml
