#include "ml/model.hpp"

namespace fairbfl::ml {

double Model::accuracy(std::span<const float> params,
                       const DatasetView& view) const {
    if (view.empty()) return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
        if (predict(params, view.features_of(i)) == view.label_of(i))
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(view.size());
}

}  // namespace fairbfl::ml
