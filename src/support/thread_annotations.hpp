#pragma once
// Clang thread-safety-analysis capability macros (abseil style).
//
// These annotations turn the repo's locking conventions into compile-time
// checked invariants: `GUARDED_BY(mu)` on a field makes every unlocked
// access a -Wthread-safety error under clang, `REQUIRES(mu)` puts a lock
// precondition into a function's signature, and `EXCLUDES(mu)` documents
// (and checks) that a function takes `mu` itself and must not be entered
// with it held.  Under any compiler without the attributes -- gcc, msvc,
// pre-attribute clang -- every macro expands to nothing, so the annotated
// tree builds everywhere and is *verified* wherever clang is available
// (the CI static-analysis job builds with -Wthread-safety
// -Werror=thread-safety).
//
// Use the annotated wrappers in support/sync.hpp (support::Mutex,
// support::MutexLock, support::CondVar) rather than the std primitives:
// the std types carry no capability attributes, so the analysis cannot see
// them (and the raw-sync project lint rejects them outside src/support/).

#if defined(__clang__) && (!defined(SWIG))
#define FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lock).  The string names the
/// capability kind in diagnostics ("mutex").
#define CAPABILITY(x) FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define SCOPED_CAPABILITY FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a field or variable is protected by the given capability:
/// reads require the capability held shared or exclusive, writes require
/// it exclusive.
#define GUARDED_BY(x) FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Like GUARDED_BY, for the data *pointed to* by a pointer field.
#define PT_GUARDED_BY(x) FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering edges: this capability must be acquired before/after the
/// listed ones.  Violations are -Wthread-safety-analysis errors.
#define ACQUIRED_BEFORE(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function precondition: the listed capabilities must be held (and are
/// still held on return).
#define REQUIRES(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE( \
        requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE( \
        acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller holds.
#define RELEASE(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE( \
        release_shared_capability(__VA_ARGS__))

/// The function acquires the capability only when it returns the given
/// boolean value.
#define TRY_ACQUIRE(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be entered with the listed capabilities held; it
/// acquires them itself (deadlock-by-reentry guard).
#define EXCLUDES(...) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define ASSERT_CAPABILITY(x) \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: the definition is exempt from analysis.  Every use needs
/// a comment justifying why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
    FAIRBFL_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
