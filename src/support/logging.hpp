#pragma once
// Leveled stderr logger.  The simulator is mostly silent by default; raise
// the level (FAIRBFL_LOG=debug environment variable or set_level) to trace
// round-by-round behaviour.

#include <cstdio>
#include <string_view>

namespace fairbfl::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log level (defaults to kWarn; FAIRBFL_LOG overrides).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

#define FAIRBFL_LOG_DEBUG(...) \
    ::fairbfl::support::detail::vlog(::fairbfl::support::LogLevel::kDebug, __VA_ARGS__)
#define FAIRBFL_LOG_INFO(...) \
    ::fairbfl::support::detail::vlog(::fairbfl::support::LogLevel::kInfo, __VA_ARGS__)
#define FAIRBFL_LOG_WARN(...) \
    ::fairbfl::support::detail::vlog(::fairbfl::support::LogLevel::kWarn, __VA_ARGS__)
#define FAIRBFL_LOG_ERROR(...) \
    ::fairbfl::support::detail::vlog(::fairbfl::support::LogLevel::kError, __VA_ARGS__)

}  // namespace fairbfl::support
