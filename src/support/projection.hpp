#pragma once
// Random-projection kernels: the dimensionality-reduction step behind the
// approximate gradient-neighborhood indexes (cluster::RandomProjectionIndex).
//
// A seeded Gaussian matrix P (out_dim x in_dim, entries N(0, 1/out_dim))
// maps d-dim gradients to k-dim sketches in O(n d k); by the
// Johnson-Lindenstrauss lemma, Euclidean distances (and, for mean-free
// gradient deltas, cosine geometry) are preserved up to
// O(sqrt(log n / k)) relative distortion -- enough for the comparison-only
// consumers (eps thresholds, nearest-neighbour argmins) that clustering
// runs on.  Never feed projected values into reward or training
// arithmetic.

#include <cstdint>
#include <span>
#include <vector>

#include "support/parallel.hpp"

namespace fairbfl::support {

/// A dense row-major out_dim x in_dim projection matrix.
struct ProjectionMatrix {
    std::size_t in_dim = 0;
    std::size_t out_dim = 0;
    std::vector<float> rows;  ///< out_dim x in_dim, row-major

    [[nodiscard]] bool empty() const noexcept { return rows.empty(); }
};

/// Seeded Gaussian projection: entries ~ N(0, 1) scaled by 1/sqrt(out_dim),
/// so projected squared Euclidean norms are unbiased estimates of the
/// originals.  Deterministic in (in_dim, out_dim, seed) -- the entries are
/// drawn from one serial stream, independent of any thread count.
[[nodiscard]] ProjectionMatrix gaussian_projection(std::size_t in_dim,
                                                   std::size_t out_dim,
                                                   std::uint64_t seed);

/// out[i] = P * points[i] for every row, fanned out over `pool` (points are
/// independent).  Each output coordinate is a strict left-to-right `dot`
/// chain (support::gemv), so results are identical under any thread count.
/// Rows shorter than P.in_dim are rejected with std::invalid_argument.
[[nodiscard]] std::vector<std::vector<float>> project_rows(
    const ProjectionMatrix& projection,
    std::span<const std::vector<float>> points,
    ThreadPool& pool = ThreadPool::global());

}  // namespace fairbfl::support
