#pragma once
// Flat-vector math kernels shared by the ML, clustering and FL layers.
//
// Gradients travel through the system as contiguous float vectors
// (std::vector<float> / std::span<const float>); these kernels are the only
// place that touches the raw loops, so they are written to auto-vectorize.

#include <cstddef>
#include <span>
#include <vector>

namespace fairbfl::support {

/// y += alpha * x.  Sizes must match.
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// x *= alpha.
void scale(std::span<float> x, float alpha) noexcept;

/// Sets every element of x to value.
void fill(std::span<float> x, float value) noexcept;

/// Dot product (accumulated in double for stability).
[[nodiscard]] double dot(std::span<const float> x,
                         std::span<const float> y) noexcept;

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const float> x) noexcept;

/// Squared Euclidean distance between x and y.
[[nodiscard]] double squared_distance(std::span<const float> x,
                                      std::span<const float> y) noexcept;

/// Cosine *distance* 1 - cos(x, y) in [0, 2].  This is the theta of the
/// paper's Algorithm 2 ("the larger the theta, the farther the distance").
/// Zero vectors are treated as maximally distant (distance 1).
[[nodiscard]] double cosine_distance(std::span<const float> x,
                                     std::span<const float> y) noexcept;

/// out = sum_i weights[i] * rows[i].  All rows must share out's size;
/// weights.size() must equal rows.size().
void weighted_sum(std::span<const std::vector<float>> rows,
                  std::span<const double> weights, std::span<float> out);

/// out = (1/n) * sum_i rows[i].
void mean_of(std::span<const std::vector<float>> rows, std::span<float> out);

}  // namespace fairbfl::support
