#pragma once
// Flat-vector math kernels shared by the ML, clustering and FL layers.
//
// Gradients travel through the system as contiguous float vectors
// (std::vector<float> / std::span<const float>); these kernels are the only
// place that touches the raw loops, so they are written to auto-vectorize.
//
// Two accumulation disciplines coexist here, and the distinction is
// load-bearing for reproducibility:
//
//  * `dot` / `norm2` / `squared_distance` / `cosine_distance` accumulate
//    strictly left-to-right.  Their exact bit patterns feed model training
//    and reward arithmetic, so fixed-seed series depend on them -- never
//    reassociate these.
//  * `dot_blocked` / `squared_distance_blocked` split the chain across
//    independent partial accumulators (removing the add-latency bottleneck,
//    ~2-4x faster) and therefore round differently in the last ulps.  They
//    are reserved for consumers that only *compare* the results -- e.g. the
//    clustering distance matrix, where labels come from `d <= eps`
//    thresholds -- and must not leak into training or rewards.

#include <cstddef>
#include <span>
#include <vector>

#include "support/parallel.hpp"

namespace fairbfl::support {

/// y += alpha * x.  Sizes must match.  Elementwise, so unrolling is exact.
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// x *= alpha.
void scale(std::span<float> x, float alpha) noexcept;

/// Sets every element of x to value.
void fill(std::span<float> x, float value) noexcept;

/// Dot product (accumulated in double, strictly left-to-right).
[[nodiscard]] double dot(std::span<const float> x,
                         std::span<const float> y) noexcept;

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const float> x) noexcept;

/// Squared Euclidean distance between x and y (strictly left-to-right).
[[nodiscard]] double squared_distance(std::span<const float> x,
                                      std::span<const float> y) noexcept;

/// Blocked dot product: four independent partial sums, combined at the
/// end.  Faster than `dot` but reassociated -- comparison-only consumers.
[[nodiscard]] double dot_blocked(std::span<const float> x,
                                 std::span<const float> y) noexcept;

/// Blocked squared Euclidean distance (same contract as dot_blocked).
[[nodiscard]] double squared_distance_blocked(
    std::span<const float> x, std::span<const float> y) noexcept;

/// Dense row-major matrix-vector product: out[r] = bias[r] + dot(row r of
/// a, x) for r in [0, rows), where `a` is rows x cols.  This is the
/// forward X·Wᵀ building block of the batched training kernels.  Each
/// row's accumulation is a strict left-to-right double chain -- exactly
/// `dot` -- and rows are independent, so processing four rows at once only
/// adds instruction-level parallelism: the result is bit-identical to
/// calling `dot` per row (training-safe, unlike dot_blocked).  When `bias`
/// is empty the cast double sum is written without the float add, matching
/// a biasless caller bit-for-bit (including the sign of zero).
void gemv(std::span<const float> a, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> bias,
          std::span<float> out) noexcept;

/// Transposed accumulate: out[j] += sum_r d[r] * a[r * cols + j] (Aᵀd),
/// the r-sum applied in order per element.  Used for the MLP's
/// dh = W2ᵀ·dlogits.  Float accumulation, elementwise over j, so the adds
/// land on each out[j] in exactly the reference loop's order.
void gemv_transpose_accumulate(std::span<const float> a, std::size_t rows,
                               std::size_t cols, std::span<const float> d,
                               std::span<float> out) noexcept;

/// Rank-1 outer-product accumulate: row r of y += d[r] * x for r in
/// [0, rows), where y is rows x cols.  The backward dlogitsᵀ·X building
/// block; per row it is exactly `axpy(d[r], x, row)`, so per-element
/// accumulation order is untouched.
void outer_accumulate(std::span<const float> d, std::span<const float> x,
                      std::size_t rows, std::size_t cols,
                      std::span<float> y) noexcept;

/// y[i] += alpha * (x[i] - z[i]): the FedProx proximal pull
/// grad += mu_prox (w - anchor), fused to one pass.  Elementwise and
/// bit-identical to the scalar loop.
void add_scaled_diff(float alpha, std::span<const float> x,
                     std::span<const float> z, std::span<float> y) noexcept;

/// Cosine *distance* 1 - cos(x, y) in [0, 2].  This is the theta of the
/// paper's Algorithm 2 ("the larger the theta, the farther the distance").
/// Zero vectors are treated as maximally distant (distance 1).
[[nodiscard]] double cosine_distance(std::span<const float> x,
                                     std::span<const float> y) noexcept;

/// Cosine distance from precomputed norms: bit-identical to
/// cosine_distance(x, y) when norm_x == norm2(x) and norm_y == norm2(y).
/// This is the norm-caching seam the pairwise distance matrix uses to
/// compute one dot per pair instead of three.
[[nodiscard]] double cosine_distance_cached(std::span<const float> x,
                                            std::span<const float> y,
                                            double norm_x,
                                            double norm_y) noexcept;

/// Per-row L2 norms: out[i] = norm2(rows[i]), rows fanned out over
/// `pool` (the DistanceMatrix norm cache).
[[nodiscard]] std::vector<double> norms_of(
    std::span<const std::vector<float>> rows,
    ThreadPool& pool = ThreadPool::global());

/// Fused norms-then-cosine batch kernel: out[i] = cosine_distance(rows[i],
/// query), computing the query norm once.  Bit-identical to calling
/// cosine_distance per row.
void cosine_distances_to(std::span<const std::vector<float>> rows,
                         std::span<const float> query,
                         std::span<double> out) noexcept;

/// Borrowed row view: the combine kernels take spans so callers with rows
/// embedded in larger records (e.g. fl::GradientUpdate) can pass them
/// without copying the payloads.
using RowView = std::span<const float>;

/// out = sum_i weights[i] * rows[i].  All rows must share out's size;
/// weights.size() must equal rows.size().  For large vectors the dimension
/// range is split across `pool`; each output element still accumulates its
/// rows strictly in order, so the result is bit-identical to the serial
/// loop under any thread count.
void weighted_sum(std::span<const RowView> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool = ThreadPool::global());
void weighted_sum(std::span<const std::vector<float>> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool = ThreadPool::global());

/// out = (1/n) * sum_i rows[i].  Parallelized like weighted_sum.
void mean_of(std::span<const RowView> rows, std::span<float> out,
             ThreadPool& pool = ThreadPool::global());
void mean_of(std::span<const std::vector<float>> rows, std::span<float> out,
             ThreadPool& pool = ThreadPool::global());

}  // namespace fairbfl::support
