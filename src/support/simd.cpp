#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace fairbfl::support::simd {

namespace {

// --- The pinned scalar kernels --------------------------------------------
// Byte-for-byte the accumulation orders of the pre-dispatch vecmath.cpp
// bodies; every committed fixed-seed series was produced by these loops.
// vecmath.cpp now routes through the table, so THIS file is the reference
// implementation -- never reassociate anything here.

double scalar_dot(const float* x, const float* y, std::size_t n) {
    // Strictly left-to-right: training and theta depend on these bits.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double scalar_dot_blocked(const float* x, const float* y, std::size_t n) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
        a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
        a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
        a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double scalar_squared_distance(const float* x, const float* y,
                               std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

double scalar_squared_distance_blocked(const float* x, const float* y,
                                       std::size_t n) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 =
            static_cast<double>(x[i]) - static_cast<double>(y[i]);
        const double d1 =
            static_cast<double>(x[i + 1]) - static_cast<double>(y[i + 1]);
        const double d2 =
            static_cast<double>(x[i + 2]) - static_cast<double>(y[i + 2]);
        const double d3 =
            static_cast<double>(x[i + 3]) - static_cast<double>(y[i + 3]);
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

void scalar_axpy(float alpha, const float* x, float* y, std::size_t n) {
    // Elementwise, so the 4-way unroll is bit-identical to the plain loop.
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

void scalar_gemv(const float* a, std::size_t rows, std::size_t cols,
                 const float* x, const float* bias, float* out) {
    const float* base = a;
    const float* xp = x;
    std::size_t r = 0;
    // Four rows at a time: four independent left-to-right double chains
    // hide the FP-add latency that serializes a single `dot`.  The inner
    // loop is unrolled by two columns; each chain still receives its
    // products strictly in column order, so every row is bit-identical to
    // a lone `dot`.
    for (; r + 4 <= rows; r += 4) {
        const float* a0 = base + r * cols;
        const float* a1 = a0 + cols;
        const float* a2 = a1 + cols;
        const float* a3 = a2 + cols;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        std::size_t j = 0;
        for (; j + 2 <= cols; j += 2) {
            const double x0 = static_cast<double>(xp[j]);
            const double x1 = static_cast<double>(xp[j + 1]);
            s0 += static_cast<double>(a0[j]) * x0;
            s0 += static_cast<double>(a0[j + 1]) * x1;
            s1 += static_cast<double>(a1[j]) * x0;
            s1 += static_cast<double>(a1[j + 1]) * x1;
            s2 += static_cast<double>(a2[j]) * x0;
            s2 += static_cast<double>(a2[j + 1]) * x1;
            s3 += static_cast<double>(a3[j]) * x0;
            s3 += static_cast<double>(a3[j + 1]) * x1;
        }
        for (; j < cols; ++j) {
            const double xj = static_cast<double>(xp[j]);
            s0 += static_cast<double>(a0[j]) * xj;
            s1 += static_cast<double>(a1[j]) * xj;
            s2 += static_cast<double>(a2[j]) * xj;
            s3 += static_cast<double>(a3[j]) * xj;
        }
        if (bias == nullptr) {
            out[r] = static_cast<float>(s0);
            out[r + 1] = static_cast<float>(s1);
            out[r + 2] = static_cast<float>(s2);
            out[r + 3] = static_cast<float>(s3);
        } else {
            out[r] = bias[r] + static_cast<float>(s0);
            out[r + 1] = bias[r + 1] + static_cast<float>(s1);
            out[r + 2] = bias[r + 2] + static_cast<float>(s2);
            out[r + 3] = bias[r + 3] + static_cast<float>(s3);
        }
    }
    if (r + 2 <= rows) {
        // Two-row tail block: still two interleaved chains instead of
        // falling back to the latency-bound single dot.
        const float* a0 = base + r * cols;
        const float* a1 = a0 + cols;
        double s0 = 0.0, s1 = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
            const double xj = static_cast<double>(xp[j]);
            s0 += static_cast<double>(a0[j]) * xj;
            s1 += static_cast<double>(a1[j]) * xj;
        }
        if (bias == nullptr) {
            out[r] = static_cast<float>(s0);
            out[r + 1] = static_cast<float>(s1);
        } else {
            out[r] = bias[r] + static_cast<float>(s0);
            out[r + 1] = bias[r + 1] + static_cast<float>(s1);
        }
        r += 2;
    }
    if (r < rows) {
        const double s = scalar_dot(base + r * cols, x, cols);
        out[r] = bias == nullptr ? static_cast<float>(s)
                                 : bias[r] + static_cast<float>(s);
    }
}

void scalar_gemv_transpose_accumulate(const float* a, std::size_t rows,
                                      std::size_t cols, const float* d,
                                      float* out) {
    for (std::size_t r = 0; r < rows; ++r) {
        const float dr = d[r];
        const float* row = a + r * cols;
        for (std::size_t j = 0; j < cols; ++j) out[j] += dr * row[j];
    }
}

void scalar_outer_accumulate(const float* d, const float* x,
                             std::size_t rows, std::size_t cols, float* y) {
    for (std::size_t r = 0; r < rows; ++r)
        scalar_axpy(d[r], x, y + r * cols, cols);
}

void scalar_dot_and_norm(const float* x, const float* y, std::size_t n,
                         double* dot_out, double* x_norm2_out) {
    // Two independent strict chains; identical to calling dot() twice, so
    // the scalar cosine batch kernel keeps its pinned bits.
    *dot_out = scalar_dot(x, y, n);
    *x_norm2_out = scalar_dot(x, x, n);
}

constexpr KernelTable kScalarTable = {
    scalar_dot,
    scalar_dot_blocked,
    scalar_squared_distance,
    scalar_squared_distance_blocked,
    scalar_axpy,
    scalar_gemv,
    scalar_gemv_transpose_accumulate,
    scalar_outer_accumulate,
    scalar_dot_and_norm,
    "scalar",
};

// --- Dispatch state --------------------------------------------------------

std::atomic<const KernelTable*> g_active{nullptr};

// Regression note (PR 9): publish() used to emit the kernels.dispatch
// telemetry counter directly, which made support depend on telemetry --
// the one upward edge in the tree, now rejected by the layer-deps
// analyzer.  The breadcrumb survives as an observer telemetry.cpp
// installs via set_dispatch_observer().
std::atomic<DispatchObserver> g_observer{nullptr};

const KernelTable* resolve(Mode mode) noexcept {
    if (mode != Mode::kScalar && cpu_supports_avx2_fma()) {
        const KernelTable* avx2 = detail::avx2_table();
        if (avx2 != nullptr) return avx2;
    }
    return &kScalarTable;
}

void publish(const KernelTable* table) noexcept {
    const KernelTable* previous = g_active.exchange(table);
    if (previous == table) return;
    // The one-time dispatch breadcrumb: perf artifacts read the observer-
    // fed counter to attribute a run to the table that served it.
    if (DispatchObserver observer =
            g_observer.load(std::memory_order_acquire)) {
        observer(table->name);
    }
}

const KernelTable* resolve_from_env() noexcept {
    const char* env = std::getenv("FAIRBFL_KERNELS");
    Mode mode = Mode::kScalar;  // unset/unknown: the pinned default
    if (env != nullptr) {
        if (std::strcmp(env, "simd") == 0) {
            mode = Mode::kSimd;
        } else if (std::strcmp(env, "auto") == 0) {
            mode = Mode::kAuto;
        }
    }
    const KernelTable* table = resolve(mode);
    // First-use race: both writers store the same resolved pointer, so
    // losing the exchange is harmless; publish() de-dups the telemetry.
    publish(table);
    return table;
}

}  // namespace

bool cpu_supports_avx2_fma() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

void set_dispatch_observer(DispatchObserver observer) noexcept {
    g_observer.store(observer, std::memory_order_release);
    if (observer != nullptr) {
        // Replay: dispatch may have resolved before the observer's TU
        // finished static init; both orders must yield the breadcrumb.
        const KernelTable* table = g_active.load(std::memory_order_acquire);
        if (table != nullptr) observer(table->name);
    }
}

void set_mode(Mode mode) noexcept { publish(resolve(mode)); }

bool set_mode_name(const char* name) noexcept {
    if (name == nullptr) return false;
    if (std::strcmp(name, "scalar") == 0) {
        set_mode(Mode::kScalar);
    } else if (std::strcmp(name, "simd") == 0) {
        set_mode(Mode::kSimd);
    } else if (std::strcmp(name, "auto") == 0) {
        set_mode(Mode::kAuto);
    } else {
        return false;
    }
    return true;
}

const KernelTable& active() noexcept {
    const KernelTable* table = g_active.load(std::memory_order_acquire);
    if (table == nullptr) table = resolve_from_env();
    return *table;
}

const char* active_name() noexcept { return active().name; }

namespace detail {
const KernelTable& scalar_table() noexcept { return kScalarTable; }
}  // namespace detail

}  // namespace fairbfl::support::simd
