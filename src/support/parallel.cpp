#include "support/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

namespace fairbfl::support {

namespace {
/// Depth of pool tasks running on this thread.  Non-zero means a nested
/// ThreadPool::run must degrade to inline execution: its workers may all
/// be busy executing the outer run's body (possibly this very frame), so
/// forking to them could never complete.  Deliberately process-wide, not
/// per-pool: a task of pool A calling pool B's run() could otherwise
/// deadlock through a cross-pool wait cycle (A's run_mutex held while B's
/// tasks block on it), so any in-task run() goes inline.
thread_local unsigned pool_task_depth = 0;

/// Exception-safe ++/-- around a body invocation.
struct PoolTaskScope {
    PoolTaskScope() noexcept { ++pool_task_depth; }
    ~PoolTaskScope() { --pool_task_depth; }
    PoolTaskScope(const PoolTaskScope&) = delete;
    PoolTaskScope& operator=(const PoolTaskScope&) = delete;
};
}  // namespace

struct ThreadPool::Impl {
    std::mutex mutex;
    /// Serializes whole fork/join cycles from concurrent external callers.
    std::mutex run_mutex;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    const std::function<void(unsigned)>* job = nullptr;
    std::uint64_t epoch = 0;       // bumped per run(); workers wait on it
    unsigned remaining = 0;        // workers yet to finish current epoch
    bool shutting_down = false;
    std::exception_ptr first_error;
    std::vector<std::thread> workers;

    void worker_loop(unsigned index) {
        std::uint64_t seen_epoch = 0;
        for (;;) {
            const std::function<void(unsigned)>* my_job = nullptr;
            {
                std::unique_lock lock(mutex);
                cv_work.wait(lock, [&] {
                    return shutting_down || epoch != seen_epoch;
                });
                if (shutting_down) return;
                seen_epoch = epoch;
                my_job = job;
            }
            try {
                const PoolTaskScope task_scope;
                (*my_job)(index);
            } catch (...) {
                std::lock_guard lock(mutex);
                if (!first_error) first_error = std::current_exception();
            }
            {
                std::lock_guard lock(mutex);
                if (--remaining == 0) cv_done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(new Impl) {
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    n_threads_ = threads;
    // Worker 0 is the calling thread; spawn the rest.
    impl_->workers.reserve(threads > 0 ? threads - 1 : 0);
    for (unsigned i = 1; i < threads; ++i) {
        impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(impl_->mutex);
        impl_->shutting_down = true;
    }
    impl_->cv_work.notify_all();
    for (auto& t : impl_->workers) t.join();
    delete impl_;
}

void ThreadPool::run(const std::function<void(unsigned)>& body) {
    if (pool_task_depth > 0) {
        // Nested parallelism: the pool is (or may be) busy with the outer
        // run that this thread is part of; execute inline.
        body(0);
        return;
    }

    std::lock_guard serialize(impl_->run_mutex);
    const unsigned helpers = n_threads_ - 1;
    if (helpers > 0) {
        std::lock_guard lock(impl_->mutex);
        impl_->job = &body;
        impl_->remaining = helpers;
        impl_->first_error = nullptr;
        ++impl_->epoch;
    }
    if (helpers > 0) impl_->cv_work.notify_all();

    std::exception_ptr caller_error;
    try {
        const PoolTaskScope task_scope;
        body(0);
    } catch (...) {
        caller_error = std::current_exception();
    }

    if (helpers > 0) {
        std::unique_lock lock(impl_->mutex);
        impl_->cv_done.wait(lock, [&] { return impl_->remaining == 0; });
        if (!caller_error) caller_error = impl_->first_error;
    }
    if (caller_error) std::rethrow_exception(caller_error);
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool& pool, std::size_t grain) {
    if (begin >= end) return;
    const std::size_t count = end - begin;
    if (pool.size() <= 1 || count <= grain) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return;
    }
    std::atomic<std::size_t> next{begin};
    // Dynamic chunking by `grain`; iteration->thread mapping does not affect
    // results because iterations are independent.
    pool.run([&](unsigned) {
        for (;;) {
            const std::size_t chunk = next.fetch_add(grain);
            if (chunk >= end) return;
            const std::size_t stop = std::min(end, chunk + grain);
            for (std::size_t i = chunk; i < stop; ++i) body(i);
        }
    });
}

void parallel_chunks(std::size_t begin, std::size_t end, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body,
                     ThreadPool& pool) {
    if (begin >= end) return;
    if (chunk == 0) chunk = 1;
    if (pool.size() <= 1 || end - begin <= chunk) {
        body(begin, end);
        return;
    }
    // Dynamic chunk pull, like parallel_for: the chunk boundaries depend
    // only on (begin, chunk), never on which worker claims them.
    std::atomic<std::size_t> next{begin};
    pool.run([&](unsigned) {
        for (;;) {
            const std::size_t lo = next.fetch_add(chunk);
            if (lo >= end) return;
            body(lo, std::min(end, lo + chunk));
        }
    });
}

}  // namespace fairbfl::support
