#include "support/parallel.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "support/sync.hpp"

namespace fairbfl::support {

// Lock hierarchy (checked by the annotations below, documented in
// docs/ARCHITECTURE.md):
//
//   queue mutexes, error_mutex, sleep_mutex are all *leaf* locks -- no
//   thread ever holds two pool locks at once.  push_tasks releases the
//   queue lock before touching sleep_mutex (the scoped block), execute
//   releases error_mutex before the last-task wakeup takes sleep_mutex,
//   and pop_own/steal hold exactly one queue lock at a time.  The
//   EXCLUDES(sleep_mutex) contracts make reentering the sleep protocol
//   with the lock already held (the one nesting that could deadlock on a
//   condvar wait) a compile error under clang.

struct ThreadPool::Impl {
    /// One fork/join cycle: the caller's body plus the join bookkeeping.
    /// Stack-allocated in run(); tasks never touch it after their
    /// remaining-decrement, so the caller may destroy it as soon as the
    /// count hits zero.
    struct Job {
        const std::function<void(unsigned)>* body = nullptr;
        std::atomic<unsigned> remaining{0};
        Mutex error_mutex;
        std::exception_ptr error GUARDED_BY(error_mutex);
    };

    struct Task {
        Job* job = nullptr;
        unsigned index = 0;
    };

    /// Per-worker deque: the owner pushes/pops LIFO at the back
    /// (depth-first, cache-warm for nested forks); thieves take FIFO from
    /// the front.  Slot 0 is the shared inbox for threads that are not
    /// workers of this pool (external run() callers, cross-pool tasks).
    struct WorkQueue {
        Mutex mutex;
        std::deque<Task> tasks GUARDED_BY(mutex);
    };

    std::vector<WorkQueue> queues;
    std::vector<std::thread> workers;

    /// Sleep/wake coordination.  `pending` counts tasks sitting in queues
    /// (not yet claimed); notifications happen under `sleep_mutex` so a
    /// waiter's predicate check cannot race a push into a lost wakeup.
    Mutex sleep_mutex;
    CondVar cv;
    std::atomic<std::size_t> pending{0};
    bool shutting_down GUARDED_BY(sleep_mutex) = false;

    explicit Impl(unsigned n) : queues(n) {}

    void push_tasks(std::size_t queue_index, Job& job, unsigned first_index,
                    unsigned count) EXCLUDES(sleep_mutex) {
        {
            WorkQueue& q = queues[queue_index];
            MutexLock lock(q.mutex);
            for (unsigned k = 0; k < count; ++k)
                q.tasks.push_back(Task{&job, first_index + k});
        }
        pending.fetch_add(count);
        MutexLock lock(sleep_mutex);
        cv.notify_all();
    }

    bool pop_own(std::size_t self, Task& out) {
        WorkQueue& q = queues[self];
        MutexLock lock(q.mutex);
        if (q.tasks.empty()) return false;
        out = q.tasks.back();
        q.tasks.pop_back();
        pending.fetch_sub(1);
        return true;
    }

    bool steal(std::size_t self, Task& out) {
        const std::size_t n = queues.size();
        for (std::size_t offset = 1; offset <= n; ++offset) {
            WorkQueue& q = queues[(self + offset) % n];
            MutexLock lock(q.mutex);
            if (q.tasks.empty()) continue;
            out = q.tasks.front();
            q.tasks.pop_front();
            pending.fetch_sub(1);
            return true;
        }
        return false;
    }

    void execute(const Task& task) EXCLUDES(sleep_mutex) {
        try {
            (*task.job->body)(task.index);
        } catch (...) {
            MutexLock lock(task.job->error_mutex);
            if (!task.job->error) task.job->error = std::current_exception();
        }
        if (task.job->remaining.fetch_sub(1) == 1) {
            // Last task: wake any joiner.  Touch only pool state from here
            // on -- the joiner may already be destroying the job.
            MutexLock lock(sleep_mutex);
            cv.notify_all();
        }
    }

    /// Claims a task with this thread's preferred order: own deque first
    /// when the thread is one of our workers, otherwise straight to
    /// stealing (external threads scan from the inbox up).
    bool claim(Task& out);

    /// Runs tasks until `job` completes, sleeping only when there is
    /// nothing anywhere to help with -- the no-deadlock invariant: a
    /// joining thread never blocks while runnable work exists.
    void join(Job& job) EXCLUDES(sleep_mutex) {
        while (job.remaining.load() > 0) {
            Task task;
            if (claim(task)) {
                execute(task);
                continue;
            }
            MutexLock lock(sleep_mutex);
            while (job.remaining.load() != 0 && pending.load() == 0)
                cv.wait(sleep_mutex);
        }
    }

    void worker_loop(unsigned index) EXCLUDES(sleep_mutex);

    /// Which pool (if any) the current thread belongs to, and its queue
    /// slot.  Lets nested forks target the owning worker's deque and
    /// cross-pool calls fall back to the inbox.
    struct WorkerId {
        Impl* impl = nullptr;
        std::size_t queue_index = 0;
    };
    static thread_local WorkerId tl_worker;
};

thread_local ThreadPool::Impl::WorkerId ThreadPool::Impl::tl_worker;

bool ThreadPool::Impl::claim(Task& out) {
    if (tl_worker.impl == this)
        return pop_own(tl_worker.queue_index, out) ||
               steal(tl_worker.queue_index, out);
    return steal(queues.size() - 1, out);  // scan starting at the inbox (0)
}

void ThreadPool::Impl::worker_loop(unsigned index) {
    tl_worker = WorkerId{this, index};
    for (;;) {
        Task task;
        if (pop_own(index, task) || steal(index, task)) {
            execute(task);
            continue;
        }
        MutexLock lock(sleep_mutex);
        if (shutting_down) return;
        while (!shutting_down && pending.load() == 0) cv.wait(sleep_mutex);
        if (shutting_down) return;
    }
}

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    n_threads_ = threads;
    impl_ = new Impl(threads);
    // Queue 0 is the external inbox; workers own queues 1..n-1.
    impl_->workers.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i) {
        impl_->workers.emplace_back([this, i] { impl_->worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(impl_->sleep_mutex);
        impl_->shutting_down = true;
    }
    impl_->cv.notify_all();
    for (auto& t : impl_->workers) t.join();
    delete impl_;
}

void ThreadPool::run(const std::function<void(unsigned)>& body) {
    if (n_threads_ <= 1) {
        body(0);
        return;
    }

    Impl::Job job;
    job.body = &body;
    job.remaining.store(n_threads_ - 1);
    // Fork indices 1..n-1 as stealable tasks; the caller is index 0.  A
    // worker forks into its own deque (nested parallelism fans out to idle
    // workers); any other thread drops the tasks into the shared inbox.
    const std::size_t target = Impl::tl_worker.impl == impl_
                                   ? Impl::tl_worker.queue_index
                                   : 0;
    impl_->push_tasks(target, job, 1, n_threads_ - 1);

    std::exception_ptr caller_error;
    try {
        body(0);
    } catch (...) {
        caller_error = std::current_exception();
    }

    impl_->join(job);
    if (!caller_error) {
        // join() observed remaining == 0, so the store already
        // happened-before this read; the (uncontended, once-per-fork) lock
        // is taken so the GUARDED_BY contract holds by construction rather
        // than by the release-ordering argument.
        MutexLock lock(job.error_mutex);
        caller_error = job.error;
    }
    if (caller_error) std::rethrow_exception(caller_error);
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool& pool, std::size_t grain) {
    if (begin >= end) return;
    const std::size_t count = end - begin;
    if (pool.size() <= 1 || count <= grain) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return;
    }
    std::atomic<std::size_t> next{begin};
    // Dynamic chunking by `grain`; iteration->thread mapping does not affect
    // results because iterations are independent.
    pool.run([&](unsigned) {
        for (;;) {
            const std::size_t chunk = next.fetch_add(grain);
            if (chunk >= end) return;
            const std::size_t stop = std::min(end, chunk + grain);
            for (std::size_t i = chunk; i < stop; ++i) body(i);
        }
    });
}

void parallel_chunks(std::size_t begin, std::size_t end, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body,
                     ThreadPool& pool) {
    if (begin >= end) return;
    if (chunk == 0) chunk = 1;
    if (pool.size() <= 1 || end - begin <= chunk) {
        body(begin, end);
        return;
    }
    // Dynamic chunk pull, like parallel_for: the chunk boundaries depend
    // only on (begin, chunk), never on which worker claims them.
    std::atomic<std::size_t> next{begin};
    pool.run([&](unsigned) {
        for (;;) {
            const std::size_t lo = next.fetch_add(chunk);
            if (lo >= end) return;
            body(lo, std::min(end, lo + chunk));
        }
    });
}

}  // namespace fairbfl::support
