#pragma once
// Annotated synchronization primitives: thin wrappers over the std types
// that carry the thread-safety-analysis capability attributes
// (support/thread_annotations.hpp).  All lock-holding code outside
// src/support/ must use these -- the raw std primitives are invisible to
// the analysis, and the `raw-sync` project lint (scripts/lint) rejects
// them elsewhere in the tree.
//
// Conventions:
//   * every field a Mutex protects is declared `GUARDED_BY(mutex_)`;
//   * a private helper that assumes the lock is held says `REQUIRES(mu)`;
//   * a method that takes the lock itself says `EXCLUDES(mu)` when
//     reentering with it held would deadlock;
//   * scoped locking goes through MutexLock (never manual Lock/Unlock
//     pairs outside destructor-less leaf code).
// docs/ARCHITECTURE.md ("Concurrency invariants") carries the capability
// table and the how-to for annotating a new component.

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace fairbfl::support {

/// An annotated exclusive lock.  Same cost as the wrapped std::mutex; the
/// CAPABILITY attribute is what lets clang check acquire/release pairing
/// and GUARDED_BY access rules at compile time.
class CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void Lock() ACQUIRE() { mu_.lock(); }
    void Unlock() RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

private:
    friend class CondVar;
    std::mutex mu_;
};

/// RAII scoped lock over a Mutex (the std::lock_guard of the annotated
/// world).  SCOPED_CAPABILITY tells the analysis the constructor acquires
/// and the destructor releases.
class SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
    ~MutexLock() RELEASE() { mu_.Unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex.  wait() REQUIRES the
/// mutex: the caller must hold it (via MutexLock), and holds it again when
/// wait returns -- the internal release/reacquire is invisible to the
/// analysis, exactly like a pthread condvar.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Blocks until notified (spurious wakeups possible, as with the std
    /// type -- pair with a predicate re-check).
    void wait(Mutex& mu) REQUIRES(mu);

    /// Blocks until `pred()` holds; pred runs with `mu` held.
    template <typename Predicate>
    void wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
        cv_.wait(mu.mu_, std::move(pred));
    }

    void notify_one() noexcept;
    void notify_all() noexcept;

private:
    std::condition_variable_any cv_;
};

}  // namespace fairbfl::support
