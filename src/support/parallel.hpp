#pragma once
// Minimal work-sharing primitives for the simulator.
//
// The FL clients of a round are embarrassingly parallel (the paper's
// Procedure I executes "in parallel on each client"), so the hot loop is a
// static-chunked parallel_for over client indices, in the spirit of an
// OpenMP `parallel for schedule(static)`.  Determinism is preserved because
// every iteration draws randomness only from its own Rng stream.

#include <cstddef>
#include <functional>

namespace fairbfl::support {

/// A fixed-size pool of worker threads with a fork/join `run` primitive on
/// top of a work-stealing scheduler.  Construction spawns the workers
/// once; destruction joins them.  Each worker owns a deque: it pushes and
/// pops its own work LIFO (depth-first, cache-warm) while idle workers
/// steal FIFO from the other end, so a fork made from *inside* a pool task
/// -- nested parallelism -- fans out to whichever workers are free instead
/// of degrading to the calling thread.
class ThreadPool {
public:
    /// `threads == 0` selects std::thread::hardware_concurrency().
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const noexcept { return n_threads_; }

    /// Forks body(i) for every index i in [0, size()) -- the caller
    /// executes body(0) itself -- and joins, returning when all complete.
    /// Exceptions thrown by `body` are rethrown on the caller (first one
    /// wins).
    ///
    /// Safe under concurrency: concurrent external callers' forks simply
    /// interleave in the deques, and a call made from inside a pool task
    /// (a core::run_suite worker fanning out an inner parallel_for, or a
    /// task of *another* pool) enqueues real subtasks that idle workers
    /// steal -- no inline degradation, no deadlock: while joining, the
    /// forking thread executes pending tasks itself instead of blocking,
    /// so every wait makes progress.
    ///
    /// Contract: each index is invoked exactly once, but index->thread
    /// placement is scheduling-dependent (a single thread may execute
    /// several indices).  Bodies must therefore be index-agnostic -- pull
    /// work dynamically (as parallel_for does) rather than statically
    /// partitioning by worker index -- and must not rely on thread
    /// identity for mutual exclusion.
    void run(const std::function<void(unsigned)>& body);

    /// Shared process-wide pool (lazily constructed).
    static ThreadPool& global();

private:
    struct Impl;
    Impl* impl_;
    unsigned n_threads_;
};

/// Statically-chunked parallel loop over [begin, end).  `body(i)` must be
/// safe to invoke concurrently for distinct i.  Falls back to a serial loop
/// when the range is small or the pool has a single worker.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool& pool = ThreadPool::global(),
                  std::size_t grain = 1);

/// Range-chunked variant for fine-grained elementwise work (the vecmath
/// kernels): splits [begin, end) into contiguous chunks of at most `chunk`
/// elements and runs body(chunk_begin, chunk_end) across the pool -- one
/// std::function invocation per chunk instead of per index.  Ranges no
/// larger than one chunk (and single-worker pools) run as a single inline
/// body(begin, end) call.  Kernels whose per-element result is independent
/// of the chunk boundaries are therefore deterministic under any thread
/// count.
void parallel_chunks(std::size_t begin, std::size_t end, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body,
                     ThreadPool& pool = ThreadPool::global());

}  // namespace fairbfl::support
