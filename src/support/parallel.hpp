#pragma once
// Minimal work-sharing primitives for the simulator.
//
// The FL clients of a round are embarrassingly parallel (the paper's
// Procedure I executes "in parallel on each client"), so the hot loop is a
// static-chunked parallel_for over client indices, in the spirit of an
// OpenMP `parallel for schedule(static)`.  Determinism is preserved because
// every iteration draws randomness only from its own Rng stream.

#include <cstddef>
#include <functional>
#include <thread>

namespace fairbfl::support {

/// A fixed-size pool of worker threads with a fork/join `run` primitive.
/// Construction spawns the workers once; destruction joins them.  The pool
/// is intentionally tiny: the simulator needs fork/join data parallelism,
/// not a general task graph.
class ThreadPool {
public:
    /// `threads == 0` selects std::thread::hardware_concurrency().
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const noexcept { return n_threads_; }

    /// Runs body(worker_index) on every worker (and the calling thread as
    /// worker 0 when the pool has one thread), returning when all complete.
    /// Exceptions thrown by `body` are rethrown on the caller (first one
    /// wins).
    ///
    /// Safe under concurrency: calls from multiple threads serialize on an
    /// internal mutex (core::run_suite workers may each fan out), and a
    /// call made from inside a pool task -- nested parallelism -- degrades
    /// to running the body inline on the caller instead of deadlocking on
    /// its own busy workers.
    ///
    /// Contract: because of that inline degradation (which invokes
    /// body(0) exactly once, and conservatively applies to a task of
    /// *any* pool to rule out cross-pool deadlocks), bodies must be
    /// index-agnostic -- pull work dynamically (as parallel_for does)
    /// rather than statically partitioning by worker index.
    void run(const std::function<void(unsigned)>& body);

    /// Shared process-wide pool (lazily constructed).
    static ThreadPool& global();

private:
    struct Impl;
    Impl* impl_;
    unsigned n_threads_;
};

/// Statically-chunked parallel loop over [begin, end).  `body(i)` must be
/// safe to invoke concurrently for distinct i.  Falls back to a serial loop
/// when the range is small or the pool has a single worker.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  ThreadPool& pool = ThreadPool::global(),
                  std::size_t grain = 1);

/// Range-chunked variant for fine-grained elementwise work (the vecmath
/// kernels): splits [begin, end) into contiguous chunks of at most `chunk`
/// elements and runs body(chunk_begin, chunk_end) across the pool -- one
/// std::function invocation per chunk instead of per index.  Ranges no
/// larger than one chunk (and single-worker pools) run as a single inline
/// body(begin, end) call.  Kernels whose per-element result is independent
/// of the chunk boundaries are therefore deterministic under any thread
/// count.
void parallel_chunks(std::size_t begin, std::size_t end, std::size_t chunk,
                     const std::function<void(std::size_t, std::size_t)>& body,
                     ThreadPool& pool = ThreadPool::global());

}  // namespace fairbfl::support
