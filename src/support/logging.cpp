#include "support/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

#include "support/sync.hpp"

namespace fairbfl::support {

namespace {

/// Serializes the tag/message/newline triple of one log line.  Without it
/// concurrent vlog calls (e.g. two pool workers warning at once) could
/// interleave their fprintf fragments mid-line; stderr is the guarded
/// resource, so the capability lives here rather than on a field.
Mutex g_stderr_mutex;

LogLevel initial_level() noexcept {
    const char* env = std::getenv("FAIRBFL_LOG");
    if (env == nullptr) return LogLevel::kWarn;
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0) return LogLevel::kError;
    if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
    return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_slot() noexcept {
    static std::atomic<LogLevel> level{initial_level()};
    return level;
}

const char* level_tag(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

LogLevel log_level() noexcept { return level_slot().load(); }
void set_log_level(LogLevel level) noexcept { level_slot().store(level); }

namespace detail {

void vlog(LogLevel level, const char* fmt, ...) {
    if (level < log_level()) return;
    MutexLock lock(g_stderr_mutex);
    std::fprintf(stderr, "[fairbfl %s] ", level_tag(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

}  // namespace detail

}  // namespace fairbfl::support
